"""Text claim (Section 3): multicycle vs pipelined WP2 gains.

The paper states that in the multicycle processor the CU-IC loop is excited
only once per instruction, so WP2 improves on WP1 by about 60 % on that link,
while frequently-accessed channels benefit less; the pipelined processor still
shows relevant WP2 advantages but a much smaller one on the fetch loop.  This
benchmark regenerates the per-link gain comparison for both control styles.
"""

from __future__ import annotations

import pytest


def test_multicycle_vs_pipelined_gains(benchmark, capsys):
    """Per-link WP2-vs-WP1 gains under both control styles."""
    from repro.cpu.workloads import make_extraction_sort
    from repro.experiments import run_multicycle_study

    workload = make_extraction_sort(length=12, seed=2005)

    study = benchmark.pedantic(
        lambda: run_multicycle_study(workload=workload),
        rounds=1,
        iterations=1,
    )

    # The fetch-loop gain is much larger in the multicycle machine (paper:
    # about +60 % there, 0 % in the pipelined machine).
    assert study.gain("multicycle", "CU-IC") > study.gain("pipelined", "CU-IC")
    assert study.gain("multicycle", "CU-IC") > 30.0
    # Every link still shows a non-negative gain under both styles.
    for link in study.links:
        assert study.gain("multicycle", link) >= -1e-9
        assert study.gain("pipelined", link) >= -1e-9

    with capsys.disabled():
        print()
        print(study.format())
