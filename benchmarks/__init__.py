"""Benchmark harness: one module per table, figure or numeric claim of the paper."""
