"""Ablation: relay-station configuration optimiser strategies.

The "Optimal k (no CU-IC)" rows of Table 1 rely on a configuration search.
This benchmark compares the three strategies (exhaustive, greedy, simulated
annealing) on the Figure 1 netlist under the same budget used by the table
rows, checking that the cheap strategies stay close to the exact optimum.
"""

from __future__ import annotations

import pytest


def _setup():
    from repro.core import SearchSpace
    from repro.core.static_analysis import make_link_bound_evaluator
    from repro.cpu import build_pipelined_cpu
    from repro.cpu.workloads import make_extraction_sort

    netlist = build_pipelined_cpu(make_extraction_sort(length=4).program).netlist
    links = netlist.link_names()
    space = SearchSpace.bounded(
        links, maximum=2, minimum=0, total=len(links) - 1, fixed={"CU-IC": 0}
    )
    return netlist, space, make_link_bound_evaluator(netlist)


def test_exhaustive_search(benchmark):
    """Exact search over the Optimal-1 space (the Table 1 row generator)."""
    from repro.core import exhaustive_search

    _, space, evaluator = _setup()
    result = benchmark.pedantic(
        lambda: exhaustive_search(space, evaluator), rounds=1, iterations=1
    )
    assert result.score == pytest.approx(0.6)


def test_greedy_search(benchmark):
    """Greedy construction under the same budget."""
    from repro.core import exhaustive_search, greedy_search

    _, space, evaluator = _setup()
    exact = exhaustive_search(space, evaluator).score
    result = benchmark(lambda: greedy_search(space, evaluator))
    assert result.score >= 0.5 * exact


def test_annealing_search(benchmark):
    """Simulated annealing under the same budget (deterministic seed)."""
    from repro.core import annealing_search, exhaustive_search

    _, space, evaluator = _setup()
    exact = exhaustive_search(space, evaluator).score
    result = benchmark.pedantic(
        lambda: annealing_search(space, evaluator, iterations=2000, seed=7),
        rounds=1,
        iterations=1,
    )
    # Annealing should land on (or very near) the exact optimum.
    assert result.score >= exact - 0.05


# ---------------------------------------------------------------------------
# Simulated-throughput objectives (the expensive kind the engine refactor
# targets: every evaluation is a full latency-insensitive simulation).
# ---------------------------------------------------------------------------

def _simulated_setup():
    from repro.core import SearchSpace
    from repro.cpu import build_pipelined_cpu
    from repro.cpu.workloads import make_extraction_sort

    cpu = build_pipelined_cpu(make_extraction_sort(length=4, seed=2005).program)
    golden = cpu.run_golden(record_trace=False)
    space = SearchSpace.bounded(
        cpu.netlist.link_names(), maximum=1, minimum=0, fixed={"CU-IC": 0}
    )
    return cpu, golden.cycles, space


def test_simulated_search_legacy_path(benchmark):
    """Greedy search, objective via the original always-instrumented simulator."""
    from repro.core import greedy_search, simulation_objective

    cpu, golden_cycles, space = _simulated_setup()

    def run(config):
        result = cpu.run_wire_pipelined(
            configuration=config, relaxed=True, record_trace=False,
            kernel="reference",
        )
        return golden_cycles / result.cycles

    objective = simulation_objective(run)
    result = benchmark.pedantic(
        lambda: greedy_search(space, objective), rounds=1, iterations=1
    )
    assert result.score > 0


def test_simulated_search_batch_runner(benchmark):
    """Same search through the batch runner: shared elaboration, fast kernel,
    zero instrumentation."""
    from repro.core import greedy_search, simulated_throughput_objective

    cpu, golden_cycles, space = _simulated_setup()
    objective = simulated_throughput_objective(
        cpu.netlist, relaxed=True, golden_cycles=golden_cycles, stop_process="CU"
    )
    result = benchmark.pedantic(
        lambda: greedy_search(space, objective), rounds=1, iterations=1
    )
    assert result.score > 0
