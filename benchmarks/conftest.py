"""Shared configuration for the benchmark harness.

Every benchmark regenerates one table, figure or numeric claim of the paper
(plus a few ablations specific to this reproduction).  The regenerated rows
are printed so that ``pytest benchmarks/ --benchmark-only -s`` doubles as the
report generator; EXPERIMENTS.md records one captured run side by side with
the paper's numbers.

Workload sizes are chosen so the whole harness completes in a few minutes on
a laptop while keeping golden cycle counts in the same range as the paper's
(one to a few thousand cycles per run).
"""

from __future__ import annotations

import pytest


#: Array length used for the Extraction Sort section of Table 1.
SORT_LENGTH = 16
#: Matrix dimension used for the Matrix Multiply section of Table 1.
MATMUL_SIZE = 5
#: Seed shared by every benchmark workload.
SEED = 2005


@pytest.fixture(scope="session")
def table1_sort_result():
    """The Extraction Sort section of Table 1, computed once per session."""
    from repro.experiments import run_table1_sort

    return run_table1_sort(length=SORT_LENGTH, seed=SEED)


@pytest.fixture(scope="session")
def table1_matmul_result():
    """The Matrix Multiply section of Table 1, computed once per session."""
    from repro.experiments import run_table1_matmul

    return run_table1_matmul(size=MATMUL_SIZE, seed=SEED)
