"""Evaluation-service benchmark: streamed mixed sweep, cold vs warm cache.

Submits a 64-row mixed batch — extraction sort and matrix multiply, both
wrapper flavours, eight uniform relay-station depths crossed with two
wrapper FIFO capacities — twice through one
:class:`repro.service.EvaluationService`:

* the **cold** pass simulates every row, streaming completions as they land
  (the time-to-first-row over total wall-clock is recorded as the streaming
  evidence the acceptance criteria ask for);
* the **warm** pass submits the identical batch again and must be answered
  entirely from the content-addressed result cache, bit-identically and —
  enforced here and by ``check_perf_floor.py --cache-floor`` in CI — at
  least 50x faster;
* a third pass goes through a **fresh** service sharing only the on-disk
  cache tier, measuring the persistent-cache hit path a new process pays.

Every run appends a timestamped record to ``BENCH_service.json`` at the
repository root (a JSON list, oldest first), mirroring the
``BENCH_kernel.json`` convention.  Quick mode (``REPRO_BENCH_QUICK=1``)
shrinks the workload sizes but keeps the 64-row shape.
"""

from __future__ import annotations

import json
import os
import platform
import tempfile
import time
from datetime import datetime, timezone
from pathlib import Path

import pytest

QUICK = os.environ.get("REPRO_BENCH_QUICK", "") not in ("", "0")
RECORD_PATH = Path(__file__).resolve().parent.parent / "BENCH_service.json"

#: The CI floor: a warm-cache re-run of the 64-row sweep must be at least
#: this many times faster than the cold run (measured: thousands).
MIN_WARM_SPEEDUP = 50.0
#: The first streamed row must land in well under half the cold wall-clock
#: (with per-row chunking it lands after ~1/64th of the work).
MAX_FIRST_ROW_FRACTION = 0.5

N_DEPTHS = 8
CAPACITIES = (3, 4)


def _workloads():
    from repro.cpu.workloads import make_extraction_sort, make_matrix_multiply

    if QUICK:
        return {
            "extraction_sort": make_extraction_sort(length=6, seed=2005),
            "matrix_multiply": make_matrix_multiply(size=2, seed=2005),
        }
    return {
        "extraction_sort": make_extraction_sort(length=10, seed=2005),
        "matrix_multiply": make_matrix_multiply(size=3, seed=2005),
    }


def _build_items(service):
    """Register the four layouts and return the 64 tagged batch items."""
    from repro.core.config import RSConfiguration
    from repro.cpu.machine import build_pipelined_cpu

    cpus = {
        name: build_pipelined_cpu(workload.program)
        for name, workload in _workloads().items()
    }
    stop = next(iter(cpus.values())).control_unit.name
    configs = [
        (RSConfiguration.uniform(depth, exclude=("CU-IC",)),
         {"queue_capacity": capacity})
        for depth in range(N_DEPTHS)
        for capacity in CAPACITIES
    ]
    items = []
    for cpu in cpus.values():
        for relaxed in (False, True):
            layout = service.ensure_layout(cpu.netlist, relaxed=relaxed)
            items.extend((layout, item) for item in configs)
    return items, stop


def _append_history(record) -> None:
    history = []
    if RECORD_PATH.exists():
        try:
            existing = json.loads(RECORD_PATH.read_text())
        except ValueError:
            existing = []
        if isinstance(existing, list):
            history = existing
        elif isinstance(existing, dict):
            history = [existing]
    history.append(record)
    RECORD_PATH.write_text(json.dumps(history, indent=2, sort_keys=True) + "\n")


@pytest.fixture(scope="module")
def service_record():
    record = {
        "benchmark": "service",
        "timestamp": datetime.now(timezone.utc).isoformat(timespec="seconds"),
        "quick": QUICK,
        "python": platform.python_version(),
    }
    yield record
    _append_history(record)


def test_streamed_mixed_sweep_cold_vs_warm(service_record):
    """64 mixed rows: cold streams partials, warm re-run is >=50x faster."""
    from repro.service import EvaluationService, ResultCache

    with tempfile.TemporaryDirectory(prefix="repro-bench-cache-") as cache_dir:
        service = EvaluationService(cache=ResultCache(cache_dir=cache_dir))
        with service:
            items, stop = _build_items(service)
            assert len(items) == 64

            arrivals = []
            start = time.perf_counter()
            cold_set = service.submit(
                items,
                on_result=lambda job: arrivals.append(
                    time.perf_counter() - start
                ),
                stop_process=stop,
            )
            cold_rows = cold_set.ordered_results()
            cold = time.perf_counter() - start
            assert not any(job.cached for job in cold_set.jobs)
            assert len(arrivals) == 64

            start = time.perf_counter()
            warm_set = service.submit(items, stop_process=stop)
            warm_rows = warm_set.ordered_results()
            warm = time.perf_counter() - start

        # Bit-identical rows on both passes, all 64 warm rows from cache.
        assert warm_rows == cold_rows
        assert all(job.cached for job in warm_set.jobs)
        assert service.evaluated == 64

        # Fresh service, fresh process-equivalent: only the disk tier is
        # shared.  Every row must come back identical from disk.
        disk_service = EvaluationService(cache=ResultCache(cache_dir=cache_dir))
        with disk_service:
            disk_items, disk_stop = _build_items(disk_service)
            start = time.perf_counter()
            disk_set = disk_service.submit(disk_items, stop_process=disk_stop)
            disk_rows = disk_set.ordered_results()
            disk = time.perf_counter() - start
        assert disk_rows == cold_rows
        assert all(job.cached for job in disk_set.jobs)
        assert disk_service.evaluated == 0

    warm_speedup = cold / warm
    first_fraction = arrivals[0] / cold
    service_record["streamed_mixed_sweep"] = {
        "rows": len(items),
        "cold_seconds": cold,
        "warm_seconds": warm,
        "warm_speedup": warm_speedup,
        "disk_warm_seconds": disk,
        "disk_warm_speedup": cold / disk,
        "first_row_seconds": arrivals[0],
        "first_row_fraction": first_fraction,
        "cache": service.cache.stats(),
    }

    assert warm_speedup >= MIN_WARM_SPEEDUP, (
        f"warm-cache re-run only {warm_speedup:.1f}x faster than cold "
        f"(floor {MIN_WARM_SPEEDUP:.0f}x)"
    )
    assert first_fraction <= MAX_FIRST_ROW_FRACTION, (
        f"first streamed row landed at {first_fraction:.2f} of the cold "
        f"wall-clock (need <= {MAX_FIRST_ROW_FRACTION})"
    )


def test_inflight_dedup_smoke(service_record):
    """Two identical submissions racing through one service cost one pass."""
    from repro.service import EvaluationService

    with EvaluationService() as service:
        items, stop = _build_items(service)
        subset = items[: 8 if QUICK else 16]
        first = service.submit(subset, stop_process=stop)
        second = service.submit(subset, stop_process=stop)  # rides along
        rows_first = first.ordered_results()
        rows_second = second.ordered_results()
        assert rows_first == rows_second
        deduped = sum(1 for job in second.jobs if job.deduped)
        cached = sum(1 for job in second.jobs if job.cached)
        assert deduped + cached == len(subset)
        assert service.evaluated == len(subset)
    service_record["inflight_dedup"] = {
        "rows": len(subset),
        "deduped": deduped,
        "cached_at_submit": cached,
    }
