"""Ablations called out in DESIGN.md (not in the paper).

* Wrapper FIFO depth: how much buffering the wrappers need before
  back-pressure stops costing throughput (the paper reasons with
  semi-infinite FIFOs made finite).
* Uniform pipelining depth: throughput of "All k" as k grows, for both
  wrapper flavours — the scaling trend that motivates wire pipelining
  methodology work in the first place.
* Floorplan/clock methodology sweep: the end-to-end flow from a floorplan and
  a clock target to relay-station counts and sustained throughput; the
  effective performance (clock x throughput) exposes the optimum operating
  point that the methodology is meant to find.
"""

from __future__ import annotations

import pytest


def test_fifo_depth_ablation(benchmark, capsys):
    """WP1/WP2 throughput versus wrapper FIFO depth."""
    from repro.cpu.workloads import make_extraction_sort
    from repro.experiments import queue_capacity_sweep

    workload = make_extraction_sort(length=10, seed=2005)
    result = benchmark.pedantic(
        lambda: queue_capacity_sweep(workload=workload, capacities=(2, 3, 4, 8)),
        rounds=1,
        iterations=1,
    )
    wp2 = result.wp2_series()
    # Depth 4 is enough: deeper FIFOs change throughput only marginally.
    assert wp2[-1] - wp2[2] < 0.05
    with capsys.disabled():
        print()
        print(result.format())


def test_uniform_depth_ablation(benchmark, capsys):
    """Throughput of "All k" configurations for k = 0..3."""
    from repro.cpu.workloads import make_extraction_sort
    from repro.experiments import uniform_depth_sweep

    workload = make_extraction_sort(length=10, seed=2005)
    result = benchmark.pedantic(
        lambda: uniform_depth_sweep(workload=workload, depths=(0, 1, 2, 3)),
        rounds=1,
        iterations=1,
    )
    wp1 = result.wp1_series()
    wp2 = result.wp2_series()
    assert wp1[0] == pytest.approx(1.0, abs=0.02)
    assert all(a >= b - 1e-9 for a, b in zip(wp1, wp1[1:]))  # WP1 degrades with depth
    assert all(w2 >= w1 - 1e-9 for w1, w2 in zip(wp1, wp2))  # WP2 always at least as good
    with capsys.disabled():
        print()
        print(result.format())


def test_clock_frequency_methodology_sweep(benchmark, capsys):
    """Floorplan + clock target -> relay stations -> sustained throughput."""
    from repro.cpu.workloads import make_extraction_sort
    from repro.experiments import clock_frequency_sweep

    workload = make_extraction_sort(length=10, seed=2005)
    result = benchmark.pedantic(
        lambda: clock_frequency_sweep(
            workload=workload, frequencies_ghz=(0.4, 0.8, 1.2, 1.6, 2.0)
        ),
        rounds=1,
        iterations=1,
    )
    # Raising the clock eventually forces relay stations onto the links and
    # the sustained throughput (per cycle) drops.
    first, last = result.points[0], result.points[-1]
    assert last.detail["total_relay_stations"] >= first.detail["total_relay_stations"]
    assert last.wp2_throughput <= first.wp2_throughput + 1e-9
    # WP2 dominates WP1 at every operating point.
    assert all(p.wp2_throughput >= p.wp1_throughput - 1e-9 for p in result.points)
    with capsys.disabled():
        print()
        print(result.format())
        print("effective performance (GHz x Th):")
        for point in result.points:
            print(
                f"  {point.parameter:.1f} GHz: WP1 {point.detail['effective_wp1_ghz']:.2f}, "
                f"WP2 {point.detail['effective_wp2_ghz']:.2f}, "
                f"RS total {int(point.detail['total_relay_stations'])}"
            )
