"""Serving-tier benchmark: the network daemon end to end, cold vs warm.

Drives a real :class:`repro.server.ReproServer` on a loopback socket with
the thin stdlib client and measures what the HTTP layer adds on top of the
in-process service (compare ``BENCH_service.json``):

* **cold streaming** — a 64-row mixed submission, every row simulated,
  rows consumed over SSE as they complete; records total wall-clock and
  time-to-first-streamed-row (the acceptance evidence that results stream
  before the batch finishes);
* **warm end-to-end latency** — the identical submission again, answered
  entirely from the content-addressed cache: this is the pure serving
  overhead (HTTP + JSON + admission) once simulation cost is gone, so the
  recorded ``warm_seconds`` is the daemon's per-sweep floor;
* **binary frames** — the same warm fetch over the checksummed-frame
  encoding, for the SSE-vs-frames overhead comparison.

Every run appends a timestamped record to ``BENCH_server.json`` at the
repository root (a JSON list, oldest first), mirroring the
``BENCH_service.json`` convention.  Quick mode (``REPRO_BENCH_QUICK=1``)
shrinks the workload sizes but keeps the 64-row shape.
"""

from __future__ import annotations

import json
import os
import platform
import tempfile
import time
from datetime import datetime, timezone
from pathlib import Path

import pytest

QUICK = os.environ.get("REPRO_BENCH_QUICK", "") not in ("", "0")
RECORD_PATH = Path(__file__).resolve().parent.parent / "BENCH_server.json"

#: The warm pass answers from cache: it must beat the cold pass by a wide
#: margin even with the whole HTTP layer in between (measured: hundreds).
MIN_WARM_SPEEDUP = 10.0
#: The first streamed row must land in well under half the cold wall-clock.
MAX_FIRST_ROW_FRACTION = 0.5

N_DEPTHS = 16  # x 2 workloads x 2 wrappers = 64 rows


def _bodies():
    sort_length = 6 if QUICK else 10
    matmul_size = 2 if QUICK else 3
    common = {
        "wrappers": ["wp1", "wp2"],
        "configurations": list(range(N_DEPTHS)),
    }
    return [
        {"spec": {"kind": "workload", "workload": "sort",
                  "length": sort_length, "seed": 2005}, **common},
        {"spec": {"kind": "workload", "workload": "matmul",
                  "size": matmul_size, "seed": 2005}, **common},
    ]


def _append_history(record) -> None:
    history = []
    if RECORD_PATH.exists():
        try:
            existing = json.loads(RECORD_PATH.read_text())
        except ValueError:
            existing = []
        if isinstance(existing, list):
            history = existing
        elif isinstance(existing, dict):
            history = [existing]
    history.append(record)
    RECORD_PATH.write_text(json.dumps(history, indent=2, sort_keys=True) + "\n")


@pytest.fixture(scope="module")
def server_record():
    record = {
        "benchmark": "server",
        "timestamp": datetime.now(timezone.utc).isoformat(timespec="seconds"),
        "quick": QUICK,
        "python": platform.python_version(),
    }
    yield record
    _append_history(record)


def _run_sweep(client, bodies, binary=False):
    """Submit + stream every body; returns (rows, total_s, first_row_s)."""
    start = time.perf_counter()
    replies = [client.submit(body) for body in bodies]
    first_row = None
    rows = []
    for reply in replies:
        for event in client.stream(reply["job_set_id"], binary=binary):
            if first_row is None:
                first_row = time.perf_counter() - start
            rows.append((event["layout"], event["label"], event["result"]))
    return sorted(rows), time.perf_counter() - start, first_row


def test_server_cold_stream_and_warm_latency(server_record):
    """64 mixed rows over the wire: cold streams early, warm is cache-fast."""
    from repro.server import ReproServer, ServerClient

    bodies = _bodies()
    with tempfile.TemporaryDirectory(prefix="repro-bench-server-") as cache:
        with ReproServer(port=0, cache_dir=cache) as server:
            client = ServerClient(*server.address)

            cold_rows, cold, first_row = _run_sweep(client, bodies)
            assert len(cold_rows) == 64

            warm_rows, warm, _ = _run_sweep(client, bodies)
            assert warm_rows == cold_rows  # bit-identical from the cache

            frame_rows, framed, _ = _run_sweep(client, bodies, binary=True)
            assert frame_rows == cold_rows

            stats_page = client.metrics()
            assert "repro_service_cache_hit_rate" in stats_page

    warm_speedup = cold / warm
    first_fraction = first_row / cold
    server_record["mixed_sweep_over_http"] = {
        "rows": len(cold_rows),
        "cold_seconds": cold,
        "warm_seconds": warm,
        "warm_speedup": warm_speedup,
        "warm_frames_seconds": framed,
        "first_row_seconds": first_row,
        "first_row_fraction": first_fraction,
        "rows_per_second_warm": len(cold_rows) / warm,
    }

    assert warm_speedup >= MIN_WARM_SPEEDUP, (
        f"warm serving pass only {warm_speedup:.1f}x faster than cold "
        f"(floor {MIN_WARM_SPEEDUP:.0f}x)"
    )
    assert first_fraction <= MAX_FIRST_ROW_FRACTION, (
        f"first streamed row landed at {first_fraction:.2f} of the cold "
        f"wall-clock (need <= {MAX_FIRST_ROW_FRACTION})"
    )


def test_server_restart_warm_replay(server_record):
    """A replacement daemon on the same cache dir replays without simulating."""
    from repro.server import ReproServer, ServerClient

    bodies = _bodies()
    with tempfile.TemporaryDirectory(prefix="repro-bench-server-") as cache:
        with ReproServer(port=0, cache_dir=cache) as first:
            rows_before, _, _ = _run_sweep(
                ServerClient(*first.address), bodies
            )
        start = time.perf_counter()
        with ReproServer(port=0, cache_dir=cache) as second:
            rows_after, replay, _ = _run_sweep(
                ServerClient(*second.address), bodies
            )
            evaluated = second.service.stats()["evaluated"]
        restart_total = time.perf_counter() - start
    assert rows_after == rows_before
    assert evaluated == 0  # every row came from the disk tier
    server_record["restart_replay"] = {
        "rows": len(rows_after),
        "replay_seconds": replay,
        "restart_plus_replay_seconds": restart_total,
    }
