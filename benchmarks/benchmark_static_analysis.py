"""Section 2's throughput formula: Th = m / (m + n), statically and by simulation.

Regenerates the structural claim behind the WP1 column of Table 1: the
throughput of the strict latency-insensitive system equals the worst loop's
m/(m+n).  Also cross-checks the two static analyses (explicit loop
enumeration and the maximum-cycle-ratio formulation) and benchmarks their
cost, since the methodology uses them inside optimisation loops.
"""

from __future__ import annotations

import pytest


def _cpu_netlist():
    from repro.cpu import build_pipelined_cpu
    from repro.cpu.workloads import make_extraction_sort

    return build_pipelined_cpu(make_extraction_sort(length=4).program).netlist


def test_loop_bound_by_enumeration(benchmark):
    """Static bound via simple-cycle enumeration on the Figure 1 netlist."""
    from repro.core import RSConfiguration, throughput_bound

    netlist = _cpu_netlist()
    config = RSConfiguration.uniform(1, exclude=("CU-IC",))

    report = benchmark(lambda: throughput_bound(netlist, configuration=config))
    assert float(report.bound) == pytest.approx(0.5)


def test_loop_bound_by_cycle_ratio(benchmark):
    """Static bound via the maximum-cycle-ratio formulation (no enumeration)."""
    from repro.core import RSConfiguration, throughput_bound_mcm

    netlist = _cpu_netlist()
    config = RSConfiguration.uniform(1, exclude=("CU-IC",))

    bound = benchmark(lambda: throughput_bound_mcm(netlist, configuration=config))
    assert bound == pytest.approx(0.5, abs=1e-6)


def test_formula_matches_simulation_on_rings(benchmark, capsys):
    """Simulated WP1 throughput of synthetic rings matches m / (m + n)."""
    from repro.core import ring_netlist, run_lid

    cases = [(2, 1), (3, 1), (3, 2), (4, 2), (5, 3)]

    def measure():
        rows = []
        for stages, rs_total in cases:
            netlist, rs_counts = ring_netlist(stages, rs_total=rs_total)
            result = run_lid(
                netlist,
                rs_counts=rs_counts,
                target_firings={"stage0": 200},
                max_cycles=50_000,
            )
            rows.append(
                (stages, rs_total, result.firings["stage0"] / result.cycles,
                 stages / (stages + rs_total))
            )
        return rows

    rows = benchmark.pedantic(measure, rounds=1, iterations=1)
    for stages, rs_total, measured, expected in rows:
        assert measured == pytest.approx(expected, rel=0.03)

    with capsys.disabled():
        print()
        print("ring throughput: m processes, n relay stations, measured vs m/(m+n)")
        for stages, rs_total, measured, expected in rows:
            print(f"  m={stages} n={rs_total}  measured={measured:.3f} expected={expected:.3f}")
