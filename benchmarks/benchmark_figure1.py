"""Figure 1: the case-study topology and its netlist loops.

Figure 1 is structural (five blocks, their channels, and the loops that are
"the responsible of performance pitfalls"), so its regeneration is a report:
block list, channel list, every simple loop with its m/(m+n) bound, and the
throughput bound each link imposes when it alone is pipelined.  The shape
assertions pin the structural facts the paper relies on.
"""

from __future__ import annotations

from fractions import Fraction

import pytest


def test_figure1_topology_report(benchmark, capsys):
    """Enumerate the Figure 1 loops and per-link bounds, and print the report."""
    from repro.experiments import run_figure1

    report = benchmark(run_figure1)

    assert sorted(report.blocks) == ["ALU", "CU", "DC", "IC", "RF"]
    assert len(report.channels) == 11
    assert report.loop_count == 7
    # Four two-block loops: CU<->IC, CU<->ALU, RF<->ALU, RF<->DC.
    assert len(report.shortest_loops()) == 4
    # The fetch link is the most throughput-critical one (both directions are
    # pipelined together), exactly the 0.5 the paper's Table 1 shows.
    assert report.per_link_bound["CU-IC"] == Fraction(1, 2)
    assert min(report.per_link_bound.values()) == Fraction(1, 2)
    assert report.per_link_bound["CU-DC"] == max(report.per_link_bound.values())

    with capsys.disabled():
        print()
        print(report.format())
