"""Text claim (Section 1): wrapper area overhead below 1 % of a 100 kgate IP.

The authors synthesised their wrappers on a 130 nm library; this reproduction
substitutes an analytical gate-equivalent model (see DESIGN.md), so the claim
being checked is the ratio between wrapper logic and IP logic, for both the
plain WP1 wrapper and the oracle-equipped WP2 wrapper.
"""

from __future__ import annotations

import pytest


def test_wrapper_area_overhead(benchmark, capsys):
    """Wrapper area overhead for the reference 100 kgate IP and per block."""
    from repro.experiments import reference_wrapper_overhead_percent, run_area_overhead

    result = benchmark(run_area_overhead)

    wp1_reference = reference_wrapper_overhead_percent(relaxed=False)
    wp2_reference = reference_wrapper_overhead_percent(relaxed=True)

    # The paper's headline claim: below 1 % of a 100 kgate IP, for both
    # wrapper flavours, with the oracle adding only a small increment.
    assert wp1_reference < 1.0
    assert wp2_reference < 1.0
    assert wp1_reference < wp2_reference < 1.3 * wp1_reference

    # System-level view on the Figure 1 processor.
    assert result.wp1.wrapper_overhead_fraction < 0.05
    assert result.wp2.total_wrapper_ge > result.wp1.total_wrapper_ge

    with capsys.disabled():
        print()
        print(f"reference wrapper overhead (WP1): {wp1_reference:.3f} % of a 100 kgate IP")
        print(f"reference wrapper overhead (WP2): {wp2_reference:.3f} % of a 100 kgate IP")
        print(result.format())
