"""Table 1, Matrix Multiply section (rows 1-25).

Regenerates the full Matrix Multiply row set: the ideal configuration, ten
single-link rows, "All 1 (no CU-IC)", the ten "All 1 and 2 <link>" rows,
"Optimal 2 (no CU-IC)", "All 2 (no CU-IC)" and "All 2 and 1 CU-RF" — the same
configurations as the paper — and prints them in the paper's layout.
"""

from __future__ import annotations

import pytest

from .conftest import MATMUL_SIZE, SEED


def _shape_checks(result):
    assert len(result.rows) == 25
    for row in result.rows:
        assert row.wp2_throughput >= row.wp1_throughput - 1e-9
        assert row.wp1_throughput <= row.static_bound + 0.03
    # Deeper uniform pipelining costs WP1 more (All 2 below All 1), and the
    # deepened fetch loop ("All 1 and 2 CU-IC") is the worst row of the
    # incremental family, exactly as in the paper.
    all_one = result.row("All 1 (no CU-IC)")
    all_two = result.row("All 2 (no CU-IC)")
    assert all_two.wp1_throughput < all_one.wp1_throughput
    incremental = [row for row in result.rows if row.label.startswith("All 1 and 2 ")]
    worst = min(incremental, key=lambda row: row.wp2_throughput)
    assert worst.label == "All 1 and 2 CU-IC"
    # The optimal redistribution beats the uniform "All 2" placement.
    optimal = result.row("Optimal 2 (no CU-IC)")
    assert optimal.wp1_throughput > all_two.wp1_throughput - 1e-9


def test_table1_matrix_multiply(benchmark, table1_matmul_result, capsys):
    """Regenerate and print the Matrix Multiply rows of Table 1."""

    def run_single_row():
        from repro.core import RSConfiguration
        from repro.cpu import build_pipelined_cpu
        from repro.cpu.workloads import make_matrix_multiply
        from repro.experiments.table1 import evaluate_configuration

        workload = make_matrix_multiply(size=MATMUL_SIZE, seed=SEED)
        cpu = build_pipelined_cpu(workload.program)
        golden = cpu.run_golden(record_trace=False)
        return evaluate_configuration(
            cpu, RSConfiguration.uniform_plus(1, {"RF-DC": 2}, label="All 1 and 2 RF-DC"), golden
        )

    row = benchmark.pedantic(run_single_row, rounds=1, iterations=1)
    assert row.wp2_throughput >= row.wp1_throughput

    _shape_checks(table1_matmul_result)
    with capsys.disabled():
        print()
        print(table1_matmul_result.format())
