"""Kernel comparison benchmark: ReferenceKernel vs FastKernel on Table 1 work.

Runs both simulation kernels on the Table 1 workloads (Extraction Sort and
Matrix Multiply under "All 1 (no CU-IC)", WP1 and WP2) in two instrumentation
modes — the historical always-on mode (shell stats + occupancy) and the
uninstrumented objective mode used by the optimiser and the batch runner —
and records the measured speedups in ``BENCH_kernel.json`` at the repository
root so future changes can track the performance trajectory.

Quick mode (for CI smoke runs): set ``REPRO_BENCH_QUICK=1`` to shrink the
workloads and repetition counts.
"""

from __future__ import annotations

import json
import os
import platform
import time
from pathlib import Path

import pytest


QUICK = os.environ.get("REPRO_BENCH_QUICK", "") not in ("", "0")
#: Conservative floor asserted by the test (the measured speedup is recorded
#: verbatim in the JSON perf record; ≥5x is the target on a quiet machine).
MIN_SPEEDUP = 2.5
RECORD_PATH = Path(__file__).resolve().parent.parent / "BENCH_kernel.json"


def _workloads():
    from repro.cpu.workloads import make_extraction_sort, make_matrix_multiply

    if QUICK:
        return {
            "extraction_sort": make_extraction_sort(length=4, seed=2005),
            "matrix_multiply": make_matrix_multiply(size=2, seed=2005),
        }
    return {
        "extraction_sort": make_extraction_sort(length=8, seed=2005),
        "matrix_multiply": make_matrix_multiply(size=3, seed=2005),
    }


def _best_of(fn, repeats):
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def _measure(workload, relaxed, instruments):
    """Best-of-N wall time per kernel plus the (asserted equal) cycle counts."""
    from repro.core import RSConfiguration
    from repro.cpu import build_pipelined_cpu
    from repro.engine import BatchRunner, InstrumentSet

    cpu = build_pipelined_cpu(workload.program)
    config = RSConfiguration.uniform(1, exclude=("CU-IC",))
    repeats = 3 if QUICK else 7
    timings = {}
    cycles = {}
    for kernel in ("reference", "fast"):
        runner = BatchRunner(
            cpu.netlist,
            relaxed=relaxed,
            kernel=kernel,
            instruments=(
                InstrumentSet(trace=False, shell_stats=True, occupancy=True)
                if instruments
                else InstrumentSet.none()
            ),
        )
        run = lambda: runner.run(configuration=config, stop_process="CU")
        result = run()
        cycles[kernel] = result.cycles
        timings[kernel] = _best_of(run, repeats)
    assert cycles["reference"] == cycles["fast"], "kernels disagree on cycles"
    return {
        "cycles": cycles["fast"],
        "reference_seconds": timings["reference"],
        "fast_seconds": timings["fast"],
        "speedup": timings["reference"] / timings["fast"],
    }


@pytest.fixture(scope="module")
def kernel_record():
    """Measure everything once, yield the record, write the JSON at teardown."""
    record = {
        "benchmark": "kernel",
        "quick": QUICK,
        "python": platform.python_version(),
        "config": "All 1 (no CU-IC)",
        "results": {},
    }
    yield record
    record["min_speedup"] = min(
        entry["speedup"] for entry in record["results"].values()
    )
    record["max_speedup"] = max(
        entry["speedup"] for entry in record["results"].values()
    )
    RECORD_PATH.write_text(json.dumps(record, indent=2, sort_keys=True) + "\n")


@pytest.mark.parametrize("workload_name", ["extraction_sort", "matrix_multiply"])
@pytest.mark.parametrize("wrapper", ["WP1", "WP2"])
@pytest.mark.parametrize("mode", ["instrumented", "objective"])
def test_fast_kernel_speedup(kernel_record, workload_name, wrapper, mode):
    """FastKernel beats ReferenceKernel on every Table 1 workload and mode."""
    workload = _workloads()[workload_name]
    entry = _measure(
        workload,
        relaxed=(wrapper == "WP2"),
        instruments=(mode == "instrumented"),
    )
    kernel_record["results"][f"{workload_name}/{wrapper}/{mode}"] = entry
    assert entry["speedup"] >= MIN_SPEEDUP, (
        f"fast kernel only {entry['speedup']:.2f}x faster than reference on "
        f"{workload_name}/{wrapper}/{mode}"
    )
