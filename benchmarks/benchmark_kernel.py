"""Kernel comparison benchmark: reference vs fast vs compiled on Table 1 work.

Runs all three simulation kernels on the Table 1 workloads (Extraction Sort
and Matrix Multiply under "All 1 (no CU-IC)", WP1 and WP2) in two
instrumentation modes — the historical always-on mode (shell stats +
occupancy) and the uninstrumented objective mode used by the optimiser and
the batch runner — and additionally measures how ``BatchRunner.run_many``
scales when the same configuration batch is sharded across worker processes,
the steady-state detector's speedup on long-horizon objective runs (10k and
100k cycle horizons, enforced by ``check_perf_floor.py``), the
looping-table1 CPU horizon measurement (certified ``schedule_state()``
extrapolation vs full simulation, also enforced by ``check_perf_floor.py``),
the lockstep structure-of-arrays sweep (one vectorised ``run_many`` over N
same-layout lanes vs N scalar runs, enforced by ``check_perf_floor.py
--lockstep-floor``) and the mixed-workload multi-netlist batch smoke.

Every run **appends** a timestamped record to the ``BENCH_kernel.json``
history at the repository root (a JSON list, oldest first), so the
performance trajectory across PRs stays visible instead of being
overwritten.  A pre-history single-record file is migrated into the list on
first append.

Quick mode (for CI smoke runs): set ``REPRO_BENCH_QUICK=1`` to shrink the
workloads and repetition counts.  ``benchmarks/check_perf_floor.py`` reads
the newest record and enforces the compiled-kernel perf floor at PR time.
"""

from __future__ import annotations

import json
import os
import platform
import time
from datetime import datetime, timezone
from pathlib import Path

import pytest


QUICK = os.environ.get("REPRO_BENCH_QUICK", "") not in ("", "0")
#: Conservative floors asserted by the tests (the measured speedups are
#: recorded verbatim in the JSON perf record; on a quiet machine the fast
#: kernel lands at ~5-6x over reference, the compiled kernel at ~10-12x over
#: reference and ~1.8-2.1x over fast).
MIN_FAST_SPEEDUP = 2.5
MIN_COMPILED_SPEEDUP = 6.0
MIN_COMPILED_VS_FAST = 1.3
#: Long-horizon floors: compiled + steady-state extrapolation must beat the
#: reference kernel by 25x at the short horizon and the compiled kernel
#: without detection by 10x at the long horizon (the PR 3 acceptance bar).
MIN_STEADY_VS_REFERENCE = 25.0
MIN_STEADY_VS_COMPILED = 10.0
#: Horizons of the steady-state measurement: (reference-comparison, long).
#: Quick mode keeps only the short horizon — the 10k-cycle point already
#: clears both CI floors by an order of magnitude, and the 100k-cycle full
#: loop dominates the smoke run's wall-clock.
STEADY_HORIZONS = (10_000,) if QUICK else (10_000, 100_000)
#: Lockstep floors: one vectorised run_many over N same-layout lanes must
#: beat N scalar reference runs by 50x and N scalar compiled runs by 5x at
#: the largest lane count (the lockstep PR acceptance bar).  Smaller lane
#: counts are recorded but not gated: NumPy dispatch overhead is amortised
#: over the config axis, so the ratios grow with the lane count.
MIN_LOCKSTEP_VS_REFERENCE = 50.0
MIN_LOCKSTEP_VS_COMPILED = 5.0
LOCKSTEP_LANES = (16, 64, 256)
LOCKSTEP_HORIZON = 600 if QUICK else 2_000
#: Looping-table1 floor: a certified-extrapolated CPU horizon row must beat
#: the same row without detection by this factor (the PR 4 acceptance bar).
MIN_CPU_STEADY_VS_FULL = 20.0
#: Horizon of the looping-CPU measurement (big enough that the one-time
#: detection cost — warmup plus two loop periods of snapshot keys — is well
#: amortised; the speedup keeps growing linearly beyond it).
CPU_STEADY_HORIZON = 300_000
RECORD_PATH = Path(__file__).resolve().parent.parent / "BENCH_kernel.json"

KERNELS = ("reference", "fast", "compiled")


def _workloads():
    from repro.cpu.workloads import make_extraction_sort, make_matrix_multiply

    if QUICK:
        return {
            "extraction_sort": make_extraction_sort(length=4, seed=2005),
            "matrix_multiply": make_matrix_multiply(size=2, seed=2005),
        }
    return {
        "extraction_sort": make_extraction_sort(length=8, seed=2005),
        "matrix_multiply": make_matrix_multiply(size=3, seed=2005),
    }


def _best_of(fn, repeats):
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def _measure(workload, relaxed, instruments):
    """Best-of-N wall time per kernel plus the (asserted equal) cycle counts.

    Repeats are interleaved across kernels so slow machine-load drift hits
    every kernel equally instead of biasing whichever ran last.
    """
    from repro.core import RSConfiguration
    from repro.cpu import build_pipelined_cpu
    from repro.engine import BatchRunner, InstrumentSet

    cpu = build_pipelined_cpu(workload.program)
    config = RSConfiguration.uniform(1, exclude=("CU-IC",))
    repeats = 3 if QUICK else 7
    instrument_set = (
        InstrumentSet(trace=False, shell_stats=True, occupancy=True)
        if instruments
        else InstrumentSet.none()
    )
    runners = {
        kernel: BatchRunner(
            cpu.netlist, relaxed=relaxed, kernel=kernel, instruments=instrument_set
        )
        for kernel in KERNELS
    }
    cycles = {}
    timings = {kernel: float("inf") for kernel in KERNELS}
    for kernel, runner in runners.items():
        # Warm-up (includes the compiled kernel's one-time code generation).
        cycles[kernel] = runner.run(configuration=config, stop_process="CU").cycles
    for _ in range(repeats):
        for kernel, runner in runners.items():
            start = time.perf_counter()
            runner.run(configuration=config, stop_process="CU")
            timings[kernel] = min(timings[kernel], time.perf_counter() - start)
    assert len(set(cycles.values())) == 1, f"kernels disagree on cycles: {cycles}"
    return {
        "cycles": cycles["fast"],
        "reference_seconds": timings["reference"],
        "fast_seconds": timings["fast"],
        "compiled_seconds": timings["compiled"],
        "fast_speedup": timings["reference"] / timings["fast"],
        "compiled_speedup": timings["reference"] / timings["compiled"],
        "compiled_vs_fast": timings["fast"] / timings["compiled"],
    }


def _measure_batch_scaling():
    """run_many wall time: serial vs sharded worker pools on one batch."""
    from repro.core import RSConfiguration
    from repro.cpu import build_pipelined_cpu
    from repro.cpu.workloads import make_extraction_sort
    from repro.engine import BatchRunner

    workload = make_extraction_sort(length=4 if QUICK else 8, seed=2005)
    cpu = build_pipelined_cpu(workload.program)
    links = [name for name in cpu.netlist.link_names() if name != "CU-IC"]
    configs = [RSConfiguration.ideal()]
    configs += [RSConfiguration.only(link, 1) for link in links]
    configs += [RSConfiguration.only(link, 2) for link in links]
    configs.append(RSConfiguration.uniform(1, exclude=("CU-IC",)))
    runner = BatchRunner(cpu.netlist, kernel="compiled")

    entry = {"configurations": len(configs), "workers": {}}
    serial = _best_of(
        lambda: runner.run_many(configs, stop_process="CU"), 2 if QUICK else 3
    )
    entry["serial_seconds"] = serial
    for workers in (2, 4):
        if workers > (os.cpu_count() or 1):
            continue
        pooled = _best_of(
            lambda: runner.run_many(configs, workers=workers, stop_process="CU"),
            2 if QUICK else 3,
        )
        entry["workers"][str(workers)] = {
            "seconds": pooled,
            "speedup": serial / pooled,
        }
    return entry


def _measure_steady_state():
    """Long-horizon objective runs: steady-state extrapolation vs full loops.

    The workload is the paper's RS-insertion objective in its purest form — a
    synthetic ring (loop throughput ``m/(m+n)``) evaluated to a fixed cycle
    horizon.  The reference kernel (which never extrapolates) is only timed
    at the short horizon; the long horizon compares the compiled kernel with
    and without the detector.
    """
    from repro.core import ring_netlist
    from repro.engine import BatchRunner

    netlist, rs_counts = ring_netlist(6, rs_total=4)
    runner = BatchRunner(netlist, kernel="compiled")
    reference = BatchRunner(netlist, kernel="reference")
    repeats = 2 if QUICK else 3
    entry = {"netlist": "ring(6, rs=4)", "horizons": {}}
    for horizon in STEADY_HORIZONS:
        steady = _best_of(
            lambda: runner.run(rs_counts=rs_counts, horizon=horizon), repeats
        )
        full = _best_of(
            lambda: runner.run(
                rs_counts=rs_counts, horizon=horizon, steady_state=False
            ),
            repeats,
        )
        point = {
            "compiled_steady_seconds": steady,
            "compiled_seconds": full,
            "steady_vs_compiled": full / steady,
        }
        if horizon == STEADY_HORIZONS[0]:
            ref = _best_of(
                lambda: reference.run(
                    rs_counts=rs_counts, horizon=horizon, steady_state=False
                ),
                repeats,
            )
            point["reference_seconds"] = ref
            point["steady_vs_reference"] = ref / steady
        entry["horizons"][str(horizon)] = point
    # Sanity: extrapolated counts equal full simulation on the long horizon.
    horizon = STEADY_HORIZONS[-1]
    extrapolated = runner.run(rs_counts=rs_counts, horizon=horizon)
    full_result = runner.run(
        rs_counts=rs_counts, horizon=horizon, steady_state=False
    )
    assert extrapolated.extrapolated and extrapolated.period is not None
    assert extrapolated.cycles == full_result.cycles
    assert extrapolated.firings == full_result.firings
    entry["period"] = extrapolated.period
    entry["warmup_cycles"] = extrapolated.warmup_cycles
    return entry


def _measure_looped_cpu():
    """Looping-table1 horizon rows: certified CPU extrapolation vs full runs.

    The Table 1 workload in its looping form (``repeat=True``) under the
    "All 1 (no CU-IC)" row, both wrapper flavours, on the compiled kernel:
    the five CPU units' certified ``schedule_state()`` summaries let the
    steady-state detector extrapolate the horizon-bounded run from one
    detected loop period (DESIGN.md §5).  Counts are asserted identical to
    the detection-disabled run before anything is timed into the record.
    """
    from repro.core import RSConfiguration
    from repro.cpu import build_pipelined_cpu
    from repro.cpu.workloads import make_extraction_sort
    from repro.engine import BatchRunner

    workload = make_extraction_sort(
        length=4 if QUICK else 8, seed=2005, repeat=True
    )
    cpu = build_pipelined_cpu(workload.program)
    config = RSConfiguration.uniform(1, exclude=("CU-IC",))
    horizon = CPU_STEADY_HORIZON // 2 if QUICK else CPU_STEADY_HORIZON
    repeats = 2 if QUICK else 3
    entry = {
        "workload": workload.program.name,
        "horizon": horizon,
        "wrappers": {},
    }
    for relaxed, label in ((False, "WP1"), (True, "WP2")):
        runner = BatchRunner(cpu.netlist, relaxed=relaxed, kernel="compiled")
        controls = dict(
            stop_process="CU", horizon=horizon, steady_state_window=horizon
        )
        extrapolated = runner.run(configuration=config, **controls)
        full_result = runner.run(
            configuration=config, steady_state=False, **controls
        )
        assert extrapolated.extrapolated and extrapolated.period is not None
        assert extrapolated.cycles == full_result.cycles == horizon
        assert extrapolated.firings == full_result.firings
        steady = _best_of(
            lambda: runner.run(configuration=config, **controls), repeats
        )
        full = _best_of(
            lambda: runner.run(
                configuration=config, steady_state=False, **controls
            ),
            repeats,
        )
        entry["wrappers"][label] = {
            "steady_seconds": steady,
            "full_seconds": full,
            "steady_vs_full": full / steady,
            "period": extrapolated.period,
            "warmup_cycles": extrapolated.warmup_cycles,
        }
    return entry


def _measure_lockstep():
    """Lockstep SoA sweeps vs per-lane scalar runs on the objective path.

    The workload is the sweep the lockstep kernel was built for: N
    same-layout ring configurations (per-lane varied relay-station vectors)
    evaluated uninstrumented to a fixed horizon through
    ``BatchRunner.run_many``.  Steady-state detection is disabled for every
    kernel so the measurement isolates the cycle loops themselves — the
    lockstep kernel never detects periods (DESIGN.md §7), and against an
    extrapolating scalar kernel the ratio would mix two unrelated
    optimisations.  The reference kernel is only timed on a small lane
    sample (its per-lane cost is flat, so the N-lane total is ``per-lane x
    N``); compiled and lockstep are timed on the full lane sets.
    """
    from repro.core import ring_netlist
    from repro.engine import BatchRunner, InstrumentSet

    netlist, _default = ring_netlist(6)
    chans = list(netlist.channels)

    def lane_configs(n):
        return [
            {chan: (i + j) % 3 for j, chan in enumerate(chans)}
            for i in range(n)
        ]

    controls = dict(horizon=LOCKSTEP_HORIZON, steady_state=False)
    runners = {
        kernel: BatchRunner(
            netlist, kernel=kernel, instruments=InstrumentSet.none()
        )
        for kernel in ("reference", "fast", "compiled", "lockstep")
    }
    # Correctness gate before anything is timed into the record: every
    # lockstep lane bit-identical to the scalar fast kernel.
    check = lane_configs(max(LOCKSTEP_LANES))
    assert runners["lockstep"].run_many(check, **controls) == runners[
        "fast"
    ].run_many(check, **controls)

    repeats = 2 if QUICK else 3
    ref_sample = 4 if QUICK else 8
    ref_per_lane = (
        _best_of(
            lambda: runners["reference"].run_many(
                lane_configs(ref_sample), **controls
            ),
            repeats,
        )
        / ref_sample
    )
    entry = {
        "netlist": "ring(6)",
        "horizon": LOCKSTEP_HORIZON,
        "reference_seconds_per_lane": ref_per_lane,
        "lanes": {},
    }
    for n in LOCKSTEP_LANES:
        configs = lane_configs(n)
        lockstep = _best_of(
            lambda: runners["lockstep"].run_many(configs, **controls), repeats
        )
        compiled = _best_of(
            lambda: runners["compiled"].run_many(configs, **controls), repeats
        )
        entry["lanes"][str(n)] = {
            "lockstep_seconds": lockstep,
            "compiled_seconds": compiled,
            "reference_seconds": ref_per_lane * n,
            "lockstep_vs_compiled": compiled / lockstep,
            "lockstep_vs_reference": ref_per_lane * n / lockstep,
        }
    return entry


def _measure_multi_netlist_batch():
    """Mixed-workload batch smoke: sort + matmul layouts on one scheduler."""
    from repro.core import RSConfiguration
    from repro.cpu import build_pipelined_cpu
    from repro.cpu.workloads import make_extraction_sort, make_matrix_multiply
    from repro.engine import BatchRunner, MultiNetlistRunner

    sort_cpu = build_pipelined_cpu(
        make_extraction_sort(length=4 if QUICK else 8, seed=2005).program
    )
    matmul_cpu = build_pipelined_cpu(
        make_matrix_multiply(size=2 if QUICK else 3, seed=2005).program
    )
    multi = MultiNetlistRunner.from_netlists(
        {"sort": sort_cpu.netlist, "matmul": matmul_cpu.netlist},
        kernel="compiled",
    )
    configs = [RSConfiguration.ideal()]
    links = [name for name in sort_cpu.netlist.link_names() if name != "CU-IC"]
    configs += [RSConfiguration.only(link, 1) for link in links]
    configs.append(RSConfiguration.uniform(1, exclude=("CU-IC",)))
    items = [(name, c) for c in configs for name in ("sort", "matmul")]

    entry = {"items": len(items), "workers": {}}
    serial = _best_of(
        lambda: multi.run_many(items, stop_process="CU"), 2 if QUICK else 3
    )
    entry["serial_seconds"] = serial
    for workers in (2, 4):
        if workers > (os.cpu_count() or 1):
            continue
        pooled = _best_of(
            lambda: multi.run_many(items, workers=workers, stop_process="CU"),
            2 if QUICK else 3,
        )
        entry["workers"][str(workers)] = {
            "seconds": pooled,
            "speedup": serial / pooled,
        }
    # Correctness smoke: the mixed batch must match per-layout evaluation.
    mixed = multi.run_many(items, stop_process="CU")
    for name, cpu in (("sort", sort_cpu), ("matmul", matmul_cpu)):
        single = BatchRunner(cpu.netlist, kernel="compiled").run_many(
            configs, stop_process="CU"
        )
        mine = [r for (n, _), r in zip(items, mixed) if n == name]
        assert [r.cycles for r in single] == [r.cycles for r in mine], name
    return entry


def _append_history(record) -> None:
    """Append *record* to the BENCH_kernel.json history (list of runs)."""
    history = []
    if RECORD_PATH.exists():
        try:
            existing = json.loads(RECORD_PATH.read_text())
        except ValueError:
            existing = []
        if isinstance(existing, list):
            history = existing
        elif isinstance(existing, dict):
            history = [existing]  # migrate the pre-history single record
    history.append(record)
    RECORD_PATH.write_text(json.dumps(history, indent=2, sort_keys=True) + "\n")


@pytest.fixture(scope="module")
def kernel_record():
    """Collect every measurement, append one history entry at teardown."""
    record = {
        "benchmark": "kernel",
        "timestamp": datetime.now(timezone.utc).isoformat(timespec="seconds"),
        "quick": QUICK,
        "python": platform.python_version(),
        "config": "All 1 (no CU-IC)",
        "results": {},
    }
    yield record
    entries = list(record["results"].values())
    if entries:  # may be empty when tests were filtered with -k or errored
        record["min_fast_speedup"] = min(e["fast_speedup"] for e in entries)
        record["min_compiled_speedup"] = min(
            e["compiled_speedup"] for e in entries
        )
        record["max_compiled_speedup"] = max(
            e["compiled_speedup"] for e in entries
        )
        record["min_compiled_vs_fast"] = min(
            e["compiled_vs_fast"] for e in entries
        )
        record["max_compiled_vs_fast"] = max(
            e["compiled_vs_fast"] for e in entries
        )
    _append_history(record)


@pytest.mark.parametrize("workload_name", ["extraction_sort", "matrix_multiply"])
@pytest.mark.parametrize("wrapper", ["WP1", "WP2"])
@pytest.mark.parametrize("mode", ["instrumented", "objective"])
def test_kernel_speedups(kernel_record, workload_name, wrapper, mode):
    """Fast and compiled kernels beat reference on every workload and mode."""
    workload = _workloads()[workload_name]
    entry = _measure(
        workload,
        relaxed=(wrapper == "WP2"),
        instruments=(mode == "instrumented"),
    )
    kernel_record["results"][f"{workload_name}/{wrapper}/{mode}"] = entry
    label = f"{workload_name}/{wrapper}/{mode}"
    assert entry["fast_speedup"] >= MIN_FAST_SPEEDUP, (
        f"fast kernel only {entry['fast_speedup']:.2f}x faster than "
        f"reference on {label}"
    )
    assert entry["compiled_speedup"] >= MIN_COMPILED_SPEEDUP, (
        f"compiled kernel only {entry['compiled_speedup']:.2f}x faster than "
        f"reference on {label}"
    )
    assert entry["compiled_vs_fast"] >= MIN_COMPILED_VS_FAST, (
        f"compiled kernel only {entry['compiled_vs_fast']:.2f}x faster than "
        f"fast on {label}"
    )


def test_batch_shard_scaling(kernel_record):
    """Sharded run_many completes and its scaling numbers are recorded."""
    entry = _measure_batch_scaling()
    kernel_record["batch"] = entry
    assert entry["configurations"] > 0 and entry["serial_seconds"] > 0
    # The pool pays worker start-up + per-worker elaboration; on large
    # batches it wins, on the smoke batch we only require it to function.
    for stats in entry["workers"].values():
        assert stats["seconds"] > 0


def test_steady_state_speedup(kernel_record):
    """Steady-state extrapolation clears the long-horizon floors."""
    entry = _measure_steady_state()
    kernel_record["steady_state"] = entry
    short = entry["horizons"][str(STEADY_HORIZONS[0])]
    long = entry["horizons"][str(STEADY_HORIZONS[-1])]
    assert short["steady_vs_reference"] >= MIN_STEADY_VS_REFERENCE, (
        f"compiled+steady only {short['steady_vs_reference']:.1f}x over "
        f"reference at horizon {STEADY_HORIZONS[0]}"
    )
    assert long["steady_vs_compiled"] >= MIN_STEADY_VS_COMPILED, (
        f"steady-state only {long['steady_vs_compiled']:.1f}x over the "
        f"compiled kernel at horizon {STEADY_HORIZONS[-1]}"
    )


def test_looped_cpu_steady_speedup(kernel_record):
    """Certified-extrapolated CPU horizon rows clear the looping-table1 floor."""
    entry = _measure_looped_cpu()
    kernel_record["looped_cpu"] = entry
    for label, stats in entry["wrappers"].items():
        assert stats["steady_vs_full"] >= MIN_CPU_STEADY_VS_FULL, (
            f"looped-CPU extrapolation only {stats['steady_vs_full']:.1f}x over "
            f"the full horizon run on {label}"
        )


def test_lockstep_speedup(kernel_record):
    """Lockstep sweeps clear the 50x/5x floors at the largest lane count."""
    pytest.importorskip("numpy")
    entry = _measure_lockstep()
    kernel_record["lockstep"] = entry
    top = str(max(LOCKSTEP_LANES))
    stats = entry["lanes"][top]
    assert stats["lockstep_vs_reference"] >= MIN_LOCKSTEP_VS_REFERENCE, (
        f"lockstep only {stats['lockstep_vs_reference']:.1f}x over "
        f"per-lane reference runs at {top} lanes"
    )
    assert stats["lockstep_vs_compiled"] >= MIN_LOCKSTEP_VS_COMPILED, (
        f"lockstep only {stats['lockstep_vs_compiled']:.1f}x over "
        f"per-lane compiled runs at {top} lanes"
    )


def test_multi_netlist_batch_smoke(kernel_record):
    """The mixed-workload scheduler runs (and matches per-layout results)."""
    entry = _measure_multi_netlist_batch()
    kernel_record["multi_netlist"] = entry
    assert entry["items"] > 0 and entry["serial_seconds"] > 0
    for stats in entry["workers"].values():
        assert stats["seconds"] > 0
