"""Table 1, Extraction Sort section (rows 1-13).

Regenerates: golden cycle count, WP2 cycle count, WP1/WP2 throughput and the
WP2-vs-WP1 gain for the ideal configuration, the ten single-link
configurations, "All 1 (no CU-IC)" and "Optimal 1 (no CU-IC)", on the
pipelined processor — the same row set as the paper's table.

The absolute cycle counts differ from the paper (the RTL is re-implemented),
but the shape assertions below encode what the paper's data shows: WP1 is
pinned at the loop bound, WP2 is never worse, the CU-IC fetch loop shows the
smallest WP2 gain, and the rarely-exercised data channels recover most of the
lost throughput.
"""

from __future__ import annotations

import pytest

from .conftest import SEED, SORT_LENGTH


def _shape_checks(result):
    ideal = result.rows[0]
    assert ideal.wp1_throughput == pytest.approx(1.0, abs=0.02)
    assert ideal.wp2_throughput == pytest.approx(1.0, abs=0.02)
    gains = {}
    for row in result.rows:
        assert row.wp2_throughput >= row.wp1_throughput - 1e-9
        assert row.wp1_throughput <= row.static_bound + 0.03
        if row.label.startswith("Only "):
            gains[row.label] = row.improvement_percent
    # The fetch loop is exercised almost every cycle in the pipelined CPU, so
    # it benefits least from the oracle; the RF-DC link benefits most.
    assert gains["Only CU-IC"] == min(gains.values())
    assert gains["Only RF-DC"] >= 35.0
    assert result.row("Only CU-IC").wp1_throughput == pytest.approx(0.5, abs=0.02)


def test_table1_extraction_sort(benchmark, table1_sort_result, capsys):
    """Regenerate and print the Extraction Sort rows of Table 1."""
    from repro.experiments import run_table1_sort

    def run_single_row():
        # The benchmarked unit of work is one representative row (golden +
        # WP1 + WP2 for "Only RF-DC"); the full table is produced once by the
        # session fixture and printed below.
        from repro.core import RSConfiguration
        from repro.cpu import build_pipelined_cpu
        from repro.cpu.workloads import make_extraction_sort
        from repro.experiments.table1 import evaluate_configuration

        workload = make_extraction_sort(length=SORT_LENGTH, seed=SEED)
        cpu = build_pipelined_cpu(workload.program)
        golden = cpu.run_golden(record_trace=False)
        return evaluate_configuration(cpu, RSConfiguration.only("RF-DC"), golden)

    row = benchmark.pedantic(run_single_row, rounds=1, iterations=1)
    assert row.wp2_throughput > row.wp1_throughput

    _shape_checks(table1_sort_result)
    with capsys.disabled():
        print()
        print(table1_sort_result.format())
