"""Distributed evaluation benchmark: remote agents vs the single local pool.

Runs a 64-row relay-station sweep through the coordinator with two
worker-agent **processes** (real parallelism — in-process agent threads
would share the GIL with the coordinator and prove nothing), and through
a single-worker local :class:`SupervisedPool` with the same sharding, and
asserts the rows are equivalent.  ``attempts`` is excluded from the
comparison — retries are part of the distributed contract — but every
simulated quantity (cycles, firings, halted, wrapper kind, error) must
match exactly.

The recorded ``scale_out_ratio`` (pool wall-clock over distributed
wall-clock) is a **regression record, not a speedup claim**: at CI-sized
workloads the fixed per-process cost — interpreter start, netlist
transfer, runner compile — dominates both multi-process paths, so the
ratio hovers near 1 and what the history actually tracks is protocol and
supervision overhead.  No floor is asserted on it; the hard assertions
are bit-equivalence, an even shard split across agents, and all-zero
recovery counters on a healthy run.

Every run appends a timestamped record to ``BENCH_distributed.json`` at
the repository root (a JSON list, oldest first), mirroring the
``BENCH_service.json`` convention.  Quick mode (``REPRO_BENCH_QUICK=1``)
shrinks the workload but keeps the 64-row shape.
"""

from __future__ import annotations

import json
import multiprocessing
import os
import platform
import time
from datetime import datetime, timezone
from pathlib import Path

import pytest

QUICK = os.environ.get("REPRO_BENCH_QUICK", "") not in ("", "0")
RECORD_PATH = Path(__file__).resolve().parent.parent / "BENCH_distributed.json"

N_ROWS = 64
N_AGENTS = 2


def _netlist():
    from repro.cpu.machine import build_pipelined_cpu
    from repro.cpu.workloads import make_extraction_sort

    length = 4 if QUICK else 8
    workload = make_extraction_sort(length=length, seed=2005)
    return build_pipelined_cpu(workload.program).netlist


def _configs():
    from repro.core.config import RSConfiguration

    return [
        RSConfiguration.uniform(
            1 + (index % 4), exclude=("CU-IC",), label=f"row-{index}"
        )
        for index in range(N_ROWS)
    ]


def _comparable(results):
    """Row tuples without ``attempts`` (retries are legal in transit)."""
    return [
        (r.label, r.cycles, r.firings, r.halted, r.wrapper_kind, r.error)
        for r in results
    ]


def _append_history(record) -> None:
    history = []
    if RECORD_PATH.exists():
        try:
            existing = json.loads(RECORD_PATH.read_text())
        except ValueError:
            existing = []
        if isinstance(existing, list):
            history = existing
        elif isinstance(existing, dict):
            history = [existing]
    history.append(record)
    RECORD_PATH.write_text(json.dumps(history, indent=2, sort_keys=True) + "\n")


@pytest.fixture(scope="module")
def distributed_record():
    record = {
        "benchmark": "distributed",
        "timestamp": datetime.now(timezone.utc).isoformat(timespec="seconds"),
        "quick": QUICK,
        "python": platform.python_version(),
    }
    yield record
    _append_history(record)


def test_two_agent_scale_out_matches_local_pool(distributed_record):
    """64 rows through 2 agent processes == the same rows via 1 pool worker."""
    from repro.distributed import Coordinator, agent_main
    from repro.engine.batch import BatchRunner

    netlist = _netlist()
    configs = _configs()
    runner = BatchRunner(netlist)

    start = time.perf_counter()
    pool_rows = runner.run_many(
        configs,
        workers=1,
        shards=N_AGENTS * 4,
        start_method="spawn",
        stop_process="CU",
    )
    pool_seconds = time.perf_counter() - start

    coordinator = Coordinator("127.0.0.1", 0)
    ctx = multiprocessing.get_context("spawn")
    agents = [
        ctx.Process(
            target=agent_main,
            args=("127.0.0.1", coordinator.port, f"bench-{index}", 0.1),
            daemon=True,
        )
        for index in range(N_AGENTS)
    ]
    try:
        for agent in agents:
            agent.start()
        assert coordinator.wait_for_workers(N_AGENTS, timeout=60.0)
        start = time.perf_counter()
        distributed_rows = runner.run_many(
            configs,
            shards=N_AGENTS * 4,
            coordinator=coordinator,
            stop_process="CU",
        )
        distributed_seconds = time.perf_counter() - start
        supervision = coordinator.supervision.to_dict()
        workers = coordinator.worker_stats()
    finally:
        coordinator.close()
        for agent in agents:
            agent.join(timeout=10)
            if agent.is_alive():
                agent.terminate()

    assert _comparable(distributed_rows) == _comparable(pool_rows)
    assert supervision["quarantined"] == 0
    assert supervision["serial_fallback_items"] == 0
    assert sum(record["completed"] for record in workers.values()) == N_AGENTS * 4

    distributed_record["two_agent_scale_out"] = {
        "rows": N_ROWS,
        "agents": N_AGENTS,
        "pool_seconds": pool_seconds,
        "distributed_seconds": distributed_seconds,
        "scale_out_ratio": pool_seconds / distributed_seconds,
        "per_worker_completed": {
            worker_id: record["completed"]
            for worker_id, record in workers.items()
        },
        "supervision": supervision,
    }
