"""Engineering benchmark: raw speed of the simulators.

Not a paper experiment — it tracks the cost of regenerating Table 1 by
measuring simulated cycles per second for the golden and latency-insensitive
simulators on the Figure 1 processor.
"""

from __future__ import annotations

import pytest


def _cpu():
    from repro.cpu import build_pipelined_cpu
    from repro.cpu.workloads import make_extraction_sort

    return build_pipelined_cpu(make_extraction_sort(length=8, seed=2005).program)


def test_golden_simulator_speed(benchmark):
    """Golden simulator: cycles for one 8-element sort run."""
    cpu = _cpu()
    result = benchmark(lambda: cpu.run_golden(record_trace=False))
    assert result.halted


def test_lid_simulator_speed_wp1(benchmark):
    """WP1 simulator under 'All 1 (no CU-IC)'."""
    from repro.core import RSConfiguration

    cpu = _cpu()
    config = RSConfiguration.uniform(1, exclude=("CU-IC",))
    result = benchmark(
        lambda: cpu.run_wire_pipelined(
            configuration=config, relaxed=False, record_trace=False
        )
    )
    assert result.halted


def test_lid_simulator_speed_wp2(benchmark):
    """WP2 simulator under 'All 1 (no CU-IC)'."""
    from repro.core import RSConfiguration

    cpu = _cpu()
    config = RSConfiguration.uniform(1, exclude=("CU-IC",))
    result = benchmark(
        lambda: cpu.run_wire_pipelined(
            configuration=config, relaxed=True, record_trace=False
        )
    )
    assert result.halted
