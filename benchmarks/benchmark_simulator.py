"""Engineering benchmark: raw speed of the simulators.

Not a paper experiment — it tracks the cost of regenerating Table 1 by
measuring simulated cycles per second for the golden and latency-insensitive
simulators on the Figure 1 processor.  The latency-insensitive runs are
parametrised over the simulation kernels (``reference`` is the object-based
executable specification, ``fast`` the array-based hot path; see
``repro.engine`` and DESIGN.md), so ``pytest benchmarks/benchmark_simulator.py
--benchmark-only`` doubles as the kernel speedup report.
"""

from __future__ import annotations

import pytest


KERNELS = ("reference", "fast")


def _cpu():
    from repro.cpu import build_pipelined_cpu
    from repro.cpu.workloads import make_extraction_sort

    return build_pipelined_cpu(make_extraction_sort(length=8, seed=2005).program)


def test_golden_simulator_speed(benchmark):
    """Golden simulator: cycles for one 8-element sort run."""
    cpu = _cpu()
    result = benchmark(lambda: cpu.run_golden(record_trace=False))
    assert result.halted


@pytest.mark.parametrize("kernel", KERNELS)
def test_lid_simulator_speed_wp1(benchmark, kernel):
    """WP1 simulator under 'All 1 (no CU-IC)', per kernel."""
    from repro.core import RSConfiguration

    cpu = _cpu()
    config = RSConfiguration.uniform(1, exclude=("CU-IC",))
    result = benchmark(
        lambda: cpu.run_wire_pipelined(
            configuration=config, relaxed=False, record_trace=False, kernel=kernel
        )
    )
    assert result.halted


@pytest.mark.parametrize("kernel", KERNELS)
def test_lid_simulator_speed_wp2(benchmark, kernel):
    """WP2 simulator under 'All 1 (no CU-IC)', per kernel."""
    from repro.core import RSConfiguration

    cpu = _cpu()
    config = RSConfiguration.uniform(1, exclude=("CU-IC",))
    result = benchmark(
        lambda: cpu.run_wire_pipelined(
            configuration=config, relaxed=True, record_trace=False, kernel=kernel
        )
    )
    assert result.halted


@pytest.mark.parametrize("kernel", KERNELS)
def test_lid_objective_mode_speed(benchmark, kernel):
    """Uninstrumented evaluation (the optimiser objective hot path)."""
    from repro.core import RSConfiguration
    from repro.engine import BatchRunner

    cpu = _cpu()
    config = RSConfiguration.uniform(1, exclude=("CU-IC",))
    runner = BatchRunner(cpu.netlist, relaxed=False, kernel=kernel)
    result = benchmark(lambda: runner.run(configuration=config, stop_process="CU"))
    assert result.halted
