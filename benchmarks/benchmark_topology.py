"""Topology-zoo benchmark: generated netlists through the whole stack.

Three measurements anchor the topology-general engine (DESIGN.md §10):

* **chain floor** — the original chain-shaped path must not pay for the
  generality: the fast kernel's speedup over the reference kernel on a
  generated chain is recorded and gated by ``check_perf_floor.py
  --topology-floor`` in CI, so an index-layout regression that slows the
  chain shows up at PR time;
* **zoo sweep** — :func:`repro.experiments.topology_sweep` over a ring and
  a torus, asserting the simulated WP1 throughput of the ring sits on its
  static m/(m+n) bound (the cheap end-to-end correctness smoke) and
  recording the throughput series;
* **graph-workload sweep** — a PageRank PE ring swept over relay-station
  depths under the fast and lockstep kernels, asserting cycle-identical
  rows (the lockstep path takes the vector route: PageRank declares a pure
  firing-count done threshold) and recording both wall-clocks.

Every run appends a timestamped record to ``BENCH_topology.json`` at the
repository root (a JSON list, oldest first), following the
``BENCH_kernel.json`` convention.  Quick mode (``REPRO_BENCH_QUICK=1``)
shrinks every workload.
"""

from __future__ import annotations

import json
import os
import platform
import time
from datetime import datetime, timezone
from pathlib import Path

import pytest

QUICK = os.environ.get("REPRO_BENCH_QUICK", "") not in ("", "0")
RECORD_PATH = Path(__file__).resolve().parent.parent / "BENCH_topology.json"

CHAIN_STAGES = 6 if QUICK else 10
CHAIN_LIMIT = 400 if QUICK else 2_000
SWEEP_HORIZON = 600 if QUICK else 3_000
PAGERANK_ROUNDS = 6 if QUICK else 20
PAGERANK_DEPTHS = 4 if QUICK else 8


def _append_history(record) -> None:
    history = []
    if RECORD_PATH.exists():
        try:
            existing = json.loads(RECORD_PATH.read_text())
        except ValueError:
            existing = []
        if isinstance(existing, list):
            history = existing
        elif isinstance(existing, dict):
            history = [existing]
    history.append(record)
    RECORD_PATH.write_text(json.dumps(history, indent=2, sort_keys=True) + "\n")


@pytest.fixture(scope="module")
def topology_record():
    record = {
        "benchmark": "topology",
        "timestamp": datetime.now(timezone.utc).isoformat(timespec="seconds"),
        "quick": QUICK,
        "python": platform.python_version(),
    }
    yield record
    _append_history(record)


def _timed(fn):
    start = time.perf_counter()
    result = fn()
    return result, time.perf_counter() - start


def test_chain_path_keeps_its_fast_kernel_floor(topology_record):
    """Generality must be free on the chain: fast >> reference still holds."""
    from repro.core import run_lid
    from repro.topology import chain_topology

    topology = chain_topology(stages=CHAIN_STAGES, source_limit=CHAIN_LIMIT)
    kwargs = dict(
        rs_counts=topology.rs_counts,
        record_trace=False,
        stop_process=topology.stop_process,
        max_cycles=10**9,
    )

    reference, reference_seconds = _timed(
        lambda: run_lid(topology.netlist, kernel="reference", **kwargs)
    )
    fast, fast_seconds = _timed(
        lambda: run_lid(topology.netlist, kernel="fast", **kwargs)
    )
    assert fast.cycles == reference.cycles
    assert fast.firings == reference.firings

    topology_record["chain"] = {
        "stages": CHAIN_STAGES,
        "source_limit": CHAIN_LIMIT,
        "cycles": fast.cycles,
        "reference_seconds": reference_seconds,
        "fast_seconds": fast_seconds,
        "fast_vs_reference": reference_seconds / fast_seconds,
    }


def test_zoo_sweep_matches_static_bounds(topology_record):
    """Ring/torus sweeps end to end; the ring sits on its m/(m+n) bound."""
    from repro.experiments import topology_sweep
    from repro.topology import make_topology

    sweeps = {}
    for kind, params in (
        ("ring", {"stages": 5, "rs_total": 0}),
        ("torus", {"rows": 2, "cols": 3}),
    ):
        topology = make_topology(kind, **params)
        result, seconds = _timed(
            lambda topology=topology: topology_sweep(
                topology=topology, depths=(0, 1, 2), horizon=SWEEP_HORIZON,
            )
        )
        sweeps[kind] = {
            "seconds": seconds,
            "points": [
                {
                    "depth": point.parameter,
                    "wp1": point.wp1_throughput,
                    "wp2": point.wp2_throughput,
                    "static_bound": point.detail["static_bound"],
                }
                for point in result.points
            ],
        }
    for point in sweeps["ring"]["points"]:
        assert point["wp1"] == pytest.approx(point["static_bound"], abs=5e-3)
    topology_record["zoo_sweep"] = {"horizon": SWEEP_HORIZON, **sweeps}


def test_pagerank_ring_lockstep_matches_fast(topology_record):
    """RS sweep of a PageRank PE ring: lockstep rows == fast rows."""
    pytest.importorskip("numpy")
    from repro.engine.batch import BatchRunner
    from repro.workloads import make_pagerank_workload

    edges = [(u, (u * 3 + 1) % 12) for u in range(12)] + [
        (u, (u + 1) % 12) for u in range(12)
    ]
    workload = make_pagerank_workload(edges, n_pe=3, n_rounds=PAGERANK_ROUNDS)
    rows = [
        {name: depth for name in workload.rs_counts}
        for depth in range(PAGERANK_DEPTHS)
    ]
    kwargs = dict(
        stop_process=workload.stop_process,
        max_cycles=10**9,
    )

    seconds = {}
    outcomes = {}
    for kernel in ("fast", "lockstep"):
        runner = BatchRunner(workload.netlist, kernel=kernel)
        results, seconds[kernel] = _timed(
            lambda runner=runner: runner.run_many(rows, **kwargs)
        )
        outcomes[kernel] = [(r.cycles, r.firings, r.halted) for r in results]
    assert outcomes["fast"] == outcomes["lockstep"]

    cycles = [row[0] for row in outcomes["fast"]]
    assert cycles == sorted(cycles)  # deeper rings are monotonically slower
    topology_record["pagerank_ring"] = {
        "n_pe": 3,
        "rounds": PAGERANK_ROUNDS,
        "depths": PAGERANK_DEPTHS,
        "fast_seconds": seconds["fast"],
        "lockstep_seconds": seconds["lockstep"],
        "lockstep_vs_fast": seconds["fast"] / seconds["lockstep"],
        "cycles": cycles,
    }
