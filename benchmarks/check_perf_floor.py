"""Perf-floor gate: fail if the compiled kernel's speedup regressed.

Reads the newest record of the ``BENCH_kernel.json`` history (produced by
``benchmark_kernel.py``) and exits non-zero when

* the compiled kernel's minimum speedup over the reference kernel across
  all Table 1 rows drops below ``--floor``;
* the long-horizon steady-state floors regress: compiled + steady-state
  extrapolation must beat the reference kernel by ``--steady-floor`` at the
  short measurement horizon and the compiled kernel without detection by
  ``--steady-compiled-floor`` at the long horizon;
* the looping-table1 CPU floor regresses: a certified-extrapolated CPU
  horizon row must beat the same row without detection by
  ``--cpu-steady-floor`` on every wrapper flavour;
* with ``--lockstep-floor`` / ``--lockstep-compiled-floor``: the lockstep
  structure-of-arrays sweep at the record's largest lane count must beat
  per-lane reference runs by the former and per-lane compiled runs by the
  latter (omitted: not checked — e.g. on a NumPy-free record);
* the mixed-workload multi-netlist batch smoke is missing from the record;
* with ``--cache-floor`` (reads the newest ``BENCH_service.json`` record,
  produced by ``benchmark_service.py``): a warm-cache re-run of the 64-row
  mixed sweep through the evaluation service must be at least that many
  times faster than the cold run, and the cold run must have streamed its
  first row before half its wall-clock;
* with ``--topology-floor`` (reads the newest ``BENCH_topology.json``
  record, produced by ``benchmark_topology.py``): the fast kernel's speedup
  over the reference kernel on the generated *chain* topology — the guard
  that the topology-general index layouts did not tax the original
  chain-shaped path.

CI runs this after the quick benchmark so hot-path regressions are caught
at PR time::

    python benchmarks/check_perf_floor.py --floor 6 --steady-floor 25 \
        --cpu-steady-floor 20 --lockstep-floor 50 \
        --lockstep-compiled-floor 5 --cache-floor 50
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

DEFAULT_RECORD = Path(__file__).resolve().parent.parent / "BENCH_kernel.json"
DEFAULT_SERVICE_RECORD = (
    Path(__file__).resolve().parent.parent / "BENCH_service.json"
)
DEFAULT_TOPOLOGY_RECORD = (
    Path(__file__).resolve().parent.parent / "BENCH_topology.json"
)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--floor", type=float, default=6.0,
        help="minimum compiled/reference speedup (default: 6)",
    )
    parser.add_argument(
        "--steady-floor", type=float, default=25.0,
        help=(
            "minimum compiled+steady-state speedup over the reference kernel "
            "on the long-horizon objective (default: 25)"
        ),
    )
    parser.add_argument(
        "--steady-compiled-floor", type=float, default=10.0,
        help=(
            "minimum steady-state speedup over the compiled kernel without "
            "detection at the long horizon (default: 10)"
        ),
    )
    parser.add_argument(
        "--cpu-steady-floor", type=float, default=20.0,
        help=(
            "minimum certified-extrapolation speedup over the full run on "
            "the looping-table1 CPU horizon rows (default: 20)"
        ),
    )
    parser.add_argument(
        "--lockstep-floor", type=float, default=None, metavar="X",
        help=(
            "minimum lockstep speedup over per-lane reference runs at the "
            "largest benchmarked lane count (omitted: not checked)"
        ),
    )
    parser.add_argument(
        "--lockstep-compiled-floor", type=float, default=None, metavar="X",
        help=(
            "minimum lockstep speedup over per-lane compiled runs at the "
            "largest benchmarked lane count (omitted: not checked)"
        ),
    )
    parser.add_argument(
        "--record", type=Path, default=DEFAULT_RECORD,
        help="path to the BENCH_kernel.json history",
    )
    parser.add_argument(
        "--cache-floor", type=float, default=None, metavar="X",
        help=(
            "minimum warm-cache/cold speedup of the 64-row service sweep "
            "(reads the BENCH_service.json history; omitted: not checked)"
        ),
    )
    parser.add_argument(
        "--service-record", type=Path, default=DEFAULT_SERVICE_RECORD,
        help="path to the BENCH_service.json history",
    )
    parser.add_argument(
        "--topology-floor", type=float, default=None, metavar="X",
        help=(
            "minimum fast/reference speedup on the generated chain topology "
            "(reads the BENCH_topology.json history; omitted: not checked)"
        ),
    )
    parser.add_argument(
        "--topology-record", type=Path, default=DEFAULT_TOPOLOGY_RECORD,
        help="path to the BENCH_topology.json history",
    )
    args = parser.parse_args(argv)

    if not args.record.exists():
        print(f"perf floor: no record at {args.record}", file=sys.stderr)
        return 2
    history = json.loads(args.record.read_text())
    if isinstance(history, dict):
        history = [history]
    if not history:
        print("perf floor: empty benchmark history", file=sys.stderr)
        return 2
    latest = history[-1]
    results = latest.get("results", {})
    if not results:
        print("perf floor: newest record has no results", file=sys.stderr)
        return 2

    failed = False

    worst_label, worst = min(
        results.items(), key=lambda item: item[1]["compiled_speedup"]
    )
    speedup = worst["compiled_speedup"]
    print(
        f"perf floor: compiled/reference min {speedup:.2f}x "
        f"({worst_label}), floor {args.floor:.2f}x "
        f"[record {latest.get('timestamp', '?')}, quick={latest.get('quick')}]"
    )
    if speedup < args.floor:
        print(
            f"perf floor FAILED: {speedup:.2f}x < {args.floor:.2f}x on "
            f"{worst_label}",
            file=sys.stderr,
        )
        failed = True

    steady = latest.get("steady_state")
    if not steady:
        print(
            "perf floor FAILED: record carries no steady_state measurement",
            file=sys.stderr,
        )
        failed = True
    else:
        horizons = steady.get("horizons", {})
        vs_reference = min(
            (
                point["steady_vs_reference"]
                for point in horizons.values()
                if "steady_vs_reference" in point
            ),
            default=0.0,
        )
        # The compiled-kernel floor applies at the long horizon only (the
        # benchmark's contract): shorter horizons skip fewer periods and
        # legitimately show smaller ratios.
        long_horizon = max(horizons, key=int, default=None)
        vs_compiled = (
            horizons[long_horizon]["steady_vs_compiled"]
            if long_horizon is not None
            else 0.0
        )
        print(
            f"perf floor: steady-state {vs_reference:.1f}x over reference "
            f"(floor {args.steady_floor:.1f}x), {vs_compiled:.1f}x over "
            f"compiled (floor {args.steady_compiled_floor:.1f}x), "
            f"period={steady.get('period')}"
        )
        if vs_reference < args.steady_floor:
            print(
                f"perf floor FAILED: steady-state {vs_reference:.1f}x < "
                f"{args.steady_floor:.1f}x over reference",
                file=sys.stderr,
            )
            failed = True
        if vs_compiled < args.steady_compiled_floor:
            print(
                f"perf floor FAILED: steady-state {vs_compiled:.1f}x < "
                f"{args.steady_compiled_floor:.1f}x over compiled",
                file=sys.stderr,
            )
            failed = True

    looped = latest.get("looped_cpu")
    if not looped:
        print(
            "perf floor FAILED: record carries no looping-CPU measurement",
            file=sys.stderr,
        )
        failed = True
    else:
        wrappers = looped.get("wrappers", {})
        worst_wrapper, worst_cpu = min(
            wrappers.items(), key=lambda item: item[1]["steady_vs_full"]
        )
        cpu_speedup = worst_cpu["steady_vs_full"]
        print(
            f"perf floor: looped-CPU extrapolation min {cpu_speedup:.1f}x "
            f"over full ({worst_wrapper}, horizon {looped.get('horizon')}), "
            f"floor {args.cpu_steady_floor:.1f}x"
        )
        if cpu_speedup < args.cpu_steady_floor:
            print(
                f"perf floor FAILED: looped-CPU extrapolation {cpu_speedup:.1f}x "
                f"< {args.cpu_steady_floor:.1f}x on {worst_wrapper}",
                file=sys.stderr,
            )
            failed = True

    if args.lockstep_floor is not None or args.lockstep_compiled_floor is not None:
        failed |= _check_lockstep_floor(
            latest, args.lockstep_floor, args.lockstep_compiled_floor
        )

    if "multi_netlist" not in latest:
        print(
            "perf floor FAILED: record carries no multi-netlist batch smoke",
            file=sys.stderr,
        )
        failed = True
    else:
        multi = latest["multi_netlist"]
        print(
            f"perf floor: multi-netlist smoke ok "
            f"({multi.get('items')} items, "
            f"serial {multi.get('serial_seconds', 0):.3f}s)"
        )

    if args.cache_floor is not None:
        failed |= _check_cache_floor(
            args.service_record, args.cache_floor
        )

    if args.topology_floor is not None:
        failed |= _check_topology_floor(
            args.topology_record, args.topology_floor
        )

    return 1 if failed else 0


def _check_lockstep_floor(latest, floor, compiled_floor) -> bool:
    """Enforce the lockstep sweep floors; returns True on failure.

    The floors apply at the largest lane count of the record's lockstep
    measurement — NumPy dispatch overhead is amortised over the config
    axis, so that is the ratio the lockstep kernel is accountable for.
    """
    lockstep = latest.get("lockstep")
    if not lockstep or not lockstep.get("lanes"):
        print(
            "perf floor FAILED: record carries no lockstep measurement "
            "(run benchmark_kernel.py with NumPy available)",
            file=sys.stderr,
        )
        return True
    top = max(lockstep["lanes"], key=int)
    stats = lockstep["lanes"][top]
    vs_reference = stats.get("lockstep_vs_reference", 0.0)
    vs_compiled = stats.get("lockstep_vs_compiled", 0.0)
    print(
        f"perf floor: lockstep at {top} lanes {vs_reference:.1f}x over "
        f"reference (floor {floor if floor is not None else '-'}), "
        f"{vs_compiled:.1f}x over compiled "
        f"(floor {compiled_floor if compiled_floor is not None else '-'})"
    )
    failed = False
    if floor is not None and vs_reference < floor:
        print(
            f"perf floor FAILED: lockstep {vs_reference:.1f}x < {floor:.1f}x "
            f"over reference at {top} lanes",
            file=sys.stderr,
        )
        failed = True
    if compiled_floor is not None and vs_compiled < compiled_floor:
        print(
            f"perf floor FAILED: lockstep {vs_compiled:.1f}x < "
            f"{compiled_floor:.1f}x over compiled at {top} lanes",
            file=sys.stderr,
        )
        failed = True
    return failed


def _check_cache_floor(record_path: Path, floor: float) -> bool:
    """Enforce the warm-cache sweep floor; returns True on failure."""
    if not record_path.exists():
        print(
            f"perf floor FAILED: no service record at {record_path} "
            "(run benchmarks/benchmark_service.py first)",
            file=sys.stderr,
        )
        return True
    history = json.loads(record_path.read_text())
    if isinstance(history, dict):
        history = [history]
    latest = history[-1] if history else {}
    sweep = latest.get("streamed_mixed_sweep")
    if not sweep:
        print(
            "perf floor FAILED: newest service record carries no "
            "streamed_mixed_sweep measurement",
            file=sys.stderr,
        )
        return True
    speedup = sweep.get("warm_speedup", 0.0)
    fraction = sweep.get("first_row_fraction", 1.0)
    print(
        f"perf floor: warm-cache sweep {speedup:.1f}x over cold "
        f"({sweep.get('rows')} rows, floor {floor:.1f}x), first row at "
        f"{100 * fraction:.1f}% of the cold wall-clock "
        f"[record {latest.get('timestamp', '?')}, quick={latest.get('quick')}]"
    )
    failed = False
    if speedup < floor:
        print(
            f"perf floor FAILED: warm-cache sweep {speedup:.1f}x < "
            f"{floor:.1f}x over cold",
            file=sys.stderr,
        )
        failed = True
    if fraction > 0.5:
        print(
            f"perf floor FAILED: first streamed row at {fraction:.2f} of "
            "the cold wall-clock (needs <= 0.5: the cold run must stream "
            "partial results)",
            file=sys.stderr,
        )
        failed = True
    return failed


def _check_topology_floor(record_path: Path, floor: float) -> bool:
    """Enforce the generated-chain fast/reference floor; True on failure."""
    if not record_path.exists():
        print(
            f"perf floor FAILED: no topology record at {record_path} "
            "(run benchmarks/benchmark_topology.py first)",
            file=sys.stderr,
        )
        return True
    history = json.loads(record_path.read_text())
    if isinstance(history, dict):
        history = [history]
    latest = history[-1] if history else {}
    chain = latest.get("chain")
    if not chain:
        print(
            "perf floor FAILED: newest topology record carries no chain "
            "measurement",
            file=sys.stderr,
        )
        return True
    speedup = chain.get("fast_vs_reference", 0.0)
    print(
        f"perf floor: topology chain fast/reference {speedup:.1f}x "
        f"({chain.get('stages')} stages, {chain.get('cycles')} cycles, "
        f"floor {floor:.1f}x) "
        f"[record {latest.get('timestamp', '?')}, quick={latest.get('quick')}]"
    )
    if speedup < floor:
        print(
            f"perf floor FAILED: chain-topology fast kernel {speedup:.1f}x < "
            f"{floor:.1f}x over reference",
            file=sys.stderr,
        )
        return True
    return False


if __name__ == "__main__":
    sys.exit(main())
