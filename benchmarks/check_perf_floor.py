"""Perf-floor gate: fail if the compiled kernel's speedup regressed.

Reads the newest record of the ``BENCH_kernel.json`` history (produced by
``benchmark_kernel.py``) and exits non-zero when the compiled kernel's
minimum speedup over the reference kernel across all Table 1 rows drops
below the floor.  CI runs this after the quick benchmark so hot-path
regressions are caught at PR time::

    python benchmarks/check_perf_floor.py --floor 6
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

DEFAULT_RECORD = Path(__file__).resolve().parent.parent / "BENCH_kernel.json"


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--floor", type=float, default=6.0,
        help="minimum compiled/reference speedup (default: 6)",
    )
    parser.add_argument(
        "--record", type=Path, default=DEFAULT_RECORD,
        help="path to the BENCH_kernel.json history",
    )
    args = parser.parse_args(argv)

    if not args.record.exists():
        print(f"perf floor: no record at {args.record}", file=sys.stderr)
        return 2
    history = json.loads(args.record.read_text())
    if isinstance(history, dict):
        history = [history]
    if not history:
        print("perf floor: empty benchmark history", file=sys.stderr)
        return 2
    latest = history[-1]
    results = latest.get("results", {})
    if not results:
        print("perf floor: newest record has no results", file=sys.stderr)
        return 2

    worst_label, worst = min(
        results.items(), key=lambda item: item[1]["compiled_speedup"]
    )
    speedup = worst["compiled_speedup"]
    print(
        f"perf floor: compiled/reference min {speedup:.2f}x "
        f"({worst_label}), floor {args.floor:.2f}x "
        f"[record {latest.get('timestamp', '?')}, quick={latest.get('quick')}]"
    )
    if speedup < args.floor:
        print(
            f"perf floor FAILED: {speedup:.2f}x < {args.floor:.2f}x on "
            f"{worst_label}",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
