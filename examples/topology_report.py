#!/usr/bin/env python3
"""Figure 1 report: blocks, channels, netlist loops and link sensitivity.

Prints the structural view of the case-study processor that Figure 1 of the
paper shows: the five blocks, the point-to-point channels between them, every
netlist loop with its m/(m+n) throughput bound, and — as a bridge to Table 1
— the throughput bound each link imposes when it alone is wire-pipelined.

Usage::

    python examples/topology_report.py
"""

from __future__ import annotations

from repro.core import RSConfiguration, throughput_bound
from repro.experiments import build_figure1_netlist, run_figure1


def main() -> None:
    report = run_figure1()
    print(report.format())
    print()

    # The same information viewed through the static analysis module:
    # the critical loops of the "All 1 (no CU-IC)" configuration, which is the
    # configuration an architect would get by naively pipelining every long
    # link once.
    netlist = build_figure1_netlist()
    config = RSConfiguration.uniform(1, exclude=("CU-IC",))
    analysis = throughput_bound(netlist, configuration=config)
    print(f"loop analysis for configuration {config.label!r}:")
    print(analysis.describe())


if __name__ == "__main__":
    main()
