#!/usr/bin/env python3
"""Regenerate Table 1 of the paper from the command line.

Runs the Extraction Sort section (13 rows) and, optionally, the Matrix
Multiply section (25 rows) of Table 1 on the pipelined Figure 1 processor and
prints them in the paper's layout.  Every row runs the golden system, the WP1
(strict wrapper) system and the WP2 (oracle wrapper) system, so expect a
couple of minutes for the full table at the default sizes.

Usage::

    python examples/reproduce_table1.py                 # sort section only
    python examples/reproduce_table1.py --matmul        # both sections
    python examples/reproduce_table1.py --sort-length 12 --matmul --matmul-size 4
    python examples/reproduce_table1.py --multicycle    # multicycle control style
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.experiments import run_table1_matmul, run_table1_sort


def parse_args(argv):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--sort-length", type=int, default=16,
                        help="array length for the extraction-sort workload")
    parser.add_argument("--matmul", action="store_true",
                        help="also run the 25 Matrix Multiply rows")
    parser.add_argument("--matmul-size", type=int, default=5,
                        help="matrix dimension for the matrix-multiply workload")
    parser.add_argument("--seed", type=int, default=2005, help="workload data seed")
    parser.add_argument("--multicycle", action="store_true",
                        help="use the multicycle control style instead of the pipelined one")
    parser.add_argument("--check-equivalence", action="store_true",
                        help="also run the N-equivalence check on every row (slower)")
    return parser.parse_args(argv)


def progress(message: str) -> None:
    print(f"  ... {message}", file=sys.stderr)


def main(argv=None) -> None:
    args = parse_args(argv if argv is not None else sys.argv[1:])
    pipelined = not args.multicycle

    started = time.time()
    sort_result = run_table1_sort(
        length=args.sort_length,
        seed=args.seed,
        pipelined=pipelined,
        check_equivalence=args.check_equivalence,
        progress=progress,
    )
    print(sort_result.format())
    print()

    if args.matmul:
        matmul_result = run_table1_matmul(
            size=args.matmul_size,
            seed=args.seed,
            pipelined=pipelined,
            check_equivalence=args.check_equivalence,
            progress=progress,
        )
        print(matmul_result.format())
        print()

    print(f"done in {time.time() - started:.1f} s")


if __name__ == "__main__":
    main()
