#!/usr/bin/env python3
"""The wire-pipelining system design methodology, end to end.

This example walks through the design flow the paper's title refers to:

1. **Floorplan** the five blocks of the case-study processor and derive the
   physical length of every block-to-block link.
2. **Pick a clock target** and let the wire-delay model decide how many relay
   stations each link needs (the architect does not choose — geometry and
   frequency do).
3. **Analyse** the resulting configuration statically: which loops limit the
   strict (WP1) system and to what throughput.
4. **Optimise** the relay-station distribution within the allowed freedom
   (same total, links may trade stations) to recover throughput.
5. **Simulate** the extraction-sort workload under WP1 and WP2 wrappers and
   report the effective performance (clock frequency x throughput), which is
   the number a system architect actually cares about.

Usage::

    python examples/floorplan_methodology.py
    python examples/floorplan_methodology.py --frequency 1.6 --spread 3.0
"""

from __future__ import annotations

import argparse
import sys

from repro.core import (
    ClockPlan,
    SearchSpace,
    WireModel,
    exhaustive_search,
    floorplan_insertion,
    throughput_bound,
)
from repro.core.static_analysis import make_link_bound_evaluator
from repro.cpu import build_pipelined_cpu
from repro.cpu.workloads import make_extraction_sort
from repro.experiments import default_floorplan


def parse_args(argv):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--frequency", type=float, default=1.2,
                        help="target clock frequency in GHz")
    parser.add_argument("--spread", type=float, default=2.5,
                        help="floorplan spread factor (larger = longer wires)")
    parser.add_argument("--sort-length", type=int, default=12,
                        help="array length of the extraction-sort workload")
    return parser.parse_args(argv)


def main(argv=None) -> None:
    args = parse_args(argv if argv is not None else sys.argv[1:])

    # Step 1: floorplan and wire lengths.
    workload = make_extraction_sort(length=args.sort_length, seed=2005)
    cpu = build_pipelined_cpu(workload.program)
    floorplan = default_floorplan(spread=args.spread)
    print(floorplan.describe())
    lengths = floorplan.link_lengths(cpu.netlist)
    print("\nlink lengths (mm):")
    for link in sorted(lengths):
        print(f"  {link:<7s} {lengths[link]:6.2f}")

    # Step 2: clock target -> relay stations per link.
    clock = ClockPlan.from_frequency_ghz(args.frequency)
    wire_model = WireModel()
    required = floorplan_insertion(cpu.netlist, floorplan, clock, wire_model)
    print(f"\nclock target: {clock.frequency_ghz:.2f} GHz ({clock.period_ps:.0f} ps)")
    print("relay stations required per link:")
    for link in sorted(cpu.netlist.link_names()):
        print(f"  {link:<7s} {required.count_for_link(link)}")

    # Step 3: static analysis of the required configuration.
    analysis = throughput_bound(cpu.netlist, configuration=required)
    print("\nstatic analysis of the floorplan-dictated configuration:")
    print(analysis.describe())

    # Step 4: redistribute the same number of relay stations to maximise the
    # loop bound (each link may take up to one extra station).
    links = cpu.netlist.link_names()
    per_link_required = required.per_link(links)
    total = sum(per_link_required.values())
    if total:
        space = SearchSpace.bounded(
            links, maximum=max(per_link_required.values()) + 1, total=total
        )
        optimised = exhaustive_search(space, make_link_bound_evaluator(cpu.netlist))
        optimised_config = optimised.as_configuration(label="optimised placement")
        print("\noptimised relay-station distribution (same total):")
        for link in sorted(links):
            print(f"  {link:<7s} {optimised_config.count_for_link(link)}")
        print(f"loop bound: {optimised.score:.3f} "
              f"(was {analysis.bound_float:.3f} for the naive placement)")
    else:
        optimised_config = required
        print("\nno relay stations needed at this clock/floorplan — nothing to optimise")

    # Step 5: simulate both wrapper flavours and report effective performance.
    golden = cpu.run_golden(record_trace=False)
    print(f"\ngolden run: {golden.cycles} cycles")
    for label, config in (("floorplan placement", required),
                          ("optimised placement", optimised_config)):
        wp1 = cpu.run_wire_pipelined(configuration=config, relaxed=False, record_trace=False)
        wp2 = cpu.run_wire_pipelined(configuration=config, relaxed=True, record_trace=False)
        th1 = golden.cycles / wp1.cycles
        th2 = golden.cycles / wp2.cycles
        print(f"\n{label}:")
        print(f"  WP1: Th = {th1:.3f}  effective {clock.frequency_ghz * th1:.2f} GHz-equivalent")
        print(f"  WP2: Th = {th2:.3f}  effective {clock.frequency_ghz * th2:.2f} GHz-equivalent")
        print(f"  WP2 gain over WP1: {100 * (th2 - th1) / th1:+.0f} %")


if __name__ == "__main__":
    main()
