#!/usr/bin/env python3
"""Quickstart: wrap a tiny two-block system for wire pipelining.

This example builds the smallest system that shows everything the library
does:

1. describe two communicating blocks (a streaming producer and a consumer
   that returns credits) as processes and channels;
2. run the golden (un-pipelined) system;
3. pipeline the long link with relay stations and run the strict WP1 wrapper
   — throughput drops to the loop bound m/(m+n) = 1/2;
4. use the producer's *oracle* (it only checks the credit return every few
   steps) and run the relaxed WP2 wrapper — most of the throughput comes
   back;
5. check that both wire-pipelined systems are N-equivalent to the golden one.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro.core import (
    Channel,
    FunctionProcess,
    Netlist,
    n_equivalent,
    run_golden,
    run_lid,
    throughput_bound,
)


#: The producer checks the consumer's credit return only once every
#: CREDIT_PERIOD steps — the "communication profile" its oracle exposes.
CREDIT_PERIOD = 4


def build_system() -> Netlist:
    """A two-block loop: a streaming producer and a consumer returning credits."""

    def producer_step(state, inputs):
        # The producer emits an increasing sequence; every CREDIT_PERIOD steps
        # it folds in the consumer's credit return (its only input).  On the
        # other steps that input is ignored — the oracle below says so.
        count, credits = state
        if count % CREDIT_PERIOD == 0:
            credit = inputs["credit"] if inputs["credit"] is not None else 0
            credits += credit
        count += 1
        return (count, credits), {"data": count}

    def producer_oracle(state):
        count, _ = state
        return {"credit"} if count % CREDIT_PERIOD == 0 else set()

    def consumer_step(state, inputs):
        # The consumer processes every data beat and returns one credit each
        # time (so it needs its input every step — no oracle on this side).
        total = state
        data = inputs["data"] if inputs["data"] is not None else 0
        return total + data, {"credit": 1}

    producer = FunctionProcess(
        "producer", inputs=("credit",), outputs=("data",),
        transition=producer_step, initial_state=(0, 0),
        oracle=producer_oracle,
    )
    consumer = FunctionProcess(
        "consumer", inputs=("data",), outputs=("credit",),
        transition=consumer_step, initial_state=0,
    )
    channels = [
        Channel("data", "producer", "data", "consumer", "data", initial=0, link="P-C"),
        Channel("credit", "consumer", "credit", "producer", "credit", initial=0, link="P-C"),
    ]
    return Netlist([producer, consumer], channels, name="quickstart")


def main() -> None:
    netlist = build_system()
    steps = 200

    golden = run_golden(netlist, max_cycles=steps)
    print(f"golden run: {golden.cycles} cycles, throughput 1.0 by definition")

    # Pipeline both directions of the long producer<->consumer link with one
    # relay station each (the physical link is long in both directions).
    rs_counts = {"data": 1, "credit": 1}
    bound = throughput_bound(netlist, rs_counts=rs_counts)
    print(f"static WP1 bound with the P-C link pipelined: {float(bound.bound):.3f}")

    wp1 = run_lid(
        netlist, rs_counts=rs_counts, relaxed=False,
        target_firings={"producer": steps}, max_cycles=10 * steps,
    )
    wp2 = run_lid(
        netlist, rs_counts=rs_counts, relaxed=True,
        target_firings={"producer": steps}, max_cycles=10 * steps,
    )
    th1 = wp1.firings["producer"] / wp1.cycles
    th2 = wp2.firings["producer"] / wp2.cycles
    print(f"WP1 (strict wrapper):  {wp1.cycles} cycles, throughput {th1:.3f}")
    print(f"WP2 (oracle wrapper):  {wp2.cycles} cycles, throughput {th2:.3f}")
    print(f"WP2 improvement over WP1: {100 * (th2 - th1) / th1:+.0f} %")

    for label, result in (("WP1", wp1), ("WP2", wp2)):
        report = n_equivalent(golden.trace, result.trace)
        status = "equivalent" if report.equivalent else "NOT equivalent"
        print(f"{label} vs golden: {status} over {report.compared_depth} valid tokens per channel")


if __name__ == "__main__":
    main()
