#!/usr/bin/env python3
"""Designing a WP2 oracle for your own IP block.

The paper's key idea is that a block's wrapper can exploit "minimal knowledge
of the IP's communication profile": an *oracle* derived from the block's state
that says which inputs the next computation actually needs.  This example
shows the workflow on a small DMA-style engine driven by a descriptor
generator over a long (pipelined) command/completion link, and quantifies how
oracle precision translates into recovered throughput:

* ``WP1``            — no oracle: the strict wrapper synchronises on every
  input every tag, so the command/completion loop throttles the whole engine
  to the loop bound 1/2;
* ``WP2 (DMA only)`` — the DMA's oracle knows a new descriptor is only needed
  when the engine is idle and the data input only while a burst is copying;
* ``WP2 (full)``     — additionally, the descriptor generator knows exactly
  at which tag the completion for an outstanding burst will arrive, so the
  loop is exercised only once per burst.

Usage::

    python examples/custom_oracle.py
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional

from repro.core import (
    Channel,
    FunctionProcess,
    Netlist,
    n_equivalent,
    run_golden,
    run_lid,
)


#: Data beats copied per descriptor.
BURST = 8
#: Relay stations on each direction of the command/completion link.
LINK_DEPTH = 1


# ---------------------------------------------------------------------------
# DMA engine
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class DmaState:
    """How many beats remain in the current burst and how many were copied."""

    remaining: int = 0
    copied: int = 0


def dma_step(state: DmaState, inputs):
    """Idle: wait for a descriptor.  Copying: move one data beat per tag."""
    if state.remaining == 0:
        descriptor = inputs["descriptor"]
        if descriptor is not None and descriptor >= 0:
            return replace(state, remaining=BURST), {"beat": None, "complete": None}
        return state, {"beat": None, "complete": None}
    remaining = state.remaining - 1
    copied = state.copied + 1
    complete = 1 if remaining == 0 else None
    return DmaState(remaining=remaining, copied=copied), {
        "beat": inputs["data"],
        "complete": complete,
    }


def dma_oracle(state: DmaState):
    """Descriptor only when idle, data only while copying."""
    return {"descriptor"} if state.remaining == 0 else {"data"}


# ---------------------------------------------------------------------------
# Descriptor generator
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class GeneratorState:
    """Issued descriptor count and the tag at which its completion returns."""

    issued: int = 0
    completion_due: Optional[int] = None
    step: int = 0


#: Tags between issuing a descriptor and consuming its completion message:
#: one tag for the DMA to load the descriptor, BURST copy tags, and the
#: register delay of the return channel.
COMPLETION_LATENCY = BURST + 2


def generator_step(state: GeneratorState, inputs):
    if state.completion_due is None:
        # Idle: issue the next descriptor and note when its completion will
        # be consumed (a fixed schedule — burst length is a constant here).
        return (
            GeneratorState(
                issued=state.issued + 1,
                completion_due=state.step + COMPLETION_LATENCY,
                step=state.step + 1,
            ),
            {"descriptor": state.issued},
        )
    if state.step == state.completion_due:
        complete = inputs["complete"]
        if complete != 1:
            raise AssertionError("completion expected but not delivered")
        return (
            GeneratorState(issued=state.issued, completion_due=None, step=state.step + 1),
            {"descriptor": -1},
        )
    return replace(state, step=state.step + 1), {"descriptor": -1}


def generator_oracle(state: GeneratorState):
    """The completion input is needed only at the tag it is scheduled for."""
    if state.completion_due is not None and state.step == state.completion_due:
        return {"complete"}
    return set()


# ---------------------------------------------------------------------------
# System assembly
# ---------------------------------------------------------------------------

def build_netlist(dma_has_oracle: bool, generator_has_oracle: bool) -> Netlist:
    generator = FunctionProcess(
        "generator", inputs=("complete",), outputs=("descriptor",),
        transition=generator_step, initial_state=GeneratorState(),
        oracle=generator_oracle if generator_has_oracle else None,
    )
    data_source = FunctionProcess(
        "source", inputs=("loop",), outputs=("out",),
        transition=lambda step, inputs: (step + 1, {"out": 1000 + step}),
        initial_state=0,
    )
    dma = FunctionProcess(
        "dma", inputs=("descriptor", "data"), outputs=("beat", "complete"),
        transition=dma_step, initial_state=DmaState(),
        oracle=dma_oracle if dma_has_oracle else None,
    )
    consumer = FunctionProcess(
        "consumer", inputs=("beat",), outputs=(),
        transition=lambda state, inputs: (state, {}),
    )
    channels = [
        Channel("source_loop", "source", "out", "source", "loop", initial=0),
        Channel("descriptor", "generator", "descriptor", "dma", "descriptor",
                initial=-1, link="CMD"),
        Channel("complete", "dma", "complete", "generator", "complete",
                initial=None, link="CMD"),
        Channel("data", "source", "out", "dma", "data", initial=0, link="DATA"),
        Channel("beat", "dma", "beat", "consumer", "beat", initial=None, link="OUT"),
    ]
    return Netlist([generator, data_source, dma, consumer], channels, name="dma-example")


def run_flavour(name: str, dma_has_oracle: bool, generator_has_oracle: bool,
                relaxed: bool, steps: int = 400) -> float:
    netlist = build_netlist(dma_has_oracle, generator_has_oracle)
    golden = run_golden(netlist, max_cycles=steps)
    rs_counts = {"descriptor": LINK_DEPTH, "complete": LINK_DEPTH}
    result = run_lid(
        netlist,
        rs_counts=rs_counts,
        relaxed=relaxed,
        target_firings={"dma": steps},
        max_cycles=30 * steps,
    )
    throughput = result.firings["dma"] / result.cycles
    equivalent = n_equivalent(golden.trace, result.trace).equivalent
    print(f"{name:<28s} throughput {throughput:.3f}  "
          f"({'equivalent' if equivalent else 'NOT equivalent'} to golden)")
    return throughput


def main() -> None:
    print(f"DMA example: bursts of {BURST} beats, command/completion link pipelined "
          f"with {LINK_DEPTH} relay station per direction\n")
    base = run_flavour("WP1 (no oracle)", False, False, relaxed=False)
    partial = run_flavour("WP2 (DMA oracle only)", True, False, relaxed=True)
    full = run_flavour("WP2 (DMA + generator oracle)", True, True, relaxed=True)
    print()
    print(f"DMA-only oracle gain:      {100 * (partial - base) / base:+.0f} %")
    print(f"full oracle gain:          {100 * (full - base) / base:+.0f} %")


if __name__ == "__main__":
    main()
