"""Functional tests of the golden (un-pipelined) processor on real programs."""

from __future__ import annotations

import pytest

from repro.cpu import Program, build_multicycle_cpu, build_pipelined_cpu
from repro.cpu.workloads import (
    make_extraction_sort,
    make_matrix_multiply,
    reference_product,
)


class TestSmallPrograms:
    def run_program(self, text, data=None, pipelined=True, max_cycles=20_000):
        program = Program.from_assembly("test", text, data=data)
        builder = build_pipelined_cpu if pipelined else build_multicycle_cpu
        cpu = builder(program)
        result = cpu.run_golden(drain=True, max_cycles=max_cycles)
        assert result.halted, "program did not reach HALT"
        return cpu, result

    def test_store_immediate(self):
        cpu, _ = self.run_program("LI r1, 42\nST r1, 5(r0)\nHALT")
        assert cpu.memory_word(5) == 42

    def test_arithmetic_chain(self):
        cpu, _ = self.run_program(
            """
            LI r1, 10
            LI r2, 4
            SUB r3, r1, r2
            MUL r4, r3, r3
            ST  r4, 0(r0)
            HALT
            """
        )
        assert cpu.memory_word(0) == 36

    def test_load_then_use(self):
        cpu, _ = self.run_program(
            """
            LD  r1, 0(r0)
            ADDI r2, r1, 1
            ST  r2, 1(r0)
            HALT
            """,
            data={0: 99},
        )
        assert cpu.memory_word(1) == 100

    def test_back_to_back_dependency(self):
        cpu, _ = self.run_program(
            """
            LI r1, 1
            ADD r2, r1, r1
            ADD r3, r2, r2
            ADD r4, r3, r3
            ST  r4, 0(r0)
            HALT
            """
        )
        assert cpu.memory_word(0) == 8

    def test_taken_branch_skips_code(self):
        cpu, _ = self.run_program(
            """
            LI  r1, 1
            BEQ r1, r1, target
            LI  r2, 99
        target:
            ST  r2, 0(r0)
            HALT
            """
        )
        assert cpu.memory_word(0) == 0

    def test_not_taken_branch_falls_through(self):
        cpu, _ = self.run_program(
            """
            LI  r1, 1
            LI  r2, 2
            BEQ r1, r2, skip
            LI  r3, 7
        skip:
            ST  r3, 0(r0)
            HALT
            """
        )
        assert cpu.memory_word(0) == 7

    def test_loop_accumulates(self):
        cpu, _ = self.run_program(
            """
            LI r1, 0      ; i
            LI r2, 5      ; n
            LI r3, 0      ; sum
        loop:
            BGE r1, r2, done
            ADD r3, r3, r1
            ADDI r1, r1, 1
            JMP loop
        done:
            ST r3, 0(r0)
            HALT
            """
        )
        assert cpu.memory_word(0) == 10

    def test_jump_redirects_control_flow(self):
        cpu, _ = self.run_program(
            """
            LI r1, 5
            JMP over
            LI r1, 99
        over:
            ST r1, 0(r0)
            HALT
            """
        )
        assert cpu.memory_word(0) == 5

    def test_store_then_load_same_address(self):
        cpu, _ = self.run_program(
            """
            LI r1, 123
            ST r1, 4(r0)
            LD r2, 4(r0)
            ADDI r2, r2, 1
            ST r2, 5(r0)
            HALT
            """
        )
        assert cpu.memory_word(5) == 124

    def test_slt_and_branch_combination(self):
        cpu, _ = self.run_program(
            """
            LI r1, 3
            LI r2, 8
            SLT r3, r1, r2
            BEQ r3, r0, not_less
            LI r4, 1
            JMP store
        not_less:
            LI r4, 0
        store:
            ST r4, 0(r0)
            HALT
            """
        )
        assert cpu.memory_word(0) == 1

    def test_negative_numbers(self):
        cpu, _ = self.run_program(
            """
            LI r1, -5
            LI r2, 3
            ADD r3, r1, r2
            ST r3, 0(r0)
            MUL r4, r1, r2
            ST r4, 1(r0)
            HALT
            """
        )
        assert cpu.memory_word(0) == -2
        assert cpu.memory_word(1) == -15

    def test_multicycle_control_produces_same_results(self):
        text = """
            LI r1, 6
            LI r2, 7
            MUL r3, r1, r2
            ST r3, 0(r0)
            HALT
        """
        pipelined_cpu, pipelined = self.run_program(text, pipelined=True)
        multicycle_cpu, multicycle = self.run_program(text, pipelined=False)
        assert pipelined_cpu.memory_word(0) == 42
        assert multicycle_cpu.memory_word(0) == 42
        # The multicycle machine needs more cycles for the same work.
        assert multicycle.cycles > pipelined.cycles


class TestWorkloadsOnGolden:
    @pytest.mark.parametrize("length", [4, 8])
    def test_extraction_sort_sorts(self, length):
        workload = make_extraction_sort(length=length, seed=3)
        cpu = build_pipelined_cpu(workload.program)
        result = cpu.run_golden(drain=True)
        assert result.halted
        assert cpu.check_memory(workload.expected_memory) == {}

    def test_extraction_sort_with_explicit_values(self):
        workload = make_extraction_sort(length=5, values=[5, 1, 4, 2, 3])
        cpu = build_pipelined_cpu(workload.program)
        cpu.run_golden(drain=True)
        assert cpu.memory_slice(0, 5) == [1, 2, 3, 4, 5]

    def test_extraction_sort_already_sorted_input(self):
        workload = make_extraction_sort(length=4, values=[1, 2, 3, 4])
        cpu = build_pipelined_cpu(workload.program)
        cpu.run_golden(drain=True)
        assert cpu.memory_slice(0, 4) == [1, 2, 3, 4]

    def test_extraction_sort_reverse_sorted_input(self):
        workload = make_extraction_sort(length=4, values=[4, 3, 2, 1])
        cpu = build_pipelined_cpu(workload.program)
        cpu.run_golden(drain=True)
        assert cpu.memory_slice(0, 4) == [1, 2, 3, 4]

    def test_extraction_sort_with_duplicates(self):
        workload = make_extraction_sort(length=6, values=[2, 2, 1, 3, 1, 2])
        cpu = build_pipelined_cpu(workload.program)
        cpu.run_golden(drain=True)
        assert cpu.memory_slice(0, 6) == [1, 1, 2, 2, 2, 3]

    @pytest.mark.parametrize("size", [2, 3])
    def test_matrix_multiply_matches_reference(self, size):
        workload = make_matrix_multiply(size=size, seed=11)
        cpu = build_pipelined_cpu(workload.program)
        result = cpu.run_golden(drain=True)
        assert result.halted
        assert cpu.check_memory(workload.expected_memory) == {}

    def test_matrix_multiply_identity(self):
        size = 3
        identity = [1 if i == j else 0 for i in range(size) for j in range(size)]
        values = list(range(1, size * size + 1))
        workload = make_matrix_multiply(size=size, a_values=values, b_values=identity)
        cpu = build_pipelined_cpu(workload.program)
        cpu.run_golden(drain=True)
        c_base = 2 * size * size
        assert cpu.memory_slice(c_base, size * size) == values

    def test_matrix_multiply_on_multicycle_cpu(self):
        workload = make_matrix_multiply(size=2, seed=5)
        cpu = build_multicycle_cpu(workload.program)
        result = cpu.run_golden(drain=True, max_cycles=100_000)
        assert result.halted
        assert cpu.check_memory(workload.expected_memory) == {}

    def test_reference_product_helper(self):
        a = [1, 2, 3, 4]
        b = [5, 6, 7, 8]
        assert reference_product(a, b, 2) == [19, 22, 43, 50]
