"""Integration tests: the wire-pipelined processor under WP1 and WP2 wrappers.

These are the central correctness claims of the paper applied to the case study:
whatever relay-station configuration is used and whichever wrapper flavour
encloses the blocks, the system remains N-equivalent to the golden machine and
still computes the right answer; WP2 is never slower than WP1; and the
throughput patterns match the communication profile of each link.
"""

from __future__ import annotations

import pytest

from repro.core import RSConfiguration, n_equivalent, throughput_bound
from repro.cpu import build_multicycle_cpu, build_pipelined_cpu
from repro.cpu.topology import TABLE1_LINK_ORDER
from repro.cpu.workloads import make_extraction_sort, make_matrix_multiply


@pytest.fixture(scope="module")
def sort_setup():
    workload = make_extraction_sort(length=8, seed=1)
    cpu = build_pipelined_cpu(workload.program)
    golden = cpu.run_golden()
    return workload, cpu, golden


class TestEquivalence:
    @pytest.mark.parametrize("link", ["CU-IC", "CU-RF", "RF-ALU", "RF-DC", "ALU-CU", "DC-RF"])
    @pytest.mark.parametrize("relaxed", [False, True])
    def test_single_link_configurations_equivalent(self, sort_setup, link, relaxed):
        _, cpu, golden = sort_setup
        result = cpu.run_wire_pipelined(
            configuration=RSConfiguration.only(link), relaxed=relaxed
        )
        assert n_equivalent(golden.trace, result.trace).equivalent

    @pytest.mark.parametrize("relaxed", [False, True])
    def test_all_one_configuration_equivalent(self, sort_setup, relaxed):
        _, cpu, golden = sort_setup
        result = cpu.run_wire_pipelined(
            configuration=RSConfiguration.uniform(1, exclude=("CU-IC",)),
            relaxed=relaxed,
        )
        assert n_equivalent(golden.trace, result.trace).equivalent

    @pytest.mark.parametrize("relaxed", [False, True])
    def test_deep_pipelining_equivalent(self, sort_setup, relaxed):
        _, cpu, golden = sort_setup
        result = cpu.run_wire_pipelined(
            configuration=RSConfiguration.uniform(2), relaxed=relaxed
        )
        assert n_equivalent(golden.trace, result.trace).equivalent

    def test_multicycle_cpu_equivalent_under_wp2(self):
        workload = make_extraction_sort(length=6, seed=2)
        cpu = build_multicycle_cpu(workload.program)
        golden = cpu.run_golden()
        result = cpu.run_wire_pipelined(
            configuration=RSConfiguration.only("CU-IC"), relaxed=True
        )
        assert n_equivalent(golden.trace, result.trace).equivalent


class TestFunctionalResults:
    @pytest.mark.parametrize("relaxed", [False, True])
    def test_sort_result_correct_under_wire_pipelining(self, relaxed):
        workload = make_extraction_sort(length=8, seed=4)
        cpu = build_pipelined_cpu(workload.program)
        cpu.run_wire_pipelined(
            configuration=RSConfiguration.uniform(1, exclude=("CU-IC",)),
            relaxed=relaxed,
            drain=True,
        )
        assert cpu.check_memory(workload.expected_memory) == {}

    @pytest.mark.parametrize("relaxed", [False, True])
    def test_matmul_result_correct_under_wire_pipelining(self, relaxed):
        workload = make_matrix_multiply(size=3, seed=4)
        cpu = build_pipelined_cpu(workload.program)
        cpu.run_wire_pipelined(
            configuration=RSConfiguration.uniform_plus(1, {"RF-DC": 2}),
            relaxed=relaxed,
            drain=True,
        )
        assert cpu.check_memory(workload.expected_memory) == {}

    def test_sort_result_correct_on_multicycle_wp2(self):
        workload = make_extraction_sort(length=6, seed=9)
        cpu = build_multicycle_cpu(workload.program)
        cpu.run_wire_pipelined(
            configuration=RSConfiguration.uniform(1), relaxed=True, drain=True,
            max_cycles=10_000_000,
        )
        assert cpu.check_memory(workload.expected_memory) == {}


class TestThroughputShape:
    def test_ideal_configuration_runs_at_golden_speed(self, sort_setup):
        _, cpu, golden = sort_setup
        result = cpu.run_wire_pipelined(configuration=RSConfiguration.ideal())
        assert result.cycles == pytest.approx(golden.cycles, abs=3)

    @pytest.mark.parametrize("link", TABLE1_LINK_ORDER)
    def test_wp2_never_slower_than_wp1(self, sort_setup, link):
        _, cpu, _ = sort_setup
        config = RSConfiguration.only(link)
        wp1 = cpu.run_wire_pipelined(configuration=config, relaxed=False, record_trace=False)
        wp2 = cpu.run_wire_pipelined(configuration=config, relaxed=True, record_trace=False)
        assert wp2.cycles <= wp1.cycles

    @pytest.mark.parametrize("link", ["CU-IC", "RF-ALU", "ALU-CU", "RF-DC"])
    def test_wp1_throughput_close_to_static_bound(self, sort_setup, link):
        _, cpu, golden = sort_setup
        config = RSConfiguration.only(link)
        wp1 = cpu.run_wire_pipelined(configuration=config, relaxed=False, record_trace=False)
        bound = throughput_bound(cpu.netlist, configuration=config).bound_float
        measured = golden.cycles / wp1.cycles
        assert measured <= bound + 0.02
        assert measured >= bound - 0.05

    def test_rarely_used_link_recovers_most_throughput_under_wp2(self, sort_setup):
        _, cpu, golden = sort_setup
        config = RSConfiguration.only("RF-DC")
        wp2 = cpu.run_wire_pipelined(configuration=config, relaxed=True, record_trace=False)
        assert golden.cycles / wp2.cycles > 0.9

    def test_fetch_loop_shows_smallest_wp2_gain(self, sort_setup):
        """In the pipelined CPU the CU-IC loop is exercised almost every cycle,
        so WP2 recovers the least throughput there (the paper reports 0 %)."""
        _, cpu, golden = sort_setup
        gains = {}
        for link in ("CU-IC", "RF-DC", "ALU-CU", "DC-RF"):
            config = RSConfiguration.only(link)
            wp1 = cpu.run_wire_pipelined(configuration=config, relaxed=False, record_trace=False)
            wp2 = cpu.run_wire_pipelined(configuration=config, relaxed=True, record_trace=False)
            gains[link] = (golden.cycles / wp2.cycles) - (golden.cycles / wp1.cycles)
        assert gains["CU-IC"] == min(gains.values())

    def test_deeper_pipelining_lowers_wp1_throughput(self, sort_setup):
        _, cpu, golden = sort_setup
        shallow = cpu.run_wire_pipelined(
            configuration=RSConfiguration.uniform(1, exclude=("CU-IC",)),
            relaxed=False, record_trace=False,
        )
        deep = cpu.run_wire_pipelined(
            configuration=RSConfiguration.uniform(2, exclude=("CU-IC",)),
            relaxed=False, record_trace=False,
        )
        assert golden.cycles / deep.cycles < golden.cycles / shallow.cycles

    def test_multicycle_fetch_loop_gains_much_more_than_pipelined(self):
        """The paper's central qualitative claim about the multicycle CPU."""
        workload = make_extraction_sort(length=6, seed=5)
        config = RSConfiguration.only("CU-IC")

        multicycle = build_multicycle_cpu(workload.program)
        golden_mc = multicycle.run_golden(record_trace=False)
        wp1_mc = multicycle.run_wire_pipelined(configuration=config, relaxed=False, record_trace=False)
        wp2_mc = multicycle.run_wire_pipelined(configuration=config, relaxed=True, record_trace=False)
        gain_mc = (golden_mc.cycles / wp2_mc.cycles) / (golden_mc.cycles / wp1_mc.cycles) - 1

        pipelined = build_pipelined_cpu(workload.program)
        golden_pl = pipelined.run_golden(record_trace=False)
        wp1_pl = pipelined.run_wire_pipelined(configuration=config, relaxed=False, record_trace=False)
        wp2_pl = pipelined.run_wire_pipelined(configuration=config, relaxed=True, record_trace=False)
        gain_pl = (golden_pl.cycles / wp2_pl.cycles) / (golden_pl.cycles / wp1_pl.cycles) - 1

        assert gain_mc > gain_pl
        assert gain_mc > 0.3  # the paper reports about 60 %

    def test_wp2_discards_tokens_on_relaxed_channels(self, sort_setup):
        _, cpu, _ = sort_setup
        result = cpu.run_wire_pipelined(
            configuration=RSConfiguration.only("ALU-CU"), relaxed=True, record_trace=False
        )
        cu_stats = result.shell_stats["CU"]
        assert cu_stats.discarded_tokens > 0

    def test_wp1_never_discards_tokens(self, sort_setup):
        _, cpu, _ = sort_setup
        result = cpu.run_wire_pipelined(
            configuration=RSConfiguration.only("ALU-CU"), relaxed=False, record_trace=False
        )
        assert all(stats.discarded_tokens == 0 for stats in result.shell_stats.values())
