"""Unit tests for the process (pearl) abstraction and helper processes."""

from __future__ import annotations

import pytest

from repro.core.exceptions import NetlistError
from repro.core.process import (
    CounterSource,
    FunctionProcess,
    PassthroughProcess,
    Process,
    SinkProcess,
)


class Adder(Process):
    input_ports = ("a", "b")
    output_ports = ("sum",)

    def fire(self, inputs):
        return {"sum": inputs["a"] + inputs["b"]}


class TestProcessBase:
    def test_empty_name_rejected(self):
        with pytest.raises(NetlistError):
            Adder("")

    def test_step_counts_firings(self):
        adder = Adder("add")
        adder.step({"a": 1, "b": 2})
        adder.step({"a": 3, "b": 4})
        assert adder.firings == 2

    def test_step_returns_outputs(self):
        adder = Adder("add")
        assert adder.step({"a": 1, "b": 2}) == {"sum": 3}

    def test_reset_clears_firings(self):
        adder = Adder("add")
        adder.step({"a": 1, "b": 2})
        adder.reset()
        assert adder.firings == 0

    def test_default_oracle_requires_all_ports(self):
        assert Adder("add").required_ports() is None

    def test_default_is_done_false(self):
        assert not Adder("add").is_done()

    def test_missing_output_port_detected(self):
        class Broken(Process):
            input_ports = ()
            output_ports = ("out",)

            def fire(self, inputs):
                return {}

        with pytest.raises(NetlistError):
            Broken("broken").step({})

    def test_undeclared_output_port_detected(self):
        class Chatty(Process):
            input_ports = ()
            output_ports = ("out",)

            def fire(self, inputs):
                return {"out": 1, "extra": 2}

        with pytest.raises(NetlistError):
            Chatty("chatty").step({})

    def test_repr_mentions_ports(self):
        text = repr(Adder("add"))
        assert "a" in text and "sum" in text


class TestFunctionProcess:
    def make_accumulator(self):
        def transition(state, inputs):
            total = state + inputs["in"]
            return total, {"out": total}

        return FunctionProcess(
            "acc", inputs=("in",), outputs=("out",), transition=transition,
            initial_state=0,
        )

    def test_state_evolves(self):
        acc = self.make_accumulator()
        assert acc.step({"in": 2})["out"] == 2
        assert acc.step({"in": 3})["out"] == 5

    def test_reset_restores_initial_state(self):
        acc = self.make_accumulator()
        acc.step({"in": 2})
        acc.reset()
        assert acc.state == 0
        assert acc.step({"in": 1})["out"] == 1

    def test_oracle_callable_is_used(self):
        process = FunctionProcess(
            "p", inputs=("x", "y"), outputs=(),
            transition=lambda state, inputs: (state, {}),
            oracle=lambda state: ["x"],
        )
        assert process.required_ports() == frozenset({"x"})

    def test_oracle_returning_none_means_all(self):
        process = FunctionProcess(
            "p", inputs=("x",), outputs=(),
            transition=lambda state, inputs: (state, {}),
            oracle=lambda state: None,
        )
        assert process.required_ports() is None


class TestHelperProcesses:
    def test_passthrough_forwards(self):
        stage = PassthroughProcess("s")
        assert stage.step({"in": 42}) == {"out": 42}

    def test_counter_source_counts(self):
        source = CounterSource("src")
        assert source.step({}) == {"out": 0}
        assert source.step({}) == {"out": 1}

    def test_counter_source_limit_sets_done(self):
        source = CounterSource("src", limit=2)
        source.step({})
        assert not source.is_done()
        source.step({})
        assert source.is_done()

    def test_counter_source_reset(self):
        source = CounterSource("src")
        source.step({})
        source.reset()
        assert source.step({}) == {"out": 0}

    def test_sink_records_values(self):
        sink = SinkProcess("sink")
        sink.step({"in": 5})
        sink.step({"in": 6})
        assert sink.received == [5, 6]

    def test_sink_reset_clears_history(self):
        sink = SinkProcess("sink")
        sink.step({"in": 5})
        sink.reset()
        assert sink.received == []
