"""Unit tests for the wrapper / relay-station area model."""

from __future__ import annotations

import pytest

from repro.core.area import (
    AreaEstimate,
    estimate_overhead,
    relay_station_area,
    wrapper_area,
)
from repro.core.config import RSConfiguration
from repro.cpu import DEFAULT_BLOCK_GATES, build_pipelined_cpu
from repro.cpu.workloads import make_extraction_sort


@pytest.fixture(scope="module")
def cpu_netlist():
    return build_pipelined_cpu(make_extraction_sort(length=4).program).netlist


class TestAreaEstimate:
    def test_total_is_sum_of_parts(self):
        estimate = AreaEstimate(storage_ge=100.0, control_ge=20.0)
        assert estimate.total_ge == 120.0

    def test_addition(self):
        combined = AreaEstimate(10.0, 5.0) + AreaEstimate(1.0, 2.0)
        assert combined.storage_ge == 11.0
        assert combined.control_ge == 7.0


class TestRelayStationArea:
    def test_scales_with_width(self):
        narrow = relay_station_area(8).total_ge
        wide = relay_station_area(64).total_ge
        assert wide > narrow

    def test_has_two_registers_worth_of_storage(self):
        from repro.core.area import FLOP_GE

        estimate = relay_station_area(32)
        assert estimate.storage_ge == 2 * 32 * FLOP_GE


class TestWrapperArea:
    def test_scales_with_queue_depth(self):
        shallow = wrapper_area([32], queue_depth=1).total_ge
        deep = wrapper_area([32], queue_depth=4).total_ge
        assert deep > shallow

    def test_scales_with_channel_count(self):
        one = wrapper_area([32]).total_ge
        three = wrapper_area([32, 32, 32]).total_ge
        assert three > one

    def test_relaxed_wrapper_slightly_larger(self):
        strict = wrapper_area([32, 32], relaxed=False).total_ge
        relaxed = wrapper_area([32, 32], relaxed=True).total_ge
        assert relaxed > strict
        # ... but only slightly: the paper's point is that the oracle logic is
        # negligible.
        assert relaxed < 1.2 * strict

    def test_no_inputs_wrapper_is_control_only(self):
        estimate = wrapper_area([])
        assert estimate.storage_ge == 0.0
        assert estimate.control_ge > 0.0


class TestOverheadReport:
    def test_wrapper_overhead_far_below_ip_area(self, cpu_netlist):
        config = RSConfiguration.uniform(1)
        report = estimate_overhead(
            cpu_netlist,
            config.per_channel(cpu_netlist),
            DEFAULT_BLOCK_GATES,
            queue_depth=2,
        )
        assert 0.0 < report.wrapper_overhead_fraction < 0.05
        assert report.total_overhead_fraction < 0.1

    def test_relaxed_report_larger_than_strict(self, cpu_netlist):
        config = RSConfiguration.uniform(1)
        counts = config.per_channel(cpu_netlist)
        strict = estimate_overhead(cpu_netlist, counts, DEFAULT_BLOCK_GATES)
        relaxed = estimate_overhead(
            cpu_netlist, counts, DEFAULT_BLOCK_GATES, relaxed=True
        )
        assert relaxed.total_wrapper_ge > strict.total_wrapper_ge

    def test_relay_station_area_scales_with_counts(self, cpu_netlist):
        one = estimate_overhead(
            cpu_netlist,
            RSConfiguration.uniform(1).per_channel(cpu_netlist),
            DEFAULT_BLOCK_GATES,
        )
        two = estimate_overhead(
            cpu_netlist,
            RSConfiguration.uniform(2).per_channel(cpu_netlist),
            DEFAULT_BLOCK_GATES,
        )
        assert two.total_relay_station_ge == pytest.approx(2 * one.total_relay_station_ge)

    def test_default_ip_size_used_for_unlisted_blocks(self, cpu_netlist):
        report = estimate_overhead(
            cpu_netlist,
            RSConfiguration.ideal().per_channel(cpu_netlist),
            {},
            default_ip_ge=100_000.0,
        )
        assert report.total_ip_ge == pytest.approx(5 * 100_000.0)

    def test_describe_mentions_percentages(self, cpu_netlist):
        report = estimate_overhead(
            cpu_netlist,
            RSConfiguration.uniform(1).per_channel(cpu_netlist),
            DEFAULT_BLOCK_GATES,
        )
        assert "%" in report.describe()

    def test_zero_ip_area_gives_zero_fractions(self, cpu_netlist):
        report = estimate_overhead(
            cpu_netlist,
            RSConfiguration.ideal().per_channel(cpu_netlist),
            {name: 0.0 for name in cpu_netlist.process_names()},
            default_ip_ge=0.0,
        )
        assert report.wrapper_overhead_fraction == 0.0
        assert report.total_overhead_fraction == 0.0
