"""Chaos suite for the distributed tier (DESIGN.md §9).

The anchor property mirrors the local supervised pool's: a batch fanned out
to remote worker agents completes bit-identical to a fault-free serial run,
no matter which network faults the plan injects — worker crashes, mid-shard
disconnects, hangs past the lease, corrupted result frames — and
:class:`~repro.engine.result.SupervisionStats` records every recovery.
Agents come in two flavours here: in-process threads (fast, used wherever
the fault does not have to kill a real process) and real subprocesses via
``agent_main`` (``crash`` faults ``os._exit`` the agent, so those need a
process to kill, plus a respawner standing in for systemd).
"""

from __future__ import annotations

import multiprocessing
import socket
import threading
import time
import warnings

import pytest

from repro.core import RSConfiguration
from repro.core.exceptions import PayloadChecksumError, SimulationError
from repro.cpu import build_pipelined_cpu
from repro.cpu.workloads import make_extraction_sort
from repro.engine import faults
from repro.engine.batch import BatchRunner
from repro.engine.faults import FAULTS_ENV_VAR, FaultPlan, FaultSpec
from repro.distributed import Coordinator, WorkerAgent, agent_main
from repro.distributed.protocol import (
    corrupt_payload_bytes,
    recv_message,
    send_message,
)
from repro.service import EvaluationService

METHODS = [
    m for m in ("fork", "spawn") if m in multiprocessing.get_all_start_methods()
]

#: Fast retries everywhere: the suite tests routing, not wall-clock patience.
FAST = dict(retry_backoff=0.01)


@pytest.fixture(autouse=True)
def _no_leftover_faults(monkeypatch):
    """Every test starts and ends fault-free, env-clean, identity-free."""
    monkeypatch.delenv(FAULTS_ENV_VAR, raising=False)
    faults.uninstall()
    faults.set_worker_identity(None)
    yield
    faults.uninstall()
    faults.set_worker_identity(None)


def _sort_netlist(length=4, seed=3):
    return build_pipelined_cpu(
        make_extraction_sort(length=length, seed=seed).program
    ).netlist


def _configs(n):
    return [
        RSConfiguration.uniform(1 + (i % 3), exclude=("CU-IC",), label=f"cand-{i}")
        for i in range(n)
    ]


def _strip_attempts(results):
    """Comparable row tuples (attempts varies with retries by design)."""
    return [
        (r.label, r.cycles, r.firings, r.halted, r.wrapper_kind, r.error)
        for r in results
    ]


@pytest.fixture(scope="module")
def netlist():
    return _sort_netlist()


@pytest.fixture(scope="module")
def baseline(netlist):
    """Fault-free serial rows every recovery scenario is compared against."""
    return BatchRunner(netlist).run_many(_configs(8), workers=1, stop_process="CU")


class _Agents:
    """N in-process agents serving one coordinator (no processes to kill)."""

    def __init__(self, coordinator, count, prefix="agent", **kwargs):
        kwargs.setdefault("reconnect_delay", 0.05)
        self.agents = []
        self.threads = []
        for index in range(count):
            agent = WorkerAgent(
                "127.0.0.1", coordinator.port,
                worker_id=f"{prefix}-{index}", **kwargs,
            )
            thread = threading.Thread(target=agent.run_forever, daemon=True)
            thread.start()
            self.agents.append(agent)
            self.threads.append(thread)

    def stop(self):
        for agent in self.agents:
            agent.stop()
        for thread in self.threads:
            thread.join(timeout=5.0)


class _RespawningAgent:
    """A subprocess agent plus the supervisor that restarts it when it dies.

    Models the production shape (systemd/k8s restart policy): a ``crash``
    fault ``os._exit``\\ s the agent process, and a fresh process with the
    *same worker id* re-registers — fault strikes and stats persist on the
    coordinator across the respawn.
    """

    def __init__(self, port, worker_id, method, max_restarts=12):
        self.port = port
        self.worker_id = worker_id
        self.ctx = multiprocessing.get_context(method)
        self.max_restarts = max_restarts
        self.restarts = 0
        self._stop = threading.Event()
        self._spawn()
        self._thread = threading.Thread(target=self._watch, daemon=True)
        self._thread.start()

    def _spawn(self):
        self.proc = self.ctx.Process(
            target=agent_main,
            args=("127.0.0.1", self.port, self.worker_id, 0.05),
            daemon=True,
        )
        self.proc.start()

    def _watch(self):
        while not self._stop.is_set():
            self.proc.join(0.05)
            if self.proc.exitcode is None or self._stop.is_set():
                continue
            if self.restarts >= self.max_restarts:
                return
            self.restarts += 1
            self._spawn()

    def stop(self):
        self._stop.set()
        self._thread.join(timeout=5.0)
        if self.proc.is_alive():
            self.proc.terminate()
        self.proc.join(timeout=5.0)


# ---------------------------------------------------------------------------
# The framing protocol
# ---------------------------------------------------------------------------

class TestProtocol:
    def test_round_trip(self):
        a, b = socket.socketpair()
        try:
            message = ("lease", 1, 2, 3, 0, [("x", (None, {"c": 1}, 4))], 5.0)
            send_message(a, message)
            assert recv_message(b) == message
        finally:
            a.close()
            b.close()

    def test_corruption_detected_without_losing_frame_sync(self):
        a, b = socket.socketpair()
        try:
            send_message(a, ("result", "w", 1, 2, "ok", "payload"), corrupt=True)
            send_message(a, ("heartbeat", "w", 1, 2))
            with pytest.raises(PayloadChecksumError):
                recv_message(b)
            # The stream stayed in sync: the next frame arrives intact.
            assert recv_message(b) == ("heartbeat", "w", 1, 2)
        finally:
            a.close()
            b.close()

    def test_clean_close_is_eof(self):
        a, b = socket.socketpair()
        a.close()
        try:
            with pytest.raises(EOFError):
                recv_message(b)
        finally:
            b.close()

    def test_corrupt_payload_bytes_always_differs(self):
        for blob in (b"x", b"ab", b"hello world" * 7):
            assert corrupt_payload_bytes(blob) != blob
            assert len(corrupt_payload_bytes(blob)) == len(blob)


# ---------------------------------------------------------------------------
# Healthy-path parity and graceful degradation
# ---------------------------------------------------------------------------

class TestDistributedParity:
    def test_two_agents_match_serial_bit_identically(self, netlist, baseline):
        coordinator = Coordinator("127.0.0.1", 0)
        agents = _Agents(coordinator, 2)
        try:
            assert coordinator.wait_for_workers(2)
            runner = BatchRunner(netlist)
            results = runner.run_many(
                _configs(8), shards=4, coordinator=coordinator,
                stop_process="CU", **FAST,
            )
            assert _strip_attempts(results) == _strip_attempts(baseline)
            assert all(r.attempts == 1 for r in results)
            assert not runner.supervision.eventful
            stats = coordinator.worker_stats()
            assert set(stats) == {"agent-0", "agent-1"}
            assert sum(s["completed"] for s in stats.values()) == 4
        finally:
            agents.stop()
            coordinator.close()

    def test_zero_workers_degrades_to_local_path(self, netlist, baseline):
        coordinator = Coordinator("127.0.0.1", 0)
        try:
            assert coordinator.available_workers() == 0
            runner = BatchRunner(netlist)
            results = runner.run_many(
                _configs(8), workers=1, coordinator=coordinator,
                stop_process="CU",
            )
            assert _strip_attempts(results) == _strip_attempts(baseline)
            assert not coordinator.supervision.eventful
            assert coordinator.worker_stats() == {}
        finally:
            coordinator.close()

    def test_all_agents_lost_finishes_serially_with_warning(
        self, netlist, baseline
    ):
        # One agent that drops the connection on *every* lease: three
        # strikes quarantine it, nobody is left, the coordinator gives up
        # after its grace period and the caller finishes serially.
        faults.install(FaultPlan.of(FaultSpec(kind="disconnect")))
        coordinator = Coordinator("127.0.0.1", 0, reconnect_grace=0.3)
        agents = _Agents(coordinator, 1, prefix="flaky")
        try:
            assert coordinator.wait_for_workers(1)
            runner = BatchRunner(netlist)
            with warnings.catch_warnings(record=True) as caught:
                warnings.simplefilter("always")
                results = runner.run_many(
                    _configs(8), shards=2, coordinator=coordinator,
                    stop_process="CU", **FAST,
                )
            assert _strip_attempts(results) == _strip_attempts(baseline)
            assert runner.supervision.serial_fallback_items > 0
            assert runner.supervision.retries >= 1
            assert any(
                "distributed workers unavailable" in str(w.message)
                for w in caught
            )
            record = coordinator.worker_stats()["flaky-0"]
            assert record["quarantined"] and record["faults"] >= 3
            assert runner.supervision.workers_quarantined == 1
        finally:
            agents.stop()
            coordinator.close()

    def test_coordinator_restart_agents_reregister(self, netlist, baseline):
        first = Coordinator("127.0.0.1", 0)
        port = first.port
        agents = _Agents(first, 2, prefix="durable")
        second = None
        try:
            assert first.wait_for_workers(2)
            runner = BatchRunner(netlist)
            results = runner.run_many(
                _configs(8), shards=4, coordinator=first,
                stop_process="CU", **FAST,
            )
            assert _strip_attempts(results) == _strip_attempts(baseline)
            # Simulate a coordinator crash: transports die without the
            # shutdown handshake, so agents enter their reconnect loop.
            first._server.shutdown(socket.SHUT_RDWR)
            first._server.close()
            with first._lock:
                for record in first._workers.values():
                    if record.sock is not None:
                        # shutdown, not just close: a blocked reader pins
                        # the connection and the agent never sees FIN.
                        Coordinator._close_socket(record.sock)
            # Rebind may race the dying connections' FIN_WAIT sockets: a
            # restarting coordinator retries its bind, and so does the test.
            deadline = time.monotonic() + 15.0
            while second is None:
                try:
                    second = Coordinator("127.0.0.1", port)
                except OSError:
                    if time.monotonic() >= deadline:
                        raise
                    time.sleep(0.1)
            assert second.wait_for_workers(2)
            results = runner.run_many(
                _configs(8), shards=4, coordinator=second,
                stop_process="CU", **FAST,
            )
            assert _strip_attempts(results) == _strip_attempts(baseline)
        finally:
            agents.stop()
            first.close()
            if second is not None:
                second.close()

    def test_cache_as_transport(self, netlist, baseline, tmp_path):
        coordinator = Coordinator("127.0.0.1", 0, cache_dir=str(tmp_path))
        agents = _Agents(coordinator, 2)
        try:
            assert coordinator.wait_for_workers(2)
            runner = BatchRunner(netlist)
            results = runner.run_many(
                _configs(8), shards=4, coordinator=coordinator,
                stop_process="CU", **FAST,
            )
            assert _strip_attempts(results) == _strip_attempts(baseline)
            # The workers really published by key: the 8 rows collapse to 3
            # distinct content addresses (labels are not part of the key).
            assert len(list(tmp_path.glob("*.json"))) == 3
        finally:
            agents.stop()
            coordinator.close()

    def test_lease_seconds_validated(self):
        with pytest.raises(SimulationError, match="lease_seconds"):
            Coordinator("127.0.0.1", 0, lease_seconds=0)
        with pytest.raises(SimulationError, match="worker_fault_limit"):
            Coordinator("127.0.0.1", 0, worker_fault_limit=0)


# ---------------------------------------------------------------------------
# Network fault recovery (in-process agents)
# ---------------------------------------------------------------------------

class TestNetworkFaults:
    def test_mid_shard_disconnect_requeues(self, netlist, baseline):
        faults.install(
            FaultPlan.of(FaultSpec(kind="disconnect", shard=1, attempt=0))
        )
        coordinator = Coordinator("127.0.0.1", 0)
        agents = _Agents(coordinator, 2)
        try:
            assert coordinator.wait_for_workers(2)
            runner = BatchRunner(netlist)
            results = runner.run_many(
                _configs(8), shards=4, coordinator=coordinator,
                stop_process="CU", **FAST,
            )
            assert _strip_attempts(results) == _strip_attempts(baseline)
            assert runner.supervision.retries >= 1
            assert any(r.attempts > 1 for r in results)
        finally:
            agents.stop()
            coordinator.close()

    def test_hang_past_lease_expires_and_requeues(self, netlist, baseline):
        # The hang fires before the heartbeat thread starts, so the lease
        # genuinely expires and the shard moves to the healthy agent; the
        # hung agent's eventual late result is dropped as stale.
        faults.install(
            FaultPlan.of(FaultSpec(kind="hang", shard=0, attempt=0, seconds=2.0))
        )
        coordinator = Coordinator("127.0.0.1", 0, lease_seconds=0.3)
        agents = _Agents(coordinator, 2)
        try:
            assert coordinator.wait_for_workers(2)
            runner = BatchRunner(netlist)
            started = time.monotonic()
            results = runner.run_many(
                _configs(8), shards=4, coordinator=coordinator,
                stop_process="CU", **FAST,
            )
            assert time.monotonic() - started < 10.0
            assert _strip_attempts(results) == _strip_attempts(baseline)
            assert runner.supervision.lease_expiries >= 1
            assert runner.supervision.retries >= 1
        finally:
            agents.stop()
            coordinator.close()

    def test_slow_link_keeps_lease_through_heartbeats(self, netlist, baseline):
        # A delay longer than the lease: heartbeats keep running through
        # the slow send, so the lease stays fresh and nothing is requeued.
        faults.install(
            FaultPlan.of(FaultSpec(kind="delay", shard=0, attempt=0, seconds=0.8))
        )
        coordinator = Coordinator("127.0.0.1", 0, lease_seconds=0.3)
        agents = _Agents(coordinator, 2)
        try:
            assert coordinator.wait_for_workers(2)
            runner = BatchRunner(netlist)
            results = runner.run_many(
                _configs(8), shards=4, coordinator=coordinator,
                stop_process="CU", **FAST,
            )
            assert _strip_attempts(results) == _strip_attempts(baseline)
            assert runner.supervision.lease_expiries == 0
            assert runner.supervision.retries == 0
            assert all(r.attempts == 1 for r in results)
        finally:
            agents.stop()
            coordinator.close()

    def test_corrupt_payload_detected_and_requeued(self, netlist, baseline):
        faults.install(
            FaultPlan.of(FaultSpec(kind="corrupt-payload", shard=2, attempt=0))
        )
        coordinator = Coordinator("127.0.0.1", 0)
        agents = _Agents(coordinator, 2)
        try:
            assert coordinator.wait_for_workers(2)
            runner = BatchRunner(netlist)
            results = runner.run_many(
                _configs(8), shards=4, coordinator=coordinator,
                stop_process="CU", **FAST,
            )
            assert _strip_attempts(results) == _strip_attempts(baseline)
            assert runner.supervision.corrupt_payloads == 1
            assert runner.supervision.retries >= 1
        finally:
            agents.stop()
            coordinator.close()

    def test_poisoned_item_bisects_to_one_quarantined_row(
        self, netlist, baseline
    ):
        # A hard raise on every attempt of one item: same ladder as the
        # local pool — retry, bisect, quarantine exactly that row.
        faults.install(FaultPlan.of(FaultSpec(kind="raise", label="cand-3")))
        coordinator = Coordinator("127.0.0.1", 0)
        agents = _Agents(coordinator, 2)
        try:
            assert coordinator.wait_for_workers(2)
            runner = BatchRunner(netlist)
            results = runner.run_many(
                _configs(8), shards=2, coordinator=coordinator,
                stop_process="CU", on_error="zero", max_shard_retries=1,
                **FAST,
            )
            row = results[3]
            assert row.failed and "FaultInjectionError" in row.error
            assert row.cycles == 0 and row.label == "cand-3"
            healthy = [r for i, r in enumerate(results) if i != 3]
            expected = [r for i, r in enumerate(baseline) if i != 3]
            assert _strip_attempts(healthy) == _strip_attempts(expected)
            assert runner.supervision.quarantined == 1
            assert runner.supervision.bisections >= 1
        finally:
            agents.stop()
            coordinator.close()


# ---------------------------------------------------------------------------
# Real worker processes: crashes, respawns, the acceptance combo
# ---------------------------------------------------------------------------

class TestSubprocessAgents:
    @pytest.mark.parametrize("method", METHODS)
    def test_crash_poisoned_item_kills_three_workers_quarantines_once(
        self, netlist, baseline, method
    ):
        # The flagship recovery scenario: one item os._exits whichever
        # agent evaluates it.  Three attempts kill three worker processes
        # (the respawner brings each back); the ladder then quarantines
        # exactly that row, siblings bit-identical.
        faults.install(FaultPlan.of(FaultSpec(kind="crash", label="cand-2")))
        coordinator = Coordinator(
            "127.0.0.1", 0, worker_fault_limit=10, lease_seconds=10.0
        )
        agent = _RespawningAgent(coordinator.port, f"crashy-{method}", method)
        try:
            assert coordinator.wait_for_workers(1, timeout=30.0)
            runner = BatchRunner(netlist)
            results = runner.run_many(
                _configs(8), shards=8, coordinator=coordinator,
                stop_process="CU", on_error="zero", max_shard_retries=2,
                **FAST,
            )
            row = results[2]
            assert row.failed and "WorkerCrashError" in row.error
            assert row.label == "cand-2" and row.cycles == 0
            healthy = [r for i, r in enumerate(results) if i != 2]
            expected = [r for i, r in enumerate(baseline) if i != 2]
            assert _strip_attempts(healthy) == _strip_attempts(expected)
            assert runner.supervision.quarantined == 1
            assert runner.supervision.retries >= 2
            # It really died three times (the watcher may still be noticing
            # the last death when run_many returns).
            deadline = time.monotonic() + 10.0
            while agent.restarts < 3 and time.monotonic() < deadline:
                time.sleep(0.05)
            assert agent.restarts >= 3
            record = coordinator.worker_stats()[f"crashy-{method}"]
            assert record["faults"] >= 3
        finally:
            agent.stop()
            coordinator.close()

    def test_worker_selector_quarantines_flaky_agent(self, netlist, baseline):
        # A fault plan naming one worker id: the flaky agent disconnects on
        # its first lease, is quarantined at the (lowered) strike limit,
        # and the healthy agent finishes the whole batch.
        faults.install(
            FaultPlan.of(FaultSpec(kind="disconnect", worker="flaky"))
        )
        coordinator = Coordinator("127.0.0.1", 0, worker_fault_limit=1)
        ctx = multiprocessing.get_context(METHODS[0])
        procs = [
            ctx.Process(
                target=agent_main,
                args=("127.0.0.1", coordinator.port, worker_id, 0.05),
                daemon=True,
            )
            for worker_id in ("flaky", "steady")
        ]
        for proc in procs:
            proc.start()
        try:
            assert coordinator.wait_for_workers(2, timeout=30.0)
            runner = BatchRunner(netlist)
            results = runner.run_many(
                _configs(8), shards=4, coordinator=coordinator,
                stop_process="CU", **FAST,
            )
            assert _strip_attempts(results) == _strip_attempts(baseline)
            stats = coordinator.worker_stats()
            assert stats["flaky"]["quarantined"]
            assert not stats["steady"]["quarantined"]
            assert stats["steady"]["completed"] == 4
            assert runner.supervision.workers_quarantined == 1
        finally:
            coordinator.close()
            for proc in procs:
                proc.terminate()
                proc.join(timeout=5.0)

    def test_mixed_fault_storm_64_rows_bit_identical(self, netlist):
        # The ISSUE-8 acceptance scenario: a 64-row sweep across three real
        # agent processes with a worker crash, a mid-shard disconnect, a
        # hang past the lease, and a corrupted result frame — completing
        # bit-identical to a fault-free serial run, recoveries counted.
        configs = _configs(64)
        serial = BatchRunner(netlist).run_many(
            configs, workers=1, stop_process="CU"
        )
        faults.install(
            FaultPlan.of(
                FaultSpec(kind="crash", shard=0, attempt=0),
                FaultSpec(kind="disconnect", shard=1, attempt=0),
                FaultSpec(kind="hang", shard=2, attempt=0, seconds=3.0),
                FaultSpec(kind="corrupt-payload", shard=3, attempt=0),
            )
        )
        coordinator = Coordinator(
            "127.0.0.1", 0, lease_seconds=0.5, worker_fault_limit=10
        )
        agents = [
            _RespawningAgent(coordinator.port, f"storm-{i}", METHODS[0])
            for i in range(3)
        ]
        try:
            assert coordinator.wait_for_workers(3, timeout=30.0)
            runner = BatchRunner(netlist)
            results = runner.run_many(
                configs, shards=8, coordinator=coordinator,
                stop_process="CU", **FAST,
            )
            assert _strip_attempts(results) == _strip_attempts(serial)
            supervision = runner.supervision
            assert supervision.retries >= 4
            assert supervision.lease_expiries >= 1
            assert supervision.corrupt_payloads >= 1
            assert supervision.quarantined == 0
            assert supervision.serial_fallback_items == 0
            assert any(r.attempts > 1 for r in results)
        finally:
            for agent in agents:
                agent.stop()
            coordinator.close()


# ---------------------------------------------------------------------------
# Cross-batch runner reuse on the agent
# ---------------------------------------------------------------------------

class TestAgentRunnerCache:
    def test_same_netlist_reuses_runner_across_batches(self, netlist, baseline):
        """Two batches shipping the same netlist build its runner once."""
        coordinator = Coordinator("127.0.0.1", 0)
        agents = _Agents(coordinator, 1, prefix="cache")
        try:
            assert coordinator.wait_for_workers(1)
            runner = BatchRunner(netlist)
            for _ in range(2):
                results = runner.run_many(
                    _configs(8), shards=2, coordinator=coordinator,
                    stop_process="CU", **FAST,
                )
                assert _strip_attempts(results) == _strip_attempts(baseline)
            [agent] = agents.agents
            assert agent.runner_builds == 1
        finally:
            agents.stop()
            coordinator.close()

    def test_different_netlist_builds_a_fresh_runner(self, netlist):
        """A batch over different content misses the cache and builds anew."""
        coordinator = Coordinator("127.0.0.1", 0)
        agents = _Agents(coordinator, 1, prefix="cache2")
        try:
            assert coordinator.wait_for_workers(1)
            BatchRunner(netlist).run_many(
                _configs(4), shards=2, coordinator=coordinator,
                stop_process="CU", **FAST,
            )
            other = _sort_netlist(length=5, seed=4)
            BatchRunner(other).run_many(
                _configs(4), shards=2, coordinator=coordinator,
                stop_process="CU", **FAST,
            )
            [agent] = agents.agents
            assert agent.runner_builds == 2
        finally:
            agents.stop()
            coordinator.close()


# ---------------------------------------------------------------------------
# Service integration and environment validation
# ---------------------------------------------------------------------------

class TestServiceIntegration:
    def test_service_routes_through_coordinator_and_reports_workers(self):
        coordinator = Coordinator("127.0.0.1", 0)
        agents = _Agents(coordinator, 2, prefix="svc")
        service = EvaluationService(workers=2, coordinator=coordinator)
        try:
            assert coordinator.wait_for_workers(2)
            netlist = _sort_netlist()
            layout = service.ensure_layout(netlist, relaxed=False)
            configs = _configs(6)
            jobset = service.submit(
                [(layout, c) for c in configs], stop_process="CU"
            )
            results = jobset.ordered_results()
            direct = BatchRunner(netlist, relaxed=False).run_many(
                configs, stop_process="CU"
            )
            assert _strip_attempts(results) == _strip_attempts(direct)
            stats = service.stats()
            workers = stats["supervision"]["workers"]
            assert set(workers) == {"svc-0", "svc-1"}
            assert sum(w["completed"] for w in workers.values()) >= 1
        finally:
            service.close()
            agents.stop()
            coordinator.close()


class TestFaultEnvValidation:
    def test_bad_json_names_env_var(self, monkeypatch):
        monkeypatch.setenv(FAULTS_ENV_VAR, "{not json")
        with pytest.raises(SimulationError) as excinfo:
            faults.validate_env()
        assert FAULTS_ENV_VAR in str(excinfo.value)
        assert "invalid fault plan JSON" in str(excinfo.value)

    def test_bad_spec_names_env_var_and_index(self, monkeypatch):
        monkeypatch.setenv(
            FAULTS_ENV_VAR, '[{"kind": "crash"}, {"kind": "crash", "banana": 1}]'
        )
        with pytest.raises(SimulationError) as excinfo:
            faults.validate_env()
        message = str(excinfo.value)
        assert FAULTS_ENV_VAR in message
        assert "invalid fault spec #1" in message
        assert "banana" in message

    def test_cli_fails_fast_with_clear_error(self, monkeypatch, capsys):
        from repro.__main__ import main

        monkeypatch.setenv(FAULTS_ENV_VAR, "[42]")
        assert main(["figure1"]) == 2
        err = capsys.readouterr().err
        assert FAULTS_ENV_VAR in err and "invalid fault spec #0" in err

    def test_worker_agent_rejects_bad_env(self, monkeypatch):
        monkeypatch.setenv(FAULTS_ENV_VAR, "{not json")
        agent = WorkerAgent("127.0.0.1", 1, worker_id="doomed")
        with pytest.raises(SimulationError, match=FAULTS_ENV_VAR):
            agent.run_forever()


class TestCLI:
    def test_worker_subcommand_parses(self):
        from repro.__main__ import build_parser

        args = build_parser().parse_args(
            ["worker", "--connect", "127.0.0.1:9000", "--worker-id", "w1"]
        )
        assert args.command == "worker"
        assert args.connect == "127.0.0.1:9000"
        assert args.worker_id == "w1"

    def test_submit_serve_options_parse(self):
        from repro.__main__ import build_parser

        args = build_parser().parse_args(
            ["submit", "--serve", "9000", "--wait-workers", "2",
             "--lease-seconds", "1.5"]
        )
        assert args.serve == "9000"
        assert args.wait_workers == 2
        assert args.lease_seconds == 1.5

    def test_parse_address(self):
        from repro.__main__ import _parse_address

        assert _parse_address("9000") == ("127.0.0.1", 9000)
        assert _parse_address("0.0.0.0:81") == ("0.0.0.0", 81)
        with pytest.raises(SystemExit):
            _parse_address("nope")
