"""Chaos suite: the fault-tolerance contract, driven by deterministic faults.

Every recovery path of the supervised pool (DESIGN.md §8) is exercised here
through :mod:`repro.engine.faults` — worker crashes, hung shards, poisoned
items, corrupted cache entries, wedged evaluations at close() — under both
the ``fork`` and ``spawn`` start methods where it matters.  The anchor
property: a batch that hits faults still completes, healthy items
bit-identical to a fault-free run, poisoned items as per-item error rows,
and :class:`~repro.engine.result.SupervisionStats` tells the story.
"""

import json
import multiprocessing
import threading
import time
import warnings

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import RSConfiguration
from repro.core.exceptions import (
    FaultInjectionError,
    SimulationError,
    WorkerCrashError,
)
from repro.cpu import build_pipelined_cpu
from repro.cpu.workloads import make_extraction_sort
from repro.engine import faults
from repro.engine.batch import BatchRunner
from repro.engine.faults import FAULTS_ENV_VAR, FaultPlan, FaultSpec
from repro.engine.kernel import RunControls
from repro.engine.result import SupervisionStats
from repro.engine.supervised_pool import RESPAWN_BUDGET_PER_WORKER
from repro.service import EvaluationService, ResultCache
from repro.service.jobs import JobStatus

METHODS = [
    m for m in ("fork", "spawn") if m in multiprocessing.get_all_start_methods()
]

#: Fast retries everywhere: the suite tests routing, not wall-clock patience.
FAST = dict(retry_backoff=0.01)


@pytest.fixture(autouse=True)
def _no_leftover_faults(monkeypatch):
    """Every test starts and ends fault-free (and env-clean)."""
    monkeypatch.delenv(FAULTS_ENV_VAR, raising=False)
    faults.uninstall()
    yield
    faults.uninstall()


def _sort_netlist(length=4, seed=3):
    return build_pipelined_cpu(
        make_extraction_sort(length=length, seed=seed).program
    ).netlist


def _configs(n):
    return [
        RSConfiguration.uniform(1 + (i % 3), exclude=("CU-IC",), label=f"cand-{i}")
        for i in range(n)
    ]


def _strip_attempts(results):
    """Comparable row tuples (attempts varies with retries by design)."""
    return [
        (r.label, r.cycles, r.firings, r.halted, r.wrapper_kind, r.error)
        for r in results
    ]


@pytest.fixture(scope="module")
def netlist():
    return _sort_netlist()


@pytest.fixture(scope="module")
def baseline(netlist):
    """Fault-free serial rows every recovery scenario is compared against."""
    return BatchRunner(netlist).run_many(
        _configs(8), workers=1, stop_process="CU"
    )


# ---------------------------------------------------------------------------
# Fault plans themselves
# ---------------------------------------------------------------------------

class TestFaultPlan:
    def test_json_round_trip(self):
        plan = FaultPlan.of(
            FaultSpec(kind="crash", shard=1, attempt=0),
            FaultSpec(kind="hang", label="cand-2", seconds=2.5),
            FaultSpec(kind="raise", label="cand-3", simulation=True),
            FaultSpec(kind="corrupt-cache", key="any"),
        )
        assert FaultPlan.from_json(plan.to_json()) == plan

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            FaultSpec(kind="meteor")

    def test_bad_json_is_simulation_error(self):
        with pytest.raises(SimulationError, match="invalid fault plan JSON"):
            FaultPlan.from_json("{not json")
        with pytest.raises(SimulationError, match="JSON list"):
            FaultPlan.from_json('{"kind": "crash"}')
        with pytest.raises(SimulationError, match="invalid fault spec"):
            FaultPlan.from_json('[{"kind": "crash", "banana": 1}]')

    def test_env_activation_and_cache(self, monkeypatch):
        plan = FaultPlan.of(FaultSpec(kind="crash", shard=0))
        monkeypatch.setenv(FAULTS_ENV_VAR, plan.to_json())
        assert faults.active_plan() == plan
        # An installed plan wins over the environment.
        other = FaultPlan.of(FaultSpec(kind="hang", label="x"))
        faults.install(other)
        assert faults.active_plan() == other

    def test_crash_is_noop_in_driver(self):
        # The driving process is not a worker: a crash fault must not kill
        # the test run (give-up serial fallback depends on this).
        faults.install(FaultPlan.of(FaultSpec(kind="crash")))
        faults.maybe_fault_shard(0, 0)

    def test_attempt_selector(self):
        spec = FaultSpec(kind="crash", shard=2, attempt=0)
        assert spec.matches_shard(2, 0)
        assert not spec.matches_shard(2, 1)
        assert not spec.matches_shard(1, 0)
        always = FaultSpec(kind="crash", shard=2)
        assert always.matches_shard(2, 5)


class TestSupervisionStats:
    def test_merge_and_round_trip(self):
        a = SupervisionStats(respawns=1, retries=2)
        b = SupervisionStats(retries=1, quarantined=3, timeouts=1)
        merged = a.merge(b)
        assert merged is a
        assert (a.respawns, a.retries, a.timeouts, a.quarantined) == (1, 3, 1, 3)
        assert SupervisionStats.from_dict(a.to_dict()) == a
        assert a.eventful and not SupervisionStats().eventful
        assert "1 respawns" in a.summary()


# ---------------------------------------------------------------------------
# Crash containment and the watchdog
# ---------------------------------------------------------------------------

class TestCrashRecovery:
    @pytest.mark.parametrize("method", METHODS)
    def test_worker_crash_mid_batch_recovers_bit_identically(
        self, netlist, baseline, method
    ):
        faults.install(FaultPlan.of(FaultSpec(kind="crash", shard=1, attempt=0)))
        runner = BatchRunner(netlist)
        results = runner.run_many(
            _configs(8), workers=2, shards=4, start_method=method,
            stop_process="CU", **FAST,
        )
        assert _strip_attempts(results) == _strip_attempts(baseline)
        assert runner.supervision.respawns >= 1
        assert runner.supervision.retries >= 1
        assert runner.supervision.quarantined == 0
        # The recovered shard's rows record the extra attempt.
        assert any(r.attempts > 1 for r in results)

    def test_hang_hits_shard_timeout_and_recovers(self, netlist, baseline):
        faults.install(
            FaultPlan.of(FaultSpec(kind="hang", label="cand-2", seconds=30.0,
                                   attempt=0))
        )
        runner = BatchRunner(netlist)
        started = time.monotonic()
        results = runner.run_many(
            _configs(8), workers=2, shards=4, start_method="fork",
            stop_process="CU", shard_timeout=0.5, **FAST,
        )
        assert time.monotonic() - started < 20.0  # not the 30s hang
        assert _strip_attempts(results) == _strip_attempts(baseline)
        assert runner.supervision.timeouts >= 1
        assert runner.supervision.respawns >= 1

    def test_shard_timeout_validated(self, netlist):
        with pytest.raises(SimulationError, match="shard_timeout"):
            BatchRunner(netlist).run_many(
                _configs(2), stop_process="CU", shard_timeout=-1.0
            )
        with pytest.raises(SimulationError, match="max_shard_retries"):
            BatchRunner(netlist).run_many(
                _configs(2), stop_process="CU", max_shard_retries=-1
            )


# ---------------------------------------------------------------------------
# Poisoned items: bisection and quarantine
# ---------------------------------------------------------------------------

class TestQuarantine:
    def test_poisoned_item_quarantined_siblings_succeed(
        self, netlist, baseline
    ):
        # A hard (non-simulation) raise on every attempt: retries cannot fix
        # it, bisection must isolate it out of a multi-item shard.
        faults.install(FaultPlan.of(FaultSpec(kind="raise", label="cand-3")))
        runner = BatchRunner(netlist)
        results = runner.run_many(
            _configs(8), workers=2, shards=2, start_method="fork",
            stop_process="CU", on_error="zero", max_shard_retries=1, **FAST,
        )
        row = results[3]
        assert row.failed and "FaultInjectionError" in row.error
        assert row.cycles == 0 and row.label == "cand-3"
        healthy = [r for i, r in enumerate(results) if i != 3]
        expected = [r for i, r in enumerate(baseline) if i != 3]
        assert _strip_attempts(healthy) == _strip_attempts(expected)
        assert runner.supervision.quarantined == 1
        assert runner.supervision.bisections >= 1

    @pytest.mark.parametrize("method", METHODS)
    def test_crash_poisoned_item_quarantined_both_methods(
        self, netlist, baseline, method
    ):
        # The acceptance scenario: one item segfaults the worker on every
        # attempt.  The batch still completes — siblings bit-identical, the
        # poisoned item an error row naming the crash.
        faults.install(FaultPlan.of(FaultSpec(kind="crash", label="cand-2")))
        runner = BatchRunner(netlist)
        results = runner.run_many(
            _configs(8), workers=2, shards=4, start_method=method,
            stop_process="CU", on_error="zero", max_shard_retries=1, **FAST,
        )
        row = results[2]
        assert row.failed and "WorkerCrashError" in row.error
        healthy = [r for i, r in enumerate(results) if i != 2]
        expected = [r for i, r in enumerate(baseline) if i != 2]
        assert _strip_attempts(healthy) == _strip_attempts(expected)
        assert runner.supervision.quarantined == 1
        assert runner.supervision.respawns >= 2

    def test_on_error_raise_surfaces_worker_crash(self, netlist):
        faults.install(FaultPlan.of(FaultSpec(kind="crash", label="cand-1")))
        runner = BatchRunner(netlist)
        with pytest.raises(WorkerCrashError):
            runner.run_many(
                _configs(4), workers=2, shards=4, start_method="fork",
                stop_process="CU", on_error="raise", max_shard_retries=0,
                **FAST,
            )

    def test_simulation_fault_is_ordinary_error_row(self, netlist):
        # simulation=True faults are absorbed by the per-item on_error
        # machinery inside the worker: no supervision events at all.
        faults.install(
            FaultPlan.of(FaultSpec(kind="raise", label="cand-1",
                                   simulation=True))
        )
        runner = BatchRunner(netlist)
        results = runner.run_many(
            _configs(4), workers=2, start_method="fork",
            stop_process="CU", on_error="zero", **FAST,
        )
        assert "SimulationError" in results[1].error
        assert not runner.supervision.eventful

    def test_give_up_falls_back_to_serial_with_stats_warning(
        self, netlist, baseline
    ):
        # Every shard crashes on every attempt.  With a deep retry budget no
        # shard ever reaches quarantine, so the pool burns its respawn
        # budget, gives up, and the driver finishes serially (where crash
        # faults are no-ops) — every row still correct.
        faults.install(FaultPlan.of(FaultSpec(kind="crash")))
        runner = BatchRunner(netlist)
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            results = runner.run_many(
                _configs(8), workers=2, shards=8, start_method="fork",
                stop_process="CU", on_error="zero", max_shard_retries=50,
                **FAST,
            )
        assert _strip_attempts(results) == _strip_attempts(baseline)
        budget = RESPAWN_BUDGET_PER_WORKER * 2 + 2
        assert runner.supervision.respawns >= budget
        assert runner.supervision.serial_fallback_items > 0
        messages = [str(w.message) for w in caught
                    if issubclass(w.category, RuntimeWarning)]
        assert any("supervision before fallback" in m for m in messages)


# ---------------------------------------------------------------------------
# The no-fault equivalence property
# ---------------------------------------------------------------------------

class TestEquivalenceProperty:
    @settings(
        max_examples=6, deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(
        n_items=st.integers(min_value=1, max_value=6),
        shards=st.integers(min_value=1, max_value=6),
        depth_seed=st.integers(min_value=0, max_value=2),
    )
    def test_supervised_equals_serial_without_faults(
        self, netlist, n_items, shards, depth_seed
    ):
        configs = [
            RSConfiguration.uniform(
                1 + ((i + depth_seed) % 3), exclude=("CU-IC",),
                label=f"p-{i}",
            )
            for i in range(n_items)
        ]
        serial = BatchRunner(netlist).run_many(
            configs, workers=1, stop_process="CU"
        )
        runner = BatchRunner(netlist)
        pooled = runner.run_many(
            configs, workers=2, shards=shards, start_method="fork",
            stop_process="CU",
        )
        assert _strip_attempts(pooled) == _strip_attempts(serial)
        assert all(r.attempts == 1 for r in pooled)
        assert not runner.supervision.eventful


# ---------------------------------------------------------------------------
# Environment-driven activation (what the CI chaos smoke exercises)
# ---------------------------------------------------------------------------

class TestEnvActivation:
    def test_repro_faults_env_reaches_workers(self, netlist, baseline,
                                              monkeypatch):
        plan = FaultPlan.of(FaultSpec(kind="crash", shard=0, attempt=0))
        monkeypatch.setenv(FAULTS_ENV_VAR, plan.to_json())
        runner = BatchRunner(netlist)
        results = runner.run_many(
            _configs(8), workers=2, shards=4, start_method="fork",
            stop_process="CU", **FAST,
        )
        assert _strip_attempts(results) == _strip_attempts(baseline)
        assert runner.supervision.respawns >= 1


# ---------------------------------------------------------------------------
# Service-level fault tolerance
# ---------------------------------------------------------------------------

class TestServiceFaultTolerance:
    def test_quarantined_job_is_error_row_not_service_failure(self, netlist):
        faults.install(FaultPlan.of(FaultSpec(kind="raise", label="cand-1")))
        with EvaluationService(workers=2, start_method="fork") as service:
            layout = service.ensure_layout(netlist)
            jobs = service.submit(
                [(layout, c) for c in _configs(4)],
                controls=RunControls(stop_process="CU", retry_backoff=0.01),
            )
            rows = jobs.ordered_results(timeout=120)
        assert all(job.status is JobStatus.DONE for job in jobs)
        assert rows[1].failed and "FaultInjectionError" in rows[1].error
        assert all(not rows[i].failed for i in (0, 2, 3))
        stats = service.stats()
        assert stats["supervision"]["quarantined"] == 1

    def test_job_retry_then_terminal_failure(self, netlist, monkeypatch):
        # Force run_many itself to raise: the scheduler must retry each job
        # up to max_job_attempts, then fail it terminally.
        from repro.engine.batch import MultiNetlistRunner

        calls = []

        def explode(self, *args, **kwargs):
            calls.append(1)
            raise RuntimeError("chunk evaluation exploded")

        monkeypatch.setattr(MultiNetlistRunner, "run_many", explode)
        service = EvaluationService(workers=1, max_job_attempts=2)
        try:
            layout = service.ensure_layout(netlist)
            jobs = service.submit(
                [(layout, _configs(1)[0])], stop_process="CU"
            )
            assert jobs.wait(timeout=60)
            job = jobs.jobs[0]
            assert job.status is JobStatus.FAILED
            assert job.attempts == 2
            assert "chunk evaluation exploded" in job.error
            assert service.stats()["retried"] == 1
            assert len(calls) == 2
        finally:
            service.close(cancel_pending=True)

    def test_close_fails_wedged_jobs_instead_of_hanging(self, netlist):
        # A blocking on_cycle observer wedges the evaluation; close() with
        # cancel_pending must unblock the submitter by failing the job.
        release = threading.Event()

        def block(cycle, fired):
            release.wait(timeout=60)

        service = EvaluationService(workers=1, join_timeout=0.5)
        try:
            layout = service.ensure_layout(netlist)
            jobs = service.submit(
                [(layout, _configs(1)[0])],
                controls=RunControls(stop_process="CU", on_cycle=block),
            )
            time.sleep(0.3)  # let the scheduler pick the job up
            started = time.monotonic()
            service.close(cancel_pending=True)
            assert time.monotonic() - started < 10.0
            job = jobs.jobs[0]
            assert job.done
            assert job.status is JobStatus.FAILED
            assert "abandoned at close()" in job.error
        finally:
            release.set()
            service.close(cancel_pending=True)

    def test_max_pending_applies_backpressure(self, netlist):
        service = EvaluationService(workers=1, max_pending=2, autostart=False)
        try:
            layout = service.ensure_layout(netlist)
            configs = _configs(5)
            submitted = []

            def submitter():
                jobs = service.submit(
                    [(layout, c) for c in configs], stop_process="CU"
                )
                submitted.append(jobs)

            thread = threading.Thread(target=submitter, daemon=True)
            thread.start()
            time.sleep(0.5)
            # Scheduler not started: the third enqueue is blocked on a slot.
            assert not submitted
            assert service.stats()["queue_depth"] == 2
            service.start()
            thread.join(timeout=120)
            assert not thread.is_alive() and submitted
            assert submitted[0].wait(timeout=120)
            assert all(j.status is JobStatus.DONE for j in submitted[0])
        finally:
            service.close(cancel_pending=True)


# ---------------------------------------------------------------------------
# Cache corruption hardening
# ---------------------------------------------------------------------------

class TestCacheCorruption:
    def _result(self, runner, label="row"):
        return runner.run_many(
            [RSConfiguration.uniform(1, exclude=("CU-IC",), label=label)],
            workers=1, stop_process="CU",
        )[0]

    def test_truncated_file_quarantined(self, tmp_path, netlist):
        cache = ResultCache(cache_dir=tmp_path)
        result = self._result(BatchRunner(netlist))
        cache.put("k" * 8, result)
        path = tmp_path / (("k" * 8) + ".json")
        path.write_text(path.read_text()[:40])  # torn write
        cache.clear()  # force the disk tier
        assert cache.get("k" * 8) is None
        assert not path.exists()
        assert (tmp_path / (("k" * 8) + ".corrupt")).exists()
        assert cache.corrupt_quarantined == 1
        # Quarantine is one-shot: the next lookup is a clean miss.
        assert cache.get("k" * 8) is None
        assert cache.corrupt_quarantined == 1

    def test_checksum_mismatch_quarantined(self, tmp_path, netlist):
        cache = ResultCache(cache_dir=tmp_path)
        result = self._result(BatchRunner(netlist))
        cache.put("deadbeef", result)
        path = tmp_path / "deadbeef.json"
        payload = json.loads(path.read_text())
        payload["result"]["cycles"] += 1  # valid JSON, silently flipped bit
        path.write_text(json.dumps(payload))
        cache.clear()
        assert cache.get("deadbeef") is None
        assert cache.corrupt_quarantined == 1
        assert (tmp_path / "deadbeef.corrupt").exists()

    def test_old_schema_misses_without_quarantine(self, tmp_path):
        cache = ResultCache(cache_dir=tmp_path)
        (tmp_path / "aaaa.json").write_text(
            json.dumps({"version": 1, "result": {}})
        )
        assert cache.get("aaaa") is None
        assert cache.corrupt_quarantined == 0
        assert (tmp_path / "aaaa.json").exists()  # compat miss, not damage

    def test_corrupt_cache_fault_exercises_quarantine(self, tmp_path, netlist):
        faults.install(FaultPlan.of(FaultSpec(kind="corrupt-cache", key="any")))
        cache = ResultCache(cache_dir=tmp_path)
        runner = BatchRunner(netlist)
        result = self._result(runner)
        cache.put("facefeed", result)  # the fault corrupts the written file
        cache.clear()
        assert cache.get("facefeed") is None
        assert cache.corrupt_quarantined == 1
        faults.uninstall()
        # Re-put repopulates cleanly and round-trips bit-identically.
        cache.put("facefeed", result)
        cache.clear()
        again = cache.get("facefeed")
        assert again is not None and again.to_dict() == result.to_dict()

    def test_batch_result_attempts_round_trips(self, netlist):
        result = self._result(BatchRunner(netlist))
        result.attempts = 3
        from repro.engine.batch import BatchResult

        clone = BatchResult.from_dict(json.loads(json.dumps(result.to_dict())))
        assert clone.attempts == 3
        # Old serialized forms (no attempts key) default to 1.
        old = result.to_dict()
        del old["attempts"]
        assert BatchResult.from_dict(old).attempts == 1
