"""Shared fixtures for the test suite.

Workload sizes are kept small so the full suite runs in well under a minute;
the benchmark harness exercises the paper-scale sizes.
"""

from __future__ import annotations

import pytest

from repro.core import RSConfiguration, ring_netlist
from repro.cpu import build_multicycle_cpu, build_pipelined_cpu
from repro.cpu.workloads import make_extraction_sort, make_matrix_multiply


@pytest.fixture(scope="session")
def sort_workload():
    """A small extraction-sort workload (8 elements)."""
    return make_extraction_sort(length=8, seed=7)


@pytest.fixture(scope="session")
def matmul_workload():
    """A small matrix-multiply workload (3x3)."""
    return make_matrix_multiply(size=3, seed=7)


@pytest.fixture()
def sort_cpu(sort_workload):
    """A pipelined CPU loaded with the small sort workload."""
    return build_pipelined_cpu(sort_workload.program)


@pytest.fixture()
def matmul_cpu(matmul_workload):
    """A pipelined CPU loaded with the small matmul workload."""
    return build_pipelined_cpu(matmul_workload.program)


@pytest.fixture()
def multicycle_sort_cpu(sort_workload):
    """A multicycle CPU loaded with the small sort workload."""
    return build_multicycle_cpu(sort_workload.program)


@pytest.fixture()
def ring2():
    """A two-stage ring with one relay station on one edge."""
    netlist, rs_counts = ring_netlist(2, rs_total=1)
    return netlist, rs_counts


@pytest.fixture()
def all_one_config():
    """The 'All 1 (no CU-IC)' configuration used throughout Table 1."""
    return RSConfiguration.uniform(1, exclude=("CU-IC",))
