"""Unit tests for the golden-vs-wire-pipelined verification driver."""

from __future__ import annotations

import pytest

from repro.core.config import RSConfiguration
from repro.core.netlist import ring_netlist
from repro.core.verification import compare_wrappers, verify_configuration
from repro.cpu import build_pipelined_cpu
from repro.cpu.workloads import make_extraction_sort


class TestVerifyOnRing:
    def test_ring_verification_equivalent(self):
        netlist, rs_counts = ring_netlist(3, rs_total=1)
        result = verify_configuration(
            netlist, rs_counts=rs_counts, max_cycles=5_000
        )
        # Rings have no is_done hook, so both runs stop at max_cycles for the
        # golden and the LID run needs a stop condition: the golden run hits
        # max_cycles and the LID run is compared on the common prefix.
        assert result.equivalence.equivalent

    def test_throughput_and_slowdown_are_reciprocal(self):
        netlist, rs_counts = ring_netlist(2, rs_total=1)
        result = verify_configuration(netlist, rs_counts=rs_counts, max_cycles=2_000)
        assert result.throughput * result.slowdown == pytest.approx(1.0)


class TestVerifyOnCpu:
    @pytest.fixture(scope="class")
    def cpu(self):
        return build_pipelined_cpu(make_extraction_sort(length=6).program)

    def test_wp1_configuration_is_equivalent_and_slower(self, cpu):
        result = verify_configuration(
            cpu.netlist,
            configuration=RSConfiguration.only("RF-DC"),
            relaxed=False,
            stop_process="CU",
        )
        result.require_equivalent()
        assert result.throughput < 1.0
        assert result.pipelined.cycles > result.golden.cycles

    def test_wp2_not_slower_than_wp1(self, cpu):
        row = compare_wrappers(
            cpu.netlist,
            RSConfiguration.only("ALU-RF"),
            stop_process="CU",
        )
        assert row.wp2_throughput >= row.wp1_throughput
        assert row.improvement_percent >= 0.0
        assert row.wp2_cycles <= row.wp1.pipelined.cycles

    def test_reusing_golden_result(self, cpu):
        golden = cpu.run_golden()
        result = verify_configuration(
            cpu.netlist,
            configuration=RSConfiguration.only("DC-RF"),
            relaxed=True,
            stop_process="CU",
            golden=golden,
        )
        assert result.golden is golden
        assert result.equivalence.equivalent

    def test_equivalence_check_can_be_skipped(self, cpu):
        result = verify_configuration(
            cpu.netlist,
            configuration=RSConfiguration.only("DC-RF"),
            stop_process="CU",
            check_equivalence=False,
        )
        assert result.equivalence.equivalent  # trivially true when skipped
        assert result.pipelined.trace.cycles() == 0

    def test_comparison_row_carries_configuration(self, cpu):
        config = RSConfiguration.only("CU-DC")
        row = compare_wrappers(cpu.netlist, config, stop_process="CU",
                               check_equivalence=False)
        assert row.configuration is config
        assert row.golden_cycles > 0
