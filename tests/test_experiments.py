"""Tests for the experiment harnesses (Table 1, Figure 1, claims, sweeps).

The harnesses are exercised on reduced workload sizes so the whole suite stays
fast; the benchmark directory runs the paper-scale versions.
"""

from __future__ import annotations

from fractions import Fraction

import pytest

from repro.core import RSConfiguration, throughput_bound
from repro.cpu import build_pipelined_cpu
from repro.cpu.topology import TABLE1_LINK_ORDER
from repro.cpu.workloads import make_extraction_sort, make_matrix_multiply
from repro.experiments import (
    build_figure1_netlist,
    clock_frequency_sweep,
    default_floorplan,
    evaluate_rows,
    matmul_row_configurations,
    optimal_configuration,
    queue_capacity_sweep,
    reference_wrapper_overhead_percent,
    run_area_overhead,
    run_figure1,
    run_multicycle_study,
    run_table1_sort,
    single_link_rows,
    sort_row_configurations,
    uniform_depth_sweep,
)


@pytest.fixture(scope="module")
def small_sort_table():
    return run_table1_sort(length=6, seed=3)


class TestTable1Harness:
    def test_row_definitions_match_paper_counts(self):
        cpu = build_pipelined_cpu(make_extraction_sort(length=4).program)
        assert len(sort_row_configurations(cpu)) == 13
        assert len(matmul_row_configurations(cpu)) == 25
        assert len(single_link_rows()) == len(TABLE1_LINK_ORDER)

    def test_sort_table_rows_evaluated(self, small_sort_table):
        assert len(small_sort_table.rows) == 13
        assert small_sort_table.golden_cycles > 0
        assert small_sort_table.workload == "Extraction Sort"

    def test_ideal_row_has_unit_throughput(self, small_sort_table):
        ideal = small_sort_table.rows[0]
        assert ideal.wp1_throughput == pytest.approx(1.0, abs=0.02)
        assert ideal.wp2_throughput == pytest.approx(1.0, abs=0.02)

    def test_wp2_never_worse_than_wp1(self, small_sort_table):
        for row in small_sort_table.rows:
            assert row.wp2_throughput >= row.wp1_throughput - 1e-9
            assert row.improvement_percent >= -1e-9

    def test_wp1_close_to_static_bound(self, small_sort_table):
        for row in small_sort_table.rows:
            assert row.wp1_throughput <= row.static_bound + 0.03

    def test_cu_ic_row_matches_paper_wp1_value(self, small_sort_table):
        row = small_sort_table.row("Only CU-IC")
        assert row.wp1_throughput == pytest.approx(0.5, abs=0.02)

    def test_row_lookup_by_label_raises_for_unknown(self, small_sort_table):
        with pytest.raises(KeyError):
            small_sort_table.row("Only GHOST")

    def test_row_as_dict_and_format(self, small_sort_table):
        row_dict = small_sort_table.rows[1].as_dict()
        assert {"label", "wp1_throughput", "wp2_throughput"} <= set(row_dict)
        text = small_sort_table.format()
        assert "RS Configuration" in text
        assert "Only CU-IC" in text

    def test_optimal_configuration_improves_on_uniform(self):
        cpu = build_pipelined_cpu(make_extraction_sort(length=4).program)
        optimal = optimal_configuration(cpu, per_link_max=1)
        uniform = RSConfiguration.uniform(1, exclude=("CU-IC",))
        optimal_bound = throughput_bound(cpu.netlist, configuration=optimal).bound
        uniform_bound = throughput_bound(cpu.netlist, configuration=uniform).bound
        assert optimal_bound > uniform_bound
        # The redistribution keeps the same total number of relay stations.
        assert optimal.total_relay_stations(cpu.netlist) >= uniform.total_relay_stations(cpu.netlist)

    def test_evaluate_rows_with_equivalence_check(self):
        workload = make_extraction_sort(length=4, seed=1)
        result = evaluate_rows(
            workload,
            [RSConfiguration.ideal(), RSConfiguration.only("RF-DC")],
            check_equivalence=True,
        )
        assert all(row.equivalent for row in result.rows)

    def test_progress_callback_invoked(self):
        workload = make_extraction_sort(length=4, seed=1)
        messages = []
        evaluate_rows(
            workload,
            [RSConfiguration.ideal()],
            progress=messages.append,
        )
        assert len(messages) == 1


class TestFigure1Harness:
    def test_report_structure(self):
        report = run_figure1()
        assert sorted(report.blocks) == ["ALU", "CU", "DC", "IC", "RF"]
        assert len(report.channels) == 11
        assert report.loop_count == 7

    def test_two_block_loops_identified(self):
        report = run_figure1()
        shortest = report.shortest_loops()
        assert all(loop.length == 2 for loop in shortest)
        assert len(shortest) == 4

    def test_per_link_bounds_match_static_analysis(self):
        report = run_figure1()
        netlist = build_figure1_netlist()
        for link, bound in report.per_link_bound.items():
            expected = throughput_bound(
                netlist, configuration=RSConfiguration.only(link)
            ).bound
            assert bound == expected

    def test_cu_ic_is_the_most_sensitive_link(self):
        report = run_figure1()
        assert report.per_link_bound["CU-IC"] == Fraction(1, 2)
        assert min(report.per_link_bound.values()) == Fraction(1, 2)

    def test_format_lists_blocks_channels_loops(self):
        text = run_figure1().format()
        assert "blocks (5)" in text
        assert "cu_ic" in text
        assert "Only CU-IC" in text


class TestMulticycleStudy:
    def test_multicycle_fetch_gain_exceeds_pipelined(self):
        workload = make_extraction_sort(length=6, seed=2)
        study = run_multicycle_study(workload=workload, links=["CU-IC", "RF-DC"])
        assert study.gain("multicycle", "CU-IC") > study.gain("pipelined", "CU-IC")

    def test_format_contains_links(self):
        workload = make_extraction_sort(length=4, seed=2)
        study = run_multicycle_study(workload=workload, links=["CU-IC"])
        assert "CU-IC" in study.format()

    def test_all_gains_non_negative(self):
        workload = make_extraction_sort(length=5, seed=2)
        study = run_multicycle_study(workload=workload, links=["CU-IC", "ALU-CU"])
        for link in study.links:
            assert study.gain("multicycle", link) >= -1e-9
            assert study.gain("pipelined", link) >= -1e-9


class TestAreaOverheadClaim:
    def test_reference_wrapper_under_one_percent(self):
        assert reference_wrapper_overhead_percent() < 1.0

    def test_wp2_reference_only_slightly_larger_than_wp1(self):
        wp1 = reference_wrapper_overhead_percent(relaxed=False)
        wp2 = reference_wrapper_overhead_percent(relaxed=True)
        assert wp1 < wp2 < wp1 * 1.3

    def test_system_report(self):
        result = run_area_overhead()
        assert 0.0 < result.wp1.wrapper_overhead_fraction < 0.05
        assert result.wp2.total_wrapper_ge > result.wp1.total_wrapper_ge
        assert "%" in result.format()

    def test_worst_block_overhead_is_small(self):
        result = run_area_overhead()
        assert result.worst_block_overhead_percent < 10.0


class TestSweeps:
    def test_queue_capacity_sweep_monotone_non_decreasing(self):
        result = queue_capacity_sweep(
            workload=make_extraction_sort(length=5, seed=1), capacities=(2, 4, 8)
        )
        wp2 = result.wp2_series()
        assert all(later >= earlier - 0.02 for earlier, later in zip(wp2, wp2[1:]))

    def test_uniform_depth_sweep_decreasing(self):
        result = uniform_depth_sweep(
            workload=make_extraction_sort(length=5, seed=1), depths=(0, 1, 2)
        )
        wp1 = result.wp1_series()
        assert wp1[0] == pytest.approx(1.0, abs=0.02)
        assert wp1[2] <= wp1[1] <= wp1[0] + 1e-9

    def test_clock_sweep_reports_relay_station_counts(self):
        result = clock_frequency_sweep(
            workload=make_extraction_sort(length=5, seed=1),
            frequencies_ghz=(0.5, 2.0),
        )
        low, high = result.points
        assert low.detail["total_relay_stations"] <= high.detail["total_relay_stations"]
        assert "effective_wp2_ghz" in high.detail

    def test_default_floorplan_places_all_blocks(self):
        plan = default_floorplan()
        assert set(plan.blocks) == {"CU", "IC", "RF", "ALU", "DC"}

    def test_sweep_format(self):
        result = uniform_depth_sweep(
            workload=make_extraction_sort(length=4, seed=1), depths=(0, 1)
        )
        assert "Th WP1" in result.format()
