"""Unit tests for channels and netlist construction/validation."""

from __future__ import annotations

import pytest

from repro.core.channel import Channel, channel
from repro.core.exceptions import NetlistError
from repro.core.netlist import Netlist, ring_netlist
from repro.core.process import FunctionProcess, PassthroughProcess, SinkProcess


def forward(state, inputs):
    return state, {"out": inputs["in"]}


def make_stage(name):
    return FunctionProcess(name, inputs=("in",), outputs=("out",), transition=forward)


class TestChannel:
    def test_channel_helper_defaults_ports_to_name(self):
        chan = channel("data", "A", "B")
        assert chan.source_port == "data"
        assert chan.dest_port == "data"

    def test_explicit_ports(self):
        chan = Channel(
            name="c", source="A", source_port="out", dest="B", dest_port="in"
        )
        assert chan.endpoints == ("A", "B")

    def test_link_defaults_to_name(self):
        assert channel("data", "A", "B").link_name == "data"

    def test_explicit_link(self):
        assert channel("data", "A", "B", link="A-B").link_name == "A-B"

    def test_invalid_width_rejected(self):
        with pytest.raises(NetlistError):
            channel("data", "A", "B", width=0)

    def test_empty_name_rejected(self):
        with pytest.raises(NetlistError):
            Channel(name="", source="A", source_port="o", dest="B", dest_port="i")

    def test_describe_mentions_endpoints(self):
        text = channel("data", "A", "B").describe()
        assert "A" in text and "B" in text


class TestNetlistValidation:
    def test_simple_pipeline_builds(self):
        a, b = make_stage("a"), make_stage("b")
        net = Netlist(
            [a, b],
            [Channel("c", "a", "out", "b", "in"), Channel("back", "b", "out", "a", "in")],
        )
        assert set(net.processes) == {"a", "b"}

    def test_duplicate_process_name_rejected(self):
        with pytest.raises(NetlistError):
            Netlist([make_stage("a"), make_stage("a")], [])

    def test_duplicate_channel_name_rejected(self):
        a, b = make_stage("a"), make_stage("b")
        chan = Channel("c", "a", "out", "b", "in")
        with pytest.raises(NetlistError):
            Netlist([a, b], [chan, Channel("c", "b", "out", "a", "in")])

    def test_unknown_source_process_rejected(self):
        b = make_stage("b")
        with pytest.raises(NetlistError):
            Netlist([b], [Channel("c", "ghost", "out", "b", "in")])

    def test_unknown_port_rejected(self):
        a, b = make_stage("a"), make_stage("b")
        with pytest.raises(NetlistError):
            Netlist([a, b], [Channel("c", "a", "nope", "b", "in")])

    def test_undriven_input_rejected(self):
        sink = SinkProcess("sink")
        with pytest.raises(NetlistError):
            Netlist([sink], [])

    def test_double_driven_input_rejected(self):
        from repro.core.process import CounterSource

        src1, src2 = CounterSource("src1"), CounterSource("src2")
        sink = SinkProcess("sink")
        with pytest.raises(NetlistError):
            Netlist(
                [src1, src2, sink],
                [
                    Channel("c1", "src1", "out", "sink", "in"),
                    Channel("c2", "src2", "out", "sink", "in"),
                ],
            )


class TestNetlistQueries:
    def build(self):
        netlist, _ = ring_netlist(3, rs_total=0)
        return netlist

    def test_process_and_channel_lookup(self):
        net = self.build()
        assert net.process("stage0").name == "stage0"
        assert net.channel("c0_1").dest == "stage1"

    def test_unknown_lookup_raises(self):
        net = self.build()
        with pytest.raises(NetlistError):
            net.process("nope")
        with pytest.raises(NetlistError):
            net.channel("nope")

    def test_input_output_channel_maps(self):
        net = self.build()
        assert set(net.input_channels("stage1")) == {"in"}
        outs = net.output_channels("stage0")
        assert [c.name for c in outs["out"]] == ["c0_1"]

    def test_links_group_by_label(self):
        net = self.build()
        assert set(net.link_names()) == {"c0_1", "c1_2", "c2_0"}
        assert net.channels_of_link("c0_1")[0].name == "c0_1"

    def test_channels_of_unknown_link_raises(self):
        with pytest.raises(NetlistError):
            self.build().channels_of_link("ghost")

    def test_contains(self):
        net = self.build()
        assert "stage0" in net
        assert "c0_1" in net
        assert "ghost" not in net

    def test_describe_lists_everything(self):
        text = self.build().describe()
        assert "stage0" in text and "c0_1" in text

    def test_simple_loops_of_ring(self):
        loops = self.build().simple_loops()
        assert len(loops) == 1
        assert len(loops[0]) == 3

    def test_process_graph_edge_attributes(self):
        net = self.build()
        graph = net.process_graph(rs_counts={"c0_1": 2})
        data = graph.get_edge_data("stage0", "stage1")["c0_1"]
        assert data["rs"] == 2

    def test_reset_resets_all_processes(self):
        net = self.build()
        for process in net:
            process.step({"in": 0})
        net.reset()
        assert all(process.firings == 0 for process in net)


class TestRingNetlist:
    def test_rs_distribution_sums_to_total(self):
        _, counts = ring_netlist(4, rs_total=6)
        assert sum(counts.values()) == 6

    def test_single_stage_ring_is_selfloop(self):
        net, _ = ring_netlist(1)
        assert net.simple_loops() == [["stage0"]]

    def test_zero_stage_ring_rejected(self):
        with pytest.raises(NetlistError):
            ring_netlist(0)
