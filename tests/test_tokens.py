"""Unit tests for the tagged-signal primitives (tokens, void symbol)."""

from __future__ import annotations

import pickle

import pytest

from repro.core.tokens import VOID, Token, is_token, is_void


class TestVoid:
    def test_void_is_singleton(self):
        from repro.core.tokens import _Void

        assert _Void() is VOID

    def test_void_repr_is_tau(self):
        assert repr(VOID) == "τ"

    def test_void_is_falsy(self):
        assert not VOID

    def test_void_survives_pickling_as_singleton(self):
        assert pickle.loads(pickle.dumps(VOID)) is VOID

    def test_is_void_detects_void(self):
        assert is_void(VOID)

    def test_is_void_rejects_none(self):
        assert not is_void(None)

    def test_is_void_rejects_token(self):
        assert not is_void(Token(value=1, tag=0))


class TestToken:
    def test_token_fields(self):
        token = Token(value="payload", tag=3)
        assert token.value == "payload"
        assert token.tag == 3

    def test_token_is_frozen(self):
        token = Token(value=1, tag=0)
        with pytest.raises(AttributeError):
            token.value = 2  # type: ignore[misc]

    def test_negative_tag_rejected(self):
        with pytest.raises(ValueError):
            Token(value=1, tag=-1)

    def test_zero_tag_allowed(self):
        assert Token(value=None, tag=0).tag == 0

    def test_equality_by_value_and_tag(self):
        assert Token(value=5, tag=2) == Token(value=5, tag=2)
        assert Token(value=5, tag=2) != Token(value=5, tag=3)
        assert Token(value=6, tag=2) != Token(value=5, tag=2)

    def test_is_token(self):
        assert is_token(Token(value=0, tag=0))
        assert not is_token(VOID)
        assert not is_token(42)

    def test_repr_contains_tag_and_value(self):
        text = repr(Token(value=7, tag=4))
        assert "7" in text and "4" in text

    def test_token_value_may_be_none(self):
        token = Token(value=None, tag=1)
        assert token.value is None
        assert is_token(token)
