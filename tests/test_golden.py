"""Unit tests for the golden (synchronous, zero relay station) simulator."""

from __future__ import annotations

import pytest

from repro.core.exceptions import SimulationError
from repro.core.golden import GoldenSimulator, run_golden
from repro.core.netlist import Netlist, ring_netlist
from repro.core.channel import Channel
from repro.core.process import CounterSource, FunctionProcess, SinkProcess


def build_source_sink(limit=5):
    source = CounterSource("src", limit=limit)
    sink = SinkProcess("sink")
    netlist = Netlist(
        [source, sink],
        [Channel("data", "src", "out", "sink", "in", initial=-1)],
    )
    return netlist, source, sink


class TestGoldenSimulator:
    def test_every_process_fires_every_cycle(self):
        netlist, _ = ring_netlist(3)
        result = run_golden(netlist, max_cycles=10)
        assert result.cycles == 10
        assert all(count == 10 for count in result.firings.values())

    def test_channel_latency_is_one_cycle(self):
        netlist, source, sink = build_source_sink(limit=4)
        result = run_golden(netlist, max_cycles=50)
        # The sink consumes the initial value first, then the source outputs
        # shifted by one cycle.
        assert sink.received[0] == -1
        assert sink.received[1:4] == [0, 1, 2]
        assert result.halted

    def test_stop_process_terminates_run(self):
        netlist, source, _ = build_source_sink(limit=3)
        result = run_golden(netlist, stop_process="src", max_cycles=100)
        assert result.halted
        assert result.cycles == 3

    def test_unknown_stop_process_rejected(self):
        netlist, _, _ = build_source_sink()
        with pytest.raises(SimulationError):
            run_golden(netlist, stop_process="ghost")

    def test_extra_cycles_extend_the_run(self):
        netlist, _, _ = build_source_sink(limit=3)
        base = run_golden(netlist, stop_process="src", max_cycles=100)
        netlist2, _, _ = build_source_sink(limit=3)
        extended = run_golden(netlist2, stop_process="src", max_cycles=100, extra_cycles=4)
        assert extended.cycles == base.cycles + 4

    def test_max_cycles_bounds_run_without_stop(self):
        netlist, _ = ring_netlist(2)
        result = run_golden(netlist, max_cycles=7)
        assert result.cycles == 7
        assert not result.halted

    def test_trace_records_every_channel(self):
        netlist, _ = ring_netlist(2)
        result = run_golden(netlist, max_cycles=5)
        assert set(result.trace) == set(netlist.channels)
        assert all(result.trace[name].valid_count() == 5 for name in result.trace)

    def test_trace_recording_can_be_disabled(self):
        netlist, _ = ring_netlist(2)
        result = run_golden(netlist, max_cycles=5, record_trace=False)
        assert all(result.trace[name].valid_count() == 0 for name in result.trace)

    def test_ring_circulating_value_increments(self):
        netlist, _ = ring_netlist(2)
        result = run_golden(netlist, max_cycles=6)
        values = result.trace["c0_1"].values()
        assert values == sorted(values)
        assert values[0] == 1

    def test_throughput_property_is_one(self):
        netlist, _ = ring_netlist(2)
        assert run_golden(netlist, max_cycles=3).throughput == 1.0

    def test_final_values_exposed(self):
        netlist, _, _ = build_source_sink(limit=2)
        result = run_golden(netlist, stop_process="src", max_cycles=10)
        assert "data" in result.final_values

    def test_simulator_reset_between_runs(self):
        netlist, _ = ring_netlist(2)
        simulator = GoldenSimulator(netlist)
        first = simulator.run(max_cycles=4)
        second = simulator.run(max_cycles=4)
        assert first.cycles == second.cycles
        assert first.trace["c0_1"].values() == second.trace["c0_1"].values()
