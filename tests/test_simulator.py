"""Unit and integration tests for the latency-insensitive simulator."""

from __future__ import annotations

import pytest

from repro.core.config import RSConfiguration
from repro.core.equivalence import n_equivalent
from repro.core.exceptions import DeadlockError, SimulationError
from repro.core.golden import run_golden
from repro.core.netlist import Netlist, ring_netlist
from repro.core.channel import Channel
from repro.core.process import CounterSource, FunctionProcess, SinkProcess
from repro.core.simulator import LidSimulator, run_lid


def run_ring(stages, rs_total, relaxed=False, firings=60, queue_capacity=4):
    netlist, rs_counts = ring_netlist(stages, rs_total=rs_total)
    result = run_lid(
        netlist,
        rs_counts=rs_counts,
        relaxed=relaxed,
        queue_capacity=queue_capacity,
        target_firings={"stage0": firings},
        max_cycles=20_000,
    )
    return netlist, result


class TestLidOnRings:
    @pytest.mark.parametrize(
        "stages,rs_total",
        [(1, 1), (2, 1), (2, 2), (3, 1), (3, 2), (4, 3), (5, 2)],
    )
    def test_loop_throughput_matches_formula(self, stages, rs_total):
        firings = 120
        _, result = run_ring(stages, rs_total, firings=firings)
        expected = stages / (stages + rs_total)
        measured = result.firings["stage0"] / result.cycles
        # Start-up transients make the measured value slightly different from
        # the asymptotic bound; 5 % is ample for 120 firings.
        assert measured == pytest.approx(expected, rel=0.05)

    @pytest.mark.parametrize("stages,rs_total", [(2, 1), (3, 2)])
    def test_wp2_equals_wp1_without_oracle(self, stages, rs_total):
        _, strict = run_ring(stages, rs_total, relaxed=False)
        _, relaxed = run_ring(stages, rs_total, relaxed=True)
        assert strict.cycles == relaxed.cycles

    def test_zero_rs_ring_runs_at_full_speed(self):
        _, result = run_ring(3, 0, firings=50)
        assert result.cycles == pytest.approx(50, abs=2)

    def test_equivalence_with_golden(self):
        netlist, rs_counts = ring_netlist(3, rs_total=2)
        golden = run_golden(netlist, max_cycles=40)
        pipelined = run_lid(
            netlist,
            rs_counts=rs_counts,
            target_firings={"stage0": 40},
            max_cycles=5_000,
        )
        assert n_equivalent(golden.trace, pipelined.trace).equivalent

    def test_all_processes_progress_equally_on_a_ring(self):
        _, result = run_ring(3, 1, firings=30)
        counts = set(result.firings.values())
        assert max(counts) - min(counts) <= 1


class TestLidConstruction:
    def test_rejects_both_counts_and_configuration(self):
        netlist, rs_counts = ring_netlist(2, rs_total=1)
        with pytest.raises(SimulationError):
            LidSimulator(
                netlist,
                rs_counts=rs_counts,
                configuration=RSConfiguration.ideal(),
            )

    def test_rejects_unknown_channel_in_counts(self):
        netlist, _ = ring_netlist(2)
        with pytest.raises(SimulationError):
            LidSimulator(netlist, rs_counts={"ghost": 1})

    def test_rejects_negative_counts(self):
        netlist, _ = ring_netlist(2)
        with pytest.raises(SimulationError):
            LidSimulator(netlist, rs_counts={"c0_1": -1})

    def test_configuration_expansion(self):
        netlist, _ = ring_netlist(2)
        config = RSConfiguration.from_mapping({"c0_1": 2}, label="test")
        simulator = LidSimulator(netlist, configuration=config)
        assert simulator.rs_counts["c0_1"] == 2
        assert simulator.rs_counts["c1_0"] == 0
        assert simulator.configuration_label == "test"

    def test_unknown_stop_process_rejected(self):
        netlist, _ = ring_netlist(2)
        with pytest.raises(SimulationError):
            run_lid(netlist, stop_process="ghost", max_cycles=10)

    def test_unknown_target_firings_rejected(self):
        netlist, _ = ring_netlist(2)
        with pytest.raises(SimulationError):
            run_lid(netlist, target_firings={"ghost": 1}, max_cycles=10)

    def test_max_cycles_exhaustion_raises(self):
        netlist, _ = ring_netlist(2)
        with pytest.raises(SimulationError):
            run_lid(netlist, target_firings={"stage0": 1_000}, max_cycles=10)


class TestLidResults:
    def test_result_metadata(self):
        netlist, rs_counts = ring_netlist(2, rs_total=1)
        result = run_lid(
            netlist, rs_counts=rs_counts, target_firings={"stage0": 10}, max_cycles=200
        )
        assert result.wrapper_kind == "WP1"
        assert result.total_relay_stations() == 1
        assert result.throughput("stage0") > 0
        assert result.throughput() <= result.throughput("stage0") + 1e-9

    def test_relaxed_flag_reported(self):
        netlist, rs_counts = ring_netlist(2, rs_total=1)
        result = run_lid(
            netlist, rs_counts=rs_counts, relaxed=True,
            target_firings={"stage0": 10}, max_cycles=200,
        )
        assert result.wrapper_kind == "WP2"

    def test_shell_stats_collected(self):
        netlist, rs_counts = ring_netlist(2, rs_total=1)
        result = run_lid(
            netlist, rs_counts=rs_counts, target_firings={"stage0": 20}, max_cycles=400
        )
        assert set(result.shell_stats) == {"stage0", "stage1"}
        assert result.shell_stats["stage0"].cycles == result.cycles

    def test_max_queue_occupancy_recorded(self):
        netlist, rs_counts = ring_netlist(2, rs_total=1)
        result = run_lid(
            netlist, rs_counts=rs_counts, target_firings={"stage0": 20}, max_cycles=400
        )
        assert any(value > 0 for value in result.max_queue_occupancy.values())

    def test_on_cycle_observer_called(self):
        netlist, rs_counts = ring_netlist(2, rs_total=1)
        seen = []
        run_lid(
            netlist,
            rs_counts=rs_counts,
            target_firings={"stage0": 5},
            max_cycles=100,
            on_cycle=lambda cycle, fired: seen.append((cycle, dict(fired))),
        )
        assert seen
        assert seen[0][0] == 1

    def test_trace_disabled(self):
        netlist, rs_counts = ring_netlist(2, rs_total=1)
        result = run_lid(
            netlist, rs_counts=rs_counts, record_trace=False,
            target_firings={"stage0": 5}, max_cycles=100,
        )
        assert all(result.trace[name].cycles == 0 for name in result.trace)


class TestDeadlockDetection:
    def test_starved_source_free_system_deadlocks(self):
        # A sink whose only input channel never receives tokens because the
        # producer is done from the start.
        source = CounterSource("src", limit=0)
        sink = SinkProcess("sink")
        netlist = Netlist(
            [source, sink],
            [Channel("data", "src", "out", "sink", "in", initial=0)],
        )
        with pytest.raises(DeadlockError):
            run_lid(
                netlist,
                target_firings={"sink": 10},
                max_cycles=50_000,
                deadlock_limit=100,
            )


class TestFanout:
    def test_single_output_port_drives_two_channels(self):
        def transition(state, inputs):
            return state, {"out": inputs["in"] + 1}

        producer = FunctionProcess("p", ("in",), ("out",), transition)
        sink_a = SinkProcess("sa")
        sink_b = SinkProcess("sb")
        loop_back = Channel("loop", "p", "out", "p", "in", initial=0)
        netlist = Netlist(
            [producer, sink_a, sink_b],
            [
                loop_back,
                Channel("fan_a", "p", "out", "sa", "in", initial=0),
                Channel("fan_b", "p", "out", "sb", "in", initial=0),
            ],
        )
        result = run_lid(netlist, target_firings={"sa": 10, "sb": 10}, max_cycles=500)
        assert sink_a.received == sink_b.received
        assert result.firings["sa"] == result.firings["sb"]
