"""Unit tests for the two-pass assembler."""

from __future__ import annotations

import pytest

from repro.core.exceptions import AssemblerError
from repro.cpu.assembler import assemble, disassemble
from repro.cpu.isa import Opcode


class TestBasicAssembly:
    def test_empty_lines_and_comments_ignored(self):
        result = assemble(
            """
            ; a comment
            # another comment
            // and another
            NOP
            """
        )
        assert len(result) == 1
        assert result.instructions[0].op is Opcode.NOP

    def test_case_insensitive_mnemonics_and_registers(self):
        result = assemble("add R3, r1, R2")
        instr = result.instructions[0]
        assert instr.op is Opcode.ADD
        assert (instr.rd, instr.ra, instr.rb) == (3, 1, 2)

    def test_immediate_formats(self):
        result = assemble("LI r1, 0x10\nLI r2, -5")
        assert result.instructions[0].imm == 16
        assert result.instructions[1].imm == -5

    def test_memory_operand_with_offset(self):
        instr = assemble("LD r1, 8(r2)").instructions[0]
        assert (instr.rd, instr.ra, instr.imm) == (1, 2, 8)

    def test_memory_operand_without_offset(self):
        instr = assemble("ST r3, (r4)").instructions[0]
        assert (instr.rb, instr.ra, instr.imm) == (3, 4, 0)

    def test_memory_operand_bare_address(self):
        instr = assemble("LD r1, 12").instructions[0]
        assert (instr.ra, instr.imm) == (0, 12)

    def test_store_operand_order(self):
        instr = assemble("ST r5, 2(r6)").instructions[0]
        assert instr.op is Opcode.ST
        assert instr.rb == 5  # data register
        assert instr.ra == 6  # base register


class TestLabels:
    def test_forward_and_backward_labels(self):
        result = assemble(
            """
            start:
                LI r1, 0
            loop:
                ADDI r1, r1, 1
                BNE r1, r2, loop
                JMP start
            """
        )
        assert result.symbols == {"start": 0, "loop": 1}
        assert result.instructions[2].imm == 1  # BNE target = loop
        assert result.instructions[3].imm == 0  # JMP target = start

    def test_label_on_its_own_line(self):
        result = assemble("alone:\nNOP")
        assert result.symbols["alone"] == 0

    def test_label_as_immediate_value(self):
        result = assemble("target:\nLI r1, target")
        assert result.instructions[0].imm == 0

    def test_duplicate_label_rejected(self):
        with pytest.raises(AssemblerError):
            assemble("dup:\nNOP\ndup:\nNOP")

    def test_unknown_label_rejected(self):
        with pytest.raises(AssemblerError):
            assemble("JMP nowhere")

    def test_invalid_label_rejected(self):
        with pytest.raises(AssemblerError):
            assemble("1bad:\nNOP")


class TestErrors:
    def test_unknown_mnemonic(self):
        with pytest.raises(AssemblerError):
            assemble("FROB r1, r2, r3")

    def test_wrong_operand_count(self):
        with pytest.raises(AssemblerError):
            assemble("ADD r1, r2")

    def test_invalid_register(self):
        with pytest.raises(AssemblerError):
            assemble("ADD r1, r2, r99")
        with pytest.raises(AssemblerError):
            assemble("ADD r1, r2, x3")

    def test_invalid_immediate(self):
        with pytest.raises(AssemblerError):
            assemble("LI r1, not_a_number!")

    def test_halt_takes_no_operands(self):
        with pytest.raises(AssemblerError):
            assemble("HALT r1")


class TestResultHelpers:
    def test_words_encodes_each_instruction(self):
        result = assemble("NOP\nHALT")
        words = result.words()
        assert len(words) == 2
        assert all(isinstance(word, int) for word in words)

    def test_disassemble_lists_addresses(self):
        result = assemble("LI r1, 3\nHALT")
        text = disassemble(result.instructions)
        assert "0:" in text and "1:" in text and "HALT" in text

    def test_roundtrip_through_words(self):
        from repro.cpu.isa import decode

        result = assemble("ADD r1, r2, r3\nBEQ r1, r0, 0")
        decoded = [decode(word) for word in result.words()]
        assert decoded == result.instructions
