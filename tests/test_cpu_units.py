"""Unit tests for the five processor blocks in isolation."""

from __future__ import annotations

import pytest

from repro.core.exceptions import SimulationError
from repro.cpu import isa
from repro.cpu.isa import Opcode, encode
from repro.cpu.signals import (
    AluCommand,
    MemAddress,
    AluResult,
    FetchRequest,
    FetchResponse,
    LoadResult,
    MemCommand,
    Operands,
    RegCommand,
    StoreData,
)
from repro.cpu.units import Alu, ControlUnit, DataCache, InstructionCache, RegisterFile


class TestInstructionCache:
    def make(self):
        words = [encode(isa.li(1, i)) for i in range(4)]
        return InstructionCache(words)

    def test_bubble_request_gives_bubble_response(self):
        ic = self.make()
        assert ic.step({"cu_ic": None}) == {"ic_cu": None}

    def test_fetch_returns_stored_word(self):
        ic = self.make()
        response = ic.step({"cu_ic": FetchRequest(address=2)})["ic_cu"]
        assert isinstance(response, FetchResponse)
        assert response.address == 2
        assert response.word == encode(isa.li(1, 2))

    def test_out_of_range_address_rejected(self):
        ic = self.make()
        with pytest.raises(SimulationError):
            ic.step({"cu_ic": FetchRequest(address=99)})

    def test_empty_image_rejected(self):
        with pytest.raises(SimulationError):
            InstructionCache([])

    def test_reads_counted_and_reset(self):
        ic = self.make()
        ic.step({"cu_ic": FetchRequest(address=0)})
        assert ic.reads == 1
        ic.reset()
        assert ic.reads == 0 and ic.firings == 0

    def test_no_oracle(self):
        assert self.make().required_ports() is None


class TestRegisterFile:
    def bubble_inputs(self, **overrides):
        inputs = {"cu_rf": None, "alu_rf": None, "dc_rf": None}
        inputs.update(overrides)
        return inputs

    def test_bubble_command_produces_bubbles(self):
        rf = RegisterFile()
        outputs = rf.step(self.bubble_inputs())
        assert outputs == {"rf_alu": None, "rf_dc": None}

    def test_read_operands(self):
        rf = RegisterFile()
        rf.registers[3] = 42
        rf.registers[4] = 7
        outputs = rf.step(self.bubble_inputs(cu_rf=RegCommand(read_a=3, read_b=4)))
        assert outputs["rf_alu"] == Operands(a=42, b=7)

    def test_unread_operand_defaults_to_zero(self):
        rf = RegisterFile()
        outputs = rf.step(self.bubble_inputs(cu_rf=RegCommand(read_a=None, read_b=None)))
        assert outputs["rf_alu"] == Operands(a=0, b=0)

    def test_store_data_forwarded(self):
        rf = RegisterFile()
        rf.registers[5] = 99
        outputs = rf.step(self.bubble_inputs(cu_rf=RegCommand(store_data=5)))
        assert outputs["rf_dc"] == StoreData(value=99)

    def test_alu_writeback_scheduled_and_applied(self):
        rf = RegisterFile()
        rf.step(self.bubble_inputs(cu_rf=RegCommand(alu_writeback=2)))
        # Writeback arrives two firings later.
        assert rf.required_ports() == frozenset({"cu_rf"})
        rf.step(self.bubble_inputs())
        assert "alu_rf" in rf.required_ports()
        rf.step(self.bubble_inputs(alu_rf=AluResult(value=123)))
        assert rf.registers[2] == 123

    def test_mem_writeback_scheduled_and_applied(self):
        rf = RegisterFile()
        rf.step(self.bubble_inputs(cu_rf=RegCommand(mem_writeback=6)))
        rf.step(self.bubble_inputs())
        rf.step(self.bubble_inputs())
        assert "dc_rf" in rf.required_ports()
        rf.step(self.bubble_inputs(dc_rf=LoadResult(value=-5)))
        assert rf.registers[6] == -5

    def test_write_to_r0_discarded(self):
        rf = RegisterFile()
        rf.step(self.bubble_inputs(cu_rf=RegCommand(alu_writeback=0)))
        rf.step(self.bubble_inputs())
        rf.step(self.bubble_inputs(alu_rf=AluResult(value=55)))
        assert rf.registers[0] == 0

    def test_missing_scheduled_writeback_detected(self):
        rf = RegisterFile()
        rf.step(self.bubble_inputs(cu_rf=RegCommand(alu_writeback=2)))
        rf.step(self.bubble_inputs())
        with pytest.raises(SimulationError):
            rf.step(self.bubble_inputs(alu_rf=None))

    def test_write_then_read_within_same_firing(self):
        rf = RegisterFile()
        rf.step(self.bubble_inputs(cu_rf=RegCommand(alu_writeback=2)))
        rf.step(self.bubble_inputs())
        outputs = rf.step(
            self.bubble_inputs(
                alu_rf=AluResult(value=88), cu_rf=RegCommand(read_a=2)
            )
        )
        assert outputs["rf_alu"].a == 88

    def test_reset_clears_registers_and_schedule(self):
        rf = RegisterFile()
        rf.registers[1] = 9
        rf.step(self.bubble_inputs(cu_rf=RegCommand(alu_writeback=1)))
        rf.reset()
        assert rf.registers[1] == 0
        assert rf.required_ports() == frozenset({"cu_rf"})


class TestAlu:
    def test_bubble_command_gives_bubbles(self):
        alu = Alu()
        outputs = alu.step({"cu_alu": None, "rf_alu": None})
        assert outputs == {"alu_cu": None, "alu_rf": None, "alu_dc": None}

    @pytest.mark.parametrize(
        "function,a,b,expected",
        [
            (Opcode.ADD, 3, 4, 7),
            (Opcode.SUB, 3, 4, -1),
            (Opcode.MUL, 3, 4, 12),
            (Opcode.AND, 0b1100, 0b1010, 0b1000),
            (Opcode.OR, 0b1100, 0b1010, 0b1110),
            (Opcode.XOR, 0b1100, 0b1010, 0b0110),
            (Opcode.SLT, 1, 2, 1),
            (Opcode.SLT, 2, 1, 0),
        ],
    )
    def test_compute(self, function, a, b, expected):
        assert Alu.compute(function, a, b) == expected

    def test_compute_wraps_to_32_bits(self):
        assert Alu.compute(Opcode.MUL, 2**20, 2**20) == 0

    def test_compute_unknown_function_rejected(self):
        with pytest.raises(SimulationError):
            Alu.compute(Opcode.BEQ, 1, 2)

    @pytest.mark.parametrize(
        "branch,a,b,expected",
        [
            (Opcode.BEQ, 5, 5, True),
            (Opcode.BEQ, 5, 6, False),
            (Opcode.BNE, 5, 6, True),
            (Opcode.BLT, -1, 0, True),
            (Opcode.BLT, 0, 0, False),
            (Opcode.BGE, 0, 0, True),
            (Opcode.BGE, -1, 0, False),
        ],
    )
    def test_branch_taken(self, branch, a, b, expected):
        assert Alu.branch_taken(branch, a, b) is expected

    def test_branch_unknown_condition_rejected(self):
        with pytest.raises(SimulationError):
            Alu.branch_taken(Opcode.ADD, 1, 2)

    def test_register_operation_outputs(self):
        alu = Alu()
        outputs = alu.step(
            {
                "cu_alu": AluCommand(function=Opcode.ADD),
                "rf_alu": Operands(a=2, b=3),
            }
        )
        assert outputs["alu_rf"] == AluResult(value=5)
        assert outputs["alu_dc"].address == 5
        assert outputs["alu_cu"].taken is False

    def test_immediate_operand_used_when_selected(self):
        alu = Alu()
        outputs = alu.step(
            {
                "cu_alu": AluCommand(function=Opcode.ADD, use_immediate=True, immediate=10),
                "rf_alu": Operands(a=2, b=999),
            }
        )
        assert outputs["alu_rf"].value == 12

    def test_branch_outcome_reported(self):
        alu = Alu()
        outputs = alu.step(
            {
                "cu_alu": AluCommand(function=Opcode.SUB, branch=Opcode.BEQ),
                "rf_alu": Operands(a=4, b=4),
            }
        )
        assert outputs["alu_cu"].taken is True
        assert outputs["alu_cu"].zero is True

    def test_command_without_operands_rejected(self):
        alu = Alu()
        with pytest.raises(SimulationError):
            alu.step({"cu_alu": AluCommand(function=Opcode.ADD), "rf_alu": None})

    def test_no_oracle(self):
        assert Alu().required_ports() is None


class TestDataCache:
    def bubble_inputs(self, **overrides):
        inputs = {"cu_dc": None, "rf_dc": None, "alu_dc": None}
        inputs.update(overrides)
        return inputs

    def test_idle_firing(self):
        dc = DataCache([0] * 8)
        assert dc.step(self.bubble_inputs()) == {"dc_rf": None}
        assert dc.required_ports() == frozenset({"cu_dc"})

    def test_load_sequence(self):
        dc = DataCache([10, 11, 12, 13])
        dc.step(self.bubble_inputs(cu_dc=MemCommand(read=True)))
        assert dc.required_ports() == frozenset({"cu_dc"})
        dc.step(self.bubble_inputs())
        assert "alu_dc" in dc.required_ports()
        outputs = dc.step(self.bubble_inputs(alu_dc=MemAddress(address=2)))
        assert outputs["dc_rf"] == LoadResult(value=12)
        assert dc.loads == 1

    def test_store_sequence(self):
        dc = DataCache([0] * 4)
        dc.step(self.bubble_inputs(cu_dc=MemCommand(write=True)))
        assert "rf_dc" in dc.required_ports()
        dc.step(self.bubble_inputs(rf_dc=StoreData(value=77)))
        assert "alu_dc" in dc.required_ports()
        outputs = dc.step(self.bubble_inputs(alu_dc=MemAddress(address=3)))
        assert outputs["dc_rf"] is None
        assert dc.memory[3] == 77
        assert dc.stores == 1

    def test_out_of_range_access_rejected(self):
        dc = DataCache([0] * 4)
        dc.step(self.bubble_inputs(cu_dc=MemCommand(read=True)))
        dc.step(self.bubble_inputs())
        with pytest.raises(SimulationError):
            dc.step(self.bubble_inputs(alu_dc=MemAddress(address=9)))

    def test_missing_address_detected(self):
        dc = DataCache([0] * 4)
        dc.step(self.bubble_inputs(cu_dc=MemCommand(read=True)))
        dc.step(self.bubble_inputs())
        with pytest.raises(SimulationError):
            dc.step(self.bubble_inputs(alu_dc=None))

    def test_missing_store_data_detected(self):
        dc = DataCache([0] * 4)
        dc.step(self.bubble_inputs(cu_dc=MemCommand(write=True)))
        with pytest.raises(SimulationError):
            dc.step(self.bubble_inputs(rf_dc=None))

    def test_reset_restores_initial_image(self):
        dc = DataCache([5, 6])
        dc.memory[0] = 99
        dc.reset()
        assert dc.memory == [5, 6]


class TestControlUnitBasics:
    def make_cu(self, pipelined=True):
        return ControlUnit(pipelined=pipelined)

    def bubble_inputs(self, **overrides):
        inputs = {"ic_cu": None, "alu_cu": None}
        inputs.update(overrides)
        return inputs

    def test_initial_oracle_needs_nothing(self):
        cu = self.make_cu()
        assert cu.required_ports() == frozenset()

    def test_first_firing_issues_a_fetch(self):
        cu = self.make_cu()
        outputs = cu.step(self.bubble_inputs())
        assert outputs["cu_ic"] == FetchRequest(address=0)
        assert outputs["cu_rf"] is None

    def test_fetch_response_expected_two_firings_later(self):
        cu = self.make_cu()
        cu.step(self.bubble_inputs())        # firing 0: fetch address 0
        assert cu.required_ports() == frozenset()
        cu.step(self.bubble_inputs())        # firing 1: fetch address 1
        assert "ic_cu" in cu.required_ports()

    def test_halt_sets_done(self):
        cu = self.make_cu()
        halt_word = encode(isa.halt())
        cu.step(self.bubble_inputs())
        cu.step(self.bubble_inputs())
        cu.step(self.bubble_inputs(ic_cu=FetchResponse(address=0, word=halt_word)))
        # The HALT word arrives at firing 2 and issues within the same firing.
        assert cu.is_done()
        assert cu.required_ports() == frozenset()

    def test_invalid_fetch_response_rejected(self):
        cu = self.make_cu()
        cu.step(self.bubble_inputs())
        cu.step(self.bubble_inputs())
        with pytest.raises(SimulationError):
            cu.step(self.bubble_inputs(ic_cu=None))

    def test_fetch_buffer_must_be_positive(self):
        with pytest.raises(SimulationError):
            ControlUnit(fetch_buffer=0)

    def test_reset_restores_initial_state(self):
        cu = self.make_cu()
        cu.step(self.bubble_inputs())
        cu.reset()
        assert cu.pc == 0
        assert cu.firings == 0
        assert not cu.is_done()


class TestScheduleSummaries:
    """Certified schedule_state summaries of the five units (DESIGN.md §5)."""

    def test_all_units_declare_complete_summaries(self):
        units = (
            ControlUnit(),
            InstructionCache([encode(isa.nop())]),
            RegisterFile(),
            Alu(),
            DataCache([0] * 8),
        )
        for unit in units:
            assert unit.schedule_complete
            assert unit.schedule_state() is not None

    def test_summaries_are_canonical_in_the_firing_counter(self):
        """Shifting firings and absolute-tag state together changes nothing."""
        rf = RegisterFile()
        rf.registers[3] = 42
        rf.pending_alu_writeback = {7: 3}
        rf.pending_mem_writeback = {8: 4}
        rf.firings = 5
        before = rf.schedule_state()
        rf.firings += 1000
        rf.schedule_jump(1000)
        assert rf.schedule_state() == before

        dc = DataCache([0] * 8)
        dc.pending_access = {6: "read"}
        dc.pending_store_data = {5: 6}
        dc.store_values = {6: 9}
        dc.firings = 4
        before = dc.schedule_state()
        dc.firings += 250
        dc.schedule_jump(250)
        assert dc.schedule_state() == before

        cu = ControlUnit()
        cu.step({"ic_cu": None, "alu_cu": None})
        cu.scoreboard = {3: cu.firings + 2}
        before = cu.schedule_state()
        cu.firings += 77
        cu.schedule_jump(77)
        assert cu.schedule_state() == before

    def test_expired_scoreboard_entries_do_not_change_the_summary(self):
        cu = ControlUnit()
        cu.firings = 10
        base = cu.schedule_state()
        cu.scoreboard = {5: 3}  # ready tags <= firings can never gate issue
        assert cu.schedule_state() == base

    def test_data_cache_digest_tracks_memory_content(self):
        dc = DataCache([0] * 8)
        base = dc.schedule_state()[0]
        dc.pending_access[dc.firings] = "write"
        dc.store_values[dc.firings] = 5
        dc.step({"cu_dc": None, "rf_dc": None, "alu_dc": MemAddress(address=2)})
        changed = dc.schedule_state()[0]
        assert changed != base
        # Writing the original value back restores the digest exactly.
        dc.pending_access[dc.firings] = "write"
        dc.store_values[dc.firings] = 0
        dc.step({"cu_dc": None, "rf_dc": None, "alu_dc": MemAddress(address=2)})
        assert dc.schedule_state()[0] == base
        # The verification state exposes the exact memory behind the digest.
        memory, summary = dc.schedule_verify_state()
        assert memory == tuple(dc.memory)
        assert summary == dc.schedule_state()

    def test_data_cache_digest_resets_with_memory(self):
        dc = DataCache([1, 2, 3])
        dc.pending_access[dc.firings] = "write"
        dc.store_values[dc.firings] = 99
        dc.step({"cu_dc": None, "rf_dc": None, "alu_dc": MemAddress(address=1)})
        assert dc.schedule_state()[0] != 0
        dc.reset()
        assert dc.schedule_state()[0] == 0 and dc.memory == [1, 2, 3]
