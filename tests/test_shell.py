"""Unit tests for the WP1 (strict) and WP2 (relaxed) wrappers."""

from __future__ import annotations

import pytest

from repro.core.exceptions import ProtocolError
from repro.core.process import FunctionProcess
from repro.core.shell import (
    DEFAULT_QUEUE_CAPACITY,
    RelaxedShell,
    StrictShell,
    make_shell,
)
from repro.core.tokens import Token


def make_adder(oracle=None):
    def transition(state, inputs):
        a = inputs["a"] if inputs["a"] is not None else 0
        b = inputs["b"] if inputs["b"] is not None else 0
        return state, {"sum": a + b}

    return FunctionProcess(
        "adder", inputs=("a", "b"), outputs=("sum",), transition=transition,
        oracle=oracle,
    )


def feed(shell, port, tag, value):
    shell.accept(port, Token(value=value, tag=tag))


class TestStrictShell:
    def test_stalls_when_an_input_is_missing(self):
        shell = StrictShell(make_adder())
        feed(shell, "a", 0, 1)
        shell.begin_cycle()
        plan = shell.plan(outputs_blocked=False)
        assert not plan.fire
        assert plan.stall_reason == "missing_input"
        assert plan.missing_ports == ("b",)

    def test_fires_when_all_inputs_present(self):
        shell = StrictShell(make_adder())
        feed(shell, "a", 0, 1)
        feed(shell, "b", 0, 2)
        shell.begin_cycle()
        plan = shell.plan(outputs_blocked=False)
        assert plan.fire
        outputs = shell.execute(plan)
        assert outputs["sum"].value == 3
        assert outputs["sum"].tag == 1

    def test_stalls_when_outputs_blocked(self):
        shell = StrictShell(make_adder())
        feed(shell, "a", 0, 1)
        feed(shell, "b", 0, 2)
        shell.begin_cycle()
        plan = shell.plan(outputs_blocked=True)
        assert not plan.fire
        assert plan.stall_reason == "output_blocked"

    def test_stall_statistics(self):
        shell = StrictShell(make_adder())
        shell.begin_cycle()
        shell.execute(shell.plan(outputs_blocked=False))
        assert shell.stats.stalls_missing_input == 1
        assert shell.stats.firings == 0

    def test_output_tag_advances_with_firings(self):
        shell = StrictShell(make_adder())
        for tag in range(3):
            feed(shell, "a", tag, tag)
            feed(shell, "b", tag, tag)
            shell.begin_cycle()
            outputs = shell.execute(shell.plan(outputs_blocked=False))
            assert outputs["sum"].tag == tag + 1
        assert shell.stats.firings == 3
        assert shell.stats.throughput == 1.0

    def test_wrong_tag_consumption_detected(self):
        shell = StrictShell(make_adder())
        feed(shell, "a", 1, 1)  # tag 1 while the shell expects tag 0
        feed(shell, "b", 1, 2)
        shell.begin_cycle()
        with pytest.raises(ProtocolError):
            shell.plan(outputs_blocked=False)

    def test_done_process_stalls(self):
        process = make_adder()
        process.is_done = lambda: True  # type: ignore[method-assign]
        shell = StrictShell(process)
        shell.begin_cycle()
        plan = shell.plan(outputs_blocked=False)
        assert not plan.fire
        assert plan.stall_reason == "done"

    def test_accept_unknown_port_rejected(self):
        shell = StrictShell(make_adder())
        with pytest.raises(ProtocolError):
            shell.accept("ghost", Token(value=1, tag=0))

    def test_reset_clears_queues_and_stats(self):
        shell = StrictShell(make_adder())
        feed(shell, "a", 0, 1)
        shell.begin_cycle()
        shell.reset()
        assert shell.stats.cycles == 0
        assert all(queue.is_empty() for queue in shell.queues.values())


class TestRelaxedShell:
    def test_fires_with_only_required_inputs(self):
        shell = RelaxedShell(make_adder(oracle=lambda state: ["a"]))
        feed(shell, "a", 0, 5)
        shell.begin_cycle()
        plan = shell.plan(outputs_blocked=False)
        assert plan.fire
        assert plan.consume_ports == ("a",)
        outputs = shell.execute(plan)
        assert outputs["sum"].value == 5  # b treated as absent (0)

    def test_consumes_non_required_input_when_available(self):
        shell = RelaxedShell(make_adder(oracle=lambda state: ["a"]))
        feed(shell, "a", 0, 5)
        feed(shell, "b", 0, 7)
        shell.begin_cycle()
        plan = shell.plan(outputs_blocked=False)
        assert set(plan.consume_ports) == {"a", "b"}

    def test_discards_stale_tokens(self):
        shell = RelaxedShell(make_adder(oracle=lambda state: ["a"]))
        # Fire twice consuming only port a.
        for tag in range(2):
            feed(shell, "a", tag, tag)
            shell.begin_cycle()
            shell.execute(shell.plan(outputs_blocked=False))
        # Late tokens for tags 0 and 1 arrive on the ignored port b.
        feed(shell, "b", 0, 100)
        feed(shell, "b", 1, 101)
        shell.begin_cycle()
        assert shell.queues["b"].is_empty()
        assert shell.stats.discarded_tokens == 2
        assert shell.stats.discarded_by_port["b"] == 2

    def test_oracle_none_behaves_strictly(self):
        shell = RelaxedShell(make_adder(oracle=None))
        feed(shell, "a", 0, 1)
        shell.begin_cycle()
        plan = shell.plan(outputs_blocked=False)
        assert not plan.fire
        assert "b" in plan.missing_ports

    def test_unknown_oracle_port_rejected(self):
        shell = RelaxedShell(make_adder(oracle=lambda state: ["ghost"]))
        shell.begin_cycle()
        with pytest.raises(ProtocolError):
            shell.plan(outputs_blocked=False)

    def test_outputs_blocked_still_stalls(self):
        shell = RelaxedShell(make_adder(oracle=lambda state: ["a"]))
        feed(shell, "a", 0, 1)
        shell.begin_cycle()
        plan = shell.plan(outputs_blocked=True)
        assert not plan.fire
        assert plan.stall_reason == "output_blocked"

    def test_empty_required_set_fires_immediately(self):
        shell = RelaxedShell(make_adder(oracle=lambda state: []))
        shell.begin_cycle()
        plan = shell.plan(outputs_blocked=False)
        assert plan.fire
        assert plan.consume_ports == ()


class TestMakeShell:
    def test_factory_selects_kind(self):
        assert isinstance(make_shell(make_adder(), relaxed=False), StrictShell)
        assert isinstance(make_shell(make_adder(), relaxed=True), RelaxedShell)

    def test_factory_passes_queue_capacity(self):
        shell = make_shell(make_adder(), relaxed=False, queue_capacity=7)
        assert all(queue.capacity == 7 for queue in shell.queues.values())

    def test_default_queue_capacity(self):
        shell = make_shell(make_adder(), relaxed=True)
        assert all(
            queue.capacity == DEFAULT_QUEUE_CAPACITY for queue in shell.queues.values()
        )

    def test_kind_labels(self):
        assert make_shell(make_adder(), relaxed=False).kind == "WP1"
        assert make_shell(make_adder(), relaxed=True).kind == "WP2"
