"""Tests for the layered simulation engine (repro.engine).

The heart of this module is the kernel-equivalence property suite: the
array-based :class:`FastKernel` and the codegen-specialized
:class:`CompiledKernel` must match the object-based :class:`ReferenceKernel`
cycle-for-cycle — cycles, firings, traces, stall statistics and queue
occupancies — across randomly generated netlists, relay-station placements,
wrapper flavours and queue capacities.
"""

from __future__ import annotations

import sys

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import (
    Channel,
    DeadlockError,
    FunctionProcess,
    Netlist,
    RSConfiguration,
    SimulationError,
    ring_netlist,
    run_lid,
)
from repro.core.simulator import LidResult, LidSimulator
from repro.cpu import build_pipelined_cpu
from repro.cpu.workloads import make_extraction_sort
from repro.engine import (
    BatchRunner,
    Elaborator,
    InstrumentSet,
    elaborate,
    generate_run_source,
    kernel_registry,
    make_kernel,
    resolve_kernel_name,
)
from repro.engine.codegen import STOP_ANY_DONE, STOP_TARGET, compiled_run_fn
from repro.engine.kernel import KERNEL_ENV_VAR, RunControls

ALL_KERNELS = ("reference", "fast", "compiled")
#: The optimised kernels pinned against the executable specification.
OPTIMISED_KERNELS = ("fast", "compiled")


# ---------------------------------------------------------------------------
# Random netlist generation
# ---------------------------------------------------------------------------

def _transition(proc_index, n_outs):
    """A deterministic state machine mixing its inputs into its outputs."""

    def transition(state, inputs):
        acc = state * 31 + proc_index
        for port in sorted(inputs):
            value = inputs[port]
            acc = (acc * 17 + (0 if value is None else int(value) + 1)) % 100003
        return acc, {f"o{k}": (acc + k) % 1009 for k in range(n_outs)}

    return transition


def _oracle(ports, period):
    """A WP2 oracle requiring a rotating subset of the input ports.

    Depends only on the process state (the paper's contract), so both
    kernels observe identical oracle answers.
    """

    def oracle(state):
        if period == 0:
            return None  # all ports required -> WP2 degenerates to WP1
        keep = [port for k, port in enumerate(ports) if (state + k) % period != 0]
        return frozenset(keep)

    return oracle


@st.composite
def random_netlists(draw):
    """Random strongly-connected-ish netlists with loops, fan-out and oracles."""
    n_procs = draw(st.integers(min_value=1, max_value=4))
    n_outs = [draw(st.integers(min_value=1, max_value=2)) for _ in range(n_procs)]
    n_ins = [draw(st.integers(min_value=0 if n_procs > 1 else 1, max_value=2))
             for _ in range(n_procs)]
    if all(n == 0 for n in n_ins):
        n_ins[0] = 1

    processes = []
    for p in range(n_procs):
        ports = tuple(f"i{k}" for k in range(n_ins[p]))
        period = draw(st.integers(min_value=0, max_value=3))
        processes.append(
            FunctionProcess(
                name=f"p{p}",
                inputs=ports,
                outputs=tuple(f"o{k}" for k in range(n_outs[p])),
                transition=_transition(p, n_outs[p]),
                initial_state=p,
                oracle=_oracle(ports, period) if ports else None,
            )
        )

    channels = []
    rs_counts = {}
    cid = 0
    for p in range(n_procs):
        for k in range(n_ins[p]):
            src = draw(st.integers(min_value=0, max_value=n_procs - 1))
            src_port = draw(st.integers(min_value=0, max_value=n_outs[src] - 1))
            name = f"c{cid}"
            channels.append(
                Channel(
                    name=name,
                    source=f"p{src}",
                    source_port=f"o{src_port}",
                    dest=f"p{p}",
                    dest_port=f"i{k}",
                    initial=draw(st.integers(min_value=0, max_value=5)),
                )
            )
            rs_counts[name] = draw(st.integers(min_value=0, max_value=3))
            cid += 1

    netlist = Netlist(processes, channels, name="random")
    relaxed = draw(st.booleans())
    queue_capacity = draw(st.integers(min_value=1, max_value=5))
    return netlist, rs_counts, relaxed, queue_capacity


def _run(netlist, rs_counts, relaxed, queue_capacity, kernel):
    """Run one kernel; normalise the (outcome kind, payload) for comparison."""
    try:
        result = run_lid(
            netlist,
            rs_counts=rs_counts,
            relaxed=relaxed,
            queue_capacity=queue_capacity,
            kernel=kernel,
            target_firings={netlist.process_names()[0]: 25},
            max_cycles=4_000,
            deadlock_limit=200,
        )
    except DeadlockError:
        return ("deadlock", None)
    except SimulationError:
        return ("timeout", None)
    return ("ok", result)


def _assert_identical(a: LidResult, b: LidResult) -> None:
    assert a.cycles == b.cycles
    assert a.firings == b.firings
    assert a.halted == b.halted
    assert a.wrapper_kind == b.wrapper_kind
    assert a.rs_counts == b.rs_counts
    assert a.shell_stats == b.shell_stats
    assert a.max_queue_occupancy == b.max_queue_occupancy
    assert set(a.trace) == set(b.trace)
    for name in a.trace:
        assert list(a.trace[name].items) == list(b.trace[name].items), name


@st.composite
def generated_topologies(draw):
    """Random parameterisations of the :mod:`repro.topology` generator zoo."""
    kind = draw(st.sampled_from(("ring", "dag", "mesh", "torus", "marked", "random")))
    if kind == "ring":
        params = {
            "stages": draw(st.integers(min_value=2, max_value=5)),
            "rs_total": draw(st.integers(min_value=0, max_value=4)),
        }
    elif kind == "dag":
        params = {
            "width": draw(st.integers(min_value=1, max_value=3)),
            "depth": draw(st.integers(min_value=1, max_value=2)),
            "source_limit": 10,
        }
    elif kind in ("mesh", "torus"):
        params = {
            "rows": draw(st.integers(min_value=2, max_value=3)),
            "cols": draw(st.integers(min_value=2, max_value=3)),
        }
        if kind == "mesh":
            params["source_limit"] = 10
    elif kind == "marked":
        params = {
            "loop_lengths": tuple(
                draw(st.lists(st.integers(min_value=1, max_value=4),
                              min_size=1, max_size=3))
            ),
        }
    else:
        params = {
            "seed": draw(st.integers(min_value=0, max_value=2**16)),
            "n_processes": draw(st.integers(min_value=2, max_value=6)),
            "extra_channels": draw(st.integers(min_value=0, max_value=3)),
            "allow_cycles": draw(st.booleans()),
            "with_oracles": draw(st.booleans()),
        }
    relaxed = draw(st.booleans())
    queue_capacity = draw(st.integers(min_value=1, max_value=4))
    return kind, params, relaxed, queue_capacity


class TestKernelEquivalence:
    @given(data=random_netlists())
    @settings(
        max_examples=60,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    def test_random_netlists(self, data):
        """All kernels agree on cycles, firings, traces, stats, occupancy."""
        netlist, rs_counts, relaxed, queue_capacity = data
        kind_ref, ref = _run(netlist, rs_counts, relaxed, queue_capacity, "reference")
        for kernel in OPTIMISED_KERNELS:
            kind, result = _run(netlist, rs_counts, relaxed, queue_capacity, kernel)
            assert kind_ref == kind, kernel
            if ref is not None:
                _assert_identical(ref, result)

    @given(data=generated_topologies())
    @settings(
        max_examples=40,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    def test_generated_topologies(self, data):
        """Full cross-kernel agreement on the topology generator zoo.

        Scalar kernels must stay bit-identical on every shape the zoo can
        produce (rings, fan-out DAGs, meshes, tori, marked graphs, seeded
        random graphs with WP2 oracles), and a lockstep batch over the same
        rows must match the fast kernel item for item — by taking the vector
        path where the shape is eligible and falling back where it is not.
        """
        from repro.topology import make_topology

        kind, params, relaxed, queue_capacity = data
        topology = make_topology(kind, **params)
        netlist, rs_counts = topology.netlist, topology.rs_counts
        kind_ref, ref = _run(netlist, rs_counts, relaxed, queue_capacity, "reference")
        for kernel in OPTIMISED_KERNELS:
            outcome, result = _run(netlist, rs_counts, relaxed, queue_capacity, kernel)
            assert kind_ref == outcome, kernel
            if ref is not None:
                _assert_identical(ref, result)
        rows = [
            dict(rs_counts),
            {name: count + 1 for name, count in rs_counts.items()},
        ]
        outcomes = {}
        for kernel in ("fast", "lockstep"):
            runner = BatchRunner(
                netlist, relaxed=relaxed,
                queue_capacity=queue_capacity, kernel=kernel,
            )
            results = runner.run_many(
                rows, on_error="zero",
                target_firings={netlist.process_names()[0]: 25},
                max_cycles=4_000, deadlock_limit=200,
            )
            outcomes[kernel] = [
                (r.failed, r.error, r.cycles, r.firings) for r in results
            ]
        assert outcomes["fast"] == outcomes["lockstep"]

    @pytest.mark.parametrize("stages,rs_total", [(1, 0), (2, 1), (3, 4), (5, 2)])
    @pytest.mark.parametrize("relaxed", [False, True])
    def test_rings(self, stages, rs_total, relaxed):
        netlist, rs_counts = ring_netlist(stages, rs_total=rs_total)
        reference, *optimised = [
            run_lid(
                netlist, rs_counts=rs_counts, relaxed=relaxed, kernel=kernel,
                target_firings={"stage0": 40}, max_cycles=10_000,
            )
            for kernel in ALL_KERNELS
        ]
        for result in optimised:
            _assert_identical(reference, result)

    @pytest.mark.parametrize("relaxed", [False, True])
    def test_case_study_cpu(self, relaxed):
        """Full equivalence on the Figure 1 processor, multi-RS chains included."""
        cpu = build_pipelined_cpu(make_extraction_sort(length=5, seed=11).program)
        config = RSConfiguration.uniform_plus(1, {"RF-DC": 2})
        reference, *optimised = [
            cpu.run_wire_pipelined(configuration=config, relaxed=relaxed, kernel=kernel)
            for kernel in ALL_KERNELS
        ]
        for result in optimised:
            _assert_identical(reference, result)


# ---------------------------------------------------------------------------
# Kernel selection and instrumentation
# ---------------------------------------------------------------------------

class TestKernelSelection:
    def test_default_kernel_is_fast(self):
        assert resolve_kernel_name(None) == "fast"

    def test_unknown_kernel_rejected(self):
        netlist, rs_counts = ring_netlist(2, rs_total=1)
        with pytest.raises(SimulationError):
            run_lid(netlist, rs_counts=rs_counts, kernel="warp", max_cycles=10)

    def test_registry_names(self):
        assert set(kernel_registry()) == {"reference", "fast", "compiled", "lockstep"}

    def test_reference_facade_exposes_object_view(self):
        netlist, rs_counts = ring_netlist(2, rs_total=1)
        simulator = LidSimulator(netlist, rs_counts=rs_counts, kernel="reference")
        assert set(simulator.shells) == {"stage0", "stage1"}
        assert set(simulator.pipelines) == {"c0_1", "c1_0"}

    @pytest.mark.parametrize("kernel", OPTIMISED_KERNELS)
    def test_fast_facade_has_no_object_view(self, kernel):
        netlist, rs_counts = ring_netlist(2, rs_total=1)
        simulator = LidSimulator(netlist, rs_counts=rs_counts, kernel=kernel)
        assert simulator.shells == {} and simulator.pipelines == {}

    def test_env_variable_selects_kernel(self, monkeypatch):
        monkeypatch.setenv(KERNEL_ENV_VAR, "compiled")
        assert resolve_kernel_name(None) == "compiled"

    def test_explicit_kernel_beats_env(self, monkeypatch):
        monkeypatch.setenv(KERNEL_ENV_VAR, "compiled")
        assert resolve_kernel_name("reference") == "reference"

    def test_empty_env_falls_back_to_default(self, monkeypatch):
        monkeypatch.setenv(KERNEL_ENV_VAR, "")
        assert resolve_kernel_name(None) == "fast"

    def test_invalid_env_kernel_rejected(self, monkeypatch):
        monkeypatch.setenv(KERNEL_ENV_VAR, "warp")
        with pytest.raises(SimulationError, match="REPRO_KERNEL"):
            resolve_kernel_name(None)


class TestInstrumentation:
    @pytest.mark.parametrize("kernel", ALL_KERNELS)
    def test_uninstrumented_run_carries_no_observations(self, kernel):
        netlist, rs_counts = ring_netlist(3, rs_total=2)
        model = elaborate(netlist, rs_counts=rs_counts)
        result = make_kernel(model, kernel).run(
            RunControls(target_firings={"stage0": 10}, max_cycles=500),
            InstrumentSet.none(),
        )
        assert result.shell_stats == {}
        assert result.max_queue_occupancy == {}
        assert all(result.trace[name].cycles == 0 for name in result.trace)
        assert result.cycles > 0 and result.firings["stage0"] >= 10

    @pytest.mark.parametrize("kernel", ALL_KERNELS)
    def test_instrument_flags_do_not_change_schedule(self, kernel):
        netlist, rs_counts = ring_netlist(3, rs_total=2)
        model = elaborate(netlist, rs_counts=rs_counts)
        controls = RunControls(target_firings={"stage0": 20}, max_cycles=1000)
        bare = make_kernel(model, kernel).run(controls, InstrumentSet.none())
        full = make_kernel(model, kernel).run(controls, InstrumentSet.all())
        assert bare.cycles == full.cycles
        assert bare.firings == full.firings


# ---------------------------------------------------------------------------
# Elaboration
# ---------------------------------------------------------------------------

class TestElaboration:
    def test_layout_is_shared_across_bindings(self):
        netlist, _ = ring_netlist(4, rs_total=0)
        elaborator = Elaborator(netlist)
        light = elaborator.bind(rs_counts={"c0_1": 1})
        heavy = elaborator.bind(rs_counts={"c0_1": 3, "c2_3": 2})
        assert light.layout is heavy.layout
        assert len(light.queue_caps) == 4 + 1
        assert len(heavy.queue_caps) == 4 + 5

    def test_unknown_channel_rejected(self):
        netlist, _ = ring_netlist(2)
        with pytest.raises(SimulationError):
            elaborate(netlist, rs_counts={"ghost": 1})

    def test_negative_counts_rejected(self):
        netlist, _ = ring_netlist(2)
        with pytest.raises(SimulationError):
            elaborate(netlist, rs_counts={"c0_1": -2})

    def test_queue_names_match_reference_naming(self):
        netlist, rs_counts = ring_netlist(2, rs_total=2)
        model = elaborate(netlist, rs_counts=rs_counts)
        assert "stage0.in" in model.queue_names
        assert "c0_1.rs0" in model.queue_names


# ---------------------------------------------------------------------------
# Batch runner
# ---------------------------------------------------------------------------

def _sort_cpu():
    return build_pipelined_cpu(make_extraction_sort(length=4, seed=3).program)


class TestBatchRunner:
    def test_matches_individual_runs(self):
        cpu = _sort_cpu()
        configs = [
            RSConfiguration.ideal(),
            RSConfiguration.uniform(1, exclude=("CU-IC",)),
            RSConfiguration.only("CU-RF", 2),
        ]
        runner = BatchRunner(cpu.netlist, relaxed=True)
        batch = runner.run_many(configs, stop_process="CU")
        for config, summary in zip(configs, batch):
            direct = cpu.run_wire_pipelined(
                configuration=config, relaxed=True, record_trace=False
            )
            assert summary.cycles == direct.cycles
            assert summary.firings == direct.firings
            assert summary.label == config.label
            assert not summary.failed

    def test_accepts_raw_rs_counts(self):
        netlist, rs_counts = ring_netlist(3, rs_total=2)
        runner = BatchRunner(netlist)
        [summary] = runner.run_many(
            [rs_counts], target_firings={"stage0": 15}, max_cycles=1000
        )
        assert summary.cycles > 0
        assert summary.throughput() == pytest.approx(
            min(summary.firings.values()) / summary.cycles
        )

    def test_on_error_zero_scores_deadlocks(self):
        from repro.core import CounterSource, SinkProcess

        source = CounterSource("src", limit=0)
        sink = SinkProcess("sink")
        netlist = Netlist(
            [source, sink],
            [Channel("data", "src", "out", "sink", "in", initial=0)],
        )
        runner = BatchRunner(netlist)
        [summary] = runner.run_many(
            [RSConfiguration.ideal()],
            on_error="zero",
            target_firings={"sink": 10},
            max_cycles=10_000,
            deadlock_limit=50,
        )
        assert summary.failed
        assert summary.throughput() == 0.0

    def test_objective_feeds_optimizer(self):
        from repro.core import SearchSpace, greedy_search

        cpu = _sort_cpu()
        golden = cpu.run_golden(record_trace=False)
        runner = BatchRunner(cpu.netlist, relaxed=True)
        objective = runner.objective(
            golden_cycles=golden.cycles, stop_process="CU"
        )
        space = SearchSpace.bounded(
            cpu.netlist.link_names(), maximum=1, fixed={"CU-IC": 0}
        )
        result = greedy_search(space, objective)
        assert 0.0 < result.score <= 1.0

    def test_simulated_throughput_objective_helper(self):
        from repro.core import simulated_throughput_objective

        cpu = _sort_cpu()
        golden = cpu.run_golden(record_trace=False)
        objective = simulated_throughput_objective(
            cpu.netlist, relaxed=False,
            golden_cycles=golden.cycles, stop_process="CU",
        )
        ideal = objective({})
        pipelined = objective({"CU-RF": 1})
        assert ideal == pytest.approx(1.0)
        assert 0.0 < pipelined < ideal

    @pytest.mark.skipif(
        sys.platform == "win32", reason="process fan-out requires fork"
    )
    def test_parallel_fan_out_matches_serial(self):
        cpu = _sort_cpu()
        configs = [
            RSConfiguration.ideal(),
            RSConfiguration.uniform(1, exclude=("CU-IC",)),
            RSConfiguration.uniform(2, exclude=("CU-IC",)),
            RSConfiguration.only("RF-DC", 1),
        ]
        runner = BatchRunner(cpu.netlist)
        serial = runner.run_many(configs, stop_process="CU")
        parallel = runner.run_many(configs, workers=2, stop_process="CU")
        assert [s.cycles for s in serial] == [p.cycles for p in parallel]
        assert [s.firings for s in serial] == [p.firings for p in parallel]


# ---------------------------------------------------------------------------
# LidResult regression
# ---------------------------------------------------------------------------

class TestLidResultThroughput:
    def test_empty_firings_yield_zero(self):
        from repro.core.traces import SystemTrace

        result = LidResult(
            cycles=100,
            firings={},
            trace=SystemTrace(()),
            halted=True,
            wrapper_kind="WP1",
            configuration_label="empty",
            rs_counts={},
        )
        assert result.throughput() == 0.0

    def test_zero_cycles_yield_zero(self):
        from repro.core.traces import SystemTrace

        result = LidResult(
            cycles=0,
            firings={"p": 0},
            trace=SystemTrace(()),
            halted=False,
            wrapper_kind="WP1",
            configuration_label="empty",
            rs_counts={},
        )
        assert result.throughput() == 0.0


class TestOutputValidationParity:
    """Both kernels reject misbehaving processes with the same NetlistError."""

    @staticmethod
    def _netlist(transition):
        producer = FunctionProcess("p", ("in",), ("out",), transition)
        return Netlist(
            [producer], [Channel("loop", "p", "out", "p", "in", initial=0)]
        )

    @pytest.mark.parametrize("kernel", ALL_KERNELS)
    def test_undeclared_output_port_rejected(self, kernel):
        from repro.core import NetlistError

        netlist = self._netlist(
            lambda state, inputs: (state, {"out": 1, "ghost": 2})
        )
        with pytest.raises(NetlistError, match="undeclared output ports"):
            run_lid(
                netlist, kernel=kernel,
                target_firings={"p": 3}, max_cycles=50,
            )

    @pytest.mark.parametrize("kernel", ALL_KERNELS)
    def test_undriven_output_port_rejected(self, kernel):
        from repro.core import NetlistError

        netlist = self._netlist(lambda state, inputs: (state, {}))
        with pytest.raises(NetlistError, match="did not drive output ports"):
            run_lid(
                netlist, kernel=kernel,
                target_firings={"p": 3}, max_cycles=50,
            )


# ---------------------------------------------------------------------------
# Code generation
# ---------------------------------------------------------------------------

def _codegen_topologies():
    """Representative netlists: lines, rings (cyclic), fan-out, self-loops."""
    from repro.core import CounterSource, PassthroughProcess, SinkProcess

    ring3, ring3_rs = ring_netlist(3, rs_total=2)
    ring1, ring1_rs = ring_netlist(1, rs_total=1)  # single-process self-loop

    source = CounterSource("src", limit=20)
    mid = PassthroughProcess("mid")
    sink_a = SinkProcess("sink_a")
    sink_b = SinkProcess("sink_b")
    fanout = Netlist(
        [source, mid, sink_a, sink_b],
        [
            Channel("c_src", "src", "out", "mid", "in", initial=0),
            Channel("c_a", "mid", "out", "sink_a", "in", initial=0),
            Channel("c_b", "mid", "out", "sink_b", "in", initial=0),
        ],
        name="fanout",
    )
    cpu = build_pipelined_cpu(make_extraction_sort(length=4, seed=3).program)
    return [
        ("ring3", ring3, ring3_rs),
        ("self-loop", ring1, ring1_rs),
        ("fanout", fanout, {"c_src": 1}),
        ("cpu", cpu.netlist, {name: 1 for name in cpu.netlist.channels}),
    ]


class TestCodegen:
    @pytest.mark.parametrize("relaxed", [False, True])
    @pytest.mark.parametrize(
        "instruments",
        [InstrumentSet.none(), InstrumentSet.all(),
         InstrumentSet(trace=False, shell_stats=True, occupancy=False)],
        ids=["none", "all", "stats-only"],
    )
    def test_generated_source_round_trips_compile(self, relaxed, instruments):
        """The emitted source compiles for every topology, cyclic ones included."""
        from repro.engine.codegen import ENTRY_POINT

        for label, netlist, rs_counts in _codegen_topologies():
            model = elaborate(netlist, rs_counts=rs_counts, relaxed=relaxed)
            for stop_mode in (STOP_ANY_DONE, STOP_TARGET):
                source = generate_run_source(model, instruments, stop_mode)
                code = compile(source, f"<test:{label}>", "exec")
                namespace: dict = {}
                exec(code, namespace)  # placeholder globals; only check shape
                assert callable(namespace[ENTRY_POINT]), label

    def test_compiled_fn_cached_per_signature(self):
        netlist, rs_counts = ring_netlist(3, rs_total=2)
        elaborator = Elaborator(netlist)
        model_a = elaborator.bind(rs_counts=rs_counts)
        model_b = elaborator.bind(rs_counts=rs_counts)
        fn_a = compiled_run_fn(model_a, InstrumentSet.none())
        fn_b = compiled_run_fn(model_b, InstrumentSet.none())
        assert fn_a is fn_b  # same layout + same signature -> same code object

    def test_distinct_signatures_compile_separately(self):
        netlist, _ = ring_netlist(3, rs_total=0)
        elaborator = Elaborator(netlist)
        light = elaborator.bind(rs_counts={"c0_1": 1})
        heavy = elaborator.bind(rs_counts={"c0_1": 2})
        fn_light = compiled_run_fn(light, InstrumentSet.none())
        fn_heavy = compiled_run_fn(heavy, InstrumentSet.none())
        assert fn_light is not fn_heavy

    def test_generated_source_attached_for_debugging(self):
        netlist, rs_counts = ring_netlist(2, rs_total=1)
        model = elaborate(netlist, rs_counts=rs_counts)
        fn = compiled_run_fn(model, InstrumentSet.none())
        assert "def __lid_run" in fn.__lid_source__

    def test_generation_is_deterministic(self):
        netlist, rs_counts = ring_netlist(4, rs_total=3)
        model = elaborate(netlist, rs_counts=rs_counts, relaxed=True)
        first = generate_run_source(model, InstrumentSet.all())
        second = generate_run_source(model, InstrumentSet.all())
        assert first == second


# ---------------------------------------------------------------------------
# Sharded batch fan-out (fork and spawn)
# ---------------------------------------------------------------------------

class TestShardedBatch:
    CONFIGS = staticmethod(lambda: [
        RSConfiguration.ideal(),
        RSConfiguration.uniform(1, exclude=("CU-IC",)),
        RSConfiguration.uniform(2, exclude=("CU-IC",)),
        RSConfiguration.only("RF-DC", 1),
        RSConfiguration.only("CU-RF", 2),
    ])

    @pytest.mark.parametrize("start_method", ["fork", "spawn"])
    def test_pool_matches_serial_under_both_start_methods(self, start_method):
        import multiprocessing

        if start_method not in multiprocessing.get_all_start_methods():
            pytest.skip(f"{start_method} not available")
        cpu = _sort_cpu()
        configs = self.CONFIGS()
        runner = BatchRunner(cpu.netlist)
        serial = runner.run_many(configs, stop_process="CU")
        pooled = runner.run_many(
            configs, workers=2, start_method=start_method, stop_process="CU"
        )
        assert [s.cycles for s in serial] == [p.cycles for p in pooled]
        assert [s.firings for s in serial] == [p.firings for p in pooled]
        assert [s.label for s in serial] == [p.label for p in pooled]

    def test_sharding_preserves_order(self):
        cpu = _sort_cpu()
        configs = self.CONFIGS()
        runner = BatchRunner(cpu.netlist)
        serial = runner.run_many(configs, stop_process="CU")
        sharded = runner.run_many(configs, workers=2, shards=5, stop_process="CU")
        assert [s.cycles for s in serial] == [p.cycles for p in sharded]

    def test_unpicklable_netlist_uses_fork_inheritance(self):
        if not sys.platform.startswith(("linux", "darwin")):
            pytest.skip("fork inheritance requires a fork platform")
        netlist, rs_counts = ring_netlist(3, rs_total=2)  # closure processes
        runner = BatchRunner(netlist)
        serial = runner.run_many(
            [rs_counts] * 4, target_firings={"stage0": 15}, max_cycles=1000
        )
        parallel = runner.run_many(
            [rs_counts] * 4, workers=2,
            target_firings={"stage0": 15}, max_cycles=1000,
        )
        assert [s.cycles for s in serial] == [p.cycles for p in parallel]

    def test_serial_fallback_warns_when_parallelism_unavailable(self, monkeypatch):
        from repro.engine import batch as batch_module

        netlist, rs_counts = ring_netlist(3, rs_total=2)  # unpicklable
        monkeypatch.setattr(batch_module, "_fork_available", lambda: False)
        runner = BatchRunner(netlist)
        with pytest.warns(RuntimeWarning, match="serially"):
            results = runner.run_many(
                [rs_counts] * 2, workers=2,
                target_firings={"stage0": 15}, max_cycles=1000,
            )
        assert len(results) == 2 and all(r.cycles > 0 for r in results)

    def test_per_item_queue_capacity_overrides(self):
        cpu = _sort_cpu()
        config = RSConfiguration.uniform(1, exclude=("CU-IC",))
        runner = BatchRunner(cpu.netlist)
        shallow, deep = runner.run_many(
            [(config, {"queue_capacity": 2}), (config, {"queue_capacity": 8})],
            stop_process="CU",
        )
        direct_shallow = runner.run(
            configuration=config, queue_capacity=2, stop_process="CU"
        )
        direct_deep = runner.run(
            configuration=config, queue_capacity=8, stop_process="CU"
        )
        assert shallow.cycles == direct_shallow.cycles
        assert deep.cycles == direct_deep.cycles

    def test_unknown_item_override_rejected(self):
        cpu = _sort_cpu()
        runner = BatchRunner(cpu.netlist)
        with pytest.raises(SimulationError, match="unknown batch item overrides"):
            runner.run_many(
                [(RSConfiguration.ideal(), {"warp": 9})], stop_process="CU"
            )

    def test_objective_many_matches_scalar(self):
        from repro.core import simulated_throughput_objective

        cpu = _sort_cpu()
        golden = cpu.run_golden(record_trace=False)
        objective = simulated_throughput_objective(
            cpu.netlist, golden_cycles=golden.cycles, stop_process="CU"
        )
        assignments = [{}, {"CU-RF": 1}, {"RF-DC": 2}]
        assert objective.many(assignments) == [
            objective(assignment) for assignment in assignments
        ]

    def test_exhaustive_search_uses_batch_objective(self):
        from repro.core import SearchSpace, exhaustive_search, simulated_throughput_objective

        cpu = _sort_cpu()
        golden = cpu.run_golden(record_trace=False)
        calls = {"many": 0}
        objective = simulated_throughput_objective(
            cpu.netlist, golden_cycles=golden.cycles, stop_process="CU"
        )
        inner_many = objective.many

        def counting_many(assignments):
            calls["many"] += 1
            return inner_many(assignments)

        objective.many = counting_many
        space = SearchSpace.bounded(
            cpu.netlist.link_names(), maximum=1, fixed={"CU-IC": 0}
        )
        result = exhaustive_search(space, objective)
        assert calls["many"] == 1
        assert 0.0 < result.score <= 1.0
        assert result.evaluations > 0
