"""Unit tests for the minimal ISA: instructions, classification, encoding."""

from __future__ import annotations

import pytest

from repro.core.exceptions import AssemblerError
from repro.cpu import isa
from repro.cpu.isa import Instruction, Opcode, decode, encode, to_signed_word


class TestInstructionConstruction:
    def test_register_range_checked(self):
        with pytest.raises(AssemblerError):
            Instruction(Opcode.ADD, rd=16)
        with pytest.raises(AssemblerError):
            Instruction(Opcode.ADD, ra=-1)

    def test_immediate_range_checked(self):
        with pytest.raises(AssemblerError):
            Instruction(Opcode.ADDI, rd=1, ra=1, imm=isa.IMM_MAX + 1)
        with pytest.raises(AssemblerError):
            Instruction(Opcode.ADDI, rd=1, ra=1, imm=isa.IMM_MIN - 1)

    def test_boundary_immediates_accepted(self):
        Instruction(Opcode.ADDI, rd=1, ra=1, imm=isa.IMM_MAX)
        Instruction(Opcode.ADDI, rd=1, ra=1, imm=isa.IMM_MIN)


class TestClassification:
    def test_alu_writeback_ops(self):
        assert isa.add(1, 2, 3).is_alu_writeback
        assert isa.li(1, 5).is_alu_writeback
        assert not isa.st(1, 2).is_alu_writeback
        assert not isa.beq(1, 2, 0).is_alu_writeback

    def test_memory_classification(self):
        assert isa.ld(1, 2).is_load
        assert isa.ld(1, 2).is_memory
        assert isa.st(1, 2).is_store
        assert not isa.add(1, 2, 3).is_memory

    def test_branch_and_jump(self):
        assert isa.bne(1, 2, 5).is_branch
        assert isa.jmp(3).is_jump
        assert not isa.jmp(3).is_branch

    def test_halt_and_nop(self):
        assert isa.halt().is_halt
        assert isa.nop().is_nop

    def test_writes_register(self):
        assert isa.add(3, 1, 2).writes_register == 3
        assert isa.ld(4, 1).writes_register == 4
        assert isa.st(1, 2).writes_register is None
        assert isa.beq(1, 2, 0).writes_register is None
        assert isa.halt().writes_register is None

    def test_source_registers(self):
        assert isa.add(3, 1, 2).source_registers == (1, 2)
        assert isa.addi(3, 1, 5).source_registers == (1,)
        assert isa.li(3, 5).source_registers == ()
        assert isa.ld(3, 1, 2).source_registers == (1,)
        assert isa.st(2, 1, 0).source_registers == (1, 2)
        assert isa.beq(1, 2, 0).source_registers == (1, 2)
        assert isa.jmp(0).source_registers == ()
        assert isa.halt().source_registers == ()

    def test_uses_immediate_operand(self):
        assert isa.addi(1, 2, 3).uses_immediate_operand
        assert isa.ld(1, 2, 3).uses_immediate_operand
        assert not isa.add(1, 2, 3).uses_immediate_operand
        assert not isa.beq(1, 2, 3).uses_immediate_operand

    def test_alu_function_mapping(self):
        assert isa.addi(1, 2, 3).alu_function is Opcode.ADD
        assert isa.ld(1, 2).alu_function is Opcode.ADD
        assert isa.beq(1, 2, 0).alu_function is Opcode.SUB
        assert isa.mul(1, 2, 3).alu_function is Opcode.MUL
        assert Instruction(Opcode.SLTI, rd=1, ra=2, imm=3).alu_function is Opcode.SLT


class TestDescribe:
    @pytest.mark.parametrize(
        "instruction,expected",
        [
            (isa.nop(), "NOP"),
            (isa.halt(), "HALT"),
            (isa.jmp(7), "JMP 7"),
            (isa.li(2, 9), "LI r2, 9"),
            (isa.addi(2, 3, -1), "ADDI r2, r3, -1"),
            (isa.ld(1, 2, 4), "LD r1, 4(r2)"),
            (isa.st(1, 2, 4), "ST r1, 4(r2)"),
            (isa.beq(1, 2, 8), "BEQ r1, r2, 8"),
            (isa.add(1, 2, 3), "ADD r1, r2, r3"),
        ],
    )
    def test_describe_format(self, instruction, expected):
        assert instruction.describe() == expected


class TestEncoding:
    @pytest.mark.parametrize(
        "instruction",
        [
            isa.nop(),
            isa.halt(),
            isa.add(3, 1, 2),
            isa.sub(15, 14, 13),
            isa.mul(1, 2, 3),
            isa.slt(4, 5, 6),
            isa.addi(7, 8, 100),
            isa.addi(7, 8, -100),
            isa.li(9, isa.IMM_MAX),
            isa.li(9, isa.IMM_MIN),
            isa.ld(10, 11, 12),
            isa.st(1, 2, -3),
            isa.beq(1, 2, 200),
            isa.bne(3, 4, 0),
            isa.blt(5, 6, 77),
            isa.bge(7, 8, 99),
            isa.jmp(123),
        ],
    )
    def test_roundtrip(self, instruction):
        assert decode(encode(instruction)) == instruction

    def test_encoded_word_fits_32_bits(self):
        word = encode(isa.li(15, isa.IMM_MIN))
        assert 0 <= word < 2**32

    def test_decode_rejects_unknown_opcode(self):
        with pytest.raises(AssemblerError):
            decode(0x3F << 26)

    def test_decode_rejects_oversized_word(self):
        with pytest.raises(AssemblerError):
            decode(2**32)


class TestSignedWord:
    def test_wraps_positive_overflow(self):
        assert to_signed_word(2**31) == -(2**31)

    def test_wraps_negative(self):
        assert to_signed_word(-1) == -1
        assert to_signed_word(-(2**31) - 1) == 2**31 - 1

    def test_identity_in_range(self):
        assert to_signed_word(12345) == 12345
