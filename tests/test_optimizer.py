"""Unit tests for the relay-station configuration optimiser."""

from __future__ import annotations

import pytest

from repro.core.config import RSConfiguration
from repro.core.exceptions import OptimizationError
from repro.core.optimizer import (
    LinkRange,
    SearchSpace,
    annealing_search,
    exhaustive_search,
    greedy_search,
    optimize_configuration,
    simulation_objective,
    static_objective,
)
from repro.core.static_analysis import make_link_bound_evaluator, throughput_bound
from repro.cpu import build_pipelined_cpu
from repro.cpu.workloads import make_extraction_sort


@pytest.fixture(scope="module")
def cpu_netlist():
    return build_pipelined_cpu(make_extraction_sort(length=4).program).netlist


class TestSearchSpace:
    def test_link_range_validation(self):
        with pytest.raises(OptimizationError):
            LinkRange(2, 1)
        with pytest.raises(OptimizationError):
            LinkRange(-1, 0)

    def test_bounded_space_with_fixed_links(self):
        space = SearchSpace.bounded(["a", "b"], maximum=2, fixed={"b": 0})
        assert space.ranges["a"].maximum == 2
        assert space.ranges["b"].maximum == 0

    def test_size(self):
        space = SearchSpace.bounded(["a", "b"], maximum=2)
        assert space.size() == 9

    def test_clamp(self):
        space = SearchSpace.bounded(["a"], maximum=2)
        assert space.clamp({"a": 9}) == {"a": 2}
        assert space.clamp({}) == {"a": 0}

    def test_satisfies_total_constraint(self):
        space = SearchSpace.bounded(["a", "b"], maximum=2, total=3)
        assert space.satisfies({"a": 1, "b": 2})
        assert not space.satisfies({"a": 1, "b": 1})
        assert not space.satisfies({"a": 3, "b": 0})


class TestObjectives:
    def test_static_objective_prefers_fewer_relay_stations(self, cpu_netlist):
        objective = static_objective(cpu_netlist)
        none = objective({link: 0 for link in cpu_netlist.link_names()})
        all_one = objective({link: 1 for link in cpu_netlist.link_names()})
        assert none == 1.0
        assert all_one < none

    def test_simulation_objective_delegates_to_runner(self):
        calls = []

        def runner(configuration):
            calls.append(configuration.label)
            return 0.5

        objective = simulation_objective(runner)
        assert objective({"a": 1}) == 0.5
        assert calls == ["candidate"]


class TestStrategies:
    def test_exhaustive_finds_global_optimum(self, cpu_netlist):
        links = cpu_netlist.link_names()
        evaluator = make_link_bound_evaluator(cpu_netlist)
        space = SearchSpace.bounded(links, maximum=1, total=1)
        result = exhaustive_search(space, evaluator)
        # Placing the single relay station on the CU-DC link keeps the bound
        # at 4/5, the best achievable with exactly one pipelined link.
        assert result.score == pytest.approx(0.8)
        assert result.assignment["CU-DC"] == 1

    def test_exhaustive_empty_space_raises(self):
        space = SearchSpace.bounded(["a"], maximum=1, total=5)
        with pytest.raises(OptimizationError):
            exhaustive_search(space, lambda assignment: 0.0)

    def test_greedy_reaches_total(self, cpu_netlist):
        links = cpu_netlist.link_names()
        evaluator = make_link_bound_evaluator(cpu_netlist)
        space = SearchSpace.bounded(links, maximum=2, total=4)
        result = greedy_search(space, evaluator)
        assert sum(result.assignment.values()) == 4
        assert 0.0 < result.score <= 1.0

    def test_greedy_without_total_stops_at_local_optimum(self, cpu_netlist):
        links = cpu_netlist.link_names()
        evaluator = make_link_bound_evaluator(cpu_netlist)
        space = SearchSpace.bounded(links, maximum=1)
        result = greedy_search(space, evaluator)
        # Adding any relay station lowers the static bound, so greedy stays at zero.
        assert sum(result.assignment.values()) == 0
        assert result.score == 1.0

    def test_greedy_infeasible_total_raises(self):
        space = SearchSpace.bounded(["a"], maximum=1, total=5)
        with pytest.raises(OptimizationError):
            greedy_search(space, lambda assignment: 0.0)

    def test_annealing_is_deterministic_for_a_seed(self, cpu_netlist):
        links = cpu_netlist.link_names()
        evaluator = make_link_bound_evaluator(cpu_netlist)
        space = SearchSpace.bounded(links, maximum=2, total=6)
        first = annealing_search(space, evaluator, iterations=300, seed=3)
        second = annealing_search(space, evaluator, iterations=300, seed=3)
        assert first.assignment == second.assignment
        assert first.score == second.score

    def test_annealing_respects_total(self, cpu_netlist):
        links = cpu_netlist.link_names()
        evaluator = make_link_bound_evaluator(cpu_netlist)
        space = SearchSpace.bounded(links, maximum=2, total=6)
        result = annealing_search(space, evaluator, iterations=200, seed=0)
        assert sum(result.assignment.values()) == 6

    def test_annealing_not_worse_than_uniform(self, cpu_netlist):
        links = cpu_netlist.link_names()
        evaluator = make_link_bound_evaluator(cpu_netlist)
        total = len(links)
        space = SearchSpace.bounded(links, maximum=2, total=total)
        result = annealing_search(space, evaluator, iterations=1000, seed=1)
        uniform = evaluator({link: 1 for link in links})
        assert result.score >= uniform - 1e-9

    def test_annealing_infeasible_total_raises(self):
        space = SearchSpace.bounded(["a"], maximum=1, total=5)
        with pytest.raises(OptimizationError):
            annealing_search(space, lambda assignment: 0.0, iterations=10)


class TestOptimizeConfiguration:
    def test_auto_uses_exhaustive_for_small_spaces(self, cpu_netlist):
        space = SearchSpace.bounded(cpu_netlist.link_names(), maximum=1, total=1)
        result = optimize_configuration(cpu_netlist, space)
        assert result.strategy == "exhaustive"

    def test_auto_falls_back_to_greedy(self, cpu_netlist):
        space = SearchSpace.bounded(cpu_netlist.link_names(), maximum=3)
        result = optimize_configuration(cpu_netlist, space, exhaustive_limit=10)
        assert result.strategy == "greedy"

    def test_explicit_annealing(self, cpu_netlist):
        space = SearchSpace.bounded(cpu_netlist.link_names(), maximum=1, total=2)
        result = optimize_configuration(
            cpu_netlist, space, strategy="annealing", iterations=100, seed=0
        )
        assert result.strategy == "annealing"

    def test_unknown_strategy_rejected(self, cpu_netlist):
        space = SearchSpace.bounded(cpu_netlist.link_names(), maximum=1)
        with pytest.raises(OptimizationError):
            optimize_configuration(cpu_netlist, space, strategy="magic")

    def test_result_packaging_as_configuration(self, cpu_netlist):
        space = SearchSpace.bounded(cpu_netlist.link_names(), maximum=1, total=1)
        result = optimize_configuration(cpu_netlist, space)
        config = result.as_configuration(label="winner")
        assert isinstance(config, RSConfiguration)
        assert config.label == "winner"
        bound = throughput_bound(cpu_netlist, configuration=config).bound_float
        assert bound == pytest.approx(result.score)
