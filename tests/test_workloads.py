"""Unit tests for the workload generators."""

from __future__ import annotations

import pytest

from repro.cpu.workloads import (
    deterministic_values,
    make_extraction_sort,
    make_matrix_multiply,
    reference_product,
)


class TestDeterministicValues:
    def test_reproducible_for_same_seed(self):
        assert deterministic_values(10, seed=3) == deterministic_values(10, seed=3)

    def test_different_seeds_differ(self):
        assert deterministic_values(10, seed=3) != deterministic_values(10, seed=4)

    def test_respects_bounds(self):
        values = deterministic_values(50, seed=1, low=5, high=9)
        assert all(5 <= value <= 9 for value in values)

    def test_count(self):
        assert len(deterministic_values(7, seed=0)) == 7


class TestExtractionSortWorkload:
    def test_expected_memory_is_sorted_input(self):
        workload = make_extraction_sort(length=6, values=[3, 1, 2, 9, 5, 4])
        assert [workload.expected_memory[i] for i in range(6)] == [1, 2, 3, 4, 5, 9]

    def test_program_data_holds_unsorted_input(self):
        values = [3, 1, 2]
        workload = make_extraction_sort(length=3, values=values)
        assert [workload.program.data[i] for i in range(3)] == values

    def test_value_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            make_extraction_sort(length=4, values=[1, 2])

    def test_parameters_recorded(self):
        workload = make_extraction_sort(length=5, seed=42)
        assert workload.parameters["length"] == 5
        assert workload.parameters["seed"] == 42

    def test_describe_mentions_name(self):
        assert "Extraction Sort" in make_extraction_sort(length=4).describe()

    def test_custom_base_address(self):
        workload = make_extraction_sort(length=3, values=[2, 1, 3], base=100)
        assert set(workload.program.data) == {100, 101, 102}
        assert workload.expected_memory[100] == 1

    def test_instruction_count_positive(self):
        assert make_extraction_sort(length=4).instruction_count > 5


class TestMatrixMultiplyWorkload:
    def test_reference_product_identity(self):
        identity = [1, 0, 0, 1]
        assert reference_product([1, 2, 3, 4], identity, 2) == [1, 2, 3, 4]

    def test_expected_memory_matches_reference(self):
        a = [1, 2, 3, 4]
        b = [5, 6, 7, 8]
        workload = make_matrix_multiply(size=2, a_values=a, b_values=b)
        c_base = 8
        expected = reference_product(a, b, 2)
        assert [workload.expected_memory[c_base + i] for i in range(4)] == expected

    def test_memory_layout_non_overlapping(self):
        workload = make_matrix_multiply(size=3, seed=0)
        data_addresses = set(workload.program.data)
        result_addresses = set(workload.expected_memory)
        assert not data_addresses & result_addresses

    def test_custom_bases(self):
        workload = make_matrix_multiply(
            size=2, a_values=[1, 0, 0, 1], b_values=[1, 2, 3, 4],
            a_base=10, b_base=20, c_base=30,
        )
        assert set(workload.program.data) == set(range(10, 14)) | set(range(20, 24))
        assert set(workload.expected_memory) == set(range(30, 34))

    def test_matrix_size_mismatch_rejected(self):
        with pytest.raises(ValueError):
            make_matrix_multiply(size=2, a_values=[1, 2, 3])

    def test_seed_reproducibility(self):
        first = make_matrix_multiply(size=3, seed=8)
        second = make_matrix_multiply(size=3, seed=8)
        assert first.program.data == second.program.data
        assert first.expected_memory == second.expected_memory
