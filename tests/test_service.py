"""Tests of ``repro.service``: serialization, cache, scheduler, satellites.

Covers the ISSUE-5 checklist: hypothesis round-trips of the canonical
``LidResult``/``BatchResult`` dict forms (all fields, including
period/warmup/extrapolated and the per-port stall-stat dicts), concurrent-
submitter stress asserting in-flight dedup and cache hits, cancellation
semantics, fork+spawn safety of the cached path, the once-per-runner
serial-fallback warning, the shared-PeriodMemory wiring, and the
64-row mixed WP1+WP2 acceptance scenario (bit-identical rows, streaming
partials, warm re-run answered from cache).
"""

from __future__ import annotations

import asyncio
import json
import os
import sys
import threading
import warnings

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import RSConfiguration, ring_netlist
from repro.core.exceptions import SimulationError
from repro.core.optimizer import (
    SearchSpace,
    exhaustive_search,
    greedy_search,
    simulated_throughput_objective,
)
from repro.core.shell import ShellStats
from repro.core.tokens import VOID, Token
from repro.core.traces import SystemTrace
from repro.cpu.machine import build_pipelined_cpu
from repro.cpu.workloads import make_extraction_sort, make_matrix_multiply
from repro.engine.batch import BatchResult, BatchRunner, MultiNetlistRunner
from repro.engine.result import LidResult
from repro.engine.steady_state import PeriodMemory
from repro.experiments.sweeps import mixed_workload_sweep, uniform_depth_sweep
from repro.experiments.table1 import run_table1_sort
from repro.service import (
    EvaluationService,
    JobStatus,
    ResultCache,
    controls_signature,
    result_key,
)
from repro.engine.kernel import RunControls


# ---------------------------------------------------------------------------
# Strategies for the serialization round trips
# ---------------------------------------------------------------------------

_names = st.text(
    alphabet="abcdefgh.-_0123456789", min_size=1, max_size=8
)
_counts = st.integers(min_value=0, max_value=10_000)
_port_dicts = st.dictionaries(_names, _counts, max_size=3)


@st.composite
def shell_stats_strategy(draw):
    return ShellStats(
        cycles=draw(_counts),
        firings=draw(_counts),
        stalls_missing_input=draw(_counts),
        stalls_output_blocked=draw(_counts),
        stalls_done=draw(_counts),
        discarded_tokens=draw(_counts),
        discarded_by_port=draw(_port_dicts),
        missing_by_port=draw(_port_dicts),
    )


@st.composite
def trace_strategy(draw):
    channels = draw(st.lists(_names, max_size=3, unique=True))
    trace = SystemTrace(channels)
    for name in channels:
        tag = 0
        for emit in draw(st.lists(st.booleans(), max_size=6)):
            if emit:
                trace[name].append(Token(value=draw(_counts), tag=tag))
                tag += 1
            else:
                trace[name].append(VOID)
    return trace


@st.composite
def lid_result_strategy(draw):
    period = draw(st.one_of(st.none(), st.integers(min_value=1, max_value=512)))
    return LidResult(
        cycles=draw(_counts),
        firings=draw(st.dictionaries(_names, _counts, max_size=4)),
        trace=draw(trace_strategy()),
        halted=draw(st.booleans()),
        wrapper_kind=draw(st.sampled_from(["WP1", "WP2"])),
        configuration_label=draw(_names),
        rs_counts=draw(st.dictionaries(_names, _counts, max_size=4)),
        shell_stats=draw(
            st.dictionaries(_names, shell_stats_strategy(), max_size=3)
        ),
        max_queue_occupancy=draw(st.dictionaries(_names, _counts, max_size=4)),
        period=period,
        warmup_cycles=None if period is None else draw(_counts),
        extrapolated=draw(st.booleans()) if period is not None else False,
    )


@st.composite
def batch_result_strategy(draw):
    failed = draw(st.booleans())
    return BatchResult(
        label=draw(_names),
        cycles=draw(_counts),
        firings=draw(st.dictionaries(_names, _counts, max_size=4)),
        halted=draw(st.booleans()),
        wrapper_kind=draw(st.sampled_from(["WP1", "WP2"])),
        error=draw(_names) if failed else None,
        rs_total=draw(_counts),
        period=draw(st.one_of(st.none(), st.integers(min_value=1, max_value=99))),
        warmup_cycles=draw(st.one_of(st.none(), _counts)),
        extrapolated=draw(st.booleans()),
    )


class TestSerialization:
    @settings(max_examples=60, suppress_health_check=[HealthCheck.too_slow])
    @given(result=lid_result_strategy())
    def test_lid_result_round_trip(self, result):
        data = result.to_dict()
        rebuilt = LidResult.from_dict(data)
        assert rebuilt == result
        # And the round trip is stable (canonical form).
        assert rebuilt.to_dict() == data

    @settings(max_examples=60, suppress_health_check=[HealthCheck.too_slow])
    @given(result=batch_result_strategy())
    def test_batch_result_round_trip_via_json(self, result):
        data = json.loads(json.dumps(result.to_dict()))
        assert BatchResult.from_dict(data) == result

    @settings(max_examples=40, suppress_health_check=[HealthCheck.too_slow])
    @given(stats=shell_stats_strategy())
    def test_shell_stats_round_trip(self, stats):
        assert ShellStats.from_dict(stats.to_dict()) == stats

    def test_real_run_round_trips(self, sort_cpu):
        result = sort_cpu.run_wire_pipelined(
            configuration=RSConfiguration.uniform(1, exclude=("CU-IC",)),
            record_trace=False,
        )
        assert LidResult.from_dict(result.to_dict()) == result


# ---------------------------------------------------------------------------
# Content-addressed keys
# ---------------------------------------------------------------------------

def _sort_netlist(length=8, seed=7):
    return build_pipelined_cpu(
        make_extraction_sort(length=length, seed=seed).program
    ).netlist


class TestCacheKeys:
    def test_key_stable_across_runner_rebuilds(self):
        controls = RunControls(stop_process="CU")
        keys = []
        for _ in range(2):
            runner = BatchRunner(_sort_netlist())
            item = runner._normalise_item(RSConfiguration.uniform(1), None)
            keys.append(result_key(runner, item, controls))
        assert keys[0] is not None and keys[0] == keys[1]

    def test_key_ignores_label_but_not_counts(self):
        runner = BatchRunner(_sort_netlist())
        controls = RunControls(stop_process="CU")
        a = result_key(
            runner,
            runner._normalise_item(RSConfiguration.uniform(1, label="A"), None),
            controls,
        )
        b = result_key(
            runner,
            runner._normalise_item(RSConfiguration.uniform(1, label="B"), None),
            controls,
        )
        c = result_key(
            runner,
            runner._normalise_item(RSConfiguration.uniform(2, label="A"), None),
            controls,
        )
        assert a == b
        assert a != c

    def test_key_depends_on_controls_and_capacity(self):
        runner = BatchRunner(_sort_netlist())
        item = runner._normalise_item(RSConfiguration.uniform(1), None)
        deep = runner._normalise_item(RSConfiguration.uniform(1), 8)
        base = result_key(runner, item, RunControls(stop_process="CU"))
        assert base != result_key(runner, item, RunControls(stop_process="ALU"))
        assert base != result_key(runner, item, RunControls(stop_process="CU", horizon=500))
        assert base != result_key(runner, deep, RunControls(stop_process="CU"))

    def test_unpicklable_netlist_is_uncacheable(self):
        netlist, rs_counts = ring_netlist(3, rs_total=2)  # closure processes
        runner = BatchRunner(netlist)
        assert runner.netlist_digest() is None
        item = runner._normalise_item(rs_counts, None)
        assert result_key(runner, item, RunControls()) is None

    def test_on_cycle_observer_is_uncacheable(self):
        assert controls_signature(RunControls(on_cycle=lambda c, d: None)) is None

    def test_steady_state_resolution_enters_signature(self, monkeypatch):
        explicit_on = controls_signature(RunControls(steady_state=True))
        explicit_off = controls_signature(RunControls(steady_state=False))
        assert explicit_on != explicit_off
        monkeypatch.setenv("REPRO_STEADY_STATE", "0")
        assert controls_signature(RunControls()) == explicit_off


# ---------------------------------------------------------------------------
# ResultCache tiers
# ---------------------------------------------------------------------------

class TestResultCache:
    def _result(self, label="row", cycles=100):
        return BatchResult(
            label=label, cycles=cycles, firings={"CU": 10}, halted=True,
            wrapper_kind="WP1", rs_total=3, period=7, warmup_cycles=2,
            extrapolated=True,
        )

    def test_memory_lru_eviction(self):
        cache = ResultCache(max_entries=2)
        for index in range(3):
            cache.put(f"k{index}", self._result(cycles=index))
        assert cache.get("k0") is None  # evicted
        assert cache.get("k2").cycles == 2
        assert len(cache) == 2

    def test_disk_tier_survives_new_cache(self, tmp_path):
        first = ResultCache(cache_dir=tmp_path)
        first.put("deadbeef", self._result())
        second = ResultCache(cache_dir=tmp_path)
        hit = second.get("deadbeef")
        assert hit == self._result()
        assert second.disk_hits == 1

    def test_disk_corruption_is_a_miss(self, tmp_path):
        cache = ResultCache(cache_dir=tmp_path)
        (tmp_path / "bad.json").write_text("{not json")
        assert cache.get("bad") is None
        assert cache.disk_errors == 1

    def test_max_disk_bytes_validation(self):
        with pytest.raises(ValueError, match="max_disk_bytes"):
            ResultCache(max_disk_bytes=0)

    def _entry_size(self, tmp_path):
        """On-disk size of one cache entry (identical for same-shape results)."""
        probe = ResultCache(cache_dir=tmp_path)
        probe.put("probe", self._result(cycles=999))
        size = (tmp_path / "probe.json").stat().st_size
        (tmp_path / "probe.json").unlink()
        return size

    def test_disk_lru_evicts_oldest_mtime_first(self, tmp_path):
        size = self._entry_size(tmp_path)
        budget = 2 * size + size // 2  # room for two entries, not three
        cache = ResultCache(cache_dir=tmp_path, max_disk_bytes=budget)
        cache.put("k0", self._result(cycles=100))
        cache.put("k1", self._result(cycles=101))
        os.utime(tmp_path / "k1.json", (1, 1))  # k1 becomes the LRU entry
        cache.put("k2", self._result(cycles=102))
        assert not (tmp_path / "k1.json").exists()
        assert (tmp_path / "k0.json").exists()
        assert (tmp_path / "k2.json").exists()
        assert cache.disk_evictions == 1
        stats = cache.stats()
        assert stats["disk_evictions"] == 1
        assert stats["max_disk_bytes"] == budget
        # Eviction is not an error: the key simply misses and re-simulates.
        assert cache.disk_errors == 0
        assert ResultCache(cache_dir=tmp_path).get("k1") is None

    def test_disk_read_hit_refreshes_recency(self, tmp_path):
        size = self._entry_size(tmp_path)
        seed = ResultCache(cache_dir=tmp_path)
        seed.put("old", self._result(cycles=100))
        seed.put("new", self._result(cycles=101))
        os.utime(tmp_path / "old.json", (1, 1))
        os.utime(tmp_path / "new.json", (2, 2))
        # A disk hit touches the file: "old" becomes the most recent entry.
        reader = ResultCache(cache_dir=tmp_path)
        assert reader.get("old") is not None
        cache = ResultCache(
            cache_dir=tmp_path, max_disk_bytes=2 * size + size // 2
        )
        cache.put("k2", self._result(cycles=102))
        assert (tmp_path / "old.json").exists()
        assert not (tmp_path / "new.json").exists()

    def test_entry_larger_than_budget_evicted_immediately(self, tmp_path):
        cache = ResultCache(cache_dir=tmp_path, max_disk_bytes=1)
        cache.put("big", self._result())
        assert not (tmp_path / "big.json").exists()
        assert cache.disk_evictions == 1
        # The memory tier still serves it; only the disk copy is gone.
        assert cache.get("big") is not None
        assert ResultCache(cache_dir=tmp_path).get("big") is None


# ---------------------------------------------------------------------------
# The evaluation service
# ---------------------------------------------------------------------------

def _service_with_sort(autostart=True, **kwargs):
    service = EvaluationService(autostart=autostart, **kwargs)
    netlist = _sort_netlist()
    wp1 = service.ensure_layout(netlist, relaxed=False)
    wp2 = service.ensure_layout(netlist, relaxed=True)
    return service, wp1, wp2


def _rows(n):
    return [
        RSConfiguration.uniform(depth, exclude=("CU-IC",)) for depth in range(n)
    ]


class TestEvaluationService:
    def test_results_match_direct_runner(self):
        service, wp1, wp2 = _service_with_sort()
        with service:
            configs = _rows(3)
            jobset = service.submit(
                [(wp1, c) for c in configs] + [(wp2, c) for c in configs],
                stop_process="CU", queue_capacity=4,
            )
            results = jobset.ordered_results()
        netlist = _sort_netlist()
        direct = BatchRunner(netlist, relaxed=False).run_many(
            configs, stop_process="CU", queue_capacity=4
        )
        direct += BatchRunner(netlist, relaxed=True).run_many(
            configs, stop_process="CU", queue_capacity=4
        )
        assert results == direct

    def test_resubmission_hits_cache_bit_identically(self):
        service, wp1, wp2 = _service_with_sort()
        with service:
            items = [(wp1, c) for c in _rows(4)] + [(wp2, c) for c in _rows(4)]
            first = service.submit(items, stop_process="CU").ordered_results()
            again = service.submit(items, stop_process="CU")
            second = again.ordered_results()
            assert first == second
            assert all(job.cached for job in again.jobs)
            assert service.evaluated == len(items)

    def test_relabelled_cache_hit(self):
        service, wp1, _ = _service_with_sort()
        with service:
            a = RSConfiguration.uniform(1, exclude=("CU-IC",), label="first name")
            b = RSConfiguration.uniform(1, exclude=("CU-IC",), label="second name")
            ra = service.submit([(wp1, a)], stop_process="CU").ordered_results()[0]
            jobset = service.submit([(wp1, b)], stop_process="CU")
            rb = jobset.ordered_results()[0]
            assert jobset.jobs[0].cached
            assert rb.label == "second name"
            assert rb.cycles == ra.cycles

    def test_inflight_dedup_without_scheduler(self):
        service, wp1, _ = _service_with_sort(autostart=False)
        config = _rows(2)[1]
        js1 = service.submit([(wp1, config)], stop_process="CU")
        js2 = service.submit([(wp1, config)], stop_process="CU")
        assert js2.jobs[0].deduped
        assert service.deduped == 1
        service.start()
        assert js1.wait(60) and js2.wait(60)
        assert js1.jobs[0].result == js2.jobs[0].result
        assert service.evaluated == 1
        service.close()

    def test_concurrent_submitters_stress(self):
        service, wp1, wp2 = _service_with_sort()
        configs = _rows(4)
        items = [(wp1, c) for c in configs] + [(wp2, c) for c in configs]
        jobsets, errors = [], []
        barrier = threading.Barrier(6)

        def submitter():
            try:
                barrier.wait(10)
                jobsets.append(service.submit(items, stop_process="CU"))
            except Exception as exc:  # pragma: no cover - surfaced below
                errors.append(exc)

        threads = [threading.Thread(target=submitter) for _ in range(6)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(30)
        assert not errors
        reference = None
        for jobset in jobsets:
            rows = jobset.ordered_results()
            if reference is None:
                reference = rows
            assert rows == reference
        # Dedup + cache guarantee: the 8 unique rows were simulated once
        # each, no matter how the 6 submitters raced.
        assert service.evaluated == len(items)
        stats = service.stats()
        assert stats["deduped"] + stats["cache"]["hits"] == 5 * len(items)
        service.close()

    def test_stats_derive_rates_in_one_snapshot(self):
        service, wp1, _ = _service_with_sort()
        with service:
            stats = service.stats()
            assert stats["cache_hit_rate"] == 0.0  # no lookups yet: not NaN
            assert stats["dedup_rate"] == 0.0
            configs = _rows(2)
            service.submit(
                [(wp1, c) for c in configs], stop_process="CU"
            ).wait(60)
            service.submit(
                [(wp1, c) for c in configs], stop_process="CU"
            ).wait(60)
            stats = service.stats()
            # 2 misses then 2 hits; the ratio is derived from the very
            # counters the same snapshot carries.
            assert stats["cache_hit_rate"] == pytest.approx(0.5)
            cache = stats["cache"]
            lookups = cache["hits"] + cache["misses"]
            assert stats["cache_hit_rate"] == cache["hits"] / lookups
            assert stats["dedup_rate"] == stats["deduped"] / stats["submitted"]

    def test_cancellation_semantics(self):
        service, wp1, _ = _service_with_sort(autostart=False)
        jobset = service.submit(
            [(wp1, c) for c in _rows(3)], stop_process="CU"
        )
        victim = jobset.jobs[1]
        assert victim.cancel()
        assert not victim.cancel()  # idempotent: already terminal
        service.start()
        assert jobset.wait(60)
        assert victim.status is JobStatus.CANCELLED
        assert victim.result is None
        done = [job for job in jobset.jobs if job.status is JobStatus.DONE]
        assert len(done) == 2
        # The completion stream still yields every job, cancelled included.
        seen = {job.job_id for job in jobset.results(timeout=1)}
        assert seen == {job.job_id for job in jobset.jobs}
        # A cancelled row was never simulated.
        assert service.evaluated == 2
        service.close()

    def test_cancelled_primary_with_live_follower_still_evaluates(self):
        service, wp1, _ = _service_with_sort(autostart=False)
        config = _rows(2)[1]
        js1 = service.submit([(wp1, config)], stop_process="CU")
        js2 = service.submit([(wp1, config)], stop_process="CU")
        assert js2.jobs[0].deduped
        assert js1.jobs[0].cancel()
        service.start()
        assert js2.wait(60)
        assert js2.jobs[0].status is JobStatus.DONE
        assert js2.jobs[0].result is not None
        service.close()

    def test_close_cancel_pending(self):
        service, wp1, _ = _service_with_sort(autostart=False)
        jobset = service.submit([(wp1, c) for c in _rows(3)], stop_process="CU")
        service.close(cancel_pending=True)
        assert all(job.status is JobStatus.CANCELLED for job in jobset.jobs)
        with pytest.raises(SimulationError, match="closed"):
            service.submit([(wp1, _rows(1)[0])], stop_process="CU")

    def test_priorities_order_pending_jobs(self):
        service, wp1, _ = _service_with_sort(autostart=False)
        completion_order = []
        on_result = lambda job: completion_order.append(job.tag)  # noqa: E731
        configs = _rows(4)
        service.submit(
            [(wp1, configs[1])], tags=["low"], priority=10,
            on_result=on_result, stop_process="CU",
        )
        service.submit(
            [(wp1, configs[2])], tags=["high"], priority=-10,
            on_result=on_result, stop_process="CU",
        )
        service.submit(
            [(wp1, configs[3])], tags=["mid"], priority=0,
            on_result=on_result, stop_process="CU",
        )
        service.start()
        service.close()  # graceful drain
        assert completion_order == ["high", "mid", "low"]

    def test_async_stream_yields_all_jobs(self):
        service, wp1, wp2 = _service_with_sort()
        configs = _rows(3)
        items = [(wp1, c) for c in configs] + [(wp2, c) for c in configs]

        async def drain():
            seen = []
            async for job in service.stream(items, stop_process="CU"):
                seen.append(job)
            return seen

        seen = asyncio.run(drain())
        assert len(seen) == len(items)
        assert all(job.status is JobStatus.DONE for job in seen)
        service.close()

    def test_streaming_delivers_partials_before_completion(self):
        # Serial workers => chunk size 1 => row k is delivered while later
        # rows are still pending.  Track how many jobs were still unfinished
        # when each completion callback fired.
        service, wp1, wp2 = _service_with_sort(autostart=False)
        items = [(wp1, c) for c in _rows(4)] + [(wp2, c) for c in _rows(4)]
        pending_at_completion = []
        jobset = service.submit(
            items,
            on_result=lambda job: pending_at_completion.append(
                sum(1 for j in jobset.jobs if not j.done)
            ),
            stop_process="CU",
        )
        service.start()
        assert jobset.wait(60)
        assert pending_at_completion[0] > 0  # first row streamed early
        assert pending_at_completion[-1] == 0
        service.close()

    def test_failed_rows_carry_error_not_exception(self):
        # An infeasible corner (WP1 deadlock at queue_capacity=1 with no RS
        # slack) must come back as a failed BatchResult, not kill the
        # scheduler thread.
        netlist, rs_counts = ring_netlist(3, rs_total=2)
        service = EvaluationService()
        layout = service.ensure_layout(netlist, queue_capacity=1)
        jobset = service.submit(
            [(layout, {name: 0 for name in rs_counts})],
            target_firings={"stage0": 10}, max_cycles=50, deadlock_limit=10,
        )
        [result] = jobset.ordered_results()
        assert result.failed
        assert jobset.jobs[0].status is JobStatus.DONE
        # Service still alive afterwards.
        ok = service.submit(
            [(layout, rs_counts)], target_firings={"stage0": 10},
            max_cycles=1000,
        ).ordered_results()[0]
        assert not ok.failed
        service.close()

    def test_uncacheable_layout_still_evaluates(self):
        netlist, rs_counts = ring_netlist(3, rs_total=2)  # unpicklable
        service = EvaluationService()
        layout = service.ensure_layout(netlist)
        items = [(layout, rs_counts)] * 2
        jobset = service.submit(
            items, target_firings={"stage0": 15}, max_cycles=1000
        )
        first, second = jobset.ordered_results()
        assert first == second
        assert all(job.key is None for job in jobset.jobs)
        assert service.evaluated == 2  # no dedup possible without a key
        service.close()

    def test_ensure_layout_conflicts_and_reuse(self):
        service, wp1, _ = _service_with_sort()
        # Equal content, fresh build: same layout name, no new registration.
        assert service.ensure_layout(_sort_netlist(), relaxed=False) == wp1
        with pytest.raises(SimulationError, match="different netlist"):
            service.ensure_layout(
                _sort_netlist(length=10), relaxed=False, name=wp1
            )
        service.close()

    def test_ensure_layout_never_aliases_unpicklable_netlists(self):
        # Two distinct closure-carrying netlists have no content digest;
        # identity is the only proof of equality, so an explicit shared name
        # must conflict (None == None digests must not alias them).
        netlist_a, _ = ring_netlist(3, rs_total=2)
        netlist_b, _ = ring_netlist(4, rs_total=2)
        service = EvaluationService()
        assert service.ensure_layout(netlist_a, name="ring") == "ring"
        with pytest.raises(SimulationError, match="different netlist"):
            service.ensure_layout(netlist_b, name="ring")
        # The same object is recognised and reused.
        assert service.ensure_layout(netlist_a, name="ring") == "ring"
        service.close()

    def test_start_after_close_is_a_noop(self):
        service, wp1, _ = _service_with_sort(autostart=False)
        service.close()
        service.start()
        assert service._thread is None

    def test_cache_hit_callback_may_reenter_the_service(self):
        # Submit-time cache-hit completions run in the submitting thread
        # OUTSIDE the service lock, so an on_result callback may call back
        # into the service (stats/submit) without deadlocking.
        service, wp1, _ = _service_with_sort()
        config = _rows(2)[1]
        service.submit([(wp1, config)], stop_process="CU").wait(60)
        reentered = []
        jobset = service.submit(
            [(wp1, config)],
            on_result=lambda job: reentered.append(service.stats()["submitted"]),
            stop_process="CU",
        )
        assert jobset.jobs[0].cached
        assert reentered  # the callback ran and re-entered the service
        service.close()


# ---------------------------------------------------------------------------
# Fork + spawn safety of the cached path
# ---------------------------------------------------------------------------

class TestBackpressureCancellation:
    """``max_pending`` backpressure composed with cancellation and close.

    The invariant under test: every path a queued job can leave the queue
    by — evaluated, failed, cancelled, drained at close — releases its
    backpressure slot, so a blocked submitter always eventually wakes.
    """

    def _blocked_submitter(self, service, layout, config, errors):
        """Start a thread blocked in submit() on a full pending queue."""
        jobsets = []

        def run():
            try:
                jobsets.append(
                    service.submit([(layout, config)], stop_process="CU")
                )
            except Exception as exc:  # noqa: BLE001 - asserted by callers
                errors.append(exc)

        thread = threading.Thread(target=run, daemon=True)
        thread.start()
        thread.join(0.3)
        assert thread.is_alive(), "submitter should be blocked on the slot"
        return thread, jobsets

    def test_cancelled_pending_job_releases_its_slot(self):
        service, wp1, _ = _service_with_sort(autostart=False, max_pending=1)
        first = service.submit([(wp1, _rows(2)[0])], stop_process="CU")
        errors = []
        thread, jobsets = self._blocked_submitter(
            service, wp1, _rows(2)[1], errors
        )
        # Cancelling the queued job marks it terminal; its slot is freed
        # when the scheduler dequeues it, so start() unblocks the submitter.
        assert first.jobs[0].cancel()
        service.start()
        thread.join(30)
        assert not thread.is_alive() and not errors
        assert jobsets[0].wait(60)
        assert first.jobs[0].status is JobStatus.CANCELLED
        assert jobsets[0].jobs[0].status is JobStatus.DONE
        assert service.evaluated == 1  # the cancelled row never ran
        service.close()

    def test_close_cancel_pending_unblocks_submitter(self):
        service, wp1, _ = _service_with_sort(autostart=False, max_pending=1)
        first = service.submit([(wp1, _rows(2)[0])], stop_process="CU")
        errors = []
        thread, jobsets = self._blocked_submitter(
            service, wp1, _rows(2)[1], errors
        )
        # Draining the queue frees the slot; the woken submitter then sees
        # the closed service and raises instead of stranding its job.
        service.close(cancel_pending=True)
        thread.join(30)
        assert not thread.is_alive()
        assert not jobsets
        assert len(errors) == 1
        assert isinstance(errors[0], SimulationError)
        assert "closed" in str(errors[0])
        assert first.jobs[0].status is JobStatus.CANCELLED

    def test_failed_jobs_release_slots(self):
        # A row that fails evaluation (WP1 deadlock corner) must not leak
        # its slot: with max_pending=1, later submits would block forever.
        netlist, rs_counts = ring_netlist(3, rs_total=2)
        service = EvaluationService(max_pending=1)
        layout = service.ensure_layout(netlist, queue_capacity=1)
        failing = service.submit(
            [(layout, {name: 0 for name in rs_counts})],
            target_firings={"stage0": 10}, max_cycles=50, deadlock_limit=10,
        )
        followers = [
            service.submit(
                [(layout, rs_counts)], target_firings={"stage0": 10},
                max_cycles=1000,
            )
            for _ in range(3)
        ]
        assert failing.wait(60)
        assert failing.ordered_results()[0].failed
        for jobset in followers:
            assert jobset.wait(60)
            assert not jobset.ordered_results()[0].failed
        service.close()


class TestServiceMultiprocessing:
    @pytest.mark.parametrize("method", ["fork", "spawn"])
    def test_pool_methods_match_serial_and_populate_cache(self, method):
        if method == "fork" and not sys.platform.startswith(("linux", "darwin")):
            pytest.skip("fork needs a fork platform")
        serial_service, wp1, wp2 = _service_with_sort()
        configs = _rows(4)
        items = [(wp1, c) for c in configs] + [(wp2, c) for c in configs]
        with serial_service:
            serial = serial_service.submit(
                items, stop_process="CU"
            ).ordered_results()

        pooled_service, pw1, pw2 = _service_with_sort(
            workers=2, chunk_size=8, start_method=method
        )
        pooled_items = [(pw1, c) for c in configs] + [(pw2, c) for c in configs]
        with pooled_service:
            pooled = pooled_service.submit(
                pooled_items, stop_process="CU"
            ).ordered_results()
            assert pooled == serial
            # The cached path: an immediate resubmission in the parent is
            # answered from the cache the pooled evaluation populated.
            again = pooled_service.submit(pooled_items, stop_process="CU")
            assert again.ordered_results() == serial
            assert all(job.cached for job in again.jobs)
            assert pooled_service.evaluated == len(items)


# ---------------------------------------------------------------------------
# Satellites: warn-once serial fallback, shared PeriodMemory
# ---------------------------------------------------------------------------

class TestSerialFallbackWarning:
    def _run(self, runner, rs_counts):
        return runner.run_many(
            [rs_counts] * 2, workers=2,
            target_firings={"stage0": 15}, max_cycles=1000,
        )

    def test_warning_fires_once_per_runner_and_names_reason(self, monkeypatch):
        from repro.engine import batch as batch_module

        netlist, rs_counts = ring_netlist(3, rs_total=2)  # unpicklable
        monkeypatch.setattr(batch_module, "_fork_available", lambda: False)
        runner = BatchRunner(netlist)
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            self._run(runner, rs_counts)
            self._run(runner, rs_counts)
        fallbacks = [
            w for w in caught if issubclass(w.category, RuntimeWarning)
        ]
        assert len(fallbacks) == 1
        message = str(fallbacks[0].message)
        assert "netlist not picklable" in message
        assert "once per runner instance" in message

    def test_fresh_runner_warns_again(self, monkeypatch):
        from repro.engine import batch as batch_module

        netlist, rs_counts = ring_netlist(3, rs_total=2)
        monkeypatch.setattr(batch_module, "_fork_available", lambda: False)
        for _ in range(2):
            runner = BatchRunner(netlist)
            with pytest.warns(RuntimeWarning, match="serially"):
                self._run(runner, rs_counts)


class TestSharedPeriodMemory:
    def test_from_netlists_shares_one_memory(self):
        netlist = _sort_netlist()
        shared = PeriodMemory()
        multi = MultiNetlistRunner.from_netlists(
            {"wp1": netlist, "wp2": netlist},
            per_layout={"wp2": {"relaxed": True}},
            period_memory=shared,
        )
        assert multi.runner("wp1")._period_memory is shared
        assert multi.runner("wp2")._period_memory is shared

    def test_without_shared_memory_runners_stay_private(self):
        netlist = _sort_netlist()
        multi = MultiNetlistRunner.from_netlists(
            {"a": netlist, "b": netlist}
        )
        assert multi.runner("a")._period_memory is not multi.runner("b")._period_memory

    def test_service_layouts_share_service_memory(self):
        service, wp1, wp2 = _service_with_sort()
        assert service.runner(wp1)._period_memory is service.period_memory
        assert service.runner(wp2)._period_memory is service.period_memory
        service.close()


# ---------------------------------------------------------------------------
# Consumer integrations
# ---------------------------------------------------------------------------

class TestConsumersThroughService:
    def test_uniform_depth_sweep_service_path_matches_direct(self):
        workload = make_extraction_sort(length=6, seed=7)
        direct = uniform_depth_sweep(workload=workload)
        with EvaluationService() as service:
            served = uniform_depth_sweep(workload=workload, service=service)
            again = uniform_depth_sweep(workload=workload, service=service)
        for sweep in (served, again):
            assert [
                (p.parameter, p.wp1_throughput, p.wp2_throughput)
                for p in sweep.points
            ] == [
                (p.parameter, p.wp1_throughput, p.wp2_throughput)
                for p in direct.points
            ]

    def test_table1_service_path_matches_direct(self):
        direct = run_table1_sort(length=6, seed=7)
        with EvaluationService() as service:
            served = run_table1_sort(length=6, seed=7, service=service)
            again = run_table1_sort(length=6, seed=7, service=service)
        assert [row.as_dict() for row in served.rows] == [
            row.as_dict() for row in direct.rows
        ]
        assert [row.as_dict() for row in again.rows] == [
            row.as_dict() for row in direct.rows
        ]

    def test_optimizer_service_objective_caches_revisits(self):
        netlist = _sort_netlist(length=6)
        with EvaluationService() as service:
            objective = simulated_throughput_objective(
                netlist, service=service, stop_process="CU"
            )
            space = SearchSpace.bounded(["CU-RF", "RF-ALU"], maximum=1)
            exhaustive = exhaustive_search(space, objective)
            evaluated_after_first = service.evaluated
            # Greedy revisits the same corners: everything it needs is
            # already cached, so zero new simulations run.
            greedy = greedy_search(space, objective)
            assert service.evaluated == evaluated_after_first
            assert greedy.score <= exhaustive.score + 1e-12
        direct = simulated_throughput_objective(netlist, stop_process="CU")
        reference = exhaustive_search(space, direct)
        assert exhaustive.score == pytest.approx(reference.score)
        assert exhaustive.assignment == reference.assignment


# ---------------------------------------------------------------------------
# Acceptance: the 64-row mixed sweep scenario (scaled for test time)
# ---------------------------------------------------------------------------

class TestAcceptanceScenario:
    def test_mixed_64_rows_twice_bit_identical_and_cached(self):
        workloads = {
            "sort": make_extraction_sort(length=6, seed=7),
            "matmul": make_matrix_multiply(size=2, seed=7),
        }
        cpus = {
            name: build_pipelined_cpu(w.program) for name, w in workloads.items()
        }
        stop = next(iter(cpus.values())).control_unit.name
        configs = [
            (RSConfiguration.uniform(depth, exclude=("CU-IC",)),
             {"queue_capacity": capacity})
            for depth in range(8)
            for capacity in (3, 4)
        ]
        with EvaluationService() as service:
            items = []
            for cpu in cpus.values():
                for relaxed in (False, True):
                    layout = service.ensure_layout(cpu.netlist, relaxed=relaxed)
                    items.extend((layout, item) for item in configs)
            assert len(items) == 64
            first_set = service.submit(items, stop_process=stop)
            first = first_set.ordered_results()
            second_set = service.submit(items, stop_process=stop)
            second = second_set.ordered_results()
            assert first == second  # bit-identical rows
            assert all(job.cached for job in second_set.jobs)
            assert service.evaluated == 64

    def test_mixed_workload_sweep_reruns_from_cache(self):
        kwargs = dict(
            workloads={
                "sort": make_extraction_sort(length=6, seed=7),
                "matmul": make_matrix_multiply(size=2, seed=7),
            },
            depths=(0, 1),
        )
        with EvaluationService() as service:
            streamed = []
            first = mixed_workload_sweep(
                service=service, on_result=lambda job: streamed.append(job),
                **kwargs,
            )
            evaluated = service.evaluated
            second = mixed_workload_sweep(service=service, **kwargs)
            assert service.evaluated == evaluated  # second run: cache only
        assert len(streamed) == 8
        for name in first:
            assert [
                (p.wp1_throughput, p.wp2_throughput) for p in first[name].points
            ] == [
                (p.wp1_throughput, p.wp2_throughput) for p in second[name].points
            ]
