"""Tests for the result exporters and the ``python -m repro`` CLI."""

from __future__ import annotations

import csv
import io
import json

import pytest

from repro.__main__ import build_parser, main
from repro.experiments import run_table1_sort, uniform_depth_sweep
from repro.experiments.report import (
    sweep_to_csv,
    sweep_to_markdown,
    table1_to_csv,
    table1_to_json,
    table1_to_markdown,
    table1_to_rows,
    write_text,
)
from repro.cpu.workloads import make_extraction_sort


@pytest.fixture(scope="module")
def tiny_table():
    return run_table1_sort(length=4, seed=1)


@pytest.fixture(scope="module")
def tiny_sweep():
    return uniform_depth_sweep(
        workload=make_extraction_sort(length=4, seed=1), depths=(0, 1)
    )


class TestTable1Exports:
    def test_rows_carry_workload_metadata(self, tiny_table):
        rows = table1_to_rows(tiny_table)
        assert len(rows) == len(tiny_table.rows)
        assert all(row["workload"] == "Extraction Sort" for row in rows)

    def test_markdown_contains_every_label(self, tiny_table):
        text = table1_to_markdown(tiny_table)
        for row in tiny_table.rows:
            assert row.label in text
        assert "|---|---|---|---|---|" in text

    def test_markdown_with_paper_reference_columns(self, tiny_table):
        text = table1_to_markdown(
            tiny_table, paper={"Only CU-IC": {"wp1": 0.5, "wp2": 0.5}}
        )
        assert "Th WP1 paper" in text
        assert "0.5" in text

    def test_csv_parses_back(self, tiny_table):
        parsed = list(csv.DictReader(io.StringIO(table1_to_csv(tiny_table))))
        assert len(parsed) == len(tiny_table.rows)
        assert parsed[0]["label"] == "All 0 (ideal)"

    def test_json_roundtrip(self, tiny_table):
        payload = json.loads(table1_to_json({"sort": tiny_table}))
        assert payload["sort"]["golden_cycles"] == tiny_table.golden_cycles
        assert len(payload["sort"]["rows"]) == len(tiny_table.rows)


class TestSweepExports:
    def test_csv_has_header_and_rows(self, tiny_sweep):
        parsed = list(csv.reader(io.StringIO(sweep_to_csv(tiny_sweep))))
        assert parsed[0][0] == tiny_sweep.parameter_name
        assert len(parsed) == len(tiny_sweep.points) + 1

    def test_markdown_table(self, tiny_sweep):
        text = sweep_to_markdown(tiny_sweep)
        assert "Th WP1" in text and "Th WP2" in text

    def test_write_text(self, tmp_path, tiny_sweep):
        path = tmp_path / "sweep.csv"
        write_text(str(path), sweep_to_csv(tiny_sweep))
        assert path.read_text().startswith(tiny_sweep.parameter_name)


class TestCli:
    def test_parser_requires_a_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_figure1_command(self, capsys):
        assert main(["figure1"]) == 0
        assert "Figure 1" in capsys.readouterr().out

    def test_area_command(self, capsys):
        assert main(["area"]) == 0
        output = capsys.readouterr().out
        assert "100 kgate" in output and "%" in output

    def test_table1_command_text(self, capsys):
        assert main(["table1", "--sort-length", "4"]) == 0
        assert "Only CU-IC" in capsys.readouterr().out

    def test_table1_command_json(self, capsys):
        assert main(["table1", "--sort-length", "4", "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert "sort" in payload

    def test_sweep_command_csv(self, capsys):
        assert main(["sweep", "depth", "--sort-length", "4", "--format", "csv"]) == 0
        assert "wp2_throughput" in capsys.readouterr().out


class TestKernelOption:
    def test_parser_accepts_kernel_choice(self):
        parser = build_parser()
        args = parser.parse_args(["table1", "--kernel", "reference"])
        assert args.kernel == "reference"
        args = parser.parse_args(["sweep", "depth", "--kernel", "fast"])
        assert args.kernel == "fast"
        args = parser.parse_args(["multicycle", "--kernel", "fast"])
        assert args.kernel == "fast"

    def test_parser_rejects_unknown_kernel(self):
        parser = build_parser()
        with pytest.raises(SystemExit):
            parser.parse_args(["table1", "--kernel", "warp"])

    def test_table1_runs_under_both_kernels(self, capsys):
        for kernel in ("reference", "fast"):
            assert main(["table1", "--sort-length", "3", "--kernel", kernel]) == 0
        out = capsys.readouterr().out
        assert "All 0 (ideal)" in out


class TestSteadyStateOptions:
    def test_parser_accepts_horizon_and_steady_flags(self):
        parser = build_parser()
        args = parser.parse_args(
            ["table1", "--horizon", "5000", "--no-steady-state"]
        )
        assert args.horizon == 5000 and args.no_steady_state
        args = parser.parse_args(["sweep", "mixed", "--no-steady-state"])
        assert args.kind == "mixed" and args.no_steady_state

    def test_no_steady_state_restores_absent_env(self, capsys, monkeypatch):
        import os

        # Regression: --no-steady-state used to leak REPRO_STEADY_STATE=0
        # into the process environment after the command returned, silently
        # disabling detection for later in-process API calls.
        monkeypatch.delenv("REPRO_STEADY_STATE", raising=False)
        assert main(
            ["table1", "--sort-length", "3", "--no-steady-state"]
        ) == 0
        assert "REPRO_STEADY_STATE" not in os.environ
        assert "All 0 (ideal)" in capsys.readouterr().out

    def test_no_steady_state_restores_previous_env(self, capsys, monkeypatch):
        import os

        monkeypatch.setenv("REPRO_STEADY_STATE", "yes")
        assert main(
            ["table1", "--sort-length", "3", "--no-steady-state"]
        ) == 0
        assert os.environ["REPRO_STEADY_STATE"] == "yes"
        capsys.readouterr()

    def test_table1_horizon_runs(self, capsys):
        assert main(["table1", "--sort-length", "3", "--horizon", "400"]) == 0
        assert "All 0 (ideal)" in capsys.readouterr().out

    def test_sweep_mixed_runs(self, capsys):
        assert main(
            ["sweep", "mixed", "--sort-length", "3", "--matmul-size", "2"]
        ) == 0
        out = capsys.readouterr().out
        assert "Extraction Sort" in out and "Matrix Multiply" in out
