"""Steady-state detection, analytic extrapolation, horizon mode, multi-netlist batch.

The heart of this module is the extrapolation property suite: on every
netlist that supports steady-state detection, a run with the detector armed
must produce results **identical** to full simulation — cycles, firings,
halted flag, stall statistics and occupancy maxima — across random
netlists, relay-station placements, wrapper flavours, queue capacities and
stop modes, on both kernels that implement detection (fast and compiled).
The reference kernel stays the executable specification and never
extrapolates.
"""

from __future__ import annotations

import sys

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import (
    SCHEDULE_INERT,
    Channel,
    CounterSource,
    DeadlockError,
    FunctionProcess,
    Netlist,
    PassthroughProcess,
    RSConfiguration,
    SimulationError,
    SinkProcess,
    ring_netlist,
    run_lid,
)
from repro.core.simulator import LidResult
from repro.cpu import build_pipelined_cpu
from repro.cpu.workloads import make_extraction_sort
from repro.engine import (
    BatchRunner,
    InstrumentSet,
    MultiNetlistRunner,
    PeriodMemory,
    STEADY_STATE_ENV_VAR,
    detection_plan,
    elaborate,
    make_kernel,
    resolve_steady_state,
)
from repro.engine.codegen import compiled_run_fn, generate_run_source
from repro.engine.kernel import RunControls
from repro.engine.steady_state import periods_to_skip

DETECTING_KERNELS = ("fast", "compiled")


# ---------------------------------------------------------------------------
# Random schedule-certifiable netlists
# ---------------------------------------------------------------------------

def _transition(proc_index, n_outs):
    """Mixes input values into the outputs; keeps a separate oracle counter.

    The state is ``(value_mix, firing_counter)``: the mix is data-dependent
    (so token values genuinely circulate and change), the counter advances by
    exactly one per firing (so the oracle below is value-independent, as the
    ``schedule_state`` contract requires).
    """

    def transition(state, inputs):
        mix, count = state
        acc = mix * 31 + proc_index
        for port in sorted(inputs):
            value = inputs[port]
            acc = (acc * 17 + (0 if value is None else int(value) + 1)) % 100003
        return (acc, count + 1), {f"o{k}": (acc + k) % 1009 for k in range(n_outs)}

    return transition


def _oracle(ports, period):
    """A WP2 oracle requiring a rotating subset driven by the firing counter."""

    def oracle(state):
        count = state[1]
        keep = [port for k, port in enumerate(ports) if (count + k) % period != 0]
        return frozenset(keep)

    return oracle


@st.composite
def certifiable_netlists(draw):
    """Random netlists whose every process supports steady-state detection."""
    n_procs = draw(st.integers(min_value=1, max_value=4))
    n_outs = [draw(st.integers(min_value=1, max_value=2)) for _ in range(n_procs)]
    n_ins = [draw(st.integers(min_value=0 if n_procs > 1 else 1, max_value=2))
             for _ in range(n_procs)]
    if all(n == 0 for n in n_ins):
        n_ins[0] = 1

    processes = []
    for p in range(n_procs):
        ports = tuple(f"i{k}" for k in range(n_ins[p]))
        period = draw(st.integers(min_value=0, max_value=3))
        oracle = _oracle(ports, period) if ports and period else None
        processes.append(
            FunctionProcess(
                name=f"p{p}",
                inputs=ports,
                outputs=tuple(f"o{k}" for k in range(n_outs[p])),
                transition=_transition(p, n_outs[p]),
                initial_state=(p, 0),
                oracle=oracle,
                # The oracle depends only on the firing counter mod its
                # rotation period: that residue is the complete
                # schedule-relevant state.
                schedule_state=(
                    (lambda state, m=period: state[1] % m) if oracle else None
                ),
            )
        )

    channels = []
    rs_counts = {}
    cid = 0
    for p in range(n_procs):
        for k in range(n_ins[p]):
            src = draw(st.integers(min_value=0, max_value=n_procs - 1))
            src_port = draw(st.integers(min_value=0, max_value=n_outs[src] - 1))
            name = f"c{cid}"
            channels.append(
                Channel(
                    name=name,
                    source=f"p{src}",
                    source_port=f"o{src_port}",
                    dest=f"p{p}",
                    dest_port=f"i{k}",
                    initial=draw(st.integers(min_value=0, max_value=5)),
                )
            )
            rs_counts[name] = draw(st.integers(min_value=0, max_value=3))
            cid += 1

    netlist = Netlist(processes, channels, name="certifiable")
    relaxed = draw(st.booleans())
    queue_capacity = draw(st.integers(min_value=1, max_value=5))
    stop = draw(st.sampled_from(["target", "horizon"]))
    return netlist, rs_counts, relaxed, queue_capacity, stop


def _outcome(netlist, rs_counts, relaxed, queue_capacity, kernel, steady, stop):
    """Run one kernel and normalise the outcome for comparison."""
    kwargs = dict(
        rs_counts=rs_counts,
        relaxed=relaxed,
        queue_capacity=queue_capacity,
        kernel=kernel,
        record_trace=False,  # stats + occupancy stay on
        steady_state=steady,
        max_cycles=50_000,
        deadlock_limit=200,
    )
    if stop == "target":
        kwargs["target_firings"] = {netlist.process_names()[0]: 4_000}
    else:
        kwargs["horizon"] = 15_000
    try:
        result = run_lid(netlist, **kwargs)
    except DeadlockError:
        return ("deadlock", None)
    except SimulationError:
        return ("timeout", None)
    return ("ok", result)


def _assert_matches_full(full: LidResult, got: LidResult) -> None:
    assert got.cycles == full.cycles
    assert got.firings == full.firings
    assert got.halted == full.halted
    assert got.shell_stats == full.shell_stats
    assert got.max_queue_occupancy == full.max_queue_occupancy


class TestExtrapolationEquivalence:
    @given(data=certifiable_netlists())
    @settings(
        max_examples=60,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    def test_extrapolated_equals_full_simulation(self, data):
        """Armed detector == full simulation on every supporting kernel."""
        netlist, rs_counts, relaxed, queue_capacity, stop = data
        kind_full, full = _outcome(
            netlist, rs_counts, relaxed, queue_capacity, "fast", False, stop
        )
        for kernel in DETECTING_KERNELS:
            kind, got = _outcome(
                netlist, rs_counts, relaxed, queue_capacity, kernel, True, stop
            )
            assert kind == kind_full, kernel
            if full is not None:
                _assert_matches_full(full, got)

    @pytest.mark.parametrize("kernel", DETECTING_KERNELS)
    @pytest.mark.parametrize("relaxed", [False, True])
    @pytest.mark.parametrize("stages,rs_total", [(1, 1), (3, 2), (5, 3)])
    def test_rings_extrapolate(self, kernel, relaxed, stages, rs_total):
        """Rings recur with period stages + rs_total and extrapolate exactly."""
        netlist, rs_counts = ring_netlist(stages, rs_total=rs_total)
        reference = run_lid(
            netlist, rs_counts=rs_counts, relaxed=relaxed, kernel="reference",
            record_trace=False, horizon=50_000,
        )
        got = run_lid(
            netlist, rs_counts=rs_counts, relaxed=relaxed, kernel=kernel,
            record_trace=False, horizon=50_000,
        )
        _assert_matches_full(reference, got)
        assert got.extrapolated
        assert got.period is not None and got.period % (stages + rs_total) == 0
        assert reference.period is None and not reference.extrapolated

    @pytest.mark.parametrize("kernel", DETECTING_KERNELS)
    def test_unreachable_target_times_out_fast(self, kernel):
        """An unreachable firing target still raises, without simulating it all."""
        source = CounterSource("src", limit=5)
        sink = SinkProcess("sink")
        netlist = Netlist(
            [source, sink],
            [Channel("data", "src", "out", "sink", "in", initial=0)],
        )
        for steady in (True, False):
            with pytest.raises(DeadlockError):
                run_lid(
                    netlist, kernel=kernel, record_trace=False,
                    target_firings={"sink": 100}, max_cycles=100_000,
                    deadlock_limit=500, steady_state=steady,
                )

    @pytest.mark.parametrize("kernel", DETECTING_KERNELS)
    def test_done_source_results_identical(self, kernel):
        """A limited source (monotone schedule state) never mis-extrapolates."""
        source = CounterSource("src", limit=30)
        mid = PassthroughProcess("mid")
        sink = SinkProcess("sink")
        netlist = Netlist(
            [source, mid, sink],
            [
                Channel("a", "src", "out", "mid", "in", initial=0),
                Channel("b", "mid", "out", "sink", "in", initial=0),
            ],
        )
        full = run_lid(
            netlist, rs_counts={"a": 2}, kernel=kernel, record_trace=False,
            steady_state=False, max_cycles=10_000,
        )
        got = run_lid(
            netlist, rs_counts={"a": 2}, kernel=kernel, record_trace=False,
            steady_state=True, max_cycles=10_000,
        )
        _assert_matches_full(full, got)

    def test_case_study_cpu_is_certified(self):
        """All five CPU units declare complete summaries -> certified plan."""
        cpu = build_pipelined_cpu(make_extraction_sort(length=5, seed=11).program)
        config = RSConfiguration.uniform(1, exclude=("CU-IC",))
        model = elaborate(
            cpu.netlist,
            rs_counts=config.per_channel(cpu.netlist),
        )
        plan = detection_plan(model, InstrumentSet.none(), True, None, None)
        assert plan is not None and plan.certified
        assert plan.verify_fns and len(plan.verify_fns) == len(plan.sig_fns)
        # Certified plans only arm on asymptotic runs (horizon / targets):
        # a complete-state recurrence cannot precede a done-based stop.
        assert (
            detection_plan(
                model, InstrumentSet.none(), True, None, None, asymptotic=False
            )
            is None
        )

    def test_one_shot_cpu_runs_stay_unextrapolated(self):
        """Done-stopped (terminating) CPU runs never arm the detector."""
        cpu = build_pipelined_cpu(make_extraction_sort(length=5, seed=11).program)
        config = RSConfiguration.uniform(1, exclude=("CU-IC",))
        for kernel in DETECTING_KERNELS:
            full = cpu.run_wire_pipelined(
                configuration=config, record_trace=False, kernel=kernel
            )
            assert full.period is None and not full.extrapolated


# ---------------------------------------------------------------------------
# Looping CPU workloads (certified detection, DESIGN.md §5)
# ---------------------------------------------------------------------------

def _assert_cpu_identical(full: LidResult, got: LidResult) -> None:
    _assert_matches_full(full, got)
    assert got.extrapolated and got.period is not None


class TestLoopedCpuExtrapolation:
    """`table1 --horizon` acceptance: looped CPU rows extrapolate exactly."""

    CONFIG = staticmethod(
        lambda: RSConfiguration.uniform(1, exclude=("CU-IC",))
    )

    @pytest.mark.parametrize("kernel", DETECTING_KERNELS)
    @pytest.mark.parametrize("relaxed", [False, True])
    @pytest.mark.parametrize("workload_kind", ["sort", "matmul"])
    def test_extrapolated_equals_full_simulation(
        self, kernel, relaxed, workload_kind
    ):
        from repro.cpu.workloads import make_matrix_multiply

        if workload_kind == "sort":
            workload = make_extraction_sort(length=6, seed=7, repeat=True)
        else:
            workload = make_matrix_multiply(size=2, seed=7, repeat=True)
        cpu = build_pipelined_cpu(workload.program)
        config = self.CONFIG()
        full = cpu.run_wire_pipelined(
            configuration=config, relaxed=relaxed, record_trace=False,
            kernel=kernel, horizon=25_000, steady_state=False,
        )
        full_memory = list(cpu.data_cache.memory)
        got = cpu.run_wire_pipelined(
            configuration=config, relaxed=relaxed, record_trace=False,
            kernel=kernel, horizon=25_000, steady_state=True,
        )
        _assert_cpu_identical(full, got)
        # schedule_jump realigns the units' absolute-tag state, so even the
        # architectural results (data memory) match full simulation exactly.
        assert list(cpu.data_cache.memory) == full_memory
        assert not cpu.check_memory(workload.expected_memory)

    @pytest.mark.parametrize("kernel", DETECTING_KERNELS)
    def test_target_firings_stop_mode(self, kernel):
        workload = make_extraction_sort(length=5, seed=3, repeat=True)
        cpu = build_pipelined_cpu(workload.program)
        config = self.CONFIG()
        kwargs = dict(
            configuration=config, relaxed=True, record_trace=False,
            kernel=kernel, target_firings={"CU": 12_000}, max_cycles=100_000,
            steady_state_window=50_000,
        )
        full = run_lid(cpu.netlist, steady_state=False, **kwargs)
        got = run_lid(cpu.netlist, steady_state=True, **kwargs)
        _assert_cpu_identical(full, got)
        assert got.firings["CU"] >= 12_000

    def test_multicycle_control_style_extrapolates(self):
        from repro.cpu import build_multicycle_cpu

        workload = make_extraction_sort(length=5, seed=3, repeat=True)
        cpu = build_multicycle_cpu(workload.program)
        config = self.CONFIG()
        full = cpu.run_wire_pipelined(
            configuration=config, relaxed=True, record_trace=False,
            horizon=30_000, steady_state=False,
        )
        got = cpu.run_wire_pipelined(
            configuration=config, relaxed=True, record_trace=False,
            horizon=30_000, steady_state=True,
        )
        _assert_cpu_identical(full, got)

    @given(data=st.data())
    @settings(
        max_examples=12,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    def test_random_looped_cpu_extrapolates_exactly(self, data):
        """Hypothesis: extrapolated == full across kernels and stop modes."""
        from repro.cpu.workloads import make_matrix_multiply

        if data.draw(st.booleans(), label="use_sort"):
            workload = make_extraction_sort(
                length=data.draw(st.integers(3, 5), label="length"),
                seed=data.draw(st.integers(0, 99), label="seed"),
                repeat=True,
            )
        else:
            workload = make_matrix_multiply(
                size=2,
                seed=data.draw(st.integers(0, 99), label="seed"),
                repeat=True,
            )
        cpu = build_pipelined_cpu(workload.program)
        links = [name for name in cpu.netlist.link_names() if name != "CU-IC"]
        assignment = {
            link: data.draw(st.integers(0, 2), label=link) for link in links
        }
        config = RSConfiguration.from_mapping(assignment, label="candidate")
        kwargs = dict(
            configuration=config,
            relaxed=data.draw(st.booleans(), label="relaxed"),
            queue_capacity=data.draw(st.integers(2, 6), label="capacity"),
            record_trace=False,
            max_cycles=120_000,
        )
        if data.draw(st.booleans(), label="horizon_stop"):
            kwargs["horizon"] = 15_000
        else:
            kwargs["target_firings"] = {"CU": 6_000}
            kwargs["steady_state_window"] = 15_000
        full = run_lid(cpu.netlist, steady_state=False, kernel="fast", **kwargs)
        for kernel in DETECTING_KERNELS:
            got = run_lid(
                cpu.netlist, steady_state=True, kernel=kernel, **kwargs
            )
            _assert_matches_full(full, got)


class TestLoopedWorkloads:
    def test_program_looped_replaces_halt_with_jump(self):
        workload = make_extraction_sort(length=4, seed=1)
        looped = workload.program.looped()
        assert looped.name.endswith("-looped")
        assert len(looped.instructions) == len(workload.program.instructions)
        assert not any(i.is_halt for i in looped.instructions)
        jumps = [
            (original, replaced)
            for original, replaced in zip(
                workload.program.instructions, looped.instructions
            )
            if original != replaced
        ]
        assert jumps, "the HALT must have been rewritten"
        for original, replaced in jumps:
            assert original.is_halt
            assert replaced.is_jump and replaced.imm == 0

    def test_workload_looped_is_idempotent_and_marked(self):
        workload = make_extraction_sort(length=4, seed=1)
        looped = workload.looped()
        assert not workload.looping and looped.looping
        assert looped.looped() is looped
        assert looped.expected_memory == workload.expected_memory

    def test_repeat_flag_builds_looping_workloads(self):
        from repro.cpu.workloads import make_matrix_multiply

        assert make_extraction_sort(length=4, repeat=True).looping
        assert make_matrix_multiply(size=2, repeat=True).looping

    def test_table1_horizon_rows_extrapolate_identically(self):
        """Acceptance: horizon rows == full (detection-off) simulation."""
        from repro.experiments.table1 import evaluate_rows

        workload = make_extraction_sort(length=4, seed=2005)
        configurations = [
            RSConfiguration.ideal(),
            RSConfiguration.uniform(1, exclude=("CU-IC",)),
        ]
        for kernel in DETECTING_KERNELS:
            on = evaluate_rows(
                workload, configurations, kernel=kernel, horizon=20_000,
            )
            off = evaluate_rows(
                workload, configurations, kernel=kernel, horizon=20_000,
                steady_state=False,
            )
            for row_on, row_off in zip(on.rows, off.rows):
                assert row_on.wp1_cycles == row_off.wp1_cycles == 20_000
                assert row_on.wp2_cycles == row_off.wp2_cycles == 20_000
                assert row_on.wp1_throughput == row_off.wp1_throughput
                assert row_on.wp2_throughput == row_off.wp2_throughput

    def test_table1_horizon_rows_report_extrapolated_batches(self):
        """Horizon rows actually run extrapolated (not merely identical)."""
        from repro.engine import BatchRunner

        workload = make_extraction_sort(length=4, seed=2005, repeat=True)
        cpu = build_pipelined_cpu(workload.program)
        runner = BatchRunner(cpu.netlist, relaxed=True, kernel="compiled")
        [summary] = runner.run_many(
            [RSConfiguration.uniform(1, exclude=("CU-IC",))],
            stop_process="CU", horizon=20_000, steady_state_window=20_000,
        )
        assert summary.extrapolated and summary.period is not None
        assert summary.cycles == 20_000


# ---------------------------------------------------------------------------
# When detection must stay off
# ---------------------------------------------------------------------------

class TestDetectionGating:
    def _ring_model(self):
        netlist, rs_counts = ring_netlist(3, rs_total=2)
        return elaborate(netlist, rs_counts=rs_counts)

    def test_trace_instrument_disables_detection(self):
        model = self._ring_model()
        assert detection_plan(model, InstrumentSet.all(), True, None, None) is None
        result = make_kernel(model, "fast").run(
            RunControls(horizon=5_000), InstrumentSet.all()
        )
        assert not result.extrapolated and result.period is None
        assert result.trace[next(iter(result.trace))].cycles == 5_000

    def test_on_cycle_observer_disables_detection(self):
        model = self._ring_model()
        seen = []
        result = make_kernel(model, "fast").run(
            RunControls(horizon=200, on_cycle=lambda c, fired: seen.append(c)),
            InstrumentSet.none(),
        )
        assert not result.extrapolated and len(seen) == 200

    def test_zero_window_disables_detection(self):
        model = self._ring_model()
        result = make_kernel(model, "fast").run(
            RunControls(horizon=5_000, steady_state_window=0),
            InstrumentSet.none(),
        )
        assert not result.extrapolated and result.period is None

    def test_mixed_complete_and_incomplete_is_unsupported(self):
        """A complete summary next to a plain one disables detection.

        The complete process' output values may depend on state its plain
        neighbour does not expose, so neither snapshot mode is sound.
        """
        from repro.engine.steady_state import certify_model

        class CompletePassthrough(PassthroughProcess):
            schedule_complete = True

        netlist = Netlist(
            [CompletePassthrough("a"), PassthroughProcess("b")],
            [
                Channel("ab", "a", "out", "b", "in", initial=0),
                Channel("ba", "b", "out", "a", "in", initial=1),
            ],
        )
        model = elaborate(netlist)
        assert certify_model(model) is None
        assert detection_plan(model, InstrumentSet.none(), True, None, None) is None

    def test_plain_netlists_classify_uncertified(self):
        from repro.engine.steady_state import certify_model

        netlist, rs_counts = ring_netlist(3, rs_total=2)
        model = elaborate(netlist, rs_counts=rs_counts)
        dynamic, certified = certify_model(model)
        assert not certified and dynamic == []

    def test_oracle_without_schedule_state_is_unsupported(self):
        process = FunctionProcess(
            "p", ("i",), ("o",),
            lambda state, inputs: (state, {"o": inputs["i"]}),
            oracle=lambda state: frozenset({"i"}),
        )
        netlist = Netlist(
            [process], [Channel("loop", "p", "o", "p", "i", initial=0)]
        )
        model = elaborate(netlist, relaxed=True)
        assert process.schedule_state() is None
        assert detection_plan(model, InstrumentSet.none(), True, None, None) is None


# ---------------------------------------------------------------------------
# The schedule_state protocol
# ---------------------------------------------------------------------------

class TestScheduleStateProtocol:
    def test_inert_processes_report_inert(self):
        assert PassthroughProcess("p").schedule_state() is SCHEDULE_INERT
        assert SinkProcess("s").schedule_state() is SCHEDULE_INERT
        assert CounterSource("c").schedule_state() is SCHEDULE_INERT

    def test_limited_counter_source_exposes_its_counter(self):
        source = CounterSource("c", limit=3)
        assert source.schedule_state() == 0
        source.fire({})
        assert source.schedule_state() == 1

    def test_function_process_without_oracle_is_inert(self):
        process = FunctionProcess(
            "p", ("i",), ("o",), lambda s, i: (s, {"o": i["i"]})
        )
        assert process.schedule_state() is SCHEDULE_INERT

    def test_done_overrider_without_summary_is_unsupported(self):
        class Custom(PassthroughProcess):
            def is_done(self):
                return False

        assert Custom("p").schedule_state() is None


# ---------------------------------------------------------------------------
# Horizon mode
# ---------------------------------------------------------------------------

class TestHorizon:
    @pytest.mark.parametrize("kernel", ("reference", "fast", "compiled"))
    def test_horizon_halts_exactly(self, kernel):
        netlist, rs_counts = ring_netlist(3, rs_total=1)
        result = run_lid(
            netlist, rs_counts=rs_counts, kernel=kernel, record_trace=False,
            horizon=777, steady_state=False,
        )
        assert result.cycles == 777 and result.halted

    @pytest.mark.parametrize("kernel", ("reference", "fast", "compiled"))
    def test_stop_condition_beats_horizon(self, kernel):
        netlist, rs_counts = ring_netlist(3, rs_total=1)
        result = run_lid(
            netlist, rs_counts=rs_counts, kernel=kernel, record_trace=False,
            horizon=100_000, target_firings={"stage0": 9},
        )
        assert result.halted and result.firings["stage0"] >= 9
        assert result.cycles < 100_000

    @pytest.mark.parametrize("kernel", ("reference", "fast", "compiled"))
    def test_horizon_beyond_max_cycles_times_out(self, kernel):
        netlist, rs_counts = ring_netlist(3, rs_total=1)
        with pytest.raises(SimulationError):
            run_lid(
                netlist, rs_counts=rs_counts, kernel=kernel, record_trace=False,
                horizon=1_000, max_cycles=500,
            )

    def test_invalid_horizon_rejected(self):
        netlist, rs_counts = ring_netlist(2, rs_total=1)
        with pytest.raises(SimulationError, match="horizon"):
            run_lid(
                netlist, rs_counts=rs_counts, record_trace=False, horizon=0
            )

    @pytest.mark.parametrize("kernel", DETECTING_KERNELS)
    def test_kernels_match_reference_on_horizon(self, kernel):
        netlist, rs_counts = ring_netlist(4, rs_total=2)
        reference = run_lid(
            netlist, rs_counts=rs_counts, kernel="reference",
            record_trace=False, horizon=3_000,
        )
        got = run_lid(
            netlist, rs_counts=rs_counts, kernel=kernel,
            record_trace=False, horizon=3_000,
        )
        _assert_matches_full(reference, got)


# ---------------------------------------------------------------------------
# REPRO_STEADY_STATE precedence (mirrors the REPRO_KERNEL pattern)
# ---------------------------------------------------------------------------

class TestSteadyStateEnv:
    def test_default_is_enabled(self, monkeypatch):
        monkeypatch.delenv(STEADY_STATE_ENV_VAR, raising=False)
        assert resolve_steady_state(None) is True

    def test_env_zero_disables(self, monkeypatch):
        monkeypatch.setenv(STEADY_STATE_ENV_VAR, "0")
        assert resolve_steady_state(None) is False

    @pytest.mark.parametrize("value", ["1", "on", "yes", "true"])
    def test_env_truthy_enables(self, monkeypatch, value):
        monkeypatch.setenv(STEADY_STATE_ENV_VAR, value)
        assert resolve_steady_state(None) is True

    def test_empty_env_falls_back_to_default(self, monkeypatch):
        monkeypatch.setenv(STEADY_STATE_ENV_VAR, "")
        assert resolve_steady_state(None) is True

    def test_explicit_argument_beats_env(self, monkeypatch):
        monkeypatch.setenv(STEADY_STATE_ENV_VAR, "0")
        assert resolve_steady_state(True) is True
        monkeypatch.setenv(STEADY_STATE_ENV_VAR, "1")
        assert resolve_steady_state(False) is False

    def test_env_disables_detection_end_to_end(self, monkeypatch):
        netlist, rs_counts = ring_netlist(3, rs_total=2)
        monkeypatch.setenv(STEADY_STATE_ENV_VAR, "0")
        off = run_lid(
            netlist, rs_counts=rs_counts, record_trace=False, horizon=5_000
        )
        assert not off.extrapolated and off.period is None
        monkeypatch.delenv(STEADY_STATE_ENV_VAR)
        on = run_lid(
            netlist, rs_counts=rs_counts, record_trace=False, horizon=5_000
        )
        assert on.extrapolated and on.cycles == off.cycles
        assert on.firings == off.firings


# ---------------------------------------------------------------------------
# Result plumbing (LidResult / BatchResult satellite)
# ---------------------------------------------------------------------------

class TestResultFields:
    def test_lidresult_defaults_are_backward_compatible(self):
        from repro.core.traces import SystemTrace

        result = LidResult(
            cycles=10,
            firings={"p": 5},
            trace=SystemTrace(()),
            halted=True,
            wrapper_kind="WP1",
            configuration_label="legacy",
            rs_counts={},
        )
        assert result.period is None
        assert result.warmup_cycles is None
        assert result.extrapolated is False

    def test_throughput_of_unknown_process_is_zero(self):
        """Regression: an unknown/filtered process name raised a KeyError."""
        from repro.core.traces import SystemTrace

        result = LidResult(
            cycles=10,
            firings={"p": 5},
            trace=SystemTrace(()),
            halted=True,
            wrapper_kind="WP1",
            configuration_label="legacy",
            rs_counts={},
        )
        assert result.throughput("p") == 0.5
        assert result.throughput("not-a-process") == 0.0
        assert result.throughput("filtered-out") == 0.0

    def test_batch_result_carries_period(self):
        netlist, rs_counts = ring_netlist(3, rs_total=2)
        runner = BatchRunner(netlist)
        [summary] = runner.run_many([rs_counts], horizon=20_000)
        assert summary.extrapolated and summary.period is not None
        assert summary.warmup_cycles is not None

    def test_warm_start_reuses_layout_periods(self):
        netlist, rs_counts = ring_netlist(4, rs_total=3)
        runner = BatchRunner(netlist)
        first, second, third = runner.run_many([rs_counts] * 3, horizon=50_000)
        assert first.cycles == second.cycles == third.cycles
        assert first.period == second.period == third.period
        key = next(iter(runner._period_memory._hits))
        window = runner._period_memory.window_for(key, 50_000, 16_384)
        assert window <= 2 * (first.warmup_cycles + first.period) + 16


# ---------------------------------------------------------------------------
# Extrapolation arithmetic
# ---------------------------------------------------------------------------

class TestPeriodsToSkip:
    def test_horizon_bound(self):
        assert periods_to_skip(100, 10, 1_000, 0, None, [], []) == 90

    def test_target_keeps_slowest_unmet(self):
        # Process 0 needs 95 more firings at 2/period -> 47 whole periods
        # still leave it unmet; the bound allows more.
        skip = periods_to_skip(
            100, 10, 10_000, 1, [(0, 100)], [5], [2]
        )
        assert skip == 47

    def test_target_with_met_target_ignored(self):
        skip = periods_to_skip(
            100, 10, 10_000, 1, [(0, 3), (1, 50)], [5, 10], [0, 4]
        )
        assert skip == (50 - 10 - 1) // 4

    def test_unreachable_target_skips_to_bound(self):
        skip = periods_to_skip(100, 10, 2_000, 1, [(0, 100)], [5], [0])
        assert skip == 190

    def test_never_negative(self):
        assert periods_to_skip(995, 10, 1_000, 0, None, [], []) == 0


# ---------------------------------------------------------------------------
# Codegen variants
# ---------------------------------------------------------------------------

class TestSteadyCodegen:
    def test_steady_and_horizon_are_distinct_cache_entries(self):
        netlist, rs_counts = ring_netlist(3, rs_total=2)
        model = elaborate(netlist, rs_counts=rs_counts)
        plain = compiled_run_fn(model, InstrumentSet.none())
        steady = compiled_run_fn(model, InstrumentSet.none(), steady=True)
        horizon = compiled_run_fn(model, InstrumentSet.none(), horizon=True)
        assert plain is not steady and plain is not horizon
        assert compiled_run_fn(model, InstrumentSet.none(), steady=True) is steady

    @pytest.mark.parametrize("relaxed", [False, True])
    @pytest.mark.parametrize(
        "instruments",
        [InstrumentSet.none(),
         InstrumentSet(trace=False, shell_stats=True, occupancy=True)],
        ids=["none", "stats+occ"],
    )
    def test_steady_source_compiles(self, relaxed, instruments):
        netlist, rs_counts = ring_netlist(3, rs_total=2)
        model = elaborate(netlist, rs_counts=rs_counts, relaxed=relaxed)
        source = generate_run_source(
            model, instruments, steady=True, horizon=True
        )
        assert "_ss_seen" in source and "_ss_skip" in source
        compile(source, "<test-steady>", "exec")

    def test_trace_mode_never_emits_detector(self):
        netlist, rs_counts = ring_netlist(3, rs_total=2)
        model = elaborate(netlist, rs_counts=rs_counts)
        source = generate_run_source(
            model, InstrumentSet.all(), steady=True
        )
        assert "_ss_seen" not in source


# ---------------------------------------------------------------------------
# Multi-netlist batch scheduling
# ---------------------------------------------------------------------------

def _sort_cpu():
    return build_pipelined_cpu(make_extraction_sort(length=4, seed=3).program)


def _matmul_cpu():
    from repro.cpu.workloads import make_matrix_multiply

    return build_pipelined_cpu(make_matrix_multiply(size=2, seed=3).program)


class TestMultiNetlistRunner:
    CONFIGS = staticmethod(lambda: [
        RSConfiguration.ideal(),
        RSConfiguration.uniform(1, exclude=("CU-IC",)),
        RSConfiguration.only("CU-RF", 2),
    ])

    def _multi(self):
        return MultiNetlistRunner.from_netlists(
            {
                "sort": _sort_cpu().netlist,
                "matmul": _matmul_cpu().netlist,
            }
        )

    def test_matches_single_layout_runs(self):
        multi = self._multi()
        configs = self.CONFIGS()
        items = [
            (name, config) for config in configs for name in ("sort", "matmul")
        ]
        mixed = multi.run_many(items, stop_process="CU")
        assert [r.label for r in mixed] == [c.label for c in configs for _ in "xy"]
        for name in ("sort", "matmul"):
            single = BatchRunner(multi.runner(name).netlist).run_many(
                configs, stop_process="CU"
            )
            mine = [r for (n, _), r in zip(items, mixed) if n == name]
            assert [r.cycles for r in single] == [r.cycles for r in mine]
            assert [r.firings for r in single] == [r.firings for r in mine]

    @pytest.mark.parametrize("start_method", ["fork", "spawn"])
    def test_one_pool_serves_every_layout(self, start_method):
        import multiprocessing

        if start_method not in multiprocessing.get_all_start_methods():
            pytest.skip(f"{start_method} not available")
        multi = self._multi()
        items = [
            (name, config)
            for config in self.CONFIGS()
            for name in ("sort", "matmul")
        ]
        serial = multi.run_many(items, stop_process="CU")
        pooled = multi.run_many(
            items, workers=2, start_method=start_method, stop_process="CU"
        )
        assert [r.cycles for r in serial] == [r.cycles for r in pooled]
        assert [r.firings for r in serial] == [r.firings for r in pooled]

    def test_unknown_layout_rejected(self):
        multi = self._multi()
        with pytest.raises(SimulationError, match="unknown layout"):
            multi.run_many([("warp", RSConfiguration.ideal())], stop_process="CU")

    def test_per_layout_overrides(self):
        cpu = _sort_cpu()
        multi = MultiNetlistRunner.from_netlists(
            {"wp1": cpu.netlist, "wp2": cpu.netlist},
            per_layout={"wp2": {"relaxed": True}},
        )
        [wp1, wp2] = multi.run_many(
            [
                ("wp1", RSConfiguration.uniform(1, exclude=("CU-IC",))),
                ("wp2", RSConfiguration.uniform(1, exclude=("CU-IC",))),
            ],
            stop_process="CU",
        )
        assert wp1.wrapper_kind == "WP1" and wp2.wrapper_kind == "WP2"
        assert wp2.cycles < wp1.cycles  # the paper's WP2 gain

    def test_unpicklable_layouts_fall_back_to_fork(self):
        if not sys.platform.startswith(("linux", "darwin")):
            pytest.skip("fork inheritance requires a fork platform")
        ring_a, rs_a = ring_netlist(3, rs_total=2)  # closure processes
        ring_b, rs_b = ring_netlist(4, rs_total=1)
        multi = MultiNetlistRunner.from_netlists({"a": ring_a, "b": ring_b})
        items = [("a", rs_a), ("b", rs_b)] * 3
        serial = multi.run_many(
            items, target_firings={"stage0": 15}, max_cycles=1_000
        )
        pooled = multi.run_many(
            items, workers=2, target_firings={"stage0": 15}, max_cycles=1_000
        )
        assert [r.cycles for r in serial] == [r.cycles for r in pooled]

    def test_empty_runner_map_rejected(self):
        with pytest.raises(SimulationError):
            MultiNetlistRunner({})

    def test_mixed_workload_sweep_single_pool(self):
        from repro.cpu.workloads import make_matrix_multiply
        from repro.experiments import mixed_workload_sweep

        results = mixed_workload_sweep(
            workloads={
                "extraction_sort": make_extraction_sort(length=4, seed=3),
                "matrix_multiply": make_matrix_multiply(size=2, seed=3),
            },
            depths=(0, 1),
        )
        assert set(results) == {"extraction_sort", "matrix_multiply"}
        for sweep in results.values():
            assert sweep.points[0].wp1_throughput == pytest.approx(1.0)
            assert sweep.points[1].wp1_throughput < 1.0


class TestPeriodMemory:
    def test_hit_tightens_window(self):
        memory = PeriodMemory()
        memory.observe(("shape",), 10, 20, 1_000)
        assert memory.window_for(("shape",), 100_000, 16_384) == 2 * 30 + 16

    def test_layout_scale_informs_siblings(self):
        memory = PeriodMemory()
        memory.observe(("a",), 10, 20, 1_000)
        window = memory.window_for(("b",), 100_000, 16_384)
        assert 256 <= window <= 16_384

    def test_miss_disarms_equally_bounded_reruns(self):
        memory = PeriodMemory()
        memory.observe(("shape",), None, None, 5_000)
        assert memory.window_for(("shape",), 4_000, 16_384) == 0
        assert memory.window_for(("shape",), 50_000, 16_384) == 16_384

    def test_layout_scale_decays_toward_recent_observations(self):
        """Regression: one pathological warmup inflated siblings forever."""
        memory = PeriodMemory()
        memory.observe(("pathological",), 10_000, 2_000, 50_000)
        inflated = memory.window_for(("sibling",), 1_000_000, 1 << 20)
        assert inflated == 8 * 12_000
        for index in range(6):
            memory.observe((f"shape{index}",), 10, 20, 1_000)
        recovered = memory.window_for(("sibling",), 1_000_000, 1 << 20)
        assert recovered < inflated
        assert recovered <= 8 * 256  # converged near the recent scale

    def test_sibling_window_capped_at_run_bound(self):
        """Regression: sibling windows could exceed the run's cycle bound."""
        memory = PeriodMemory()
        memory.observe(("a",), 100, 500, 5_000)  # layout scale 600
        assert memory.window_for(("b",), 100_000, 16_384) == 8 * 600
        assert memory.window_for(("b",), 1_000, 16_384) == 1_000
