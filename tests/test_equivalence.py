"""Unit tests for N-equivalence checking between realizations."""

from __future__ import annotations

import pytest

from repro.core.equivalence import (
    assert_equivalent,
    compare_value_sequences,
    latency_profile,
    n_equivalent,
)
from repro.core.exceptions import EquivalenceError
from repro.core.tokens import VOID, Token
from repro.core.traces import SystemTrace, trace_from_values


def make_system_trace(values_by_channel):
    trace = SystemTrace(values_by_channel)
    for channel, values in values_by_channel.items():
        for tag, value in enumerate(values):
            trace.record(channel, Token(value=value, tag=tag))
    return trace


class TestCompareValueSequences:
    def test_identical_sequences_are_equivalent(self):
        report = compare_value_sequences({"a": [1, 2]}, {"a": [1, 2]})
        assert report.equivalent
        assert report.compared_depth == 2

    def test_prefix_comparison_uses_common_depth(self):
        report = compare_value_sequences({"a": [1, 2, 3]}, {"a": [1, 2]})
        assert report.equivalent
        assert report.compared_depth == 2

    def test_mismatch_is_reported_with_position(self):
        report = compare_value_sequences({"a": [1, 2, 3]}, {"a": [1, 9, 3]})
        assert not report.equivalent
        assert report.mismatches[0].channel == "a"
        assert report.mismatches[0].position == 1
        assert report.mismatches[0].reference_value == 2
        assert report.mismatches[0].candidate_value == 9

    def test_missing_channel_fails(self):
        report = compare_value_sequences({"a": [1]}, {})
        assert not report.equivalent
        assert report.missing_channels == ["a"]

    def test_explicit_depth_limits_comparison(self):
        report = compare_value_sequences({"a": [1, 2, 3]}, {"a": [1, 9, 9]}, depth=1)
        assert report.equivalent

    def test_channel_subset(self):
        report = compare_value_sequences(
            {"a": [1], "b": [2]}, {"a": [1], "b": [99]}, channels=["a"]
        )
        assert report.equivalent

    def test_depth_zero_when_no_channels(self):
        report = compare_value_sequences({}, {})
        assert report.equivalent
        assert report.compared_depth == 0


class TestNEquivalence:
    def test_voids_are_ignored(self):
        golden = make_system_trace({"a": [1, 2, 3]})
        candidate = SystemTrace(["a"])
        candidate.record("a", Token(value=1, tag=0))
        candidate.record("a", VOID)
        candidate.record("a", Token(value=2, tag=1))
        candidate.record("a", VOID)
        candidate.record("a", Token(value=3, tag=2))
        report = n_equivalent(golden, candidate)
        assert report.equivalent
        assert report.compared_depth == 3

    def test_value_divergence_detected(self):
        golden = make_system_trace({"a": [1, 2, 3]})
        candidate = make_system_trace({"a": [1, 7, 3]})
        assert not n_equivalent(golden, candidate).equivalent

    def test_assert_equivalent_raises_with_details(self):
        golden = make_system_trace({"a": [1, 2]})
        candidate = make_system_trace({"a": [1, 5]})
        with pytest.raises(EquivalenceError) as excinfo:
            assert_equivalent(golden, candidate)
        assert "a" in str(excinfo.value)

    def test_assert_equivalent_returns_report_on_success(self):
        golden = make_system_trace({"a": [1]})
        report = assert_equivalent(golden, golden)
        assert report.equivalent

    def test_raise_if_failed_is_noop_when_equivalent(self):
        golden = make_system_trace({"a": [1]})
        n_equivalent(golden, golden).raise_if_failed()


class TestLatencyProfile:
    def test_counts_per_channel(self):
        golden = make_system_trace({"a": [1, 2, 3], "b": [4]})
        candidate = make_system_trace({"a": [1, 2], "b": [4]})
        profile = latency_profile(golden, candidate)
        assert profile["a"] == (3, 2)
        assert profile["b"] == (1, 1)

    def test_missing_candidate_channel_counts_zero(self):
        golden = make_system_trace({"a": [1]})
        candidate = SystemTrace()
        assert latency_profile(golden, candidate)["a"] == (1, 0)
