"""Tests for the lockstep structure-of-arrays kernel (repro.engine.lockstep).

The heart of this module is the lane-equivalence property suite: every lane
of one vectorised :func:`run_lockstep_batch` call must be bit-identical to a
scalar :class:`FastKernel` run of the same configuration — cycles, firings,
halt flags, stall statistics, occupancy maxima, and failure outcomes
(deadlock / timeout) — across random same-layout relay-station and capacity
vectors, both wrapper flavours and every stop mode.  The remaining tests pin
the integration seams: scalar fallback for dynamic processes, batch grouping
in :class:`BatchRunner` / :class:`MultiNetlistRunner`, kernel selection via
``REPRO_KERNEL``, graceful degradation without NumPy, and the NumPy-scalar
coercion of the canonical result serialisations.
"""

from __future__ import annotations

import json
import math

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

np = pytest.importorskip("numpy")

from repro.core import (
    Channel,
    RSConfiguration,
    DeadlockError,
    FunctionProcess,
    Netlist,
    SimulationError,
    ring_netlist,
)
from repro.core.process import CounterSource, PassthroughProcess, Process
from repro.cpu import build_pipelined_cpu, make_extraction_sort
from repro.engine import (
    BatchResult,
    BatchRunner,
    Elaborator,
    FastKernel,
    InstrumentSet,
    LidResult,
    LockstepKernel,
    MultiNetlistRunner,
    RunControls,
    kernel_registry,
    lockstep_reason,
    make_kernel,
    resolve_kernel_name,
    run_lockstep_batch,
)
from repro.engine import lockstep as lockstep_module
from repro.engine.kernel import KERNEL_ENV_VAR

#: Lockstep-eligible runs carry no traces, so the lane suite compares the
#: other two instruments at full strength.
LANE_INSTRUMENTS = InstrumentSet(trace=False, shell_stats=True, occupancy=True)


def _lane_outcome(kernel_factory, controls, instruments):
    """Normalised (kind, payload) of one scalar run, matching lane slots."""
    try:
        result = kernel_factory().run(controls, instruments)
    except DeadlockError as exc:
        return ("deadlock", str(exc))
    except SimulationError as exc:
        return ("timeout", str(exc))
    return ("ok", result)


def _assert_lanes_match_fast(elaborator, bindings, controls, instruments):
    """Every lockstep lane equals the scalar FastKernel run bit for bit."""
    models = [elaborator.bind(**binding) for binding in bindings]
    assert lockstep_reason(models[0], controls, instruments) is None
    lanes = run_lockstep_batch(models, controls, instruments)
    assert len(lanes) == len(models)
    for binding, lane in zip(bindings, lanes):
        kind, payload = _lane_outcome(
            lambda: FastKernel(elaborator.bind(**binding)), controls, instruments
        )
        if isinstance(lane, DeadlockError):
            assert kind == "deadlock" and str(lane) == payload
        elif isinstance(lane, Exception):
            assert kind == "timeout" and str(lane) == payload
        else:
            assert kind == "ok"
            fast = payload
            assert lane.cycles == fast.cycles
            assert lane.firings == fast.firings
            assert lane.halted == fast.halted
            assert lane.wrapper_kind == fast.wrapper_kind
            assert lane.rs_counts == fast.rs_counts
            assert lane.shell_stats == fast.shell_stats
            assert lane.max_queue_occupancy == fast.max_queue_occupancy
            assert all(lane.trace[name].cycles == 0 for name in lane.trace)


# ---------------------------------------------------------------------------
# Random same-layout lane generation
# ---------------------------------------------------------------------------

@st.composite
def lockstep_cases(draw):
    """A random oracle-free netlist plus N same-layout lane configurations."""
    n_procs = draw(st.integers(min_value=1, max_value=4))
    n_outs = [draw(st.integers(min_value=1, max_value=2)) for _ in range(n_procs)]
    n_ins = [draw(st.integers(min_value=0 if n_procs > 1 else 1, max_value=2))
             for _ in range(n_procs)]
    if all(n == 0 for n in n_ins):
        n_ins[0] = 1

    processes = []
    for p in range(n_procs):
        ports = tuple(f"i{k}" for k in range(n_ins[p]))
        outs = tuple(f"o{k}" for k in range(n_outs[p]))

        def transition(state, inputs, _outs=outs):
            return state + 1, {port: state for port in _outs}

        processes.append(
            FunctionProcess(
                name=f"p{p}", inputs=ports, outputs=outs,
                transition=transition, initial_state=p,
            )
        )

    channels = []
    cid = 0
    for p in range(n_procs):
        for k in range(n_ins[p]):
            src = draw(st.integers(min_value=0, max_value=n_procs - 1))
            src_port = draw(st.integers(min_value=0, max_value=n_outs[src] - 1))
            channels.append(
                Channel(
                    name=f"c{cid}", source=f"p{src}", source_port=f"o{src_port}",
                    dest=f"p{p}", dest_port=f"i{k}", initial=0,
                )
            )
            cid += 1
    netlist = Netlist(processes, channels, name="lanes")

    relaxed = draw(st.booleans())
    n_lanes = draw(st.integers(min_value=1, max_value=6))
    bindings = [
        {
            "rs_counts": {
                chan.name: draw(st.integers(min_value=0, max_value=3))
                for chan in channels
            },
            "relaxed": relaxed,
            "queue_capacity": draw(st.integers(min_value=1, max_value=4)),
        }
        for _ in range(n_lanes)
    ]
    stop = draw(st.sampled_from(["target", "horizon"]))
    if stop == "target":
        controls = RunControls(
            target_firings={"p0": draw(st.integers(min_value=1, max_value=25))},
            extra_cycles=draw(st.integers(min_value=0, max_value=3)),
            max_cycles=3_000,
            deadlock_limit=150,
        )
    else:
        controls = RunControls(
            horizon=draw(st.integers(min_value=1, max_value=300)),
            max_cycles=3_000,
            deadlock_limit=150,
        )
    return netlist, bindings, controls


class TestLaneEquivalence:
    @given(case=lockstep_cases())
    @settings(
        max_examples=60,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    def test_random_lanes(self, case):
        """Random RS/capacity vectors: all lanes bit-identical to FastKernel."""
        netlist, bindings, controls = case
        _assert_lanes_match_fast(
            Elaborator(netlist), bindings, controls, LANE_INSTRUMENTS
        )

    @pytest.mark.parametrize("relaxed", [False, True])
    @pytest.mark.parametrize(
        "controls",
        [
            RunControls(target_firings={"stage0": 40}, extra_cycles=2,
                        max_cycles=10_000, steady_state=False),
            RunControls(horizon=400, steady_state=False),
            RunControls(stop_process="stage0", max_cycles=600,
                        horizon=500, steady_state=False),
        ],
        ids=["target", "horizon", "stop-process-horizon"],
    )
    def test_ring_lanes(self, relaxed, controls):
        netlist, _default = ring_netlist(5)
        chans = list(netlist.channels)
        bindings = [
            {
                "rs_counts": {c: (i + j) % 3 for j, c in enumerate(chans)},
                "relaxed": relaxed,
            }
            for i in range(8)
        ]
        _assert_lanes_match_fast(
            Elaborator(netlist), bindings, controls, LANE_INSTRUMENTS
        )

    def test_stop_any_done_via_counter_source(self):
        """STOP_ANY_DONE: a limited source's done flips at its firing count."""
        netlist = Netlist(
            [CounterSource("src", limit=17), PassthroughProcess("sink")],
            [Channel(name="c", source="src", source_port="out",
                     dest="sink", dest_port="in", initial=0)],
            name="counter",
        )
        controls = RunControls(extra_cycles=2, max_cycles=1_000)
        bindings = [{"rs_counts": {"c": rs}} for rs in range(4)]
        _assert_lanes_match_fast(
            Elaborator(netlist), bindings, controls, LANE_INSTRUMENTS
        )

    def test_deadlocking_and_healthy_lanes_coexist(self):
        """A deadlocked lane freezes with its error; siblings complete."""
        netlist = Netlist(
            [CounterSource("src", limit=5), PassthroughProcess("sink")],
            [Channel(name="c", source="src", source_port="out",
                     dest="sink", dest_port="in", initial=0)],
            name="counter",
        )
        elaborator = Elaborator(netlist)
        # Lane 0 stops normally; the deadlock surfaces on an impossible
        # target over the done source.
        controls = RunControls(
            target_firings={"src": 50}, max_cycles=2_000, deadlock_limit=40
        )
        _assert_lanes_match_fast(
            elaborator, [{"rs_counts": {"c": 1}}], controls, LANE_INSTRUMENTS
        )

    def test_timeout_lane_matches_fast(self):
        netlist, _default = ring_netlist(3)
        controls = RunControls(
            target_firings={"stage0": 10_000}, max_cycles=50,
            deadlock_limit=1_000,
        )
        _assert_lanes_match_fast(
            Elaborator(netlist), [{"rs_counts": {}}], controls, LANE_INSTRUMENTS
        )

    def test_uninstrumented_lanes(self):
        """The objective path (no instruments) agrees on counts alone."""
        netlist, _default = ring_netlist(4)
        chans = list(netlist.channels)
        bindings = [
            {"rs_counts": {c: (i * 7 + j) % 4 for j, c in enumerate(chans)}}
            for i in range(16)
        ]
        _assert_lanes_match_fast(
            Elaborator(netlist), bindings,
            RunControls(horizon=300, steady_state=False),
            InstrumentSet.none(),
        )

    def test_mixed_layout_batch_rejected(self):
        netlist_a, _ = ring_netlist(2)
        netlist_b, _ = ring_netlist(3)
        model_a = Elaborator(netlist_a).bind()
        model_b = Elaborator(netlist_b).bind()
        with pytest.raises(SimulationError, match="sharing one NetlistLayout"):
            run_lockstep_batch(
                [model_a, model_b], RunControls(horizon=10), InstrumentSet.none()
            )


# ---------------------------------------------------------------------------
# Eligibility classification and scalar fallback
# ---------------------------------------------------------------------------

class _DataDependentDone(Process):
    """is_done depends on consumed values: inexpressible as a threshold."""

    input_ports = ("in",)
    output_ports = ("out",)

    def __init__(self, name: str) -> None:
        super().__init__(name)
        self.total = 0

    def reset(self) -> None:
        super().reset()
        self.total = 0

    def fire(self, inputs):
        self.total += int(inputs["in"])
        return {"out": self.total}

    def is_done(self) -> bool:
        return self.total > 100


def _loop_netlist(process: Process) -> Netlist:
    return Netlist(
        [process],
        [Channel(name="loop", source=process.name, source_port="out",
                 dest=process.name, dest_port="in", initial=1)],
        name="loop",
    )


class TestEligibility:
    def test_done_threshold_protocol(self):
        assert CounterSource("s").done_threshold() == math.inf
        assert CounterSource("s", limit=9).done_threshold() == 9
        assert PassthroughProcess("p").done_threshold() == math.inf
        assert _DataDependentDone("d").done_threshold() is None

    def test_eligible_ring(self):
        netlist, rs_counts = ring_netlist(3, rs_total=2)
        model = Elaborator(netlist).bind(rs_counts=rs_counts)
        assert lockstep_reason(
            model, RunControls(horizon=10), InstrumentSet.none()
        ) is None

    def test_trace_instrument_ineligible(self):
        netlist, _ = ring_netlist(2)
        model = Elaborator(netlist).bind()
        reason = lockstep_reason(
            model, RunControls(horizon=10), InstrumentSet.all()
        )
        assert reason is not None and "trace" in reason

    def test_on_cycle_ineligible(self):
        netlist, _ = ring_netlist(2)
        model = Elaborator(netlist).bind()
        reason = lockstep_reason(
            model,
            RunControls(horizon=10, on_cycle=lambda cycle, fired: None),
            InstrumentSet.none(),
        )
        assert reason is not None and "on_cycle" in reason

    def test_data_dependent_done_ineligible(self):
        model = Elaborator(_loop_netlist(_DataDependentDone("d"))).bind()
        reason = lockstep_reason(
            model, RunControls(horizon=10), InstrumentSet.none()
        )
        assert reason is not None and "done" in reason

    def test_wp2_oracle_ineligible_wp1_eligible(self):
        oracle_proc = FunctionProcess(
            name="p", inputs=("in",), outputs=("out",),
            transition=lambda state, inputs: (state + 1, {"out": state}),
            initial_state=0,
            oracle=lambda state: frozenset() if state % 2 else None,
        )
        netlist = _loop_netlist(oracle_proc)
        elaborator = Elaborator(netlist)
        controls = RunControls(horizon=10)
        assert lockstep_reason(
            elaborator.bind(relaxed=True), controls, InstrumentSet.none()
        ) is not None
        assert lockstep_reason(
            elaborator.bind(relaxed=False), controls, InstrumentSet.none()
        ) is None

    def test_ineligible_run_delegates_to_fast(self):
        """LockstepKernel serves ineligible runs through FastKernel."""
        model = Elaborator(_loop_netlist(_DataDependentDone("d"))).bind()
        controls = RunControls(max_cycles=5_000)
        expected = FastKernel(model).run(controls, InstrumentSet.all())
        result = LockstepKernel(model).run(controls, InstrumentSet.all())
        assert result.cycles == expected.cycles
        assert result.firings == expected.firings
        assert result.halted == expected.halted
        for name in expected.trace:
            assert list(result.trace[name].items) == list(
                expected.trace[name].items
            )

    def test_cpu_netlist_falls_back_in_batch(self):
        """Dynamic CPU units route lockstep batches to the scalar path."""
        machine = build_pipelined_cpu(
            make_extraction_sort(length=4, seed=3).program
        )
        controls = dict(
            stop_process=machine.control_unit.name, max_cycles=200_000
        )
        configs = [RSConfiguration.uniform(0), RSConfiguration.uniform(1)]
        fast = BatchRunner(machine.netlist, kernel="fast").run_many(
            configs, **controls
        )
        lock = BatchRunner(machine.netlist, kernel="lockstep").run_many(
            configs, **controls
        )
        assert fast == lock

    def test_single_run_via_make_kernel(self):
        netlist, rs_counts = ring_netlist(4, rs_total=3)
        model = Elaborator(netlist).bind(rs_counts=rs_counts)
        controls = RunControls(
            target_firings={"stage0": 30}, max_cycles=5_000, steady_state=False
        )
        fast = FastKernel(model).run(controls, LANE_INSTRUMENTS)
        lock = make_kernel(model, "lockstep").run(controls, LANE_INSTRUMENTS)
        assert (lock.cycles, lock.firings, lock.halted) == (
            fast.cycles, fast.firings, fast.halted
        )
        assert lock.shell_stats == fast.shell_stats
        assert lock.max_queue_occupancy == fast.max_queue_occupancy


# ---------------------------------------------------------------------------
# Batch / multi-netlist integration
# ---------------------------------------------------------------------------

class TestBatchIntegration:
    @pytest.mark.parametrize("workers", [1, 2])
    def test_run_many_matches_fast(self, workers):
        netlist, _default = ring_netlist(5)
        chans = list(netlist.channels)
        configs = [
            {c: (i + j) % 3 for j, c in enumerate(chans)} for i in range(10)
        ]
        controls = dict(horizon=400, steady_state=False)
        fast = BatchRunner(netlist, kernel="fast").run_many(
            configs, workers=workers, **controls
        )
        lock = BatchRunner(netlist, kernel="lockstep").run_many(
            configs, workers=workers, **controls
        )
        assert fast == lock

    def test_per_item_capacity_overrides(self):
        netlist, _default = ring_netlist(4)
        configs = [
            ({}, {"queue_capacity": 1}),
            ({}, {"queue_capacity": 3}),
            {name: 1 for name in netlist.channels},
        ]
        controls = dict(horizon=300, steady_state=False)
        fast = BatchRunner(netlist, kernel="fast").run_many(configs, **controls)
        lock = BatchRunner(netlist, kernel="lockstep").run_many(configs, **controls)
        assert fast == lock

    def test_on_error_zero_converts_lane_failures(self):
        netlist = Netlist(
            [CounterSource("src", limit=5), PassthroughProcess("sink")],
            [Channel(name="c", source="src", source_port="out",
                     dest="sink", dest_port="in", initial=0)],
            name="counter",
        )
        configs = [{"c": 0}, {"c": 1}]
        controls = dict(
            target_firings={"src": 50}, max_cycles=2_000, deadlock_limit=40
        )
        fast = BatchRunner(netlist, kernel="fast").run_many(
            configs, on_error="zero", **controls
        )
        lock = BatchRunner(netlist, kernel="lockstep").run_many(
            configs, on_error="zero", **controls
        )
        assert fast == lock
        assert all(result.failed for result in lock)

    def test_on_error_raise_raises_lane_failure(self):
        netlist = Netlist(
            [CounterSource("src", limit=5), PassthroughProcess("sink")],
            [Channel(name="c", source="src", source_port="out",
                     dest="sink", dest_port="in", initial=0)],
            name="counter",
        )
        with pytest.raises(DeadlockError):
            BatchRunner(netlist, kernel="lockstep").run_many(
                [{"c": 0}], target_firings={"src": 50},
                max_cycles=2_000, deadlock_limit=40,
            )

    def test_multi_netlist_mixed_layouts(self):
        ring3, _unused3 = ring_netlist(3)
        ring4, _unused4 = ring_netlist(4)
        items = []
        for i in range(6):
            name = "r3" if i % 2 == 0 else "r4"
            netlist = ring3 if name == "r3" else ring4
            items.append(
                (name, {c: (i + j) % 2 for j, c in enumerate(netlist.channels)})
            )
        controls = dict(horizon=300, steady_state=False)
        fast = MultiNetlistRunner.from_netlists(
            {"r3": ring3, "r4": ring4}, kernel="fast"
        ).run_many(items, **controls)
        lock = MultiNetlistRunner.from_netlists(
            {"r3": ring3, "r4": ring4}, kernel="lockstep"
        ).run_many(items, **controls)
        assert fast == lock

    def test_objective_adapter_matches_fast(self):
        netlist, _default = ring_netlist(4)
        chans = list(netlist.channels)
        assignments = [
            {c: 0 for c in chans},
            {c: 1 for c in chans},
        ]

        def scores(kernel):
            objective = BatchRunner(netlist, kernel=kernel).objective(
                horizon=200, steady_state=False
            )
            return objective.many([dict(a) for a in assignments])

        assert scores("lockstep") == scores("fast")


# ---------------------------------------------------------------------------
# Kernel selection and NumPy-absence degradation
# ---------------------------------------------------------------------------

class TestSelectionAndDegradation:
    def test_registry_lists_lockstep(self):
        assert "lockstep" in kernel_registry()

    def test_env_variable_selects_lockstep(self, monkeypatch):
        monkeypatch.setenv(KERNEL_ENV_VAR, "lockstep")
        assert resolve_kernel_name(None) == "lockstep"

    def test_explicit_kernel_beats_lockstep_env(self, monkeypatch):
        monkeypatch.setenv(KERNEL_ENV_VAR, "lockstep")
        assert resolve_kernel_name("fast") == "fast"

    def test_explicit_lockstep_beats_env(self, monkeypatch):
        monkeypatch.setenv(KERNEL_ENV_VAR, "compiled")
        assert resolve_kernel_name("lockstep") == "lockstep"

    def test_batch_runner_picks_up_env(self, monkeypatch):
        monkeypatch.setenv(KERNEL_ENV_VAR, "lockstep")
        netlist, _default = ring_netlist(3)
        runner = BatchRunner(netlist)
        assert runner.kernel_name == "lockstep"
        results = runner.run_many(
            [{}, {c: 1 for c in netlist.channels}],
            horizon=100, steady_state=False,
        )
        expected = BatchRunner(netlist, kernel="fast").run_many(
            [{}, {c: 1 for c in netlist.channels}],
            horizon=100, steady_state=False,
        )
        assert results == expected

    def test_without_numpy_registry_still_lists_lockstep(self, monkeypatch):
        monkeypatch.setattr(lockstep_module, "np", None)
        assert "lockstep" in kernel_registry()
        assert resolve_kernel_name("lockstep") == "lockstep"

    def test_without_numpy_instantiation_raises_clearly(self, monkeypatch):
        monkeypatch.setattr(lockstep_module, "np", None)
        netlist, _default = ring_netlist(2)
        model = Elaborator(netlist).bind()
        with pytest.raises(SimulationError, match=r"repro\[fast\]"):
            LockstepKernel(model)

    def test_without_numpy_reason_reports_missing_dependency(self, monkeypatch):
        monkeypatch.setattr(lockstep_module, "np", None)
        netlist, _default = ring_netlist(2)
        model = Elaborator(netlist).bind()
        reason = lockstep_reason(
            model, RunControls(horizon=10), InstrumentSet.none()
        )
        assert reason is not None and "NumPy" in reason


# ---------------------------------------------------------------------------
# NumPy-scalar coercion in the canonical serialisations (satellite bugfix)
# ---------------------------------------------------------------------------

class TestNumpyScalarCoercion:
    def test_lid_result_to_dict_is_json_safe(self):
        netlist, rs_counts = ring_netlist(3, rs_total=2)
        model = Elaborator(netlist).bind(rs_counts=rs_counts)
        result = make_kernel(model, "lockstep").run(
            RunControls(horizon=100, steady_state=False), LANE_INSTRUMENTS
        )
        # Simulate a caller that sliced its own arrays into the result.
        result.cycles = np.int64(result.cycles)
        result.halted = np.bool_(result.halted)
        result.firings = {
            name: np.int64(count) for name, count in result.firings.items()
        }
        result.max_queue_occupancy = {
            name: np.int64(count)
            for name, count in result.max_queue_occupancy.items()
        }
        data = result.to_dict()
        encoded = json.dumps(data)  # must not raise
        rebuilt = LidResult.from_dict(json.loads(encoded))
        assert rebuilt.cycles == int(result.cycles)
        assert rebuilt.firings == {
            name: int(count) for name, count in result.firings.items()
        }
        assert rebuilt.halted == bool(result.halted)
        assert rebuilt.max_queue_occupancy == {
            name: int(count)
            for name, count in result.max_queue_occupancy.items()
        }

    def test_batch_result_to_dict_is_json_safe(self):
        result = BatchResult(
            label="lane",
            cycles=np.int64(42),
            firings={"p0": np.int64(7)},
            halted=np.bool_(True),
            wrapper_kind="WP1",
            rs_total=np.int64(3),
            period=np.int64(10),
            warmup_cycles=np.int64(2),
            extrapolated=np.bool_(False),
        )
        data = result.to_dict()
        encoded = json.dumps(data)  # must not raise
        rebuilt = BatchResult.from_dict(json.loads(encoded))
        assert rebuilt.cycles == 42 and type(rebuilt.cycles) is int
        assert rebuilt.firings == {"p0": 7}
        assert rebuilt.halted is True
        assert rebuilt.rs_total == 3
        assert rebuilt.period == 10 and rebuilt.warmup_cycles == 2
        assert rebuilt.extrapolated is False
