"""Unit tests for relay-station configurations and insertion policies."""

from __future__ import annotations

import pytest

from repro.core.config import RSConfiguration
from repro.core.exceptions import ConfigurationError
from repro.core.insertion import (
    all_single_link_insertions,
    floorplan_insertion,
    incremental_insertions,
    merge_minimum,
    single_link_insertion,
    uniform_insertion,
)
from repro.core.floorplan import row_pack
from repro.core.timing import ClockPlan
from repro.cpu import DEFAULT_BLOCK_SIZES_MM, TABLE1_LINK_ORDER, build_pipelined_cpu
from repro.cpu.workloads import make_extraction_sort


@pytest.fixture(scope="module")
def cpu_netlist():
    return build_pipelined_cpu(make_extraction_sort(length=4).program).netlist


class TestRSConfiguration:
    def test_ideal_has_no_relay_stations(self, cpu_netlist):
        config = RSConfiguration.ideal()
        assert config.total_relay_stations(cpu_netlist) == 0

    def test_only_sets_single_link(self, cpu_netlist):
        config = RSConfiguration.only("RF-DC", count=2)
        per_link = config.per_link(cpu_netlist.link_names())
        assert per_link["RF-DC"] == 2
        assert sum(per_link.values()) == 2

    def test_only_label(self):
        assert RSConfiguration.only("CU-RF").label == "Only CU-RF"

    def test_uniform_with_exclusion(self, cpu_netlist):
        config = RSConfiguration.uniform(1, exclude=("CU-IC",))
        per_link = config.per_link(cpu_netlist.link_names())
        assert per_link["CU-IC"] == 0
        assert all(count == 1 for link, count in per_link.items() if link != "CU-IC")
        assert "no CU-IC" in config.label

    def test_uniform_plus(self, cpu_netlist):
        config = RSConfiguration.uniform_plus(1, {"RF-DC": 2})
        per_link = config.per_link(cpu_netlist.link_names())
        assert per_link["RF-DC"] == 2
        assert per_link["CU-RF"] == 1

    def test_from_mapping_defaults_to_zero(self, cpu_netlist):
        config = RSConfiguration.from_mapping({"CU-RF": 3})
        per_link = config.per_link(cpu_netlist.link_names())
        assert per_link["CU-RF"] == 3
        assert per_link["DC-RF"] == 0

    def test_negative_counts_rejected(self):
        with pytest.raises(ConfigurationError):
            RSConfiguration(label="bad", default=-1)
        with pytest.raises(ConfigurationError):
            RSConfiguration(label="bad", overrides={"x": -2})

    def test_per_channel_expands_link_to_both_directions(self, cpu_netlist):
        config = RSConfiguration.only("CU-IC")
        per_channel = config.per_channel(cpu_netlist)
        assert per_channel["cu_ic"] == 1
        assert per_channel["ic_cu"] == 1
        assert per_channel["rf_alu"] == 0

    def test_per_channel_unknown_link_rejected(self, cpu_netlist):
        config = RSConfiguration.only("NOT-A-LINK")
        with pytest.raises(ConfigurationError):
            config.per_channel(cpu_netlist)

    def test_total_relay_stations_counts_channels(self, cpu_netlist):
        config = RSConfiguration.uniform(1)
        # 11 channels in the Figure 1 netlist, one RS each.
        assert config.total_relay_stations(cpu_netlist) == 11

    def test_with_label(self):
        config = RSConfiguration.only("CU-RF").with_label("renamed")
        assert config.label == "renamed"
        assert config.count_for_link("CU-RF") == 1

    def test_describe_lists_links(self):
        text = RSConfiguration.only("CU-RF").describe(["CU-RF", "CU-IC"])
        assert "CU-RF=1" in text and "CU-IC=0" in text


class TestInsertionPolicies:
    def test_uniform_insertion(self, cpu_netlist):
        config = uniform_insertion(cpu_netlist, 2, exclude=("CU-IC",))
        assert config.count_for_link("CU-IC") == 0
        assert config.count_for_link("RF-DC") == 2

    def test_uniform_insertion_unknown_exclude_rejected(self, cpu_netlist):
        with pytest.raises(ConfigurationError):
            uniform_insertion(cpu_netlist, 1, exclude=("GHOST",))

    def test_single_link_insertion(self, cpu_netlist):
        config = single_link_insertion(cpu_netlist, "ALU-RF", count=2)
        assert config.count_for_link("ALU-RF") == 2

    def test_single_link_insertion_unknown_link_rejected(self, cpu_netlist):
        with pytest.raises(ConfigurationError):
            single_link_insertion(cpu_netlist, "GHOST")

    def test_all_single_link_insertions_covers_every_link(self, cpu_netlist):
        configs = all_single_link_insertions(cpu_netlist)
        assert len(configs) == len(cpu_netlist.link_names())
        labels = {config.label for config in configs}
        assert "Only CU-IC" in labels

    def test_incremental_insertions_matches_table_rows(self, cpu_netlist):
        base = uniform_insertion(cpu_netlist, 1)
        configs = incremental_insertions(base, cpu_netlist)
        assert len(configs) == len(cpu_netlist.link_names())
        for config in configs:
            per_link = config.per_link(cpu_netlist.link_names())
            assert sorted(per_link.values())[-1] == 2
            assert sum(per_link.values()) == len(per_link) + 1

    def test_floorplan_insertion_produces_link_counts(self, cpu_netlist):
        floorplan = row_pack(DEFAULT_BLOCK_SIZES_MM, row_width_mm=6.0)
        clock = ClockPlan.from_frequency_ghz(2.0)
        config = floorplan_insertion(cpu_netlist, floorplan, clock)
        per_link = config.per_link(cpu_netlist.link_names())
        assert set(per_link) == set(cpu_netlist.link_names())
        assert all(count >= 0 for count in per_link.values())

    def test_merge_minimum_enforces_lower_bound(self):
        merged = merge_minimum({"A": 2, "B": 1}, {"A": 1, "B": 3, "C": 1})
        assert merged == {"A": 2, "B": 3, "C": 1}


class TestTableRowOrder:
    def test_table1_link_order_matches_netlist_links(self, cpu_netlist):
        assert sorted(TABLE1_LINK_ORDER) == sorted(cpu_netlist.link_names())
