"""Unit tests for the floorplan and wire-timing models."""

from __future__ import annotations

import pytest

from repro.core.exceptions import ConfigurationError
from repro.core.floorplan import Block, Floorplan, row_pack, spread_floorplan
from repro.core.timing import (
    ClockPlan,
    WireModel,
    clock_scaling_sweep,
    relay_stations_for_lengths,
)
from repro.cpu import DEFAULT_BLOCK_SIZES_MM, build_pipelined_cpu
from repro.cpu.workloads import make_extraction_sort


class TestBlock:
    def test_center(self):
        block = Block("b", width_mm=2.0, height_mm=1.0, x_mm=1.0, y_mm=1.0)
        assert block.center == (2.0, 1.5)

    def test_area(self):
        assert Block("b", 2.0, 3.0).area_mm2 == 6.0

    def test_invalid_dimensions_rejected(self):
        with pytest.raises(ConfigurationError):
            Block("b", 0.0, 1.0)

    def test_overlap_detection(self):
        a = Block("a", 2.0, 2.0, 0.0, 0.0)
        b = Block("b", 2.0, 2.0, 1.0, 1.0)
        c = Block("c", 2.0, 2.0, 2.0, 0.0)
        assert a.overlaps(b)
        assert not a.overlaps(c)  # abutting edges do not overlap

    def test_moved_to(self):
        moved = Block("a", 1.0, 1.0).moved_to(3.0, 4.0)
        assert (moved.x_mm, moved.y_mm) == (3.0, 4.0)


class TestFloorplan:
    def make_plan(self):
        return Floorplan(
            [
                Block("A", 1.0, 1.0, 0.0, 0.0),
                Block("B", 1.0, 1.0, 3.0, 0.0),
            ]
        )

    def test_duplicate_block_rejected(self):
        with pytest.raises(ConfigurationError):
            Floorplan([Block("A", 1, 1, 0, 0), Block("A", 1, 1, 5, 5)])

    def test_overlapping_blocks_rejected(self):
        with pytest.raises(ConfigurationError):
            Floorplan([Block("A", 2, 2, 0, 0), Block("B", 2, 2, 1, 1)])

    def test_wire_length_is_manhattan_distance(self):
        plan = self.make_plan()
        assert plan.wire_length_mm("A", "B") == pytest.approx(3.0)

    def test_unknown_block_rejected(self):
        with pytest.raises(ConfigurationError):
            self.make_plan().block("Z")

    def test_bounding_box_and_area(self):
        plan = self.make_plan()
        assert plan.bounding_box_mm() == (4.0, 1.0)
        assert plan.total_area_mm2() == 2.0

    def test_link_lengths_for_cpu_netlist(self):
        netlist = build_pipelined_cpu(make_extraction_sort(length=4).program).netlist
        plan = row_pack(DEFAULT_BLOCK_SIZES_MM, row_width_mm=6.0)
        lengths = plan.link_lengths(netlist)
        assert set(lengths) == set(netlist.link_names())
        assert all(length >= 0 for length in lengths.values())

    def test_link_lengths_missing_block_rejected(self):
        netlist = build_pipelined_cpu(make_extraction_sort(length=4).program).netlist
        plan = self.make_plan()
        with pytest.raises(ConfigurationError):
            plan.link_lengths(netlist)

    def test_describe(self):
        assert "bounding box" in self.make_plan().describe()


class TestPlacers:
    def test_row_pack_places_all_blocks_without_overlap(self):
        plan = row_pack(DEFAULT_BLOCK_SIZES_MM, row_width_mm=5.0)
        assert set(plan.blocks) == set(DEFAULT_BLOCK_SIZES_MM)

    def test_row_pack_rejects_bad_row_width(self):
        with pytest.raises(ConfigurationError):
            row_pack(DEFAULT_BLOCK_SIZES_MM, row_width_mm=0)

    def test_spread_floorplan_scales_distances(self):
        plan = row_pack(DEFAULT_BLOCK_SIZES_MM, row_width_mm=5.0)
        spread = spread_floorplan(plan, 2.0)
        base = plan.wire_length_mm("CU", "DC")
        widened = spread.wire_length_mm("CU", "DC")
        assert widened >= base

    def test_spread_rejects_non_positive_factor(self):
        plan = row_pack(DEFAULT_BLOCK_SIZES_MM, row_width_mm=5.0)
        with pytest.raises(ConfigurationError):
            spread_floorplan(plan, 0.0)


class TestWireModel:
    def test_zero_length_has_zero_delay(self):
        assert WireModel().delay_ps(0.0) == 0.0

    def test_delay_grows_linearly(self):
        model = WireModel(delay_per_mm_ps=100.0, fixed_overhead_ps=50.0)
        assert model.delay_ps(2.0) == pytest.approx(250.0)

    def test_negative_length_rejected(self):
        with pytest.raises(ValueError):
            WireModel().delay_ps(-1.0)

    def test_short_wire_needs_no_relay_station(self):
        model = WireModel(delay_per_mm_ps=100.0, fixed_overhead_ps=0.0)
        assert model.relay_stations_needed(1.0, clock_period_ps=500.0) == 0

    def test_long_wire_needs_relay_stations(self):
        model = WireModel(delay_per_mm_ps=100.0, fixed_overhead_ps=0.0)
        # 10 mm -> 1000 ps of flight at a 400 ps clock -> ceil(2.5) - 1 = 2.
        assert model.relay_stations_needed(10.0, clock_period_ps=400.0) == 2

    def test_invalid_clock_rejected(self):
        with pytest.raises(ValueError):
            WireModel().relay_stations_needed(1.0, clock_period_ps=0.0)

    def test_max_unpipelined_length(self):
        model = WireModel(delay_per_mm_ps=100.0, fixed_overhead_ps=50.0)
        assert model.max_unpipelined_length_mm(250.0) == pytest.approx(2.0)
        assert model.max_unpipelined_length_mm(40.0) == 0.0


class TestClockPlan:
    def test_frequency_period_roundtrip(self):
        clock = ClockPlan.from_frequency_ghz(2.0)
        assert clock.period_ps == pytest.approx(500.0)
        assert clock.frequency_ghz == pytest.approx(2.0)

    def test_invalid_frequency_rejected(self):
        with pytest.raises(ValueError):
            ClockPlan.from_frequency_ghz(0.0)


class TestBudgeting:
    def test_relay_stations_for_lengths(self):
        counts = relay_stations_for_lengths(
            {"short": 0.5, "long": 20.0},
            ClockPlan.from_frequency_ghz(1.0),
            WireModel(delay_per_mm_ps=150.0, fixed_overhead_ps=50.0),
        )
        assert counts["short"] == 0
        assert counts["long"] >= 2

    def test_clock_scaling_sweep_monotone(self):
        lengths = {"a": 5.0, "b": 12.0}
        sweep = clock_scaling_sweep(lengths, [0.5, 1.0, 2.0])
        totals = [sum(counts.values()) for counts in sweep.values()]
        assert totals == sorted(totals)
