"""Unit tests for program images."""

from __future__ import annotations

import pytest

from repro.core.exceptions import ProgramError
from repro.cpu import isa
from repro.cpu.isa import decode
from repro.cpu.program import DEFAULT_DMEM_WORDS, DEFAULT_IMEM_WORDS, Program, data_from_list


class TestProgramConstruction:
    def test_requires_instructions(self):
        with pytest.raises(ProgramError):
            Program(name="empty", instructions=[])

    def test_too_many_instructions_rejected(self):
        instructions = [isa.nop()] * 5
        with pytest.raises(ProgramError):
            Program(name="big", instructions=instructions, imem_size=4)

    def test_data_address_out_of_range_rejected(self):
        with pytest.raises(ProgramError):
            Program(
                name="bad",
                instructions=[isa.halt()],
                data={DEFAULT_DMEM_WORDS: 1},
            )

    def test_non_integer_data_rejected(self):
        with pytest.raises(ProgramError):
            Program(name="bad", instructions=[isa.halt()], data={0: "x"})


class TestProgramImages:
    def test_instruction_words_padded_with_nops(self):
        program = Program(name="p", instructions=[isa.halt()], imem_size=8)
        words = program.instruction_words()
        assert len(words) == 8
        assert decode(words[0]).is_halt
        assert decode(words[5]).is_nop

    def test_data_image_dense_and_signed(self):
        program = Program(
            name="p",
            instructions=[isa.halt()],
            data={0: 5, 3: -2},
            dmem_size=6,
        )
        assert program.data_image() == [5, 0, 0, -2, 0, 0]

    def test_length_excludes_padding(self):
        program = Program(name="p", instructions=[isa.nop(), isa.halt()])
        assert program.length == 2

    def test_describe_contains_listing(self):
        program = Program(name="p", instructions=[isa.li(1, 3), isa.halt()])
        text = program.describe()
        assert "LI r1, 3" in text and "HALT" in text


class TestConstructors:
    def test_from_assembly(self):
        program = Program.from_assembly("asm", "LI r1, 2\nHALT", data={1: 9})
        assert program.length == 2
        assert program.data[1] == 9
        assert program.symbols == {}

    def test_from_assembly_keeps_symbols(self):
        program = Program.from_assembly("asm", "start:\nJMP start")
        assert program.symbols == {"start": 0}

    def test_from_instructions(self):
        program = Program.from_instructions("manual", [isa.halt()])
        assert program.length == 1

    def test_default_sizes(self):
        program = Program.from_instructions("manual", [isa.halt()])
        assert program.imem_size == DEFAULT_IMEM_WORDS
        assert program.dmem_size == DEFAULT_DMEM_WORDS


class TestDataFromList:
    def test_consecutive_layout(self):
        assert data_from_list([7, 8, 9], base=10) == {10: 7, 11: 8, 12: 9}

    def test_empty(self):
        assert data_from_list([]) == {}
