"""Unit tests for loop enumeration and throughput bounds."""

from __future__ import annotations

from fractions import Fraction

import networkx as nx
import pytest

from repro.core.config import RSConfiguration
from repro.core.exceptions import ConfigurationError
from repro.core.netlist import ring_netlist
from repro.core.static_analysis import (
    critical_links,
    enumerate_loops,
    make_link_bound_evaluator,
    maximum_cycle_mean,
    maximum_cycle_ratio,
    per_link_sensitivity,
    throughput_bound,
    throughput_bound_mcm,
)
from repro.cpu import build_pipelined_cpu, make_extraction_sort


@pytest.fixture(scope="module")
def cpu_netlist():
    return build_pipelined_cpu(make_extraction_sort(length=4).program).netlist


class TestEnumerateLoops:
    def test_ring_has_one_loop(self):
        netlist, rs_counts = ring_netlist(4, rs_total=2)
        loops = enumerate_loops(netlist, rs_counts=rs_counts)
        assert len(loops) == 1
        assert loops[0].length == 4
        assert loops[0].relay_stations == 2

    def test_loop_throughput_bound_fraction(self):
        netlist, rs_counts = ring_netlist(3, rs_total=1)
        loop = enumerate_loops(netlist, rs_counts=rs_counts)[0]
        assert loop.throughput_bound == Fraction(3, 4)

    def test_loop_describe_mentions_processes(self):
        netlist, rs_counts = ring_netlist(2, rs_total=1)
        text = enumerate_loops(netlist, rs_counts=rs_counts)[0].describe()
        assert "stage0" in text and "RS" in text

    def test_cpu_netlist_loop_count(self, cpu_netlist):
        loops = enumerate_loops(cpu_netlist)
        # CU-IC, CU-ALU-CU, CU-RF-ALU-CU, CU-DC-RF-ALU-CU, RF-ALU-RF,
        # RF-DC-RF, ALU-DC-RF-ALU.
        assert len(loops) == 7
        lengths = sorted(loop.length for loop in loops)
        assert lengths == [2, 2, 2, 2, 3, 3, 4]

    def test_rejects_both_counts_and_configuration(self, cpu_netlist):
        with pytest.raises(ConfigurationError):
            enumerate_loops(
                cpu_netlist,
                rs_counts={"cu_ic": 1},
                configuration=RSConfiguration.ideal(),
            )


class TestThroughputBound:
    def test_ring_bound_matches_formula(self):
        netlist, rs_counts = ring_netlist(3, rs_total=2)
        report = throughput_bound(netlist, rs_counts=rs_counts)
        assert report.bound == Fraction(3, 5)
        assert report.critical_loops

    def test_acyclic_netlist_bound_is_one(self):
        from repro.core.channel import Channel
        from repro.core.netlist import Netlist
        from repro.core.process import CounterSource, SinkProcess

        netlist = Netlist(
            [CounterSource("src"), SinkProcess("sink")],
            [Channel("d", "src", "out", "sink", "in", initial=0)],
        )
        report = throughput_bound(netlist, rs_counts={"d": 5})
        assert report.bound == 1
        assert report.loops == []

    def test_ideal_configuration_bound_is_one(self, cpu_netlist):
        report = throughput_bound(cpu_netlist, configuration=RSConfiguration.ideal())
        assert report.bound == 1

    @pytest.mark.parametrize(
        "link,expected",
        [
            ("CU-IC", Fraction(1, 2)),   # both directions pipelined -> 2/(2+2)
            ("CU-AL", Fraction(2, 3)),
            ("CU-RF", Fraction(3, 4)),
            ("RF-ALU", Fraction(2, 3)),
            ("RF-DC", Fraction(2, 3)),
            ("ALU-CU", Fraction(2, 3)),
            ("ALU-RF", Fraction(2, 3)),
            ("DC-RF", Fraction(2, 3)),
            ("CU-DC", Fraction(4, 5)),
            ("ALU-DC", Fraction(3, 4)),
        ],
    )
    def test_single_link_bounds_on_cpu(self, cpu_netlist, link, expected):
        report = throughput_bound(
            cpu_netlist, configuration=RSConfiguration.only(link)
        )
        assert report.bound == expected

    def test_describe_flags_critical_loops(self, cpu_netlist):
        report = throughput_bound(
            cpu_netlist, configuration=RSConfiguration.only("CU-IC")
        )
        assert "*" in report.describe()

    def test_uniform_configuration_bound(self, cpu_netlist):
        report = throughput_bound(
            cpu_netlist,
            configuration=RSConfiguration.uniform(1, exclude=("CU-IC",)),
        )
        assert report.bound == Fraction(1, 2)


class TestMcmAndMcr:
    def test_mcm_simple_cycle(self):
        graph = nx.DiGraph()
        graph.add_edge("a", "b", weight=2.0)
        graph.add_edge("b", "a", weight=0.0)
        assert maximum_cycle_mean(graph) == pytest.approx(1.0)

    def test_mcm_picks_worst_cycle(self):
        graph = nx.DiGraph()
        graph.add_edge("a", "b", weight=1.0)
        graph.add_edge("b", "a", weight=1.0)
        graph.add_edge("c", "c", weight=5.0)
        assert maximum_cycle_mean(graph) == pytest.approx(5.0)

    def test_mcm_acyclic_graph(self):
        graph = nx.DiGraph()
        graph.add_edge("a", "b", weight=3.0)
        assert maximum_cycle_mean(graph) == float("-inf")

    def test_mcr_matches_manual_ratio(self):
        graph = nx.DiGraph()
        graph.add_edge("a", "b", cost=3.0, time=1.0)
        graph.add_edge("b", "a", cost=1.0, time=1.0)
        assert maximum_cycle_ratio(graph) == pytest.approx(2.0, abs=1e-6)

    def test_mcr_acyclic(self):
        graph = nx.DiGraph()
        graph.add_edge("a", "b", cost=3.0, time=1.0)
        assert maximum_cycle_ratio(graph) == float("-inf")

    def test_mcr_requires_positive_times(self):
        graph = nx.DiGraph()
        graph.add_edge("a", "b", cost=1.0, time=0.0)
        graph.add_edge("b", "a", cost=1.0, time=1.0)
        with pytest.raises(ConfigurationError):
            maximum_cycle_ratio(graph)

    def test_bound_mcm_agrees_with_enumeration_on_cpu(self, cpu_netlist):
        for link in ("CU-IC", "RF-DC", "CU-DC"):
            config = RSConfiguration.only(link)
            exact = float(throughput_bound(cpu_netlist, configuration=config).bound)
            fast = throughput_bound_mcm(cpu_netlist, configuration=config)
            assert fast == pytest.approx(exact, abs=1e-6)

    def test_bound_mcm_acyclic_is_one(self):
        from repro.core.channel import Channel
        from repro.core.netlist import Netlist
        from repro.core.process import CounterSource, SinkProcess

        netlist = Netlist(
            [CounterSource("src"), SinkProcess("sink")],
            [Channel("d", "src", "out", "sink", "in", initial=0)],
        )
        assert throughput_bound_mcm(netlist) == 1.0


class TestSensitivityAndCriticalLinks:
    def test_critical_links_of_cu_ic_config(self, cpu_netlist):
        links = critical_links(cpu_netlist, configuration=RSConfiguration.only("CU-IC"))
        assert links == ["CU-IC"]

    def test_per_link_sensitivity_orders_links(self, cpu_netlist):
        sensitivity = per_link_sensitivity(cpu_netlist)
        assert sensitivity["CU-IC"] == Fraction(1, 2)
        assert sensitivity["CU-DC"] == Fraction(4, 5)
        assert min(sensitivity.values()) == Fraction(1, 2)

    def test_link_bound_evaluator_matches_throughput_bound(self, cpu_netlist):
        evaluator = make_link_bound_evaluator(cpu_netlist)
        for link in ("CU-IC", "RF-DC", "ALU-RF"):
            config = RSConfiguration.only(link)
            expected = float(throughput_bound(cpu_netlist, configuration=config).bound)
            assert evaluator(config.per_link(cpu_netlist.link_names())) == pytest.approx(expected)

    def test_link_bound_evaluator_on_acyclic_netlist(self):
        from repro.core.channel import Channel
        from repro.core.netlist import Netlist
        from repro.core.process import CounterSource, SinkProcess

        netlist = Netlist(
            [CounterSource("src"), SinkProcess("sink")],
            [Channel("d", "src", "out", "sink", "in", initial=0)],
        )
        evaluator = make_link_bound_evaluator(netlist)
        assert evaluator({"d": 10}) == 1.0
