"""Property-based tests (hypothesis) for the core invariants.

These cover the properties the paper relies on:

* the latency-insensitive protocol never loses, duplicates or reorders tokens
  (checked via FIFO-order invariants and golden/WP N-equivalence);
* loop throughput of the strict system follows m / (m + n);
* the WP2 wrapper remains equivalent to the golden system for arbitrary
  relay-station placements, and is never slower than WP1;
* encoders/decoders and the assembler round-trip.
"""

from __future__ import annotations

from fractions import Fraction

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import (
    RSConfiguration,
    n_equivalent,
    ring_netlist,
    run_golden,
    run_lid,
    throughput_bound,
    throughput_bound_mcm,
)
from repro.core.relay_station import TokenQueue
from repro.core.tokens import Token
from repro.cpu import assemble, build_pipelined_cpu, decode, encode, isa
from repro.cpu.isa import BRANCH_OPS, IMMEDIATE_OPS, Instruction, Opcode
from repro.cpu.workloads import make_extraction_sort, make_matrix_multiply


# ---------------------------------------------------------------------------
# Strategies
# ---------------------------------------------------------------------------

registers = st.integers(min_value=0, max_value=15)
immediates = st.integers(min_value=isa.IMM_MIN, max_value=isa.IMM_MAX)


@st.composite
def instructions(draw):
    opcode = draw(st.sampled_from(list(Opcode)))
    if opcode in (Opcode.NOP, Opcode.HALT):
        return Instruction(opcode)
    if opcode is Opcode.JMP:
        return Instruction(opcode, imm=draw(st.integers(min_value=0, max_value=1000)))
    if opcode is Opcode.LI:
        return Instruction(opcode, rd=draw(registers), imm=draw(immediates))
    if opcode in IMMEDIATE_OPS:
        return Instruction(opcode, rd=draw(registers), ra=draw(registers), imm=draw(immediates))
    if opcode is Opcode.LD:
        return Instruction(opcode, rd=draw(registers), ra=draw(registers), imm=draw(immediates))
    if opcode is Opcode.ST:
        return Instruction(opcode, rb=draw(registers), ra=draw(registers), imm=draw(immediates))
    if opcode in BRANCH_OPS:
        return Instruction(
            opcode, ra=draw(registers), rb=draw(registers),
            imm=draw(st.integers(min_value=0, max_value=1000)),
        )
    return Instruction(opcode, rd=draw(registers), ra=draw(registers), rb=draw(registers))


# ---------------------------------------------------------------------------
# Token queue invariants
# ---------------------------------------------------------------------------

class TestTokenQueueProperties:
    @given(
        capacity=st.integers(min_value=1, max_value=6),
        operations=st.lists(st.booleans(), max_size=60),
    )
    @settings(max_examples=60, deadline=None)
    def test_fifo_order_and_capacity_respected(self, capacity, operations):
        """Pushing (True) / popping (False) in any pattern preserves order."""
        queue = TokenQueue("q", capacity=capacity)
        pushed = 0
        popped = 0
        for is_push in operations:
            if is_push and queue.occupancy < capacity:
                queue.push(Token(value=pushed, tag=pushed))
                pushed += 1
            elif not is_push and queue.has_data():
                token = queue.pop()
                assert token.tag == popped, "tokens must leave in FIFO order"
                popped += 1
            assert 0 <= queue.occupancy <= capacity
        assert queue.occupancy == pushed - popped


# ---------------------------------------------------------------------------
# Loop-throughput formula and equivalence on rings
# ---------------------------------------------------------------------------

class TestRingProperties:
    @given(
        stages=st.integers(min_value=1, max_value=5),
        rs_total=st.integers(min_value=0, max_value=4),
        relaxed=st.booleans(),
    )
    @settings(max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    def test_loop_throughput_formula_and_equivalence(self, stages, rs_total, relaxed):
        netlist, rs_counts = ring_netlist(stages, rs_total=rs_total)
        golden = run_golden(netlist, max_cycles=30)
        firings = 60
        result = run_lid(
            netlist,
            rs_counts=rs_counts,
            relaxed=relaxed,
            target_firings={"stage0": firings},
            max_cycles=20_000,
        )
        expected = stages / (stages + rs_total)
        measured = result.firings["stage0"] / result.cycles
        assert measured == pytest.approx(expected, rel=0.08)
        assert n_equivalent(golden.trace, result.trace).equivalent

    @given(
        stages=st.integers(min_value=1, max_value=6),
        rs_total=st.integers(min_value=0, max_value=6),
    )
    @settings(max_examples=40, deadline=None)
    def test_static_bound_equals_formula(self, stages, rs_total):
        netlist, rs_counts = ring_netlist(stages, rs_total=rs_total)
        report = throughput_bound(netlist, rs_counts=rs_counts)
        assert report.bound == Fraction(stages, stages + rs_total)


# ---------------------------------------------------------------------------
# Static analysis consistency on the case-study netlist
# ---------------------------------------------------------------------------

class TestStaticAnalysisProperties:
    netlist = build_pipelined_cpu(make_extraction_sort(length=4).program).netlist
    links = netlist.link_names()

    @given(counts=st.lists(st.integers(min_value=0, max_value=3), min_size=10, max_size=10))
    @settings(max_examples=40, deadline=None)
    def test_enumeration_agrees_with_cycle_ratio(self, counts):
        assignment = dict(zip(sorted(self.links), counts))
        config = RSConfiguration.from_mapping(assignment, label="random")
        exact = float(throughput_bound(self.netlist, configuration=config).bound)
        fast = throughput_bound_mcm(self.netlist, configuration=config)
        assert fast == pytest.approx(exact, abs=1e-6)

    @given(counts=st.lists(st.integers(min_value=0, max_value=3), min_size=10, max_size=10))
    @settings(max_examples=40, deadline=None)
    def test_adding_relay_stations_never_raises_the_bound(self, counts):
        assignment = dict(zip(sorted(self.links), counts))
        config = RSConfiguration.from_mapping(assignment, label="random")
        base = throughput_bound(self.netlist, configuration=config).bound
        heavier = RSConfiguration.from_mapping(
            {link: count + 1 for link, count in assignment.items()}, label="heavier"
        )
        worse = throughput_bound(self.netlist, configuration=heavier).bound
        assert worse <= base


# ---------------------------------------------------------------------------
# ISA and assembler round-trips
# ---------------------------------------------------------------------------

class TestIsaProperties:
    @given(instruction=instructions())
    @settings(max_examples=200, deadline=None)
    def test_encode_decode_roundtrip(self, instruction):
        assert decode(encode(instruction)) == instruction

    @given(instruction=instructions())
    @settings(max_examples=100, deadline=None)
    def test_describe_reassembles_to_same_instruction(self, instruction):
        reassembled = assemble(instruction.describe()).instructions[0]
        assert reassembled == instruction

    @given(value=st.integers(min_value=-(2**40), max_value=2**40))
    @settings(max_examples=100, deadline=None)
    def test_signed_word_is_idempotent_and_in_range(self, value):
        wrapped = isa.to_signed_word(value)
        assert -(2**31) <= wrapped < 2**31
        assert isa.to_signed_word(wrapped) == wrapped


# ---------------------------------------------------------------------------
# End-to-end: the processor sorts / multiplies correctly and stays equivalent
# ---------------------------------------------------------------------------

class TestCpuProperties:
    @given(values=st.lists(st.integers(min_value=-50, max_value=50), min_size=2, max_size=6))
    @settings(max_examples=10, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    def test_golden_cpu_sorts_arbitrary_inputs(self, values):
        workload = make_extraction_sort(length=len(values), values=values)
        cpu = build_pipelined_cpu(workload.program)
        cpu.run_golden(drain=True, max_cycles=100_000)
        assert cpu.memory_slice(0, len(values)) == sorted(values)

    @given(
        link=st.sampled_from(
            ["CU-IC", "CU-RF", "CU-AL", "CU-DC", "RF-ALU", "RF-DC", "ALU-CU",
             "ALU-RF", "ALU-DC", "DC-RF"]
        ),
        count=st.integers(min_value=1, max_value=2),
        relaxed=st.booleans(),
    )
    @settings(max_examples=12, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    def test_wire_pipelined_cpu_equivalent_for_any_single_link(self, link, count, relaxed):
        workload = make_extraction_sort(length=5, seed=13)
        cpu = build_pipelined_cpu(workload.program)
        golden = cpu.run_golden()
        result = cpu.run_wire_pipelined(
            configuration=RSConfiguration.only(link, count=count), relaxed=relaxed
        )
        assert n_equivalent(golden.trace, result.trace).equivalent
        assert result.cycles >= golden.cycles
