"""Unit tests for channel traces and τ-filtering."""

from __future__ import annotations

import pytest

from repro.core.tokens import VOID, Token
from repro.core.traces import (
    ChannelTrace,
    SystemTrace,
    interleave_voids,
    trace_from_values,
)


class TestChannelTrace:
    def test_append_and_length(self):
        trace = ChannelTrace("c")
        trace.append(Token(value=1, tag=0))
        trace.append(VOID)
        assert len(trace) == 2
        assert trace.cycles == 2

    def test_append_rejects_raw_values(self):
        trace = ChannelTrace("c")
        with pytest.raises(TypeError):
            trace.append(42)

    def test_filtered_drops_voids(self):
        trace = ChannelTrace("c")
        trace.append(Token(value=1, tag=0))
        trace.append(VOID)
        trace.append(Token(value=2, tag=1))
        assert [t.value for t in trace.filtered()] == [1, 2]

    def test_values_returns_payloads(self):
        trace = trace_from_values("c", ["a", "b", "c"])
        assert trace.values() == ["a", "b", "c"]

    def test_counts(self):
        trace = ChannelTrace("c")
        trace.append(Token(value=1, tag=0))
        trace.append(VOID)
        trace.append(VOID)
        assert trace.valid_count() == 1
        assert trace.void_count() == 2

    def test_throughput(self):
        trace = ChannelTrace("c")
        trace.append(Token(value=1, tag=0))
        trace.append(VOID)
        assert trace.throughput() == pytest.approx(0.5)

    def test_throughput_of_empty_trace_is_zero(self):
        assert ChannelTrace("c").throughput() == 0.0

    def test_tags_consistency_check(self):
        good = trace_from_values("c", [10, 20, 30])
        assert good.tags_are_consistent()
        bad = ChannelTrace("c")
        bad.append(Token(value=10, tag=5))
        assert not bad.tags_are_consistent()

    def test_indexing_and_iteration(self):
        trace = trace_from_values("c", [1, 2])
        assert trace[0].value == 1
        assert [item.value for item in trace] == [1, 2]


class TestInterleaveVoids:
    def test_inserts_void_every_period(self):
        trace = trace_from_values("c", [1, 2, 3, 4])
        stretched = interleave_voids(trace, period=2)
        assert stretched.valid_count() == 4
        assert stretched.void_count() == 2
        assert stretched.values() == [1, 2, 3, 4]

    def test_rejects_non_positive_period(self):
        with pytest.raises(ValueError):
            interleave_voids(trace_from_values("c", [1]), period=0)


class TestSystemTrace:
    def test_record_and_lookup(self):
        trace = SystemTrace(["a", "b"])
        trace.record("a", Token(value=1, tag=0))
        trace.record("b", VOID)
        assert trace["a"].valid_count() == 1
        assert trace["b"].void_count() == 1

    def test_record_cycle(self):
        trace = SystemTrace(["a", "b"])
        trace.record_cycle({"a": Token(value=1, tag=0), "b": VOID})
        assert trace.cycles() == 1

    def test_ensure_channel_creates_missing(self):
        trace = SystemTrace()
        trace.record("new", VOID)
        assert "new" in trace

    def test_mapping_interface(self):
        trace = SystemTrace(["a", "b"])
        assert set(trace) == {"a", "b"}
        assert len(trace) == 2

    def test_min_valid_count(self):
        trace = SystemTrace(["a", "b"])
        trace.record("a", Token(value=1, tag=0))
        trace.record("a", Token(value=2, tag=1))
        trace.record("b", Token(value=1, tag=0))
        assert trace.min_valid_count() == 1

    def test_throughput_is_worst_channel(self):
        trace = SystemTrace(["a", "b"])
        trace.record_cycle({"a": Token(value=1, tag=0), "b": VOID})
        trace.record_cycle({"a": Token(value=2, tag=1), "b": Token(value=1, tag=0)})
        assert trace.throughput() == pytest.approx(0.5)
        assert trace.mean_throughput() == pytest.approx(0.75)

    def test_empty_system_trace(self):
        trace = SystemTrace()
        assert trace.cycles() == 0
        assert trace.min_valid_count() == 0
        assert trace.throughput() == 0.0
