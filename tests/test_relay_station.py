"""Unit tests for relay stations and bounded token queues."""

from __future__ import annotations

import pytest

from repro.core.exceptions import ProtocolError
from repro.core.relay_station import RelayStation, TokenQueue, build_relay_chain
from repro.core.tokens import Token


def token(tag, value=None):
    return Token(value=value if value is not None else tag, tag=tag)


class TestTokenQueue:
    def test_capacity_must_be_positive(self):
        with pytest.raises(ProtocolError):
            TokenQueue("q", capacity=0)

    def test_push_pop_fifo_order(self):
        queue = TokenQueue("q", capacity=2)
        queue.push(token(0))
        queue.push(token(1))
        assert queue.pop().tag == 0
        assert queue.pop().tag == 1

    def test_peek_does_not_remove(self):
        queue = TokenQueue("q")
        queue.push(token(0))
        assert queue.peek().tag == 0
        assert queue.occupancy == 1

    def test_pop_empty_raises(self):
        with pytest.raises(ProtocolError):
            TokenQueue("q").pop()

    def test_peek_empty_raises(self):
        with pytest.raises(ProtocolError):
            TokenQueue("q").peek()

    def test_overflow_raises(self):
        queue = TokenQueue("q", capacity=1)
        queue.push(token(0))
        with pytest.raises(ProtocolError):
            queue.push(token(1))

    def test_push_rejects_non_token(self):
        with pytest.raises(ProtocolError):
            TokenQueue("q").push("not a token")

    def test_stop_uses_latched_occupancy(self):
        queue = TokenQueue("q", capacity=1)
        queue.latch()
        assert not queue.stop()
        queue.push(token(0))
        # stop still reflects the occupancy registered at the last latch
        assert not queue.stop()
        queue.latch()
        assert queue.stop()

    def test_statistics_track_traffic(self):
        queue = TokenQueue("q", capacity=2)
        queue.push(token(0))
        queue.push(token(1))
        queue.pop()
        assert queue.total_pushed == 2
        assert queue.total_popped == 1
        assert queue.max_occupancy == 2

    def test_reset_clears_everything(self):
        queue = TokenQueue("q", capacity=2)
        queue.push(token(0))
        queue.latch()
        queue.reset()
        assert queue.is_empty()
        assert not queue.stop()
        assert queue.total_pushed == 0

    def test_len_and_repr(self):
        queue = TokenQueue("q", capacity=2)
        queue.push(token(0))
        assert len(queue) == 1
        assert "q" in repr(queue)


class TestRelayStation:
    def test_default_capacity_is_two(self):
        assert RelayStation("rs").capacity == 2

    def test_fsm_state_names(self):
        rs = RelayStation("rs")
        assert rs.state == "empty"
        rs.push(token(0))
        assert rs.state == "half"
        rs.push(token(1))
        assert rs.state == "full"

    def test_main_and_aux_registers(self):
        rs = RelayStation("rs")
        rs.push(token(0, "first"))
        rs.push(token(1, "second"))
        assert rs.main_register.value == "first"
        assert rs.aux_register.value == "second"

    def test_aux_register_empty_when_single_item(self):
        rs = RelayStation("rs")
        rs.push(token(0))
        assert rs.aux_register is None

    def test_stop_when_full(self):
        rs = RelayStation("rs")
        rs.push(token(0))
        rs.push(token(1))
        rs.latch()
        assert rs.stop()


class TestBuildRelayChain:
    def test_chain_length(self):
        chain = build_relay_chain("chan", 3)
        assert len(chain) == 3
        assert all(isinstance(rs, RelayStation) for rs in chain)

    def test_chain_names_are_unique(self):
        names = [rs.name for rs in build_relay_chain("chan", 4)]
        assert len(set(names)) == 4

    def test_empty_chain(self):
        assert build_relay_chain("chan", 0) == []
