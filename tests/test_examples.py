"""Smoke tests: every example script runs and prints what it promises.

The examples are part of the public deliverable, so they are executed (with
reduced sizes where they accept arguments) and their output is checked for
the key lines a reader would look for.
"""

from __future__ import annotations

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"


def run_example(name, *args, timeout=300):
    result = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / name), *args],
        capture_output=True,
        text=True,
        timeout=timeout,
    )
    assert result.returncode == 0, result.stderr
    return result.stdout


class TestExampleScripts:
    def test_quickstart(self):
        output = run_example("quickstart.py")
        assert "WP1 (strict wrapper)" in output
        assert "WP2 (oracle wrapper)" in output
        assert "equivalent" in output
        assert "NOT equivalent" not in output

    def test_custom_oracle(self):
        output = run_example("custom_oracle.py")
        assert "WP1 (no oracle)" in output
        assert "full oracle gain" in output
        assert "NOT equivalent" not in output

    def test_topology_report(self):
        output = run_example("topology_report.py")
        assert "Figure 1" in output
        assert "netlist loops (7)" in output
        assert "loop analysis" in output

    def test_reproduce_table1_small(self):
        output = run_example("reproduce_table1.py", "--sort-length", "6")
        assert "Extraction Sort" in output
        assert "Only CU-IC" in output
        assert "Optimal 1" in output

    def test_floorplan_methodology(self):
        output = run_example(
            "floorplan_methodology.py", "--sort-length", "6", "--frequency", "1.2"
        )
        assert "relay stations required per link" in output
        assert "WP2 gain over WP1" in output
