"""Tests of the serving tier: daemon, tenancy, wire formats, chaos.

Everything network-shaped here runs over real loopback sockets against a
:class:`~repro.server.ReproServer` on an ephemeral port; the CLI test at
the bottom goes one step further and drives ``python -m repro serve`` /
``submit --connect`` as separate OS processes, which is the acceptance
shape of the round-trip guarantee (rows arriving over the network are
bit-identical to a direct in-process run).
"""

import json
import os
import signal
import subprocess
import sys

import pytest

from repro.core.config import RSConfiguration
from repro.core.exceptions import PayloadChecksumError, SimulationError
from repro.cpu.machine import build_pipelined_cpu
from repro.cpu.topology import LINK_CU_IC
from repro.cpu.workloads import make_extraction_sort, make_matrix_multiply
from repro.engine import faults
from repro.engine.faults import FaultPlan, FaultSpec
from repro.server import (
    AuthError,
    QuotaError,
    ReproServer,
    ServerClient,
    ServerError,
    Tenant,
    TenantRegistry,
    parse_submission,
    validate_server_env,
)
from repro.server.encoding import (
    encode_frame,
    encode_sse,
    iter_frames,
    iter_sse,
    parse_controls,
)
from repro.server.router import Router
from repro.server.tenancy import (
    MAX_PENDING_ENV_VAR,
    PORT_ENV_VAR,
    PRIORITY_BAND,
    TOKENS_ENV_VAR,
)
from repro.service import EvaluationService


@pytest.fixture(autouse=True)
def _no_leftover_faults(monkeypatch):
    monkeypatch.delenv(faults.FAULTS_ENV_VAR, raising=False)
    yield
    faults.uninstall()


@pytest.fixture()
def server():
    """A started daemon on an ephemeral loopback port (open access)."""
    with ReproServer(port=0) as srv:
        yield srv


def make_client(server, token=None, timeout=120.0):
    host, port = server.address
    return ServerClient(host, port, token=token, timeout=timeout)


SORT_BODY = {
    "spec": {"kind": "workload", "workload": "sort", "length": 6,
             "seed": 2005},
    "wrappers": ["wp1"],
    "configurations": [0, 1],
}


# ---------------------------------------------------------------------------
# Router
# ---------------------------------------------------------------------------


class TestRouter:
    def _table(self):
        router = Router()
        router.add("GET", r"/v1/jobs/(?P<job_set_id>[^/]+)", "fetch", "f")
        router.add("DELETE", r"/v1/jobs/(?P<job_set_id>[^/]+)", "cancel", "c")
        router.add("GET", r"/metrics", "metrics", "m")
        return router

    def test_resolves_named_params(self):
        hit = self._table().resolve("GET", "/v1/jobs/js-7")
        assert hit.route.name == "fetch"
        assert hit.params == {"job_set_id": "js-7"}

    def test_unknown_path_has_no_allow_set(self):
        miss = self._table().resolve("GET", "/nope")
        assert miss.route is None
        assert not miss.method_not_allowed

    def test_wrong_method_collects_allow_set(self):
        miss = self._table().resolve("POST", "/v1/jobs/js-7")
        assert miss.route is None
        assert miss.method_not_allowed
        assert set(miss.allowed) == {"GET", "DELETE"}


# ---------------------------------------------------------------------------
# Wire formats
# ---------------------------------------------------------------------------


class TestSubmissionValidation:
    def test_minimal_workload_body_parses(self):
        sub = parse_submission(SORT_BODY)
        assert sub.kind == "workload"
        assert sub.wrappers == ("wp1",)
        assert sub.configurations == [0, 1]

    @pytest.mark.parametrize(
        "mutate, needle",
        [
            (lambda b: b.update(bogus=1), "bogus"),
            (lambda b: b.update(spec={"kind": "nope"}), "kind"),
            (lambda b: b.update(wrappers=["wp3"]), "wrappers"),
            (lambda b: b.update(configurations=[]), "configurations"),
            (lambda b: b.update(configurations=[-1]), "#0"),
            (lambda b: b.update(configurations=["x"]), "#0"),
            (lambda b: b.update(queue_capacity=0), "queue_capacity"),
            (lambda b: b.update(controls={"on_cycle": 1}), "on_cycle"),
            (lambda b: b.update(controls={"max_cycles": "many"}),
             "max_cycles"),
        ],
    )
    def test_errors_name_the_offending_field(self, mutate, needle):
        body = {**SORT_BODY, "spec": dict(SORT_BODY["spec"])}
        mutate(body)
        with pytest.raises(SimulationError, match=needle):
            parse_submission(body)

    def test_controls_reject_unknown_and_accept_known(self):
        assert parse_controls(None) == {}
        assert parse_controls({"max_cycles": 99, "steady_state": False}) == {
            "max_cycles": 99, "steady_state": False,
        }
        with pytest.raises(SimulationError, match="stop_procss"):
            parse_controls({"stop_procss": "CU"})


class TestStreamEncodings:
    EVENTS = [
        {"event": "row", "index": 0, "label": "All 0", "result": None},
        {"event": "row", "index": 1, "label": "All 1",
         "result": {"cycles": 655}},
        {"event": "end", "job_set_id": "js-1", "delivered": 2},
    ]

    def test_sse_round_trip(self, tmp_path):
        path = tmp_path / "stream.sse"
        path.write_bytes(b"".join(encode_sse(e) for e in self.EVENTS))
        with path.open("rb") as stream:
            assert list(iter_sse(stream)) == self.EVENTS

    def test_frames_round_trip(self, tmp_path):
        path = tmp_path / "stream.bin"
        path.write_bytes(b"".join(encode_frame(e) for e in self.EVENTS))
        with path.open("rb") as stream:
            assert list(iter_frames(stream)) == self.EVENTS

    def test_truncated_frame_raises_eof(self, tmp_path):
        blob = encode_frame(self.EVENTS[0])
        path = tmp_path / "truncated.bin"
        path.write_bytes(blob[: len(blob) - 3])
        with path.open("rb") as stream:
            with pytest.raises(EOFError):
                list(iter_frames(stream))

    def test_corrupted_frame_raises_checksum_error(self, tmp_path):
        path = tmp_path / "corrupt.bin"
        path.write_bytes(encode_frame(self.EVENTS[0], corrupt=True))
        with path.open("rb") as stream:
            with pytest.raises(PayloadChecksumError):
                list(iter_frames(stream))


# ---------------------------------------------------------------------------
# Tenancy: quotas and weighted fair admission
# ---------------------------------------------------------------------------


class TestTenancy:
    def test_open_registry_accepts_anything(self):
        registry = TenantRegistry()
        assert registry.open_access
        assert registry.authenticate(None).name == "anonymous"
        assert registry.authenticate("whatever").name == "anonymous"

    def test_configured_registry_requires_a_known_token(self):
        registry = TenantRegistry([Tenant(name="a", token="s")])
        assert registry.authenticate("s").name == "a"
        with pytest.raises(AuthError):
            registry.authenticate(None)
        with pytest.raises(AuthError):
            registry.authenticate("wrong")

    def test_duplicate_tokens_and_names_are_rejected(self):
        with pytest.raises(SimulationError, match="reuses the token"):
            TenantRegistry([Tenant(name="a", token="s"),
                            Tenant(name="b", token="s")])
        with pytest.raises(SimulationError, match="duplicate tenant name"):
            TenantRegistry([Tenant(name="a", token="s"),
                            Tenant(name="a", token="t")])

    def test_quota_is_all_or_nothing(self):
        tenant = Tenant(name="a", token="s", max_pending=4)
        registry = TenantRegistry([tenant])
        registry.admit(tenant, 3)
        with pytest.raises(QuotaError, match="max_pending=4"):
            registry.admit(tenant, 2)  # 3 + 2 > 4: nothing admitted
        assert registry.snapshot()["a"]["pending"] == 3
        assert registry.snapshot()["a"]["rejected"] == 2
        registry.admit(tenant, 1)  # exactly at the quota is fine

    def test_release_frees_quota(self):
        tenant = Tenant(name="a", token="s", max_pending=2)
        registry = TenantRegistry([tenant])
        registry.admit(tenant, 2)
        with pytest.raises(QuotaError):
            registry.admit(tenant, 1)
        registry.release(tenant, 2)
        registry.admit(tenant, 2)

    def test_weighted_interleaving_within_a_band(self):
        alice = Tenant(name="alice", token="a", weight=2.0)
        bob = Tenant(name="bob", token="b", weight=1.0)
        registry = TenantRegistry([alice, bob])
        jobs = []
        for _ in range(4):  # alternating submission rounds, 2:1 weights
            jobs += [("alice", p) for p in registry.admit(alice, 2)]
            jobs += [("bob", p) for p in registry.admit(bob, 1)]
        drained = [
            name for name, _ in sorted(jobs, key=lambda j: (j[1], j[0]))
        ]
        # Twice the weight never falls behind in any prefix window, and
        # the full backlog drains in exact 2:1 proportion — interleaved,
        # not alice-then-bob.
        for cut in range(1, len(drained) + 1):
            window = drained[:cut]
            assert window.count("alice") >= window.count("bob")
        assert drained.count("alice") == 8 and drained.count("bob") == 4
        assert "bob" in drained[: len(drained) - 1]  # not starved to the end

    def test_idle_tenant_reenters_at_the_virtual_present(self):
        alice = Tenant(name="alice", token="a")
        bob = Tenant(name="bob", token="b")
        registry = TenantRegistry([alice, bob])
        busy = registry.admit(alice, 100)
        # Nothing drained yet: bob enters at the queue head's virtual time,
        # competing with alice's backlog from now — not parked behind all
        # 100 of her jobs.
        assert registry.admit(bob, 1)[0] == busy[0]
        # After 40 of alice's jobs finish, the virtual present has moved:
        # bob's next job lands mid-backlog, never ahead of drained time.
        registry.release(alice, 40)
        registry.release(bob)
        late = registry.admit(bob, 1)[0]
        assert late == busy[40]
        assert busy[0] < late < busy[-1]

    def test_priority_bands_dominate_passes(self):
        fast = Tenant(name="fast", token="f", priority=0)
        slow = Tenant(name="slow", token="s", priority=1)
        registry = TenantRegistry([fast, slow])
        low = registry.admit(slow, 1)
        hi = registry.admit(fast, 1000)
        assert max(hi) < min(low)
        assert min(low) >= PRIORITY_BAND


class TestEnvValidation:
    def test_unset_environment_is_open_access(self, monkeypatch):
        for var in (TOKENS_ENV_VAR, PORT_ENV_VAR, MAX_PENDING_ENV_VAR):
            monkeypatch.delenv(var, raising=False)
        assert validate_server_env() == {
            "tenants": [], "port": None, "max_pending": None,
        }

    def test_valid_tokens_parse_into_tenants(self, monkeypatch):
        monkeypatch.setenv(TOKENS_ENV_VAR, json.dumps([
            {"token": "s", "name": "alice", "priority": 1,
             "max_pending": 8, "weight": 2.0},
        ]))
        tenants = validate_server_env()["tenants"]
        assert tenants == [Tenant(name="alice", token="s", priority=1,
                                  max_pending=8, weight=2.0)]

    @pytest.mark.parametrize(
        "value, needle",
        [
            ("not json", "invalid tenant JSON"),
            ("{}", "JSON list"),
            ('[{"token": "s"}]', "'name'"),
            ('[{"token": "s", "name": "a", "color": 1}]', "color"),
            ('[{"token": "s", "name": "a", "weight": 0}]', "weight"),
            ('[{"token": "s", "name": "a"}, {"token": "s", "name": "b"}]',
             "reuses the token"),
        ],
    )
    def test_bad_tokens_error_names_the_variable(self, monkeypatch, value,
                                                 needle):
        monkeypatch.setenv(TOKENS_ENV_VAR, value)
        with pytest.raises(SimulationError) as err:
            validate_server_env()
        assert TOKENS_ENV_VAR in str(err.value)
        assert needle in str(err.value)

    @pytest.mark.parametrize(
        "var, value",
        [(PORT_ENV_VAR, "eighty"), (PORT_ENV_VAR, "-1"),
         (MAX_PENDING_ENV_VAR, "0"), (MAX_PENDING_ENV_VAR, "lots")],
    )
    def test_bad_integers_error_names_the_variable(self, monkeypatch, var,
                                                   value):
        monkeypatch.delenv(TOKENS_ENV_VAR, raising=False)
        monkeypatch.setenv(var, value)
        with pytest.raises(SimulationError, match=var):
            validate_server_env()


# ---------------------------------------------------------------------------
# Round trips over a real socket
# ---------------------------------------------------------------------------


def direct_rows(length=6, size=2, depths=(0, 1)):
    """The reference: the same mixed sweep run directly in-process."""
    service = EvaluationService()
    try:
        items = []
        stops = {}
        for workload in (
            make_extraction_sort(length=length, seed=2005),
            make_matrix_multiply(size=size, seed=2005),
        ):
            cpu = build_pipelined_cpu(workload.program)
            for relaxed in (False, True):
                layout = service.ensure_layout(cpu.netlist, relaxed=relaxed)
                stops[layout] = cpu.control_unit.name
                items.extend(
                    (layout,
                     RSConfiguration.uniform(depth, exclude=(LINK_CU_IC,)))
                    for depth in depths
                )
        rows = []
        for layout, config in items:
            jobset = service.submit(
                [(layout, config)], stop_process=stops[layout]
            )
            (job,) = jobset.jobs
            job.wait(120)
            rows.append((layout, job.label, job.result.to_dict()))
        return rows
    finally:
        service.close()


class TestRoundTrip:
    def submit_mixed(self, client, depths, length=6, size=2):
        replies = []
        for workload, extra in (
            ("sort", {"length": length}), ("matmul", {"size": size}),
        ):
            replies.append(client.submit({
                "spec": {"kind": "workload", "workload": workload,
                         "seed": 2005, **extra},
                "wrappers": ["wp1", "wp2"],
                "configurations": list(depths),
            }))
        return replies

    def test_64_row_mixed_sweep_is_bit_identical(self, server):
        depths = range(16)  # 2 workloads x 2 wrappers x 16 depths = 64
        client = make_client(server)
        replies = self.submit_mixed(client, depths)
        assert sum(reply["jobs"] for reply in replies) == 64
        streamed = []
        for reply in replies:
            for event in client.stream(reply["job_set_id"]):
                assert event["status"] == "done"
                streamed.append(
                    (event["layout"], event["label"], event["result"])
                )
        assert sorted(streamed) == sorted(direct_rows(depths=depths))

    def test_first_row_streams_before_the_set_completes(self, server):
        client = make_client(server)
        (reply,) = [self.submit_mixed(client, range(8))[0]]
        record = server.record_for(
            server.registry.authenticate(None), reply["job_set_id"]
        )
        stream = client.stream(reply["job_set_id"])
        first = next(stream)
        assert first["event"] == "row"
        # 15 simulations are still pending or running behind this row.
        assert not record.done
        assert len(list(stream)) == reply["jobs"] - 1

    def test_blocking_fetch_returns_rows_in_submission_order(self, server):
        client = make_client(server)
        reply = client.submit(SORT_BODY)
        fetched = client.fetch(reply["job_set_id"])
        assert fetched["done"] is True
        assert [row["index"] for row in fetched["rows"]] == [0, 1]
        assert [row["label"] for row in fetched["rows"]] == [
            "All 0 (no CU-IC)", "All 1 (no CU-IC)",
        ]

    def test_binary_frames_equal_sse(self, server):
        client = make_client(server)
        reply = client.submit(SORT_BODY)
        sse = client.rows(reply["job_set_id"])
        binary = client.rows(reply["job_set_id"], binary=True)
        assert binary == sse

    def test_layout_digest_readdresses_the_same_netlist(self, server):
        client = make_client(server)
        first = client.submit(SORT_BODY)
        client.fetch(first["job_set_id"])
        (layout,) = first["layouts"]
        digest = layout.split("-")[1]
        again = client.submit({
            "spec": {"kind": "layout", "layout": digest},
            "wrappers": ["wp1"],
            "configurations": [0, 1],
        })
        rows = client.rows(again["job_set_id"])
        assert all(row["cached"] for row in rows)
        assert [row["result"] for row in rows] == [
            row["result"] for row in client.fetch(first["job_set_id"])["rows"]
        ]

    def test_topology_spec_runs_the_generator_zoo(self, server):
        client = make_client(server)
        reply = client.submit({
            "spec": {"kind": "topology", "topology": "ring",
                     "params": {"stages": 3}},
            "wrappers": ["wp1"],
            "configurations": [0, 1],
            "controls": {"horizon": 500},
        })
        rows = client.rows(reply["job_set_id"])
        assert len(rows) == 2
        assert all(row["status"] == "done" for row in rows)
        assert rows[0]["result"]["cycles"] > 0

    def test_http_errors_are_json_with_status(self, server):
        client = make_client(server)
        with pytest.raises(ServerError) as err:
            client.fetch("js-does-not-exist")
        assert err.value.status == 404
        with pytest.raises(ServerError) as err:
            client.submit({"spec": {"kind": "nope"}, "configurations": [0]})
        assert err.value.status == 400
        assert "kind" in str(err.value)

    def test_metrics_and_status_expose_the_service(self, server):
        client = make_client(server)
        reply = client.submit(SORT_BODY)
        client.fetch(reply["job_set_id"])
        client.submit(SORT_BODY)  # warm-cache re-submission
        metrics = client.metrics()
        for needle in (
            "repro_service_queue_depth",
            "repro_server_throughput_rows_per_second",
            "repro_service_cache_hit_rate",
            "repro_service_dedup_rate",
            'repro_tenant_rows_served_total{tenant="anonymous"}',
            'repro_server_http_requests_total{handler="submit"} 2',
        ):
            assert needle in metrics, needle
        hit_rate = [
            line for line in metrics.splitlines()
            if line.startswith("repro_service_cache_hit_rate")
        ][0]
        assert float(hit_rate.split()[-1]) == 0.5
        status = client.status()
        assert "repro.server status" in status
        assert "anonymous" in status


# ---------------------------------------------------------------------------
# Multi-tenant behaviour over the socket
# ---------------------------------------------------------------------------

ALICE = Tenant(name="alice", token="alice-secret", max_pending=4, weight=2.0)
BOB = Tenant(name="bob", token="bob-secret", max_pending=2)


@pytest.fixture()
def parked_server():
    """A daemon whose service never drains (scheduler not started): jobs
    stay pending, so quota and cancellation behaviour is deterministic."""
    service = EvaluationService(autostart=False)
    server = ReproServer(port=0, service=service, tenants=[ALICE, BOB])
    server.start()
    try:
        yield server
    finally:
        server.close()


class TestMultiTenantSocket:
    def test_missing_or_unknown_token_is_401(self, parked_server):
        with pytest.raises(ServerError) as err:
            make_client(parked_server).submit(SORT_BODY)
        assert err.value.status == 401
        with pytest.raises(ServerError) as err:
            make_client(parked_server, token="wrong").submit(SORT_BODY)
        assert err.value.status == 401

    def test_quota_rejects_with_429_and_cancel_releases(self, parked_server):
        alice = make_client(parked_server, token=ALICE.token)
        bob = make_client(parked_server, token=BOB.token)
        first = alice.submit(SORT_BODY)   # 2 pending of 4
        alice.submit(SORT_BODY)           # 4 pending of 4
        with pytest.raises(ServerError) as err:
            alice.submit(SORT_BODY)       # would be 6 of 4
        assert err.value.status == 429
        assert "max_pending=4" in str(err.value)
        # Alice's quota is hers alone: bob still fits his own.
        bob.submit(SORT_BODY)
        # DELETE cancels the pending jobs and frees the quota slots.
        reply = alice.cancel(first["job_set_id"])
        assert reply["cancelled"] == 2
        alice.submit(SORT_BODY)
        snapshot = parked_server.registry.snapshot()
        assert snapshot["alice"]["pending"] == 4
        assert snapshot["alice"]["rejected"] == 2
        assert snapshot["bob"]["pending"] == 2

    def test_tenants_cannot_see_each_other(self, parked_server):
        alice = make_client(parked_server, token=ALICE.token)
        bob = make_client(parked_server, token=BOB.token)
        reply = alice.submit(SORT_BODY)
        with pytest.raises(ServerError) as err:
            bob.fetch(reply["job_set_id"], timeout=1)
        assert err.value.status == 404
        with pytest.raises(ServerError) as err:
            bob.cancel(reply["job_set_id"])
        assert err.value.status == 404

    def test_admission_prices_jobs_fairly_into_the_queue(self, parked_server):
        alice = make_client(parked_server, token=ALICE.token)
        bob = make_client(parked_server, token=BOB.token)
        a = alice.submit(SORT_BODY)
        b = bob.submit(SORT_BODY)
        record_a = parked_server.record_for(ALICE, a["job_set_id"])
        record_b = parked_server.record_for(BOB, b["job_set_id"])
        pa = [float(job.priority) for job in record_a.jobset.jobs]
        pb = [float(job.priority) for job in record_b.jobset.jobs]
        # Same band, stride-spaced: alice (weight 2) advances half as fast.
        assert pa[1] - pa[0] == pytest.approx(0.5)
        assert pb[1] - pb[0] == pytest.approx(1.0)
        # Bob entered at the virtual floor (alice's backlog head), so the
        # two backlogs interleave instead of draining alice-then-bob.
        drained = sorted(
            [("alice", p, i) for i, p in enumerate(pa)]
            + [("bob", p, i) for i, p in enumerate(pb)],
            key=lambda entry: (entry[1], entry[0]),
        )
        assert [name for name, _, _ in drained] == [
            "alice", "bob", "alice", "bob",
        ]
        assert pb[0] == pa[0]


# ---------------------------------------------------------------------------
# Graceful shutdown
# ---------------------------------------------------------------------------


class TestDrain:
    def test_draining_daemon_rejects_submissions_with_503(self):
        service = EvaluationService(autostart=False)
        with ReproServer(port=0, service=service) as server:
            client = make_client(server)
            reply = client.submit(SORT_BODY)
            server.begin_drain()
            assert not client.healthy()
            with pytest.raises(ServerError) as err:
                client.submit(SORT_BODY)
            assert err.value.status == 503
            # Close cancels the parked jobs; their terminal events land in
            # the log, so a blocking fetch still completes the job set.
            server.close()
            record = server.record_for(
                server.registry.authenticate(None), reply["job_set_id"]
            )
            assert record.done
            statuses = [event["status"] for event in record.events]
            assert statuses == ["cancelled", "cancelled"]

    def test_drain_lets_streams_finish(self, server):
        client = make_client(server)
        reply = client.submit(SORT_BODY)
        server.begin_drain()
        rows = client.rows(reply["job_set_id"])
        assert [row["status"] for row in rows] == ["done", "done"]


# ---------------------------------------------------------------------------
# Chaos: snapped streams and daemon restarts
# ---------------------------------------------------------------------------


class TestChaos:
    def test_client_disconnect_mid_stream_replays_on_reconnect(self, server):
        # The daemon snaps the connection just before streaming row 1 of
        # the first attempt; the client reconnects with ?from=<cursor> and
        # must deliver every row exactly once.
        faults.install(FaultPlan.of(
            FaultSpec(kind="http-disconnect", shard=1, attempt=0),
        ))
        client = make_client(server)
        reply = client.submit({**SORT_BODY, "configurations": [0, 1, 2]})
        record = server.record_for(
            server.registry.authenticate(None), reply["job_set_id"]
        )
        rows = client.rows(reply["job_set_id"])
        assert [row["index"] for row in rows] == [0, 1, 2]
        assert [row["status"] for row in rows] == ["done"] * 3
        assert next(record.stream_attempts) == 2  # snapped once, resumed once

    def test_binary_stream_survives_the_same_fault(self, server):
        faults.install(FaultPlan.of(
            FaultSpec(kind="http-disconnect", shard=1, attempt=0),
        ))
        client = make_client(server)
        reply = client.submit(SORT_BODY)
        rows = client.rows(reply["job_set_id"], binary=True)
        assert [row["index"] for row in rows] == [0, 1]

    def test_daemon_restart_replays_from_the_warm_cache(self, tmp_path):
        cache_dir = tmp_path / "cache"
        body = {**SORT_BODY, "configurations": [0, 1, 2, 3]}
        with ReproServer(port=0, cache_dir=str(cache_dir)) as first:
            client = make_client(first)
            before = client.fetch(client.submit(body)["job_set_id"])["rows"]
            assert not any(row["cached"] for row in before)
        # The daemon died; a replacement on the same cache directory
        # answers the re-submitted job set from disk, bit-identically.
        with ReproServer(port=0, cache_dir=str(cache_dir)) as second:
            client = make_client(second)
            after = client.fetch(client.submit(body)["job_set_id"])["rows"]
        assert all(row["cached"] for row in after)
        assert [row["result"] for row in after] == [
            row["result"] for row in before
        ]


# ---------------------------------------------------------------------------
# The CLI: serve + submit --connect as separate OS processes
# ---------------------------------------------------------------------------


SRC = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src"
)


def _spawn_daemon(tmp_path, env=None):
    full_env = {**os.environ, "PYTHONPATH": SRC, **(env or {})}
    process = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--cache-dir",
         str(tmp_path / "cache")],
        stderr=subprocess.PIPE,
        text=True,
        env=full_env,
    )
    line = process.stderr.readline()
    assert "listening on" in line, line
    address = line.split("listening on ")[1].split()[0]
    return process, address


class TestServeCli:
    def test_submit_connect_round_trips_and_sigterm_drains(self, tmp_path):
        process, address = _spawn_daemon(tmp_path)
        try:
            result = subprocess.run(
                [sys.executable, "-m", "repro", "submit",
                 "--connect", address, "--workloads", "sort",
                 "--sort-length", "6", "--depths", "0,1"],
                capture_output=True,
                text=True,
                timeout=120,
                env={**os.environ, "PYTHONPATH": SRC},
            )
            assert result.returncode == 0, result.stderr
            assert "4 jobs streamed" in result.stdout
            assert "cycles=" in result.stderr
        finally:
            process.send_signal(signal.SIGTERM)
            try:
                process.wait(timeout=30)
            finally:
                if process.poll() is None:
                    process.kill()
        assert process.returncode == 0
        remainder = process.stderr.read()
        assert "draining" in remainder
        assert "stopped" in remainder

    def test_serve_rejects_a_malformed_environment(self, tmp_path):
        result = subprocess.run(
            [sys.executable, "-m", "repro", "serve"],
            capture_output=True,
            text=True,
            timeout=60,
            env={**os.environ, "PYTHONPATH": SRC,
                 TOKENS_ENV_VAR: "not json"},
        )
        assert result.returncode == 2
        assert TOKENS_ENV_VAR in result.stderr
