"""The topology-general engine: generator zoo, graph workloads, end-to-end.

Three claims are pinned here (ISSUE 9 / DESIGN.md §10):

* every generated topology — ring, DAG, mesh, torus, marked graph, seeded
  random — runs bit-identically under every kernel, and steady-state
  extrapolation is exact on non-chain (cyclic, multi-predecessor) shapes;
* the graph-algorithm workloads (BFS, PageRank) mapped onto LID PE rings
  compute exactly what their pure-Python references compute, for any
  relay-station pipelining of the ring, under scalar and lockstep kernels;
* generated netlists flow end to end through the evaluation stack: batch
  runner, sharded pools, evaluation service, static bounds, optimiser, CLI.
"""

from __future__ import annotations

import pickle

import pytest

from repro.core import (
    DeadlockError,
    NetlistError,
    RSConfiguration,
    SearchSpace,
    greedy_search,
    run_lid,
)
from repro.core.static_analysis import graph_metrics, throughput_bound
from repro.engine import BatchRunner
from repro.engine.batch import MultiNetlistRunner
from repro.topology import (
    TOPOLOGY_KINDS,
    chain_topology,
    dag_topology,
    make_topology,
    marked_graph_topology,
    mesh_topology,
    random_topology,
    ring_topology,
)
from repro.workloads import (
    bfs_reference,
    make_bfs_workload,
    make_pagerank_workload,
    pagerank_reference,
)

ALL_KERNELS = ("reference", "fast", "compiled")

#: Small-instance parameters exercising every generator kind.
SMALL = {
    "chain": {"stages": 3, "source_limit": 12},
    "ring": {"stages": 4, "rs_total": 2},
    "dag": {"width": 2, "depth": 2, "source_limit": 12},
    "mesh": {"rows": 2, "cols": 3, "source_limit": 12},
    "torus": {"rows": 2, "cols": 2},
    "marked": {"loop_lengths": (2, 3)},
    "random": {"seed": 11, "n_processes": 5},
}


def _controls(topology, horizon=300):
    """Run keywords fitting the shape: stop at the source limit or a horizon."""
    if topology.stop_process is not None:
        return {"stop_process": topology.stop_process, "max_cycles": 100_000}
    return {"horizon": horizon, "max_cycles": 100_000}


def _identical(a, b):
    assert a.cycles == b.cycles
    assert a.firings == b.firings
    assert a.halted == b.halted
    assert a.max_queue_occupancy == b.max_queue_occupancy
    for name in a.trace:
        assert list(a.trace[name].items) == list(b.trace[name].items), name


# ---------------------------------------------------------------------------
# Generators
# ---------------------------------------------------------------------------

class TestGenerators:
    @pytest.mark.parametrize("kind", sorted(TOPOLOGY_KINDS))
    def test_every_kind_builds_and_pickles(self, kind):
        topology = make_topology(kind, **SMALL[kind])
        assert topology.info.kind == kind
        assert topology.netlist.process_names()
        # Spawn pools / the service / remote agents all ship netlists by
        # pickle; every generated netlist must survive the trip.
        clone = pickle.loads(pickle.dumps(topology.netlist))
        assert clone.process_names() == topology.netlist.process_names()
        assert float(topology.info.loop_bound) > 0.0
        text = topology.describe()
        assert "adjacency:" in text and topology.info.name in text

    def test_unknown_kind_raises(self):
        with pytest.raises(NetlistError):
            make_topology("moebius")

    def test_chain_metrics(self):
        topology = chain_topology(stages=4)
        metrics = topology.info.metrics
        assert metrics.is_dag
        assert metrics.n_loops == 0
        assert metrics.longest_path == 5  # src -> s1..s4 -> sink
        assert metrics.sources == ("src",) and metrics.sinks == ("sink",)

    def test_ring_loop_bound_is_m_over_m_plus_n(self):
        topology = ring_topology(stages=4, rs_total=3)
        assert topology.info.loop_bound == pytest.approx(4 / 7)
        assert topology.info.metrics.scc_sizes[0] == 4

    def test_marked_graph_bound_is_tightest_loop(self):
        topology = marked_graph_topology(loop_lengths=(2, 5), rs_per_loop=(1, 0))
        # The 2-channel loop carries 2 tokens over 2+1 stations: 2/3; the
        # unpipelined 5-channel loop stays at 5/5 = 1.  Tightest loop wins.
        bound = float(topology.info.loop_bound)
        assert bound == pytest.approx(min(2 / 3, 1.0))

    def test_mesh_and_torus_shapes(self):
        mesh = mesh_topology(rows=2, cols=2)
        assert mesh.info.metrics.is_dag
        torus = mesh_topology(rows=2, cols=2, torus=True)
        assert not torus.info.metrics.is_dag
        assert torus.info.metrics.scc_sizes[0] == 4

    def test_random_is_deterministic_per_seed(self):
        a = random_topology(seed=5)
        b = random_topology(seed=5)
        assert pickle.dumps(a.netlist) == pickle.dumps(b.netlist)
        assert a.rs_counts == b.rs_counts
        c = random_topology(seed=6)
        assert pickle.dumps(c.netlist) != pickle.dumps(a.netlist)

    def test_dag_fan_out_and_join(self):
        topology = dag_topology(width=3, depth=1)
        netlist = topology.netlist
        split_outs = netlist.output_channels("split")
        # True port fan-out: one output port drives all branch heads.
        assert sum(len(chans) for chans in split_outs.values()) == 3
        assert len(netlist.input_channels("join")) == 3


# ---------------------------------------------------------------------------
# Netlist description (adjacency + loops)
# ---------------------------------------------------------------------------

class TestDescribe:
    def test_adjacency_and_loops_render(self):
        topology = ring_topology(stages=3)
        text = topology.netlist.describe()
        assert "adjacency:" in text
        assert "stage0 -> stage1.in" in text
        assert "loops (1):" in text
        [loop] = topology.netlist.simple_loops()
        assert " -> ".join([*loop, loop[0]]) in text

    def test_acyclic_says_so(self):
        text = chain_topology(stages=2).netlist.describe()
        assert "loops: none (acyclic)" in text
        assert "[source]" in text
        assert "(no outputs)" in text

    def test_dense_loop_sets_are_elided(self):
        netlist = mesh_topology(rows=3, cols=3, torus=True).netlist
        loops = netlist.simple_loops()
        assert len(loops) > netlist.DESCRIBE_LOOP_LIMIT
        text = netlist.describe()
        shown = text.count(" -> n")  # loop lines render process hops
        assert f"... and {len(loops) - netlist.DESCRIBE_LOOP_LIMIT} more" in text


# ---------------------------------------------------------------------------
# Kernel equivalence and steady state on generated topologies
# ---------------------------------------------------------------------------

class TestTopologyKernelEquivalence:
    @pytest.mark.parametrize("kind", sorted(TOPOLOGY_KINDS))
    @pytest.mark.parametrize("relaxed", [False, True])
    def test_all_kernels_agree(self, kind, relaxed):
        topology = make_topology(kind, **SMALL[kind])
        reference, *optimised = [
            run_lid(
                topology.netlist, rs_counts=topology.rs_counts,
                relaxed=relaxed, kernel=kernel, **_controls(topology),
            )
            for kernel in ALL_KERNELS
        ]
        for result in optimised:
            _identical(reference, result)

    @pytest.mark.parametrize("kind", sorted(TOPOLOGY_KINDS))
    def test_lockstep_matches_fast_over_rs_sweep(self, kind):
        topology = make_topology(kind, **SMALL[kind])
        rows = [
            {name: count + extra for name, count in topology.rs_counts.items()}
            for extra in range(3)
        ]
        outcomes = {}
        for kernel in ("fast", "lockstep"):
            runner = BatchRunner(topology.netlist, kernel=kernel)
            results = runner.run_many(rows, on_error="zero", **_controls(topology))
            outcomes[kernel] = [
                (r.failed, r.error, r.cycles, r.firings) for r in results
            ]
        assert outcomes["fast"] == outcomes["lockstep"]

    @pytest.mark.parametrize("kind", ["ring", "torus", "marked"])
    @pytest.mark.parametrize("kernel", ["fast", "compiled"])
    def test_steady_state_exact_on_non_chain_topologies(self, kind, kernel):
        """Acceptance: extrapolated long-horizon runs are bit-identical."""
        topology = make_topology(kind, **SMALL[kind])
        full, extrapolated = [
            run_lid(
                topology.netlist, rs_counts=topology.rs_counts, kernel=kernel,
                record_trace=False, horizon=20_000, max_cycles=10**9,
                steady_state=steady,
            )
            for steady in (False, True)
        ]
        assert extrapolated.extrapolated, "steady-state never engaged"
        assert extrapolated.period is not None
        assert full.cycles == extrapolated.cycles == 20_000
        assert full.firings == extrapolated.firings
        assert full.max_queue_occupancy == extrapolated.max_queue_occupancy


class TestDeadlockHints:
    def test_cyclic_deadlock_names_loop_closing_channels(self):
        # A strict wrapper around a self-feeding process with a depth-1 FIFO
        # wedges immediately; the report should point at the cycle.
        from repro.core import Channel, FunctionProcess, Netlist

        netlist = Netlist(
            [
                FunctionProcess(
                    name="p0", inputs=("i0",), outputs=("o0",),
                    transition=lambda state, inputs: (state, {"o0": 0}),
                )
            ],
            [
                Channel(
                    name="c0", source="p0", source_port="o0",
                    dest="p0", dest_port="i0", initial=0,
                )
            ],
        )
        with pytest.raises(DeadlockError) as excinfo:
            run_lid(
                netlist, queue_capacity=1, target_firings={"p0": 25},
                max_cycles=4_000, deadlock_limit=100,
            )
        assert "cycle-closing channels to inspect: c0" in str(excinfo.value)

    def test_acyclic_stall_has_no_cycle_hint(self):
        topology = chain_topology(stages=2, source_limit=5)
        with pytest.raises(DeadlockError) as excinfo:
            run_lid(
                topology.netlist, rs_counts=topology.rs_counts,
                target_firings={"sink": 1_000},
                max_cycles=50_000, deadlock_limit=100,
            )
        assert "cycle-closing" not in str(excinfo.value)


# ---------------------------------------------------------------------------
# Graph workloads
# ---------------------------------------------------------------------------

#: Directed test graph: two lobes joined by a bridge plus a cycle back.
EDGES = [
    (0, 1), (0, 2), (1, 3), (2, 3), (3, 4), (4, 5), (5, 6), (6, 3), (2, 6),
]


class TestBfsWorkload:
    @pytest.mark.parametrize("n_pe", [1, 2, 3])
    @pytest.mark.parametrize("rs_per_hop", [0, 2])
    def test_matches_reference(self, n_pe, rs_per_hop):
        workload = make_bfs_workload(EDGES, root=0, n_pe=n_pe, rs_per_hop=rs_per_hop)
        run_lid(
            workload.netlist, rs_counts=workload.rs_counts,
            horizon=workload.max_cycles_hint, max_cycles=10**9,
        )
        assert workload.gather() == bfs_reference(EDGES, root=0)

    @pytest.mark.parametrize("kernel", ALL_KERNELS)
    def test_kernels_agree_and_values_survive_extrapolation(self, kernel):
        workload = make_bfs_workload(EDGES, root=0, n_pe=2)
        result = run_lid(
            workload.netlist, rs_counts=workload.rs_counts, kernel=kernel,
            record_trace=False, horizon=50_000, max_cycles=10**9,
            steady_state=True,
        )
        # BfsPe declares schedule_complete: detection runs under the
        # *certified* plan and extrapolation is value-exact, so the gathered
        # answer survives the analytic skip.
        if kernel != "reference":
            assert result.extrapolated
        assert workload.gather() == bfs_reference(EDGES, root=0)

    def test_lockstep_fallback_parity(self):
        # Data-dependent quiescence => no done_threshold => the lockstep
        # batch falls back to the scalar kernel per item, with equal results.
        workload = make_bfs_workload(EDGES, root=0, n_pe=2)
        rows = [{name: d for name in workload.rs_counts} for d in range(3)]
        by_kernel = {}
        for kernel in ("fast", "lockstep"):
            results = BatchRunner(workload.netlist, kernel=kernel).run_many(
                rows, horizon=2_000, max_cycles=10**9,
            )
            by_kernel[kernel] = [(r.cycles, r.firings) for r in results]
        assert by_kernel["fast"] == by_kernel["lockstep"]


class TestPageRankWorkload:
    @pytest.mark.parametrize("n_pe", [1, 2, 4])
    @pytest.mark.parametrize("rs_per_hop", [0, 3])
    def test_matches_reference(self, n_pe, rs_per_hop):
        workload = make_pagerank_workload(
            EDGES, n_pe=n_pe, n_rounds=6, rs_per_hop=rs_per_hop
        )
        run_lid(
            workload.netlist, rs_counts=workload.rs_counts,
            stop_process=workload.stop_process,
            max_cycles=workload.max_cycles_hint,
        )
        assert workload.gather() == pagerank_reference(EDGES, n_rounds=6)

    def test_mass_is_conserved_approximately(self):
        reference = pagerank_reference(EDGES, n_rounds=8)
        total = sum(reference.values())
        n = len(reference)
        # Integer floor division only ever loses mass, never creates it.
        assert n * 10**6 * 0.97 < total <= n * 10**6

    @pytest.mark.parametrize("relaxed", [False, True])
    def test_kernels_agree(self, relaxed):
        workload = make_pagerank_workload(EDGES, n_pe=3, n_rounds=5)
        reference, *optimised = [
            run_lid(
                workload.netlist, rs_counts=workload.rs_counts,
                relaxed=relaxed, kernel=kernel,
                stop_process=workload.stop_process,
                max_cycles=workload.max_cycles_hint,
            )
            for kernel in ALL_KERNELS
        ]
        for result in optimised:
            _identical(reference, result)

    def test_lockstep_eligible_and_identical(self):
        # done_threshold == n_rounds * n_pe makes the ring a pure
        # firing-count workload: the SoA kernel sweeps it vectorially.
        workload = make_pagerank_workload(EDGES, n_pe=2, n_rounds=4)
        pe = workload.netlist.process("pe0")
        assert pe.done_threshold() == 8
        rows = [{name: d for name in workload.rs_counts} for d in range(4)]
        by_kernel = {}
        for kernel in ("fast", "lockstep"):
            results = BatchRunner(workload.netlist, kernel=kernel).run_many(
                rows, stop_process=workload.stop_process,
                max_cycles=workload.max_cycles_hint + 200,
            )
            by_kernel[kernel] = [(r.cycles, r.firings, r.halted) for r in results]
        assert by_kernel["fast"] == by_kernel["lockstep"]
        # Deeper ring pipelining must slow the ring monotonically.
        cycle_counts = [row[0] for row in by_kernel["fast"]]
        assert cycle_counts == sorted(cycle_counts)
        assert len(set(cycle_counts)) == len(cycle_counts)


# ---------------------------------------------------------------------------
# End-to-end: batch, service, bounds, optimiser, sweep, CLI
# ---------------------------------------------------------------------------

class TestEndToEnd:
    def test_sharded_batch_matches_serial_on_generated_mesh(self):
        topology = mesh_topology(rows=2, cols=3, source_limit=20)
        rows = [
            {name: extra for name in topology.rs_counts} for extra in range(4)
        ]
        runner = BatchRunner(topology.netlist)
        kwargs = dict(stop_process=topology.stop_process, max_cycles=100_000)
        serial = runner.run_many(rows, workers=1, **kwargs)
        sharded = runner.run_many(rows, workers=2, shards=4, **kwargs)
        assert [(r.cycles, r.firings) for r in serial] == [
            (r.cycles, r.firings) for r in sharded
        ]

    def test_static_bound_is_respected_by_simulation(self):
        topology = ring_topology(stages=5, rs_total=0)
        for extra in range(3):
            rs = {name: extra for name in topology.rs_counts}
            bound = throughput_bound(topology.netlist, rs_counts=rs).bound
            result = run_lid(
                topology.netlist, rs_counts=rs, record_trace=False,
                horizon=50_000, max_cycles=10**9, steady_state=True,
            )
            rate = result.firings[topology.probe_process] / result.cycles
            # Finite horizons round the last partial period up, so allow a
            # hair above the asymptotic bound; the ring sustains it exactly.
            assert rate <= float(bound) + 1e-3
            assert rate == pytest.approx(float(bound), abs=1e-3)

    def test_optimizer_runs_on_generated_topology(self):
        topology = marked_graph_topology(loop_lengths=(2, 4), rs_per_loop=0)
        netlist = topology.netlist
        objective = BatchRunner(netlist).objective(
            horizon=600, max_cycles=10**9,
        )
        space = SearchSpace.bounded(netlist.link_names(), maximum=1)
        outcome = greedy_search(space, objective)
        assert outcome.score > 0.0
        # Adding relay stations to a marked graph can only cut throughput;
        # greedy search must keep the all-zero assignment.
        assert all(v == 0 for v in outcome.assignment.values())

    def test_service_sweep_caches_and_matches_local(self, tmp_path):
        from repro.experiments import topology_sweep
        from repro.service import EvaluationService, ResultCache

        topology = ring_topology(stages=4, rs_total=1)
        local = topology_sweep(topology=topology, depths=(0, 1), horizon=400)

        def run_service():
            service = EvaluationService(
                cache=ResultCache(cache_dir=str(tmp_path))
            )
            try:
                sweep = topology_sweep(
                    topology=topology, depths=(0, 1), horizon=400,
                    service=service,
                )
                return sweep, service.stats()
            finally:
                service.close()

        first, stats1 = run_service()
        second, stats2 = run_service()
        for sweep in (first, second):
            assert [
                (p.wp1_throughput, p.wp2_throughput) for p in sweep.points
            ] == [(p.wp1_throughput, p.wp2_throughput) for p in local.points]
        assert stats2["cache"]["hits"] == stats2["submitted"]

    def test_graph_workloads_ride_the_multi_netlist_runner(self):
        bfs = make_bfs_workload(EDGES, root=0, n_pe=2)
        pagerank = make_pagerank_workload(EDGES, n_pe=2, n_rounds=4)
        multi = MultiNetlistRunner(
            {
                "bfs": BatchRunner(bfs.netlist),
                "pagerank": BatchRunner(pagerank.netlist),
            }
        )
        items = [
            ("bfs", bfs.rs_counts),
            ("pagerank", pagerank.rs_counts),
            ("pagerank", {name: 2 for name in pagerank.rs_counts}),
        ]
        results = multi.run_many(
            items, workers=2,
            target_firings={"pe0": pagerank.netlist.process("pe0").done_threshold()},
            max_cycles=10**9,
        )
        assert all(not r.failed for r in results)
        assert results[1].cycles < results[2].cycles


class TestCli:
    @pytest.mark.parametrize(
        "argv",
        [
            ["topology", "generate", "dag", "--param", "width=2"],
            ["topology", "describe", "marked", "--param", "loop_lengths=2,3"],
            [
                "topology", "sweep", "ring", "--param", "stages=4",
                "--depths", "0,1", "--horizon", "400",
            ],
        ],
    )
    def test_topology_commands_run(self, argv, capsys):
        from repro.__main__ import main

        assert main(argv) == 0
        out = capsys.readouterr().out
        assert out.strip()

    def test_describe_reports_eligibility(self, capsys):
        from repro.__main__ import main

        assert main(["topology", "describe", "torus"]) == 0
        out = capsys.readouterr().out
        assert "eligibility:" in out
        assert "lockstep kernel: eligible" in out
        assert "steady-state detection: plain" in out

    def test_bad_param_is_a_usage_error(self):
        from repro.__main__ import main

        with pytest.raises(SystemExit):
            main(["topology", "generate", "ring", "--param", "stages"])
