"""Setuptools shim.

Kept so the package can be installed in environments without the ``wheel``
package (offline machines where PEP 517 editable installs are unavailable):
``python setup.py develop`` or ``pip install -e . --no-build-isolation``.
All metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
