"""Workload zoo: algorithm workloads mapped onto latency-insensitive shells.

The CPU case study (:mod:`repro.cpu.workloads`) exercises one pipelined
processor; this package holds workloads whose *netlist shape itself* is the
experiment.  The first family is graph analytics in the partitioned
processing-element style of FPGA graph frameworks: vertices are sharded
over PEs, PEs sit on a message ring of latency-insensitive channels, and
relay stations pipeline the ring without changing any computed answer.
"""

from .graph import (
    GraphWorkload,
    bfs_reference,
    make_bfs_workload,
    make_pagerank_workload,
    pagerank_reference,
)

__all__ = [
    "GraphWorkload",
    "make_bfs_workload",
    "make_pagerank_workload",
    "bfs_reference",
    "pagerank_reference",
]
