"""Graph-algorithm workloads on latency-insensitive processing elements.

Vertices are sharded round-robin over ``n_pe`` processing elements; the PEs
form a unidirectional message ring of ordinary LID channels, so relay
stations can pipeline the ring arbitrarily and — by the latency-insensitive
equivalence argument — every computed answer stays bit-identical while only
the cycle count changes.  Two algorithm styles are provided:

* **BFS** (:func:`make_bfs_workload`) — label-correcting breadth-first
  levels.  Messages ``(dest_pe, vertex, level)`` hop around the ring; a PE
  delivers what it owns (updating a level when the new one is smaller and
  re-expanding), forwards the rest, and quiesces when no messages remain
  in flight.  Message-driven and data-dependent: the shape runs under any
  scalar kernel and is the zoo's fallback-parity exercise.

* **PageRank** (:func:`make_pagerank_workload`) — synchronous power
  iterations carried by one contribution bundle per PE circulating the
  full ring.  A PE that receives its own bundle back has necessarily seen
  every other PE's bundle, so the round closes without any global barrier.
  All arithmetic is integer (scaled masses, floor division), making the
  result exactly reproducible by :func:`pagerank_reference`.  The done
  condition is a pure function of the firing count (``n_rounds`` times
  around the ring), so the workload declares ``done_threshold`` and is
  **lockstep-eligible** — the SoA kernel can sweep relay-station
  configurations of a PageRank ring vectorially.

Both builders return a :class:`GraphWorkload`; after a local (in-process)
run, :meth:`GraphWorkload.gather` merges the per-PE states back into one
answer for comparison against the pure references.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Any, Dict, Hashable, Iterable, List, Mapping, Optional, Tuple

from ..core.channel import Channel
from ..core.exceptions import NetlistError
from ..core.netlist import Netlist
from ..core.process import Process

Vertex = Hashable
Edge = Tuple[Vertex, Vertex]

#: PageRank damping as an integer fraction (85/100) and the default mass scale.
DAMPING_NUM = 85
DAMPING_DEN = 100
DEFAULT_SCALE = 10**6

#: Bundle origin marking an idle (post-convergence) PageRank token.
_IDLE = -1


def _adjacency(edges: Iterable[Edge]) -> Dict[Vertex, List[Vertex]]:
    """Directed adjacency over the sorted vertex universe of *edges*."""
    adj: Dict[Vertex, List[Vertex]] = {}
    for u, v in edges:
        adj.setdefault(u, []).append(v)
        adj.setdefault(v, [])
    return {v: sorted(adj[v]) for v in sorted(adj)}


def _partition(vertices: List[Vertex], n_pe: int) -> Dict[Vertex, int]:
    """Round-robin vertex → PE assignment over the sorted vertex list."""
    return {v: index % n_pe for index, v in enumerate(vertices)}


# ---------------------------------------------------------------------------
# BFS processing element
# ---------------------------------------------------------------------------

class BfsPe(Process):
    """One BFS shard: owns a vertex subset, corrects levels, routes the rest.

    Each firing consumes one message bundle from the ring predecessor and
    emits one to the successor.  Locally addressed messages are applied with
    label correction (smaller level wins, re-expanding on improvement);
    foreign messages are forwarded unchanged.  The PE never reports done —
    quiescence shows up as empty bundles circulating, which the steady-state
    detector recognises as a period-1 recurrence.

    The levels dict *is* the answer, so the PE declares
    :attr:`~repro.core.process.Process.schedule_complete` and summarises its
    full behavioural state: detection then runs under the **certified**
    plan (snapshots include queued token values, candidate periods are
    deep-verified) and an extrapolated run leaves bit-identical final
    levels behind — value-exact steady-state on a cyclic non-chain
    topology.  Vertices must be orderable for the canonical summary.
    """

    schedule_complete = True

    def __init__(
        self,
        name: str,
        index: int,
        owner: Mapping[Vertex, int],
        adjacency: Mapping[Vertex, List[Vertex]],
        root: Vertex,
    ) -> None:
        super().__init__(name)
        self.input_ports = ("in",)
        self.output_ports = ("out",)
        self.index = index
        self._owner = dict(owner)
        self._adj = {
            v: tuple(neighbors)
            for v, neighbors in adjacency.items()
            if self._owner[v] == index
        }
        self._root = root
        self.levels: Dict[Vertex, int] = {}
        self._outbox: List[Tuple[int, Vertex, int]] = []
        self.reset()

    def reset(self) -> None:
        super().reset()
        self.levels = {}
        self._outbox = []
        if self._owner.get(self._root) == self.index:
            self._ingest(self._root, 0)

    def _ingest(self, vertex: Vertex, level: int) -> None:
        """Label-correcting local delivery with breadth-order expansion."""
        worklist = deque([(vertex, level)])
        while worklist:
            v, lvl = worklist.popleft()
            known = self.levels.get(v)
            if known is not None and known <= lvl:
                continue
            self.levels[v] = lvl
            for neighbor in self._adj.get(v, ()):
                dest = self._owner[neighbor]
                if dest == self.index:
                    worklist.append((neighbor, lvl + 1))
                else:
                    self._outbox.append((dest, neighbor, lvl + 1))

    def fire(self, inputs: Mapping[str, Any]) -> Dict[str, Any]:
        bundle = inputs["in"] or ()
        forwards: List[Tuple[int, Vertex, int]] = []
        for dest, vertex, level in bundle:
            if dest == self.index:
                self._ingest(vertex, level)
            else:
                forwards.append((dest, vertex, level))
        out = tuple(self._outbox + forwards)
        self._outbox = []
        return {"out": out}

    def schedule_state(self) -> Optional[Any]:
        # Complete behavioural state: levels decide every future expansion,
        # the outbox is the only other carry-over between firings.
        return (tuple(sorted(self.levels.items())), tuple(self._outbox))


# ---------------------------------------------------------------------------
# PageRank processing element
# ---------------------------------------------------------------------------

class PageRankPe(Process):
    """One PageRank shard driven by full-ring contribution bundles.

    Protocol: each PE launches one bundle ``(origin, payload)`` per round;
    the payload lists integer contributions to *foreign* vertices (local
    ones are accumulated at launch).  A passing PE strips out entries for
    its own vertices and forwards the remainder.  When a PE's own bundle
    returns it has seen every foreign bundle of the round, so it folds the
    accumulator into new masses and launches the next round — ``n_rounds``
    rounds take exactly ``n_rounds * n_pe`` firings, which is the declared
    :meth:`done_threshold` (lockstep eligibility) and the whole basis of
    :meth:`is_done`/:meth:`schedule_state` (scalar steady-state soundness).
    """

    def __init__(
        self,
        name: str,
        index: int,
        n_pe: int,
        owner: Mapping[Vertex, int],
        adjacency: Mapping[Vertex, List[Vertex]],
        n_rounds: int,
        scale: int = DEFAULT_SCALE,
    ) -> None:
        super().__init__(name)
        self.input_ports = ("in",)
        self.output_ports = ("out",)
        self.index = index
        self.n_pe = n_pe
        self._owner = dict(owner)
        self._adj = {
            v: tuple(neighbors)
            for v, neighbors in adjacency.items()
            if self._owner[v] == index
        }
        self.n_rounds = int(n_rounds)
        self.scale = int(scale)
        self._done_at = self.n_rounds * self.n_pe
        self.mass: Dict[Vertex, int] = {}
        self._acc: Dict[Vertex, int] = {}
        self._rounds_done = 0
        self.reset()

    # -- round machinery -----------------------------------------------------
    def _base_share(self) -> int:
        return self.scale * (DAMPING_DEN - DAMPING_NUM) // DAMPING_DEN

    def _launch(self) -> Tuple[int, Tuple[Tuple[Vertex, int], ...]]:
        """Distribute this round's local contributions; bundle the foreign ones."""
        payload: Dict[Vertex, int] = {}
        for v in self._adj:
            neighbors = self._adj[v]
            share = self.mass[v] * DAMPING_NUM // (DAMPING_DEN * len(neighbors))
            for neighbor in neighbors:
                if self._owner[neighbor] == self.index:
                    self._acc[neighbor] = self._acc.get(neighbor, 0) + share
                else:
                    payload[neighbor] = payload.get(neighbor, 0) + share
        return (self.index, tuple(sorted(payload.items())))

    def initial_bundle(self) -> Tuple[int, Tuple[Tuple[Vertex, int], ...]]:
        """The round-0 bundle, used as the ring channel's reset token."""
        return self._initial_bundle

    def reset(self) -> None:
        super().reset()
        self.mass = {v: self.scale for v in self._adj}
        self._acc = {}
        self._rounds_done = 0
        self._initial_bundle = self._launch()

    def fire(self, inputs: Mapping[str, Any]) -> Dict[str, Any]:
        origin, payload = inputs["in"]
        if origin == self.index:
            # Own bundle back: every foreign bundle of the round has passed
            # through this PE, so the accumulator is complete.
            base = self._base_share()
            self.mass = {v: base + self._acc.get(v, 0) for v in self.mass}
            self._acc = {}
            self._rounds_done += 1
            if self._rounds_done < self.n_rounds:
                return {"out": self._launch()}
            return {"out": (_IDLE, ())}
        if origin == _IDLE:
            return {"out": (_IDLE, ())}
        keep: List[Tuple[Vertex, int]] = []
        for vertex, amount in payload:
            if self._owner[vertex] == self.index:
                self._acc[vertex] = self._acc.get(vertex, 0) + amount
            else:
                keep.append((vertex, amount))
        return {"out": (origin, tuple(keep))}

    # -- engine hooks --------------------------------------------------------
    def is_done(self) -> bool:
        return self.firings >= self._done_at

    def done_threshold(self) -> Optional[float]:
        # ``is_done`` is a pure function of the firing count by construction
        # (one round == one full ring traversal == n_pe firings).
        return self._done_at

    def schedule_state(self) -> Optional[Any]:
        # All schedule-relevant state is the distance to the done threshold.
        return min(self.firings, self._done_at)


# ---------------------------------------------------------------------------
# Workload packaging
# ---------------------------------------------------------------------------

@dataclass
class GraphWorkload:
    """A graph algorithm mapped onto a PE ring, ready to elaborate."""

    name: str
    algorithm: str
    netlist: Netlist
    rs_counts: Dict[str, int]
    n_pe: int
    owner: Dict[Vertex, int]
    #: Process whose ``is_done`` ends a run (PageRank); ``None`` for
    #: quiescence-style workloads (BFS), which run under a ``horizon``.
    stop_process: Optional[str]
    #: Generous cycle budget under which the workload is guaranteed to have
    #: converged (used as the default ``horizon``).
    max_cycles_hint: int

    def pe_names(self) -> List[str]:
        return [f"pe{index}" for index in range(self.n_pe)]

    def gather(self) -> Dict[Vertex, int]:
        """Merge the per-PE answers after an in-process run.

        Only meaningful after a **local** scalar-kernel run (pooled and
        lockstep evaluation never mutate the caller's process objects).
        """
        merged: Dict[Vertex, int] = {}
        for pe_name in self.pe_names():
            pe = self.netlist.process(pe_name)
            merged.update(pe.levels if self.algorithm == "bfs" else pe.mass)
        return merged


def _ring_channels(
    n_pe: int,
    rs_per_hop: int,
    initial_of: Mapping[int, Any],
) -> Tuple[List[Channel], Dict[str, int]]:
    channels: List[Channel] = []
    rs_counts: Dict[str, int] = {}
    for index in range(n_pe):
        nxt = (index + 1) % n_pe
        chan = Channel(
            name=f"ring{index}_{nxt}",
            source=f"pe{index}",
            source_port="out",
            dest=f"pe{nxt}",
            dest_port="in",
            initial=initial_of[index],
            link="ring" if n_pe > 1 else f"ring{index}",
        )
        channels.append(chan)
        rs_counts[chan.name] = int(rs_per_hop)
    return channels, rs_counts


def make_bfs_workload(
    edges: Iterable[Edge],
    root: Vertex,
    n_pe: int = 3,
    rs_per_hop: int = 1,
    name: Optional[str] = None,
) -> GraphWorkload:
    """Shard a directed graph's BFS over a PE ring."""
    adjacency = _adjacency(edges)
    if root not in adjacency:
        raise NetlistError(f"root {root!r} is not a vertex of the graph")
    if n_pe < 1:
        raise NetlistError("need at least one processing element")
    vertices = sorted(adjacency)
    owner = _partition(vertices, n_pe)
    processes = [
        BfsPe(f"pe{index}", index, owner, adjacency, root) for index in range(n_pe)
    ]
    channels, rs_counts = _ring_channels(
        n_pe, rs_per_hop, {index: () for index in range(n_pe)}
    )
    n_edges = sum(len(neighbors) for neighbors in adjacency.values())
    # Every edge relaxation travels at most one full ring (n_pe hops, each
    # hop crossing its relay stations); double it and pad for warmup.
    hint = 16 + 2 * max(1, n_edges) * (n_pe + rs_per_hop * n_pe + 2)
    return GraphWorkload(
        name=name or f"bfs-{len(vertices)}v-{n_pe}pe",
        algorithm="bfs",
        netlist=Netlist(
            processes, channels, name=name or f"bfs-{len(vertices)}v-{n_pe}pe"
        ),
        rs_counts=rs_counts,
        n_pe=n_pe,
        owner=owner,
        stop_process=None,
        max_cycles_hint=hint,
    )


def make_pagerank_workload(
    edges: Iterable[Edge],
    n_pe: int = 3,
    n_rounds: int = 8,
    rs_per_hop: int = 1,
    scale: int = DEFAULT_SCALE,
    name: Optional[str] = None,
) -> GraphWorkload:
    """Shard integer-arithmetic PageRank over a PE ring.

    Dangling vertices (no out-neighbours) are given a self-loop so every
    vertex redistributes its mass — the same normalisation
    :func:`pagerank_reference` applies, keeping the two bit-identical.
    """
    if n_pe < 1:
        raise NetlistError("need at least one processing element")
    if n_rounds < 1:
        raise NetlistError("need at least one round")
    adjacency = _normalised_adjacency(edges)
    vertices = sorted(adjacency)
    owner = _partition(vertices, n_pe)
    processes = [
        PageRankPe(f"pe{index}", index, n_pe, owner, adjacency, n_rounds, scale)
        for index in range(n_pe)
    ]
    channels, rs_counts = _ring_channels(
        n_pe,
        rs_per_hop,
        {index: processes[index].initial_bundle() for index in range(n_pe)},
    )
    hint = 16 + 2 * n_rounds * n_pe * (1 + rs_per_hop + 2)
    return GraphWorkload(
        name=name or f"pagerank-{len(vertices)}v-{n_pe}pe",
        algorithm="pagerank",
        netlist=Netlist(
            processes, channels, name=name or f"pagerank-{len(vertices)}v-{n_pe}pe"
        ),
        rs_counts=rs_counts,
        n_pe=n_pe,
        owner=owner,
        stop_process="pe0",
        max_cycles_hint=hint,
    )


def _normalised_adjacency(edges: Iterable[Edge]) -> Dict[Vertex, List[Vertex]]:
    adjacency = _adjacency(edges)
    for v, neighbors in adjacency.items():
        if not neighbors:
            adjacency[v] = [v]
    return adjacency


# ---------------------------------------------------------------------------
# Pure references
# ---------------------------------------------------------------------------

def bfs_reference(edges: Iterable[Edge], root: Vertex) -> Dict[Vertex, int]:
    """Directed BFS levels from *root* (only reachable vertices appear)."""
    adjacency = _adjacency(edges)
    if root not in adjacency:
        raise NetlistError(f"root {root!r} is not a vertex of the graph")
    levels = {root: 0}
    frontier = deque([root])
    while frontier:
        v = frontier.popleft()
        for neighbor in adjacency[v]:
            if neighbor not in levels:
                levels[neighbor] = levels[v] + 1
                frontier.append(neighbor)
    return levels


def pagerank_reference(
    edges: Iterable[Edge],
    n_rounds: int = 8,
    scale: int = DEFAULT_SCALE,
) -> Dict[Vertex, int]:
    """Integer PageRank, identical arithmetic to the PE ring."""
    adjacency = _normalised_adjacency(edges)
    mass = {v: int(scale) for v in adjacency}
    base = int(scale) * (DAMPING_DEN - DAMPING_NUM) // DAMPING_DEN
    for _ in range(int(n_rounds)):
        acc = {v: 0 for v in adjacency}
        for v, neighbors in adjacency.items():
            share = mass[v] * DAMPING_NUM // (DAMPING_DEN * len(neighbors))
            for neighbor in neighbors:
                acc[neighbor] += share
        mass = {v: base + acc[v] for v in adjacency}
    return mass
