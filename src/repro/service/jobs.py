"""The job model of the evaluation service.

A :class:`Job` wraps one tagged batch item — a sweep row, an optimiser
candidate, a Table 1 row — together with everything the scheduler needs to
multiplex it fairly onto the shared pool: a priority, a cancellation switch,
the run controls it was submitted under, and the content-address its result
is cached and deduplicated by.  A :class:`JobSet` groups the jobs of one
``submit()`` call and is the streaming handle the submitter consumes results
through: a thread-safe completion queue feeds both the synchronous
:meth:`JobSet.results` generator and the asynchronous :meth:`JobSet.stream`
iterator, in completion order, while :meth:`JobSet.ordered_results` waits for
everything and preserves submission order (what the sweep tables need).

Lifecycle: ``pending → running → done | failed``, with ``cancelled``
reachable from ``pending`` only — a job that has started evaluating runs to
completion (simulation kernels have no safe preemption point), so
cancellation is a promise about *not starting* work, never about tearing it
down half-way.  A chunk evaluation that raises does not immediately doom its
jobs: the scheduler moves each affected job back ``running → pending`` (see
:meth:`Job._requeue`) and re-enqueues it, up to its ``max_job_attempts``
budget; only exhaustion of that budget (or a close with work in flight)
makes the failure terminal.  :attr:`Job.attempts` counts how many times the
job actually began evaluating.  Every job reaches exactly one terminal state
and is posted to its jobset's completion queue exactly once; that invariant
is what lets the streaming iterators terminate after ``len(jobs)`` items
without timeouts.
"""

from __future__ import annotations

import asyncio
import queue
import threading
import time
from enum import Enum
from typing import Any, Callable, List, Optional

from ..engine.batch import BatchResult
from ..engine.kernel import RunControls


class JobStatus(str, Enum):
    """Lifecycle states of a job (terminal: DONE, FAILED, CANCELLED)."""

    PENDING = "pending"
    RUNNING = "running"
    DONE = "done"
    FAILED = "failed"
    CANCELLED = "cancelled"

    @property
    def terminal(self) -> bool:
        return self in (JobStatus.DONE, JobStatus.FAILED, JobStatus.CANCELLED)


class Job:
    """One evaluation request flowing through the service.

    Attributes of interest to submitters:

    * :attr:`result` — the :class:`~repro.engine.batch.BatchResult` once the
      job is done (None while pending/cancelled; failed evaluations carry a
      result whose ``error`` field is set, mirroring ``on_error="zero"``);
    * :attr:`cached` / :attr:`deduped` — whether the result came from the
      content-addressed cache or from piggybacking on an identical in-flight
      job instead of a fresh simulation;
    * :attr:`layout` / :attr:`label` / :attr:`tag` — where the row belongs
      (tag is free-form submitter context, carried through untouched).
    """

    __slots__ = (
        "job_id", "layout", "item", "label", "tag", "priority", "controls",
        "key", "status", "result", "error", "cached", "deduped", "attempts",
        "_lock", "_event", "_jobset", "_callbacks", "_followers",
    )

    def __init__(
        self,
        job_id: int,
        layout: str,
        item: Any,
        label: str,
        controls: RunControls,
        priority: int = 0,
        key: Optional[str] = None,
        tag: Any = None,
    ) -> None:
        self.job_id = job_id
        self.layout = layout
        #: The normalised batch item (see ``BatchRunner._normalise_item``).
        self.item = item
        self.label = label
        self.tag = tag
        self.priority = priority
        self.controls = controls
        #: Content-address of the result (None: uncacheable, e.g. an
        #: unpicklable netlist or an ``on_cycle`` observer).
        self.key = key
        self.status = JobStatus.PENDING
        self.result: Optional[BatchResult] = None
        self.error: Optional[str] = None
        self.cached = False
        self.deduped = False
        #: Times the job began evaluating (incremented by :meth:`_begin`);
        #: bounded by the service's ``max_job_attempts``.
        self.attempts = 0
        self._lock = threading.Lock()
        self._event = threading.Event()
        self._jobset: Optional["JobSet"] = None
        self._callbacks: List[Callable[["Job"], None]] = []
        #: Identical in-flight jobs riding on this one's evaluation.
        self._followers: List["Job"] = []

    # -- submitter API ------------------------------------------------------
    @property
    def done(self) -> bool:
        """True once the job reached a terminal state (incl. cancelled)."""
        return self._event.is_set()

    def wait(self, timeout: Optional[float] = None) -> bool:
        """Block until the job reaches a terminal state."""
        return self._event.wait(timeout)

    def cancel(self) -> bool:
        """Cancel the job if it has not started evaluating yet.

        Returns True when this call performed the cancellation.  A running
        job is never interrupted; a finished (or already cancelled) job is
        left untouched and False is returned.
        """
        return self._finish(JobStatus.CANCELLED, allow_from=(JobStatus.PENDING,))

    def throughput(self, golden_cycles: Optional[int] = None) -> float:
        """Convenience: the result's throughput, 0.0 when absent."""
        if self.result is None:
            return 0.0
        return self.result.throughput(golden_cycles)

    # -- scheduler internals ------------------------------------------------
    def _begin(self) -> bool:
        """PENDING → RUNNING transition; False when no longer pending."""
        with self._lock:
            if self.status is not JobStatus.PENDING:
                return False
            self.status = JobStatus.RUNNING
            self.attempts += 1
            return True

    def _requeue(self) -> bool:
        """RUNNING → PENDING transition after a failed evaluation attempt.

        False when the job is no longer running (e.g. already failed at
        close); the caller must then not re-enqueue it.  The job becomes
        cancellable again — pending is pending.
        """
        with self._lock:
            if self.status is not JobStatus.RUNNING:
                return False
            self.status = JobStatus.PENDING
            return True

    def _finish(
        self,
        status: JobStatus,
        result: Optional[BatchResult] = None,
        error: Optional[str] = None,
        cached: bool = False,
        allow_from: tuple = (JobStatus.PENDING, JobStatus.RUNNING),
    ) -> bool:
        """Move to a terminal state exactly once and notify everyone."""
        with self._lock:
            if self.status not in allow_from or self.status.terminal:
                return False
            self.status = status
            self.result = result
            self.error = error
            self.cached = cached
        self._event.set()
        if self._jobset is not None:
            self._jobset._completed.put(self)
        for callback in self._callbacks:
            try:
                callback(self)
            except Exception:  # noqa: BLE001 - observer errors stay local
                pass
        return True

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Job(id={self.job_id}, layout={self.layout!r}, "
            f"label={self.label!r}, status={self.status.value})"
        )


class JobSet:
    """The jobs of one ``submit()`` call, plus their completion stream."""

    def __init__(self, jobs: Optional[List[Job]] = None) -> None:
        self.jobs: List[Job] = []
        self._completed: "queue.SimpleQueue[Job]" = queue.SimpleQueue()
        for job in jobs or ():
            self._add(job)

    def _add(self, job: Job) -> None:
        job._jobset = self
        self.jobs.append(job)

    def __len__(self) -> int:
        return len(self.jobs)

    def __iter__(self):
        return iter(self.jobs)

    @property
    def done(self) -> bool:
        return all(job.done for job in self.jobs)

    def cancel(self) -> int:
        """Cancel every not-yet-started job; returns how many were cancelled."""
        return sum(1 for job in self.jobs if job.cancel())

    def wait(self, timeout: Optional[float] = None) -> bool:
        """Block until every job is terminal (True) or the timeout expires."""
        deadline = None if timeout is None else time.monotonic() + timeout
        for job in self.jobs:
            remaining = None
            if deadline is not None:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    return self.done
            if not job.wait(remaining):
                return False
        return True

    def results(self, timeout: Optional[float] = None):
        """Yield jobs in **completion order** as they reach a terminal state.

        This is the synchronous streaming interface: the generator returns
        after ``len(self)`` jobs (cancelled ones included — check
        ``job.status``).  *timeout* bounds the wait for each next completion;
        expiry raises :class:`queue.Empty`.
        """
        for _ in range(len(self.jobs)):
            yield self._completed.get(timeout=timeout)

    async def stream(self):
        """Async iterator over jobs in completion order.

        ``async for job in jobset.stream(): ...`` — each wait for the next
        completion runs in a worker thread (the scheduler is thread-based),
        so the event loop stays responsive while simulations run.
        """
        for _ in range(len(self.jobs)):
            yield await asyncio.to_thread(self._completed.get)

    def ordered_results(
        self, timeout: Optional[float] = None
    ) -> List[Optional[BatchResult]]:
        """Wait for everything, then return results in **submission order**.

        Cancelled jobs contribute None; failed evaluations contribute their
        error-carrying :class:`~repro.engine.batch.BatchResult` (throughput
        0.0), mirroring the batch runner's ``on_error="zero"`` contract.
        """
        self.wait(timeout)
        return [job.result for job in self.jobs]
