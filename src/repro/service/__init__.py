"""``repro.service`` — async streaming evaluation over a shared runner pool.

The serveable face of the simulation engine (DESIGN.md §6): submit jobs from
any number of concurrent callers, stream results as they land, and never
simulate the same configuration twice.

* :class:`EvaluationService` — the scheduler (submit / stream / callbacks,
  priorities, cancellation, in-flight dedup, job retry with terminal
  failure after ``max_job_attempts``, bounded submission via
  ``max_pending``, one shared
  :class:`~repro.engine.steady_state.PeriodMemory` across layouts);
* :class:`ResultCache` — the content-addressed result store (in-memory LRU
  plus optional on-disk JSON tier with checksum-verified entries; corrupt
  files are quarantined as ``<key>.corrupt``, never trusted);
* :class:`Job` / :class:`JobSet` / :class:`JobStatus` — the job model.

Quick start::

    from repro.service import EvaluationService

    service = EvaluationService(workers=4)
    wp1 = service.ensure_layout(cpu.netlist, relaxed=False)
    jobs = service.submit(
        [(wp1, config) for config in configurations],
        stop_process="CU", queue_capacity=4,
    )
    for job in jobs.results():          # completion order, streaming
        print(job.label, job.result.cycles, job.cached)

    async for job in service.stream(...):   # same, for asyncio callers
        ...
"""

from .cache import CACHE_SCHEMA_VERSION, ResultCache, controls_signature, result_key
from .jobs import Job, JobSet, JobStatus
from .scheduler import EvaluationService

__all__ = [
    "CACHE_SCHEMA_VERSION",
    "EvaluationService",
    "Job",
    "JobSet",
    "JobStatus",
    "ResultCache",
    "controls_signature",
    "result_key",
]
