"""Content-addressed result cache: never simulate the same configuration twice.

Every kernel is a *deterministic* function: given one elaborated model (the
netlist content, the relay-station binding, element capacities, the wrapper
flavour) and one set of run controls, all three kernels produce bit-identical
:class:`~repro.engine.result.LidResult` counts — the equivalence property
suite and the steady-state extrapolation contract (DESIGN.md §4-§5) pin
exactly this.  A result can therefore be addressed by the *content* of its
inputs and replayed for free on any later request with the same address:

``key = sha256(schema version,
              netlist content digest,          # sha256 of the pickled netlist
              kernel name,
              wrapper flavour, queue capacity, RS capacity,
              sorted per-channel relay-station counts,
              run-controls signature)``        # stop condition, bounds, ...

The netlist digest covers everything the structural
:func:`~repro.engine.codegen.model_signature` deliberately leaves out
(process programs, initial registers and memory, initial channel tokens); a
netlist that cannot be pickled has no digest and is simply *uncacheable* —
misses are always sound, only hits must be justified.  The configuration
*label* is deliberately excluded (two rows asking for the same counts under
different names share one simulation; the cached result is re-labelled per
request), and the steady-state switches are *included*: counts would match
either way, but the ``period``/``warmup_cycles``/``extrapolated`` metadata of
the result would not, and a cache must return byte-identical answers.

Two tiers: an in-memory LRU (:class:`ResultCache`), and an optional on-disk
JSON tier (one ``<key>.json`` file per entry under *cache_dir*) that survives
the process — repeated sweeps and re-runs of ``table1`` across CLI
invocations are near-free.  Disk files store the canonical
:meth:`~repro.engine.batch.BatchResult.to_dict` form, which is JSON-safe for
every field, wrapped with a sha256 **payload checksum**: a file that fails to
parse, fails its checksum, or fails to deserialize is *quarantined* — renamed
to ``<key>.corrupt`` so it can never be consulted again (and is preserved for
post-mortem) — counted in :meth:`ResultCache.stats`, and treated as a plain
miss.  Corruption is a recoverable event, never an exception: the worst a
flipped bit can cost is one re-simulation.
"""

from __future__ import annotations

import hashlib
import json
import os
import threading
from collections import OrderedDict
from dataclasses import replace
from pathlib import Path
from typing import Any, Dict, Optional, Tuple

from ..engine.batch import BatchResult, BatchRunner, _Item
from ..engine.elaboration import resolve_rs_counts
from ..engine.faults import corrupt_file, should_corrupt
from ..engine.kernel import RunControls
from ..engine.steady_state import resolve_steady_state

#: Bump when the key derivation or the serialized form changes incompatibly:
#: old disk entries then miss (sound) instead of deserializing garbage.
#: v2: payload checksum added to the disk form (v1 files miss cleanly — a
#: version mismatch is compatibility, not corruption, and is not quarantined).
CACHE_SCHEMA_VERSION = 2


def controls_signature(controls: RunControls) -> Optional[Tuple]:
    """Canonical tuple of every result-relevant run-control field.

    Returns None when the run is uncacheable: an ``on_cycle`` observer makes
    the run's *purpose* its side effects, which a cache hit would skip.

    ``steady_state`` enters the signature in *resolved* form (argument >
    ``REPRO_STEADY_STATE`` env > default), so a cached entry answers exactly
    the runs that would have produced byte-identical metadata.
    """
    if controls.on_cycle is not None:
        return None
    targets = (
        None
        if controls.target_firings is None
        else tuple(sorted(controls.target_firings.items()))
    )
    # The supervision knobs (shard_timeout, max_shard_retries, retry_backoff)
    # are deliberately absent: they steer *how* the pool recovers, never what
    # a simulation computes, so results are shared across their settings.
    return (
        controls.max_cycles,
        controls.stop_process,
        targets,
        controls.extra_cycles,
        controls.deadlock_limit,
        controls.horizon,
        resolve_steady_state(controls.steady_state),
        controls.steady_state_window,
    )


def result_key(
    runner: BatchRunner,
    item: _Item,
    controls: RunControls,
) -> Optional[str]:
    """The content-address of one (runner, normalised item, controls) request.

    None means "do not cache this": the netlist cannot be fingerprinted or
    the controls carry an observer.  The sha256 runs over the ``repr`` of a
    tuple of scalars, strings and nested tuples — canonical by construction.
    """
    digest = runner.netlist_digest()
    if digest is None:
        return None
    controls_sig = controls_signature(controls)
    if controls_sig is None:
        return None
    configuration, rs_counts, capacity = item
    counts, _ = resolve_rs_counts(
        runner.netlist, rs_counts=rs_counts, configuration=configuration
    )
    components = (
        CACHE_SCHEMA_VERSION,
        digest,
        runner.kernel_name,
        runner.relaxed,
        runner.queue_capacity if capacity is None else capacity,
        runner.rs_capacity,
        tuple(sorted(counts.items())),
        controls_sig,
    )
    return hashlib.sha256(repr(components).encode("utf-8")).hexdigest()


def relabel(result: BatchResult, label: str) -> BatchResult:
    """A copy of *result* carrying the requesting item's label.

    Labels are excluded from the content address (they do not influence the
    simulation), so a hit produced under another name is re-labelled before
    being handed back — the submitter sees exactly the row it asked for.
    """
    if result.label == label:
        return result
    return replace(result, label=label)


class ResultCache:
    """Two-tier (memory LRU + optional disk JSON) store of batch results.

    Thread-safe; the service consults it from submitter threads (hits at
    submit time) and from the scheduler thread (stores after evaluation).
    Statistics are exposed through :meth:`stats`.
    """

    def __init__(
        self,
        max_entries: int = 65_536,
        cache_dir: Optional[os.PathLike] = None,
        max_disk_bytes: Optional[int] = None,
    ) -> None:
        """*max_disk_bytes* bounds the disk tier (None: unbounded).

        After every write, ``<key>.json`` entries are evicted least-recently-
        used first — recency is the file mtime, which both writes and disk
        hits refresh — until the tier fits the budget.  The budget is a hard
        bound shared by every process pointing at the directory (the
        cross-host transport tier of ``repro.distributed`` included): even a
        single entry larger than the whole budget is evicted immediately.
        An eviction is never an error — the evicted key simply misses and
        re-simulates.
        """
        if max_entries < 1:
            raise ValueError("max_entries must be >= 1")
        if max_disk_bytes is not None and max_disk_bytes < 1:
            raise ValueError("max_disk_bytes must be >= 1 (or None)")
        self.max_entries = max_entries
        self.max_disk_bytes = max_disk_bytes
        self.cache_dir = Path(cache_dir) if cache_dir is not None else None
        if self.cache_dir is not None:
            self.cache_dir.mkdir(parents=True, exist_ok=True)
        self._lock = threading.Lock()
        self._entries: "OrderedDict[str, BatchResult]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.disk_hits = 0
        self.disk_errors = 0
        self.corrupt_quarantined = 0
        self.disk_evictions = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: str) -> bool:
        return self.get(key, count=False) is not None

    # -- lookup -------------------------------------------------------------
    def get(
        self,
        key: Optional[str],
        count: bool = True,
        memory_only: bool = False,
    ) -> Optional[BatchResult]:
        """The cached result for *key*, consulting memory then disk.

        *memory_only* skips the disk tier — the scheduler uses it for the
        re-check it performs under its own lock, where disk I/O would stall
        every other submitter (a miss there is not counted either: the
        caller already probed both tiers).
        """
        if key is None:
            return None
        with self._lock:
            result = self._entries.get(key)
            if result is not None:
                self._entries.move_to_end(key)
                if count:
                    self.hits += 1
                return result
        if memory_only:
            return None
        result = self._read_disk(key)
        if result is not None:
            with self._lock:
                self._remember(key, result)
                if count:
                    self.hits += 1
                    self.disk_hits += 1
            return result
        if count:
            with self._lock:
                self.misses += 1
        return None

    # -- store --------------------------------------------------------------
    def put(self, key: Optional[str], result: BatchResult) -> None:
        """Store *result* under *key* in both tiers (no-op for key=None)."""
        if key is None:
            return
        with self._lock:
            self._remember(key, result)
        self._write_disk(key, result)

    def clear(self) -> None:
        """Drop the in-memory tier (disk entries are left in place)."""
        with self._lock:
            self._entries.clear()

    def stats(self) -> Dict[str, Any]:
        with self._lock:
            return {
                "entries": len(self._entries),
                "hits": self.hits,
                "misses": self.misses,
                "disk_hits": self.disk_hits,
                "disk_errors": self.disk_errors,
                "corrupt_quarantined": self.corrupt_quarantined,
                "disk_evictions": self.disk_evictions,
                "max_disk_bytes": self.max_disk_bytes,
                "cache_dir": None if self.cache_dir is None else str(self.cache_dir),
            }

    # -- internals ----------------------------------------------------------
    def _remember(self, key: str, result: BatchResult) -> None:
        self._entries[key] = result
        self._entries.move_to_end(key)
        while len(self._entries) > self.max_entries:
            self._entries.popitem(last=False)

    def _path(self, key: str) -> Path:
        assert self.cache_dir is not None
        return self.cache_dir / f"{key}.json"

    @staticmethod
    def _checksum(result_dict: Dict[str, Any]) -> str:
        """sha256 over the canonical (sorted-keys) JSON form of the result."""
        canonical = json.dumps(result_dict, sort_keys=True)
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()

    def _quarantine(self, path: Path, reason: str) -> None:
        """Move a corrupt entry out of the address space (``<key>.corrupt``).

        The rename makes the corruption one-shot: the next lookup of the key
        is a clean miss, re-simulation repopulates the entry, and the bad
        bytes stay on disk for post-mortem instead of being retried forever.
        """
        self.corrupt_quarantined += 1
        self.disk_errors += 1
        try:
            path.replace(path.with_suffix(".corrupt"))
        except OSError:
            pass

    def _read_disk(self, key: str) -> Optional[BatchResult]:
        if self.cache_dir is None:
            return None
        path = self._path(key)
        try:
            text = path.read_text()
        except FileNotFoundError:
            return None
        except OSError:
            self.disk_errors += 1
            return None
        try:
            payload = json.loads(text)
        except ValueError:
            self._quarantine(path, "unparseable JSON")
            return None
        if not isinstance(payload, dict):
            self._quarantine(path, "payload is not an object")
            return None
        if payload.get("version") != CACHE_SCHEMA_VERSION:
            # Older schema, not damage: miss cleanly, leave the file alone.
            return None
        result_dict = payload.get("result")
        if (
            not isinstance(result_dict, dict)
            or payload.get("checksum") != self._checksum(result_dict)
        ):
            self._quarantine(path, "checksum mismatch")
            return None
        try:
            result = BatchResult.from_dict(result_dict)
        except (KeyError, TypeError, ValueError):
            self._quarantine(path, "undeserializable result")
            return None
        # Refresh recency for the LRU eviction order (mtime is the clock
        # every process sharing the directory agrees on).
        try:
            os.utime(path)
        except OSError:
            pass
        return result

    def _write_disk(self, key: str, result: BatchResult) -> None:
        if self.cache_dir is None:
            return
        result_dict = result.to_dict()
        payload = {
            "version": CACHE_SCHEMA_VERSION,
            "result": result_dict,
            "checksum": self._checksum(result_dict),
        }
        path = self._path(key)
        tmp = path.with_suffix(".tmp")
        try:
            tmp.write_text(json.dumps(payload))
            tmp.replace(path)
        except (OSError, TypeError, ValueError):
            self.disk_errors += 1
            try:
                tmp.unlink()
            except OSError:
                pass
            return
        if should_corrupt(key):  # fault injection: exercise the quarantine path
            corrupt_file(path)
        self._evict_disk()

    def _evict_disk(self) -> None:
        """Evict ``<key>.json`` entries, oldest mtime first, to the budget."""
        if self.cache_dir is None or self.max_disk_bytes is None:
            return
        entries = []
        total = 0
        try:
            candidates = list(self.cache_dir.glob("*.json"))
        except OSError:
            return
        for path in candidates:
            try:
                info = path.stat()
            except OSError:
                continue
            entries.append((info.st_mtime, info.st_size, path))
            total += info.st_size
        if total <= self.max_disk_bytes:
            return
        entries.sort(key=lambda entry: entry[0])
        evicted = 0
        for _mtime, size, path in entries:
            if total <= self.max_disk_bytes:
                break
            try:
                path.unlink()
            except OSError:
                continue
            total -= size
            evicted += 1
        if evicted:
            with self._lock:
                self.disk_evictions += evicted
