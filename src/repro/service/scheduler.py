"""The evaluation service: many submitters, one pool, zero repeated work.

:class:`EvaluationService` turns the batch engine into a long-lived,
serveable subsystem.  Any number of concurrent submitters (sweep loops,
optimiser strategies, Table 1 harnesses, CLI invocations) hand it tagged
batch items; one scheduler thread multiplexes them — in priority order —
onto a single persistent :class:`~repro.engine.batch.MultiNetlistRunner`
whose layouts all share one
:class:`~repro.engine.steady_state.PeriodMemory`, so steady-state periods
detected for one job warm-start the detection windows of every sibling
shape that follows.  Results come back three ways: the async iterator
(``async for job in service.stream(items, ...)``), the synchronous
completion-order generator (:meth:`JobSet.results`), and per-job completion
callbacks (``submit(..., on_result=...)``).

Three layers keep repeated work at zero:

1. **result cache** — every request is content-addressed (see
   :mod:`repro.service.cache`); a hit completes the job at submit time
   without ever touching the scheduler;
2. **in-flight dedup** — a request whose address matches a job that is
   queued or running attaches to it as a *follower* and receives a copy of
   the result when the primary completes: two optimiser strategies (or two
   asyncio tasks) racing over the same candidate cost one simulation;
3. **warm starts** — the shared period memory and the per-layout compiled
   kernel caches of the underlying runners persist across jobs.

Execution is chunked: the scheduler drains up to one *chunk* of jobs per
step (respecting priorities), evaluates the chunk through the pool
(``workers`` processes, fork- and spawn-safe — the batch layer's machinery),
and completes the chunk's jobs before draining the next.  With serial
workers the chunk size is 1, which is what makes long sweeps *stream*:
row k is delivered while row k+1 simulates.
"""

from __future__ import annotations

import itertools
import math
import queue
import threading
from typing import Any, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from ..core.exceptions import SimulationError
from ..core.netlist import Netlist
from ..engine.batch import (
    BatchItem,
    BatchRunner,
    MultiNetlistRunner,
    TaggedItem,
)
from ..engine.kernel import RunControls
from ..engine.steady_state import PeriodMemory
from .cache import ResultCache, relabel, result_key
from .jobs import Job, JobSet, JobStatus

#: Queue entry sorting: (priority, submission sequence) — lower runs first,
#: FIFO within one priority level.  The sentinel sorts after everything, so
#: `close()` drains gracefully.
_SENTINEL_PRIORITY = math.inf


class EvaluationService:
    """Async streaming evaluation scheduler over one persistent runner pool.

    Parameters
    ----------
    runners:
        Initial layouts, ``{name: BatchRunner}`` (more can be registered
        later through :meth:`add_layout` / :meth:`ensure_layout`).  May be
        empty — the optimiser and sweep integrations register theirs on
        first use.
    cache:
        The :class:`~repro.service.cache.ResultCache` to consult; None
        builds a default in-memory cache (pass one with ``cache_dir`` for
        the persistent disk tier).
    workers / start_method:
        Fan-out of each evaluated chunk, forwarded to
        :meth:`~repro.engine.batch.MultiNetlistRunner.run_many` (fork- and
        spawn-safe; serial when 1).
    chunk_size:
        Jobs evaluated per scheduler step.  None picks 1 for serial workers
        (finest streaming granularity) and ``4 × workers`` otherwise.
    autostart:
        Start the scheduler thread on first submit (default).  Tests pass
        False to stage jobs and observe dedup deterministically, then call
        :meth:`start`.
    """

    def __init__(
        self,
        runners: Optional[Mapping[str, BatchRunner]] = None,
        *,
        cache: Optional[ResultCache] = None,
        workers: int = 1,
        chunk_size: Optional[int] = None,
        start_method: Optional[str] = None,
        period_memory: Optional[PeriodMemory] = None,
        autostart: bool = True,
    ) -> None:
        self.cache = cache if cache is not None else ResultCache()
        self.workers = workers
        self.chunk_size = chunk_size
        self.start_method = start_method
        self.period_memory = (
            period_memory if period_memory is not None else PeriodMemory()
        )
        self.autostart = autostart
        self._lock = threading.RLock()
        self._runners: Dict[str, BatchRunner] = dict(runners or {})
        self._multi: Optional[MultiNetlistRunner] = None
        if self._runners:
            self._multi = MultiNetlistRunner(self._runners)
        self._queue: "queue.PriorityQueue[Tuple[float, int, Optional[Job]]]" = (
            queue.PriorityQueue()
        )
        self._inflight: Dict[str, Job] = {}
        self._seq = itertools.count()
        self._job_ids = itertools.count(1)
        self._thread: Optional[threading.Thread] = None
        self._closed = False
        # Counters (under self._lock).
        self.submitted = 0
        self.evaluated = 0
        self.deduped = 0
        self.cancelled = 0
        self.failed = 0

    # -- layout registry ----------------------------------------------------
    def add_layout(self, name: str, runner: BatchRunner) -> str:
        """Register a prebuilt runner under *name* (error on conflicts)."""
        with self._lock:
            existing = self._runners.get(name)
            if existing is not None:
                if existing is runner:
                    return name
                raise SimulationError(
                    f"layout {name!r} is already registered with a different "
                    "runner"
                )
            self._register(name, runner)
        return name

    def ensure_layout(
        self,
        netlist: Netlist,
        *,
        name: Optional[str] = None,
        relaxed: bool = False,
        kernel: Optional[str] = None,
        **runner_kwargs: Any,
    ) -> str:
        """Register (or find) a layout for *netlist* and return its name.

        Without *name* a deterministic one is derived from the netlist's
        content digest and the runner parameters, so repeated calls with an
        equal netlist — even a freshly rebuilt copy — resolve to the same
        layout and therefore the same caches.  With *name*, a registered
        layout is reused only when its netlist content matches; a mismatch
        is an error (silently swapping netlists under one name would poison
        every consumer grouping results by layout).

        The created runner always joins the service's shared
        :class:`~repro.engine.steady_state.PeriodMemory`.
        """
        with self._lock:
            probe = BatchRunner(
                netlist,
                relaxed=relaxed,
                kernel=kernel,
                period_memory=self.period_memory,
                **runner_kwargs,
            )
            digest = probe.netlist_digest() or f"id{id(netlist):x}"
            if name is None:
                name = (
                    f"nl-{digest[:12]}-{'wp2' if relaxed else 'wp1'}"
                    f"-{probe.kernel_name}-q{probe.queue_capacity}"
                    f"-r{probe.rs_capacity}"
                )
            existing = self._runners.get(name)
            if existing is not None:
                # Undigestable (unpicklable) netlists have no content
                # address, so only object identity can prove equality —
                # None == None must NOT alias two different netlists.
                same_netlist = (
                    existing.netlist is netlist
                    or (
                        existing.netlist_digest() is not None
                        and existing.netlist_digest() == probe.netlist_digest()
                    )
                )
                if (
                    same_netlist
                    and existing.relaxed == relaxed
                    and existing.kernel_name == probe.kernel_name
                    and existing.queue_capacity == probe.queue_capacity
                    and existing.rs_capacity == probe.rs_capacity
                ):
                    return name
                raise SimulationError(
                    f"layout {name!r} is already registered with a different "
                    "netlist or runner parameters"
                )
            self._register(name, probe)
        return name

    def _register(self, name: str, runner: BatchRunner) -> None:
        self._runners[name] = runner
        if self._multi is None:
            self._multi = MultiNetlistRunner(self._runners)
        else:
            # The MultiNetlistRunner shares our dict; keep both views equal.
            self._multi.runners[name] = runner

    def runner(self, name: str) -> BatchRunner:
        with self._lock:
            try:
                return self._runners[name]
            except KeyError:
                raise SimulationError(
                    f"unknown layout {name!r}; available: "
                    f"{sorted(self._runners)}"
                ) from None

    @property
    def layouts(self) -> List[str]:
        with self._lock:
            return sorted(self._runners)

    # -- submission ---------------------------------------------------------
    def submit(
        self,
        items: Iterable[TaggedItem],
        *,
        priority: int = 0,
        on_result=None,
        tags: Optional[Sequence[Any]] = None,
        queue_capacity: Optional[int] = None,
        controls: Optional[RunControls] = None,
        **control_kwargs: Any,
    ) -> JobSet:
        """Queue every ``(layout name, batch item)`` and return the handle.

        Thread-safe; any number of submitters may call this concurrently.
        *priority* orders jobs across all submitters (lower runs first,
        FIFO within a level).  *on_result* is invoked — in the scheduler
        thread — for each job reaching a terminal state; *tags* attaches
        per-item submitter context (parallel to *items*).  Run controls
        follow :meth:`~repro.engine.batch.MultiNetlistRunner.run_many`:
        keyword fields or a prebuilt :class:`RunControls` object.

        Jobs whose content-address hits the cache complete before this
        method returns (``job.cached``, with *on_result* invoked in the
        submitting thread); jobs matching a queued or running address
        attach to it and complete with it (``job.deduped``).
        """
        if controls is None:
            controls_obj = RunControls(**control_kwargs)
        elif control_kwargs:
            raise SimulationError(
                "pass run controls either as a RunControls object or as "
                f"keyword arguments, not both (got {sorted(control_kwargs)})"
            )
        else:
            controls_obj = controls
        item_list = list(items)
        tag_list = list(tags) if tags is not None else [None] * len(item_list)
        if len(tag_list) != len(item_list):
            raise SimulationError(
                f"tags ({len(tag_list)}) must parallel items ({len(item_list)})"
            )
        jobset = JobSet()
        enqueued = False
        for (layout, entry), tag in zip(item_list, tag_list):
            # Normalisation, key derivation and the (possibly disk-backed)
            # cache probe all run OUTSIDE the service lock: only the
            # in-flight bookkeeping below needs atomicity, and completing a
            # cache hit here may run user callbacks, which must never hold
            # a lock the scheduler thread also takes.
            runner = self.runner(layout)
            norm = runner._normalise_item(entry, queue_capacity)
            configuration = norm[0]
            label = (
                configuration.label
                if configuration is not None
                else "per-channel"
            )
            key = result_key(runner, norm, controls_obj)
            job = Job(
                job_id=next(self._job_ids),
                layout=layout,
                item=norm,
                label=label,
                controls=controls_obj,
                priority=priority,
                key=key,
                tag=tag,
            )
            if on_result is not None:
                job._callbacks.append(on_result)
            jobset._add(job)
            cached = self.cache.get(key) if key is not None else None
            with self._lock:
                if self._closed:
                    raise SimulationError("EvaluationService is closed")
                self.submitted += 1
                if cached is None and key is not None:
                    primary = self._inflight.get(key)
                    if primary is not None:
                        job.deduped = True
                        primary._followers.append(job)
                        self.deduped += 1
                        continue
                    # The scheduler publishes to the in-memory cache tier
                    # before dropping an in-flight entry, so a re-check
                    # here (memory only — no disk I/O under the lock)
                    # closes the window between our probe and now.
                    cached = self.cache.get(key, memory_only=True)
                if cached is None:
                    if key is not None:
                        self._inflight[key] = job
                    # Enqueue while still holding the lock: close() also
                    # takes it, so a job is either queued before close()
                    # drains, or the submit fails the closed check above —
                    # never stranded in between.
                    self._queue.put(
                        (float(job.priority), next(self._seq), job)
                    )
                    enqueued = True
            if cached is not None:
                job._finish(
                    JobStatus.DONE, result=relabel(cached, label), cached=True
                )
        if enqueued and self.autostart:
            self.start()
        return jobset

    def stream(
        self,
        items: Iterable[TaggedItem],
        *,
        priority: int = 0,
        queue_capacity: Optional[int] = None,
        controls: Optional[RunControls] = None,
        **control_kwargs: Any,
    ):
        """Submit and return the async completion iterator in one call.

        ``async for job in service.stream(items, stop_process="CU"): ...``
        yields each :class:`Job` as it reaches a terminal state; cache hits
        arrive first (they are already complete), then evaluated chunks as
        the pool delivers them.
        """
        jobset = self.submit(
            items,
            priority=priority,
            queue_capacity=queue_capacity,
            controls=controls,
            **control_kwargs,
        )
        return jobset.stream()

    # -- lifecycle ----------------------------------------------------------
    def start(self) -> None:
        """Start the scheduler thread (idempotent; no-op once closed)."""
        with self._lock:
            if self._closed:
                return
            if self._thread is None or not self._thread.is_alive():
                self._thread = threading.Thread(
                    target=self._loop,
                    name="repro-evaluation-service",
                    daemon=True,
                )
                self._thread.start()

    def close(self, cancel_pending: bool = False) -> None:
        """Drain outstanding jobs and stop the scheduler thread.

        The shutdown sentinel sorts after every real priority, so queued
        jobs are evaluated before the thread exits; with *cancel_pending*
        they are cancelled instead (running chunks still finish — there is
        no preemption point inside a simulation).
        """
        with self._lock:
            if self._closed:
                return
            self._closed = True
            thread = self._thread
        if cancel_pending:
            drained: List[Job] = []
            while True:
                try:
                    entry = self._queue.get_nowait()
                except queue.Empty:
                    break
                if entry[2] is not None:
                    drained.append(entry[2])
            for job in drained:
                self._cancel_group(job)
        if thread is not None and thread.is_alive():
            self._queue.put((_SENTINEL_PRIORITY, next(self._seq), None))
            thread.join()
        else:
            # Never started: nothing will drain the queue; cancel leftovers.
            while True:
                try:
                    entry = self._queue.get_nowait()
                except queue.Empty:
                    break
                if entry[2] is not None:
                    self._cancel_group(entry[2])

    def __enter__(self) -> "EvaluationService":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def stats(self) -> Dict[str, Any]:
        """Service counters plus the cache's (see ``ResultCache.stats``)."""
        with self._lock:
            return {
                "submitted": self.submitted,
                "evaluated": self.evaluated,
                "deduped": self.deduped,
                "cancelled": self.cancelled,
                "failed": self.failed,
                "inflight": len(self._inflight),
                "layouts": sorted(self._runners),
                "cache": self.cache.stats(),
            }

    # -- scheduler internals ------------------------------------------------
    def _chunk_limit(self) -> int:
        if self.chunk_size is not None:
            return max(1, self.chunk_size)
        return 1 if self.workers <= 1 else 4 * self.workers

    def _loop(self) -> None:
        while True:
            entry = self._queue.get()
            if entry[2] is None:
                break
            chunk: List[Job] = [entry[2]]
            limit = self._chunk_limit()
            stop = False
            while len(chunk) < limit:
                try:
                    nxt = self._queue.get_nowait()
                except queue.Empty:
                    break
                if nxt[2] is None:
                    stop = True
                    break
                chunk.append(nxt[2])
            try:
                self._evaluate_chunk(chunk)
            except Exception as exc:  # noqa: BLE001 - keep the service alive
                for job in chunk:
                    self._fail_group(job, f"{type(exc).__name__}: {exc}")
            if stop:
                break

    def _group(self, job: Job) -> List[Job]:
        with self._lock:
            return [job] + list(job._followers)

    def _cancel_group(self, job: Job) -> None:
        for member in self._group(job):
            if member.cancel():
                with self._lock:
                    self.cancelled += 1
        with self._lock:
            if job.key is not None and self._inflight.get(job.key) is job:
                del self._inflight[job.key]

    def _fail_group(self, job: Job, error: str) -> None:
        with self._lock:
            if job.key is not None and self._inflight.get(job.key) is job:
                del self._inflight[job.key]
            self.failed += 1
        for member in self._group(job):
            member._finish(JobStatus.FAILED, error=error)

    def _evaluate_chunk(self, chunk: List[Job]) -> None:
        # Controls may differ between jobs of one drain (concurrent
        # submitters); evaluate per controls-group, preserving drain order.
        by_controls: "Dict[int, Tuple[RunControls, List[Job]]]" = {}
        for job in chunk:
            group = by_controls.setdefault(id(job.controls), (job.controls, []))
            group[1].append(job)
        for controls, jobs in by_controls.values():
            self._evaluate_batch(jobs, controls)

    def _evaluate_batch(self, jobs: List[Job], controls: RunControls) -> None:
        live: List[Job] = []
        for job in jobs:
            group = self._group(job)
            started = [m for m in group if m._begin()]
            if job not in started and all(m.status.terminal for m in group):
                # Everyone cancelled before evaluation began: drop the work.
                with self._lock:
                    if job.key is not None and self._inflight.get(job.key) is job:
                        del self._inflight[job.key]
                continue
            live.append(job)
        if not live:
            return
        with self._lock:
            multi = self._multi
        if multi is None:  # pragma: no cover - layouts vanished underneath
            for job in live:
                self._fail_group(job, "no layouts registered")
            return
        tagged = [(job.layout, _denormalise(job.item)) for job in live]
        results = multi.run_many(
            tagged,
            workers=self.workers,
            on_error="zero",
            start_method=self.start_method,
            controls=controls,
        )
        for job, result in zip(live, results):
            # Publish to the cache BEFORE dropping the in-flight entry: a
            # concurrent submitter checks cache first, then in-flight, so
            # this order leaves no window in which it would re-evaluate.
            self.cache.put(job.key, result)
            with self._lock:
                if job.key is not None and self._inflight.get(job.key) is job:
                    del self._inflight[job.key]
                self.evaluated += 1
                if result.failed:
                    self.failed += 1
            for member in self._group(job):
                member._finish(
                    JobStatus.DONE, result=relabel(result, member.label)
                )


def _denormalise(item) -> BatchItem:
    """Normalised ``(config, rs_counts, capacity)`` back to a batch item."""
    configuration, rs_counts, capacity = item
    base: BatchItem = configuration if configuration is not None else rs_counts
    if capacity is None:
        return base
    return (base, {"queue_capacity": capacity})
