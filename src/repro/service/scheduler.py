"""The evaluation service: many submitters, one pool, zero repeated work.

:class:`EvaluationService` turns the batch engine into a long-lived,
serveable subsystem.  Any number of concurrent submitters (sweep loops,
optimiser strategies, Table 1 harnesses, CLI invocations) hand it tagged
batch items; one scheduler thread multiplexes them — in priority order —
onto a single persistent :class:`~repro.engine.batch.MultiNetlistRunner`
whose layouts all share one
:class:`~repro.engine.steady_state.PeriodMemory`, so steady-state periods
detected for one job warm-start the detection windows of every sibling
shape that follows.  Results come back three ways: the async iterator
(``async for job in service.stream(items, ...)``), the synchronous
completion-order generator (:meth:`JobSet.results`), and per-job completion
callbacks (``submit(..., on_result=...)``).

Three layers keep repeated work at zero:

1. **result cache** — every request is content-addressed (see
   :mod:`repro.service.cache`); a hit completes the job at submit time
   without ever touching the scheduler;
2. **in-flight dedup** — a request whose address matches a job that is
   queued or running attaches to it as a *follower* and receives a copy of
   the result when the primary completes: two optimiser strategies (or two
   asyncio tasks) racing over the same candidate cost one simulation;
3. **warm starts** — the shared period memory and the per-layout compiled
   kernel caches of the underlying runners persist across jobs.

Execution is chunked: the scheduler drains up to one *chunk* of jobs per
step (respecting priorities), evaluates the chunk through the pool
(``workers`` processes, fork- and spawn-safe — the batch layer's machinery),
and completes the chunk's jobs before draining the next.  With serial
workers the chunk size is 1, which is what makes long sweeps *stream*:
row k is delivered while row k+1 simulates.

The service is fault-tolerant end to end (DESIGN.md §8).  Per-item failures
never surface here — the supervised pool under ``run_many`` quarantines them
into error rows — but a chunk evaluation can still *raise* (give-up after
respawn-budget exhaustion with serial fallback also failing, a corrupted
work spec, resource exhaustion in the driver).  Such jobs are not doomed on
first strike: each is re-enqueued until its ``max_job_attempts`` budget runs
out, and only then fails terminally (``job.error`` carries the last
message).  ``max_pending`` bounds the submission queue — ``submit()`` blocks
(outside every lock) until room frees up, so a fast producer cannot race
unbounded memory ahead of the pool.  ``close(cancel_pending=True)`` is also
bounded: it joins the scheduler thread for ``join_timeout`` seconds and, if
a wedged evaluation keeps the thread alive past that, *fails* the in-flight
jobs rather than orphaning their submitters on a wait that never returns.
"""

from __future__ import annotations

import itertools
import math
import queue
import threading
from typing import Any, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from ..core.exceptions import SimulationError
from ..core.netlist import Netlist
from ..engine.batch import (
    BatchItem,
    BatchRunner,
    MultiNetlistRunner,
    TaggedItem,
)
from ..engine.kernel import RunControls
from ..engine.result import SupervisionStats
from ..engine.steady_state import PeriodMemory
from .cache import ResultCache, relabel, result_key
from .jobs import Job, JobSet, JobStatus

#: Queue entry sorting: (priority, submission sequence) — lower runs first,
#: FIFO within one priority level.  The sentinel sorts after everything, so
#: `close()` drains gracefully.
_SENTINEL_PRIORITY = math.inf


class EvaluationService:
    """Async streaming evaluation scheduler over one persistent runner pool.

    Parameters
    ----------
    runners:
        Initial layouts, ``{name: BatchRunner}`` (more can be registered
        later through :meth:`add_layout` / :meth:`ensure_layout`).  May be
        empty — the optimiser and sweep integrations register theirs on
        first use.
    cache:
        The :class:`~repro.service.cache.ResultCache` to consult; None
        builds a default in-memory cache (pass one with ``cache_dir`` for
        the persistent disk tier).
    workers / start_method:
        Fan-out of each evaluated chunk, forwarded to
        :meth:`~repro.engine.batch.MultiNetlistRunner.run_many` (fork- and
        spawn-safe; serial when 1).
    chunk_size:
        Jobs evaluated per scheduler step.  None picks 1 for serial workers
        (finest streaming granularity) and ``4 × workers`` otherwise.
    autostart:
        Start the scheduler thread on first submit (default).  Tests pass
        False to stage jobs and observe dedup deterministically, then call
        :meth:`start`.
    max_job_attempts:
        Times one job may *begin* evaluating before a raising chunk makes
        its failure terminal (default 2: one retry).  Per-item simulation
        errors are not attempts — they come back as error rows, not raises.
    max_pending:
        Bound on jobs queued but not yet evaluated; ``submit()`` blocks
        until room frees up.  None (default) leaves the queue unbounded.
    coordinator:
        A :class:`repro.distributed.Coordinator` to fan chunks out across
        remote worker agents.  With live agents connected, chunk evaluation
        routes over the wire (lease/heartbeat supervision, same
        retry/quarantine ladder); with none, the local pool path runs
        untouched.  The service does not own the coordinator's lifecycle —
        the creator closes it.
    join_timeout:
        Seconds ``close(cancel_pending=True)`` waits for the scheduler
        thread before declaring the in-flight chunk abandoned and failing
        its jobs (an explicit ``close(timeout=...)`` overrides it).
    """

    def __init__(
        self,
        runners: Optional[Mapping[str, BatchRunner]] = None,
        *,
        cache: Optional[ResultCache] = None,
        workers: int = 1,
        chunk_size: Optional[int] = None,
        start_method: Optional[str] = None,
        period_memory: Optional[PeriodMemory] = None,
        autostart: bool = True,
        max_job_attempts: int = 2,
        max_pending: Optional[int] = None,
        join_timeout: float = 10.0,
        coordinator: Optional[object] = None,
    ) -> None:
        if max_job_attempts < 1:
            raise SimulationError(
                f"max_job_attempts must be >= 1, got {max_job_attempts}"
            )
        if max_pending is not None and max_pending < 1:
            raise SimulationError(
                f"max_pending must be >= 1 (or None), got {max_pending}"
            )
        self.cache = cache if cache is not None else ResultCache()
        self.workers = workers
        self.chunk_size = chunk_size
        self.start_method = start_method
        self.period_memory = (
            period_memory if period_memory is not None else PeriodMemory()
        )
        self.autostart = autostart
        self.max_job_attempts = max_job_attempts
        self.join_timeout = join_timeout
        self.coordinator = coordinator
        #: Backpressure: one slot per queued-but-not-yet-drained job.
        self._pending: Optional[threading.Semaphore] = (
            threading.Semaphore(max_pending) if max_pending is not None else None
        )
        self._lock = threading.RLock()
        self._runners: Dict[str, BatchRunner] = dict(runners or {})
        self._multi: Optional[MultiNetlistRunner] = None
        if self._runners:
            self._multi = MultiNetlistRunner(self._runners)
        # Entries: (priority, seq, job | None sentinel, holds-a-pending-slot).
        self._queue: (
            "queue.PriorityQueue[Tuple[float, int, Optional[Job], bool]]"
        ) = queue.PriorityQueue()
        self._inflight: Dict[str, Job] = {}
        #: The chunk the scheduler thread is currently evaluating (under
        #: self._lock); close() fails these when the thread outlives its join.
        self._current: List[Job] = []
        self._seq = itertools.count()
        self._job_ids = itertools.count(1)
        self._thread: Optional[threading.Thread] = None
        self._closed = False
        # Counters (under self._lock).
        self.submitted = 0
        self.evaluated = 0
        self.deduped = 0
        self.cancelled = 0
        self.failed = 0
        self.retried = 0

    # -- layout registry ----------------------------------------------------
    def add_layout(self, name: str, runner: BatchRunner) -> str:
        """Register a prebuilt runner under *name* (error on conflicts)."""
        with self._lock:
            existing = self._runners.get(name)
            if existing is not None:
                if existing is runner:
                    return name
                raise SimulationError(
                    f"layout {name!r} is already registered with a different "
                    "runner"
                )
            self._register(name, runner)
        return name

    def ensure_layout(
        self,
        netlist: Netlist,
        *,
        name: Optional[str] = None,
        relaxed: bool = False,
        kernel: Optional[str] = None,
        **runner_kwargs: Any,
    ) -> str:
        """Register (or find) a layout for *netlist* and return its name.

        Without *name* a deterministic one is derived from the netlist's
        content digest and the runner parameters, so repeated calls with an
        equal netlist — even a freshly rebuilt copy — resolve to the same
        layout and therefore the same caches.  With *name*, a registered
        layout is reused only when its netlist content matches; a mismatch
        is an error (silently swapping netlists under one name would poison
        every consumer grouping results by layout).

        The created runner always joins the service's shared
        :class:`~repro.engine.steady_state.PeriodMemory`.
        """
        with self._lock:
            probe = BatchRunner(
                netlist,
                relaxed=relaxed,
                kernel=kernel,
                period_memory=self.period_memory,
                **runner_kwargs,
            )
            digest = probe.netlist_digest() or f"id{id(netlist):x}"
            if name is None:
                name = (
                    f"nl-{digest[:12]}-{'wp2' if relaxed else 'wp1'}"
                    f"-{probe.kernel_name}-q{probe.queue_capacity}"
                    f"-r{probe.rs_capacity}"
                )
            existing = self._runners.get(name)
            if existing is not None:
                # Undigestable (unpicklable) netlists have no content
                # address, so only object identity can prove equality —
                # None == None must NOT alias two different netlists.
                same_netlist = (
                    existing.netlist is netlist
                    or (
                        existing.netlist_digest() is not None
                        and existing.netlist_digest() == probe.netlist_digest()
                    )
                )
                if (
                    same_netlist
                    and existing.relaxed == relaxed
                    and existing.kernel_name == probe.kernel_name
                    and existing.queue_capacity == probe.queue_capacity
                    and existing.rs_capacity == probe.rs_capacity
                ):
                    return name
                raise SimulationError(
                    f"layout {name!r} is already registered with a different "
                    "netlist or runner parameters"
                )
            self._register(name, probe)
        return name

    def _register(self, name: str, runner: BatchRunner) -> None:
        self._runners[name] = runner
        if self._multi is None:
            self._multi = MultiNetlistRunner(self._runners)
        else:
            # The MultiNetlistRunner shares our dict; keep both views equal.
            self._multi.runners[name] = runner

    def runner(self, name: str) -> BatchRunner:
        with self._lock:
            try:
                return self._runners[name]
            except KeyError:
                raise SimulationError(
                    f"unknown layout {name!r}; available: "
                    f"{sorted(self._runners)}"
                ) from None

    @property
    def layouts(self) -> List[str]:
        with self._lock:
            return sorted(self._runners)

    # -- submission ---------------------------------------------------------
    def submit(
        self,
        items: Iterable[TaggedItem],
        *,
        priority: int = 0,
        on_result=None,
        tags: Optional[Sequence[Any]] = None,
        queue_capacity: Optional[int] = None,
        controls: Optional[RunControls] = None,
        **control_kwargs: Any,
    ) -> JobSet:
        """Queue every ``(layout name, batch item)`` and return the handle.

        Thread-safe; any number of submitters may call this concurrently.
        *priority* orders jobs across all submitters (lower runs first,
        FIFO within a level).  *on_result* is invoked — in the scheduler
        thread — for each job reaching a terminal state; *tags* attaches
        per-item submitter context (parallel to *items*).  Run controls
        follow :meth:`~repro.engine.batch.MultiNetlistRunner.run_many`:
        keyword fields or a prebuilt :class:`RunControls` object.

        Jobs whose content-address hits the cache complete before this
        method returns (``job.cached``, with *on_result* invoked in the
        submitting thread); jobs matching a queued or running address
        attach to it and complete with it (``job.deduped``).
        """
        if controls is None:
            controls_obj = RunControls(**control_kwargs)
        elif control_kwargs:
            raise SimulationError(
                "pass run controls either as a RunControls object or as "
                f"keyword arguments, not both (got {sorted(control_kwargs)})"
            )
        else:
            controls_obj = controls
        item_list = list(items)
        tag_list = list(tags) if tags is not None else [None] * len(item_list)
        if len(tag_list) != len(item_list):
            raise SimulationError(
                f"tags ({len(tag_list)}) must parallel items ({len(item_list)})"
            )
        jobset = JobSet()
        enqueued = False
        for (layout, entry), tag in zip(item_list, tag_list):
            # Normalisation, key derivation and the (possibly disk-backed)
            # cache probe all run OUTSIDE the service lock: only the
            # in-flight bookkeeping below needs atomicity, and completing a
            # cache hit here may run user callbacks, which must never hold
            # a lock the scheduler thread also takes.
            runner = self.runner(layout)
            norm = runner._normalise_item(entry, queue_capacity)
            configuration = norm[0]
            label = (
                configuration.label
                if configuration is not None
                else "per-channel"
            )
            key = result_key(runner, norm, controls_obj)
            job = Job(
                job_id=next(self._job_ids),
                layout=layout,
                item=norm,
                label=label,
                controls=controls_obj,
                priority=priority,
                key=key,
                tag=tag,
            )
            if on_result is not None:
                job._callbacks.append(on_result)
            jobset._add(job)
            cached = self.cache.get(key) if key is not None else None
            holds_slot = False
            if cached is None and self._pending is not None:
                # Backpressure: block OUTSIDE every lock until the queue has
                # room.  Acquiring under self._lock would deadlock against
                # the scheduler thread, which needs the lock to complete
                # jobs and the queue drain to free slots.
                self._pending.acquire()
                holds_slot = True
            try:
                with self._lock:
                    if self._closed:
                        raise SimulationError("EvaluationService is closed")
                    self.submitted += 1
                    if cached is None and key is not None:
                        primary = self._inflight.get(key)
                        if primary is not None:
                            job.deduped = True
                            primary._followers.append(job)
                            self.deduped += 1
                            continue  # the finally below frees the slot
                        # The scheduler publishes to the in-memory cache tier
                        # before dropping an in-flight entry, so a re-check
                        # here (memory only — no disk I/O under the lock)
                        # closes the window between our probe and now.
                        cached = self.cache.get(key, memory_only=True)
                    if cached is None:
                        if key is not None:
                            self._inflight[key] = job
                        # Enqueue while still holding the lock: close() also
                        # takes it, so a job is either queued before close()
                        # drains, or the submit fails the closed check above —
                        # never stranded in between.
                        self._queue.put(
                            (float(job.priority), next(self._seq), job,
                             holds_slot)
                        )
                        holds_slot = False  # the queue entry owns it now
                        enqueued = True
            finally:
                if holds_slot:
                    self._pending.release()
            if cached is not None:
                job._finish(
                    JobStatus.DONE, result=relabel(cached, label), cached=True
                )
        if enqueued and self.autostart:
            self.start()
        return jobset

    def stream(
        self,
        items: Iterable[TaggedItem],
        *,
        priority: int = 0,
        queue_capacity: Optional[int] = None,
        controls: Optional[RunControls] = None,
        **control_kwargs: Any,
    ):
        """Submit and return the async completion iterator in one call.

        ``async for job in service.stream(items, stop_process="CU"): ...``
        yields each :class:`Job` as it reaches a terminal state; cache hits
        arrive first (they are already complete), then evaluated chunks as
        the pool delivers them.
        """
        jobset = self.submit(
            items,
            priority=priority,
            queue_capacity=queue_capacity,
            controls=controls,
            **control_kwargs,
        )
        return jobset.stream()

    # -- lifecycle ----------------------------------------------------------
    def start(self) -> None:
        """Start the scheduler thread (idempotent; no-op once closed)."""
        with self._lock:
            if self._closed:
                return
            if self._thread is None or not self._thread.is_alive():
                self._thread = threading.Thread(
                    target=self._loop,
                    name="repro-evaluation-service",
                    daemon=True,
                )
                self._thread.start()

    def close(
        self,
        cancel_pending: bool = False,
        timeout: Optional[float] = None,
    ) -> None:
        """Drain outstanding jobs and stop the scheduler thread.

        The shutdown sentinel sorts after every real priority, so queued
        jobs are evaluated before the thread exits; with *cancel_pending*
        they are cancelled instead (running chunks still finish — there is
        no preemption point inside a simulation).

        The join is bounded when *cancel_pending* is set (by *timeout*, or
        the service's ``join_timeout``): a chunk wedged in a hung
        simulation would otherwise hold every ``job.wait()`` caller hostage
        forever.  On expiry the in-flight jobs are **failed** — their
        submitters unblock with ``status=FAILED`` and an explanatory error
        — and the daemon thread is abandoned to die with the process.  An
        explicit *timeout* bounds the join in the graceful mode too.
        """
        with self._lock:
            if self._closed:
                return
            self._closed = True
            thread = self._thread
        if cancel_pending:
            self._drain_queue(cancel=True)
        if thread is not None and thread.is_alive():
            self._queue.put(
                (_SENTINEL_PRIORITY, next(self._seq), None, False)
            )
            join_for = timeout
            if join_for is None and cancel_pending:
                join_for = self.join_timeout
            thread.join(join_for)
            if thread.is_alive():
                # The scheduler is wedged inside an evaluation (a hung
                # simulation with no shard_timeout, a blocking on_cycle
                # observer).  Fail the in-flight chunk so its submitters
                # unblock instead of waiting on a join that never returns.
                with self._lock:
                    stuck = list(self._current)
                for job in stuck:
                    self._fail_group(
                        job,
                        "evaluation abandoned at close(): scheduler thread "
                        f"still busy after {join_for:.1f}s",
                    )
                self._drain_queue(cancel=True)
        else:
            # Never started: nothing will drain the queue; cancel leftovers.
            self._drain_queue(cancel=True)

    def _drain_queue(self, cancel: bool) -> None:
        """Empty the queue, freeing backpressure slots (cancelling jobs too)."""
        while True:
            try:
                entry = self._queue.get_nowait()
            except queue.Empty:
                return
            _, _, job, holds_slot = entry
            if holds_slot and self._pending is not None:
                self._pending.release()
            if job is not None and cancel:
                self._cancel_group(job)

    def __enter__(self) -> "EvaluationService":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def stats(self) -> Dict[str, Any]:
        """Service counters plus the cache's and the pool's supervision record.

        ``supervision`` merges the recovery counters of every pooled
        ``run_many`` the service has driven (see
        :class:`~repro.engine.result.SupervisionStats`); all-zero means no
        worker was ever lost.  With a coordinator attached,
        ``supervision["workers"]`` breaks the record down per remote worker
        id (connection state, quarantine, fault strikes, completed shards).

        The derived ratios are computed here, from the very counters this
        snapshot carries — one consistent view under one lock — so exporters
        (the serving tier's ``/metrics`` endpoint) never recompute them from
        counters read at different instants:

        * ``cache_hit_rate`` — cache hits over lookups (0.0 before any);
        * ``dedup_rate`` — in-flight piggybacks over submitted jobs.
        """
        with self._lock:
            supervision = (
                self._multi.supervision
                if self._multi is not None
                else SupervisionStats()
            )
            supervision_dict: Dict[str, Any] = supervision.to_dict()
            supervision_dict["workers"] = (
                self.coordinator.worker_stats()
                if self.coordinator is not None
                else {}
            )
            cache_stats = self.cache.stats()
            lookups = cache_stats["hits"] + cache_stats["misses"]
            return {
                "submitted": self.submitted,
                "evaluated": self.evaluated,
                "deduped": self.deduped,
                "cancelled": self.cancelled,
                "failed": self.failed,
                "retried": self.retried,
                "inflight": len(self._inflight),
                "queue_depth": self._queue.qsize(),
                "layouts": sorted(self._runners),
                "cache": cache_stats,
                "cache_hit_rate": (
                    cache_stats["hits"] / lookups if lookups else 0.0
                ),
                "dedup_rate": (
                    self.deduped / self.submitted if self.submitted else 0.0
                ),
                "supervision": supervision_dict,
            }

    # -- scheduler internals ------------------------------------------------
    def _chunk_limit(self) -> int:
        if self.chunk_size is not None:
            return max(1, self.chunk_size)
        return 1 if self.workers <= 1 else 4 * self.workers

    def _release_slot(self, entry: Tuple) -> None:
        """Free the backpressure slot a popped queue entry was holding."""
        if entry[3] and self._pending is not None:
            self._pending.release()

    def _loop(self) -> None:
        while True:
            entry = self._queue.get()
            self._release_slot(entry)
            if entry[2] is None:
                break
            chunk: List[Job] = [entry[2]]
            limit = self._chunk_limit()
            stop = False
            while len(chunk) < limit:
                try:
                    nxt = self._queue.get_nowait()
                except queue.Empty:
                    break
                self._release_slot(nxt)
                if nxt[2] is None:
                    stop = True
                    break
                chunk.append(nxt[2])
            with self._lock:
                self._current = list(chunk)
            try:
                self._evaluate_chunk(chunk)
            except Exception as exc:  # noqa: BLE001 - keep the service alive
                message = f"{type(exc).__name__}: {exc}"
                for job in chunk:
                    self._retry_or_fail(job, message)
            finally:
                with self._lock:
                    self._current = []
            if stop:
                break

    def _retry_or_fail(self, job: Job, error: str) -> None:
        """Route a job whose chunk evaluation raised: re-enqueue or doom it.

        A job keeps its place in the retry game while the service is open
        and its ``attempts`` budget has room; a job that close() already
        failed (or a submitter cancelled) is terminal and left alone by
        ``_fail_group``'s exactly-once semantics.
        """
        with self._lock:
            closed = self._closed
        if not closed and job.attempts < self.max_job_attempts:
            # RUNNING → PENDING for jobs that began; jobs from a later
            # controls-group of the chunk never began and are still PENDING.
            if job._requeue() or job.status is JobStatus.PENDING:
                with self._lock:
                    self.retried += 1
                self._queue.put(
                    (float(job.priority), next(self._seq), job, False)
                )
                return
        self._fail_group(job, error)

    def _group(self, job: Job) -> List[Job]:
        with self._lock:
            return [job] + list(job._followers)

    def _cancel_group(self, job: Job) -> None:
        for member in self._group(job):
            if member.cancel():
                with self._lock:
                    self.cancelled += 1
        with self._lock:
            if job.key is not None and self._inflight.get(job.key) is job:
                del self._inflight[job.key]

    def _fail_group(self, job: Job, error: str) -> None:
        with self._lock:
            if job.key is not None and self._inflight.get(job.key) is job:
                del self._inflight[job.key]
            self.failed += 1
        for member in self._group(job):
            member._finish(JobStatus.FAILED, error=error)

    def _evaluate_chunk(self, chunk: List[Job]) -> None:
        # Controls may differ between jobs of one drain (concurrent
        # submitters); evaluate per controls-group, preserving drain order.
        by_controls: "Dict[int, Tuple[RunControls, List[Job]]]" = {}
        for job in chunk:
            group = by_controls.setdefault(id(job.controls), (job.controls, []))
            group[1].append(job)
        for controls, jobs in by_controls.values():
            self._evaluate_batch(jobs, controls)

    def _evaluate_batch(self, jobs: List[Job], controls: RunControls) -> None:
        live: List[Job] = []
        for job in jobs:
            group = self._group(job)
            started = [m for m in group if m._begin()]
            if job not in started and all(m.status.terminal for m in group):
                # Everyone cancelled before evaluation began: drop the work.
                with self._lock:
                    if job.key is not None and self._inflight.get(job.key) is job:
                        del self._inflight[job.key]
                continue
            live.append(job)
        if not live:
            return
        with self._lock:
            multi = self._multi
        if multi is None:  # pragma: no cover - layouts vanished underneath
            for job in live:
                self._fail_group(job, "no layouts registered")
            return
        tagged = [(job.layout, _denormalise(job.item)) for job in live]
        results = multi.run_many(
            tagged,
            workers=self.workers,
            on_error="zero",
            start_method=self.start_method,
            controls=controls,
            coordinator=self.coordinator,
        )
        for job, result in zip(live, results):
            # Publish to the cache BEFORE dropping the in-flight entry: a
            # concurrent submitter checks cache first, then in-flight, so
            # this order leaves no window in which it would re-evaluate.
            self.cache.put(job.key, result)
            with self._lock:
                if job.key is not None and self._inflight.get(job.key) is job:
                    del self._inflight[job.key]
                self.evaluated += 1
                if result.failed:
                    self.failed += 1
            for member in self._group(job):
                member._finish(
                    JobStatus.DONE, result=relabel(result, member.label)
                )


def _denormalise(item) -> BatchItem:
    """Normalised ``(config, rs_counts, capacity)`` back to a batch item."""
    configuration, rs_counts, capacity = item
    base: BatchItem = configuration if configuration is not None else rs_counts
    if capacity is None:
        return base
    return (base, {"queue_capacity": capacity})
