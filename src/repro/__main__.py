"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``table1``     regenerate Table 1 (sort section by default, ``--matmul`` for both)
``figure1``    print the Figure 1 topology / loop report
``multicycle`` print the multicycle-vs-pipelined WP2 gain comparison
``area``       print the wrapper area-overhead report
``sweep``      run one of the ablation sweeps (fifo / depth / clock / mixed)

Every command accepts ``--format text|markdown|csv|json`` where it makes
sense; the default is the plain-text layout used in EXPERIMENTS.md.  The
simulating commands (``table1``, ``multicycle``, ``sweep``) accept
``--kernel reference|fast|compiled`` to select the simulation engine (see
:mod:`repro.engine`); when the flag is omitted the ``REPRO_KERNEL``
environment variable is consulted, and the fast array-based kernel is the
final default.  ``table1`` and ``sweep`` also accept ``--shards N`` to
evaluate their configuration batches on N worker processes, and
``--no-steady-state`` to disable steady-state period detection (threaded
through the run controls of every simulation the command starts; the
``REPRO_STEADY_STATE`` environment variable is also set for the duration
of the command — and restored afterwards — so spawned workers inherit the
choice).  ``table1 --horizon N`` runs every row on the looping workload
variant for exactly N cycles and reports the asymptotic (steady-state
extrapolated) throughput.  ``sweep mixed`` runs the sort and matmul
workloads through one multi-netlist scheduler pool.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import List, Optional


def _add_kernel_option(parser) -> None:
    parser.add_argument(
        "--kernel",
        choices=("reference", "fast", "compiled"),
        default=None,
        help=(
            "simulation kernel; omitted -> $REPRO_KERNEL if set, "
            "else the fast array-based kernel"
        ),
    )


def _add_shards_option(parser) -> None:
    parser.add_argument(
        "--shards",
        type=int,
        default=1,
        metavar="N",
        help=(
            "evaluate configuration batches on N worker processes "
            "(sharded; works under fork and spawn)"
        ),
    )


def _add_steady_state_option(parser) -> None:
    parser.add_argument(
        "--no-steady-state",
        action="store_true",
        help=(
            "disable steady-state period detection / extrapolation "
            "(equivalent to REPRO_STEADY_STATE=0)"
        ),
    )


def _add_table1(subparsers) -> None:
    parser = subparsers.add_parser("table1", help="regenerate Table 1")
    parser.add_argument("--sort-length", type=int, default=16)
    parser.add_argument("--matmul", action="store_true", help="also run the matmul section")
    parser.add_argument("--matmul-size", type=int, default=5)
    parser.add_argument("--seed", type=int, default=2005)
    parser.add_argument("--multicycle", action="store_true")
    parser.add_argument("--format", choices=("text", "markdown", "csv", "json"), default="text")
    parser.add_argument(
        "--horizon",
        type=int,
        default=None,
        metavar="N",
        help=(
            "run every row on the looping workload variant for exactly N "
            "cycles and report the asymptotic throughput; the CPU units' "
            "certified schedule summaries let the steady-state detector "
            "extrapolate the rows bit-identically to full simulation"
        ),
    )
    _add_kernel_option(parser)
    _add_shards_option(parser)
    _add_steady_state_option(parser)


def _add_simple(subparsers, name: str, help_text: str) -> None:
    subparsers.add_parser(name, help=help_text)


def _add_sweep(subparsers) -> None:
    parser = subparsers.add_parser("sweep", help="run an ablation sweep")
    parser.add_argument("kind", choices=("fifo", "depth", "clock", "mixed"))
    parser.add_argument("--sort-length", type=int, default=10)
    parser.add_argument("--matmul-size", type=int, default=3)
    parser.add_argument("--format", choices=("text", "markdown", "csv"), default="text")
    _add_kernel_option(parser)
    _add_shards_option(parser)
    _add_steady_state_option(parser)


def _add_multicycle(subparsers) -> None:
    parser = subparsers.add_parser(
        "multicycle", help="multicycle vs pipelined WP2 gains"
    )
    _add_kernel_option(parser)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="Wire-pipelined SoC reproduction experiment runner"
    )
    subparsers = parser.add_subparsers(dest="command", required=True)
    _add_table1(subparsers)
    _add_simple(subparsers, "figure1", "print the Figure 1 topology report")
    _add_multicycle(subparsers)
    _add_simple(subparsers, "area", "wrapper area overhead report")
    _add_sweep(subparsers)
    return parser


def _steady_state_flag(args) -> Optional[bool]:
    """``--no-steady-state`` as an explicit RunControls argument (else None)."""
    return False if getattr(args, "no_steady_state", False) else None


def _run_table1(args) -> int:
    from .experiments import run_table1_matmul, run_table1_sort
    from .experiments.report import table1_to_csv, table1_to_json, table1_to_markdown

    steady_state = _steady_state_flag(args)
    results = {
        "sort": run_table1_sort(
            length=args.sort_length, seed=args.seed,
            pipelined=not args.multicycle, kernel=args.kernel,
            workers=args.shards, horizon=args.horizon,
            steady_state=steady_state,
        )
    }
    if args.matmul:
        results["matmul"] = run_table1_matmul(
            size=args.matmul_size, seed=args.seed,
            pipelined=not args.multicycle, kernel=args.kernel,
            workers=args.shards, horizon=args.horizon,
            steady_state=steady_state,
        )
    if args.format == "json":
        print(table1_to_json(results))
        return 0
    for result in results.values():
        if args.format == "markdown":
            print(table1_to_markdown(result))
        elif args.format == "csv":
            print(table1_to_csv(result), end="")
        else:
            print(result.format())
        print()
    return 0


def _run_sweep(args) -> int:
    from .cpu.workloads import make_extraction_sort, make_matrix_multiply
    from .experiments import (
        clock_frequency_sweep,
        mixed_workload_sweep,
        queue_capacity_sweep,
        uniform_depth_sweep,
    )
    from .experiments.report import sweep_to_csv, sweep_to_markdown

    steady_state = _steady_state_flag(args)
    workload = make_extraction_sort(length=args.sort_length, seed=2005)
    if args.kind == "mixed":
        results = mixed_workload_sweep(
            workloads={
                "extraction_sort": workload,
                "matrix_multiply": make_matrix_multiply(
                    size=args.matmul_size, seed=2005
                ),
            },
            kernel=args.kernel,
            workers=args.shards,
            steady_state=steady_state,
        )
        for result in results.values():
            if args.format == "markdown":
                print(sweep_to_markdown(result))
            elif args.format == "csv":
                print(sweep_to_csv(result), end="")
            else:
                print(result.format())
            print()
        return 0
    if args.kind == "fifo":
        result = queue_capacity_sweep(
            workload=workload, kernel=args.kernel, workers=args.shards,
            steady_state=steady_state,
        )
    elif args.kind == "depth":
        result = uniform_depth_sweep(
            workload=workload, kernel=args.kernel, workers=args.shards,
            steady_state=steady_state,
        )
    else:
        result = clock_frequency_sweep(
            workload=workload, kernel=args.kernel, workers=args.shards,
            steady_state=steady_state,
        )
    if args.format == "markdown":
        print(sweep_to_markdown(result))
    elif args.format == "csv":
        print(sweep_to_csv(result), end="")
    else:
        print(result.format())
    return 0


def _dispatch(args) -> int:
    if args.command == "table1":
        return _run_table1(args)
    if args.command == "figure1":
        from .experiments import run_figure1

        print(run_figure1().format())
        return 0
    if args.command == "multicycle":
        from .experiments import run_multicycle_study

        print(run_multicycle_study(kernel=args.kernel).format())
        return 0
    if args.command == "area":
        from .experiments import reference_wrapper_overhead_percent, run_area_overhead

        print(
            "reference wrapper overhead: "
            f"WP1 {reference_wrapper_overhead_percent(relaxed=False):.3f} %, "
            f"WP2 {reference_wrapper_overhead_percent(relaxed=True):.3f} % "
            "of a 100 kgate IP"
        )
        print(run_area_overhead().format())
        return 0
    if args.command == "sweep":
        return _run_sweep(args)
    return 1


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if not getattr(args, "no_steady_state", False):
        return _dispatch(args)
    # --no-steady-state is threaded through RunControls (steady_state=False)
    # by the command runners; the environment variable is additionally set
    # for the duration of the command so layers that only consult the env —
    # notably spawned worker processes — inherit the choice, and restored
    # afterwards so nothing leaks into later in-process API calls.
    env_var = "REPRO_STEADY_STATE"
    previous = os.environ.get(env_var)
    os.environ[env_var] = "0"
    try:
        return _dispatch(args)
    finally:
        if previous is None:
            os.environ.pop(env_var, None)
        else:
            os.environ[env_var] = previous


if __name__ == "__main__":
    sys.exit(main())
