"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``table1``     regenerate Table 1 (sort section by default, ``--matmul`` for both)
``figure1``    print the Figure 1 topology / loop report
``multicycle`` print the multicycle-vs-pipelined WP2 gain comparison
``area``       print the wrapper area-overhead report
``sweep``      run one of the ablation sweeps (fifo / depth / clock / mixed)

Every command accepts ``--format text|markdown|csv|json`` where it makes
sense; the default is the plain-text layout used in EXPERIMENTS.md.  The
simulating commands (``table1``, ``multicycle``, ``sweep``) accept
``--kernel reference|fast|compiled`` to select the simulation engine (see
:mod:`repro.engine`); when the flag is omitted the ``REPRO_KERNEL``
environment variable is consulted, and the fast array-based kernel is the
final default.  ``table1`` and ``sweep`` also accept ``--shards N`` to
evaluate their configuration batches on N worker processes, and
``--no-steady-state`` to disable steady-state period detection (the flag
sets ``REPRO_STEADY_STATE=0``, which explicit ``steady_state=`` arguments
still override — mirroring the ``--kernel`` / ``REPRO_KERNEL`` pattern).
``table1 --horizon N`` caps every row at N cycles: rows cut at the horizon
report the asymptotic (steady-state extrapolated) throughput.  ``sweep
mixed`` runs the sort and matmul workloads through one multi-netlist
scheduler pool.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import List, Optional


def _add_kernel_option(parser) -> None:
    parser.add_argument(
        "--kernel",
        choices=("reference", "fast", "compiled"),
        default=None,
        help=(
            "simulation kernel; omitted -> $REPRO_KERNEL if set, "
            "else the fast array-based kernel"
        ),
    )


def _add_shards_option(parser) -> None:
    parser.add_argument(
        "--shards",
        type=int,
        default=1,
        metavar="N",
        help=(
            "evaluate configuration batches on N worker processes "
            "(sharded; works under fork and spawn)"
        ),
    )


def _add_steady_state_option(parser) -> None:
    parser.add_argument(
        "--no-steady-state",
        action="store_true",
        help=(
            "disable steady-state period detection / extrapolation "
            "(equivalent to REPRO_STEADY_STATE=0)"
        ),
    )


def _add_table1(subparsers) -> None:
    parser = subparsers.add_parser("table1", help="regenerate Table 1")
    parser.add_argument("--sort-length", type=int, default=16)
    parser.add_argument("--matmul", action="store_true", help="also run the matmul section")
    parser.add_argument("--matmul-size", type=int, default=5)
    parser.add_argument("--seed", type=int, default=2005)
    parser.add_argument("--multicycle", action="store_true")
    parser.add_argument("--format", choices=("text", "markdown", "csv", "json"), default="text")
    parser.add_argument(
        "--horizon",
        type=int,
        default=None,
        metavar="N",
        help=(
            "cap every row at N cycles; rows cut at the horizon report the "
            "asymptotic throughput (steady-state extrapolated on netlists "
            "whose processes support detection; the CPU's data-dependent "
            "control runs full simulation)"
        ),
    )
    _add_kernel_option(parser)
    _add_shards_option(parser)
    _add_steady_state_option(parser)


def _add_simple(subparsers, name: str, help_text: str) -> None:
    subparsers.add_parser(name, help=help_text)


def _add_sweep(subparsers) -> None:
    parser = subparsers.add_parser("sweep", help="run an ablation sweep")
    parser.add_argument("kind", choices=("fifo", "depth", "clock", "mixed"))
    parser.add_argument("--sort-length", type=int, default=10)
    parser.add_argument("--matmul-size", type=int, default=3)
    parser.add_argument("--format", choices=("text", "markdown", "csv"), default="text")
    _add_kernel_option(parser)
    _add_shards_option(parser)
    _add_steady_state_option(parser)


def _add_multicycle(subparsers) -> None:
    parser = subparsers.add_parser(
        "multicycle", help="multicycle vs pipelined WP2 gains"
    )
    _add_kernel_option(parser)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="Wire-pipelined SoC reproduction experiment runner"
    )
    subparsers = parser.add_subparsers(dest="command", required=True)
    _add_table1(subparsers)
    _add_simple(subparsers, "figure1", "print the Figure 1 topology report")
    _add_multicycle(subparsers)
    _add_simple(subparsers, "area", "wrapper area overhead report")
    _add_sweep(subparsers)
    return parser


def _run_table1(args) -> int:
    from .experiments import run_table1_matmul, run_table1_sort
    from .experiments.report import table1_to_csv, table1_to_json, table1_to_markdown

    results = {
        "sort": run_table1_sort(
            length=args.sort_length, seed=args.seed,
            pipelined=not args.multicycle, kernel=args.kernel,
            workers=args.shards, horizon=args.horizon,
        )
    }
    if args.matmul:
        results["matmul"] = run_table1_matmul(
            size=args.matmul_size, seed=args.seed,
            pipelined=not args.multicycle, kernel=args.kernel,
            workers=args.shards, horizon=args.horizon,
        )
    if args.format == "json":
        print(table1_to_json(results))
        return 0
    for result in results.values():
        if args.format == "markdown":
            print(table1_to_markdown(result))
        elif args.format == "csv":
            print(table1_to_csv(result), end="")
        else:
            print(result.format())
        print()
    return 0


def _run_sweep(args) -> int:
    from .cpu.workloads import make_extraction_sort, make_matrix_multiply
    from .experiments import (
        clock_frequency_sweep,
        mixed_workload_sweep,
        queue_capacity_sweep,
        uniform_depth_sweep,
    )
    from .experiments.report import sweep_to_csv, sweep_to_markdown

    workload = make_extraction_sort(length=args.sort_length, seed=2005)
    if args.kind == "mixed":
        results = mixed_workload_sweep(
            workloads={
                "extraction_sort": workload,
                "matrix_multiply": make_matrix_multiply(
                    size=args.matmul_size, seed=2005
                ),
            },
            kernel=args.kernel,
            workers=args.shards,
        )
        for result in results.values():
            if args.format == "markdown":
                print(sweep_to_markdown(result))
            elif args.format == "csv":
                print(sweep_to_csv(result), end="")
            else:
                print(result.format())
            print()
        return 0
    if args.kind == "fifo":
        result = queue_capacity_sweep(
            workload=workload, kernel=args.kernel, workers=args.shards
        )
    elif args.kind == "depth":
        result = uniform_depth_sweep(
            workload=workload, kernel=args.kernel, workers=args.shards
        )
    else:
        result = clock_frequency_sweep(
            workload=workload, kernel=args.kernel, workers=args.shards
        )
    if args.format == "markdown":
        print(sweep_to_markdown(result))
    elif args.format == "csv":
        print(sweep_to_csv(result), end="")
    else:
        print(result.format())
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if getattr(args, "no_steady_state", False):
        # The kernels consult REPRO_STEADY_STATE whenever no explicit
        # steady_state argument is passed, so one environment write covers
        # every layer the command touches (mirrors --kernel / REPRO_KERNEL).
        os.environ["REPRO_STEADY_STATE"] = "0"
    if args.command == "table1":
        return _run_table1(args)
    if args.command == "figure1":
        from .experiments import run_figure1

        print(run_figure1().format())
        return 0
    if args.command == "multicycle":
        from .experiments import run_multicycle_study

        print(run_multicycle_study(kernel=args.kernel).format())
        return 0
    if args.command == "area":
        from .experiments import reference_wrapper_overhead_percent, run_area_overhead

        print(
            "reference wrapper overhead: "
            f"WP1 {reference_wrapper_overhead_percent(relaxed=False):.3f} %, "
            f"WP2 {reference_wrapper_overhead_percent(relaxed=True):.3f} % "
            "of a 100 kgate IP"
        )
        print(run_area_overhead().format())
        return 0
    if args.command == "sweep":
        return _run_sweep(args)
    return 1


if __name__ == "__main__":
    sys.exit(main())
