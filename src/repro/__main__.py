"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``table1``     regenerate Table 1 (sort section by default, ``--matmul`` for both)
``figure1``    print the Figure 1 topology / loop report
``multicycle`` print the multicycle-vs-pipelined WP2 gain comparison
``area``       print the wrapper area-overhead report
``sweep``      run one of the ablation sweeps (fifo / depth / clock / mixed)
``topology``   generate, describe or sweep a synthetic netlist topology
               (``generate`` prints the graph, ``describe`` adds kernel and
               steady-state eligibility, ``sweep`` runs the WP1/WP2 depth
               sweep of :func:`repro.experiments.topology_sweep`)
``submit``     submit an ad-hoc job set to the evaluation service and
               stream results as they complete (``--connect HOST:PORT``
               sends the same sweep to a running daemon instead)
``serve``      run the network daemon: one long-lived evaluation service
               behind an HTTP API with per-tenant quotas and weighted
               fair scheduling (see :mod:`repro.server`)

Every command accepts ``--format text|markdown|csv|json`` where it makes
sense; the default is the plain-text layout used in EXPERIMENTS.md.  The
simulating commands (``table1``, ``multicycle``, ``sweep``, ``submit``)
accept ``--kernel reference|fast|compiled|lockstep`` to select the simulation
engine
(see :mod:`repro.engine`); when the flag is omitted the ``REPRO_KERNEL``
environment variable is consulted, and the fast array-based kernel is the
final default.  ``table1`` and ``sweep`` also accept ``--shards N`` to
evaluate their configuration batches on N worker processes, and
``--no-steady-state`` to disable steady-state period detection (threaded
through the run controls of every simulation the command starts; the
``REPRO_STEADY_STATE`` environment variable is also set for the duration
of the command — and restored afterwards — so spawned workers inherit the
choice).  ``table1 --horizon N`` runs every row on the looping workload
variant for exactly N cycles and reports the asymptotic (steady-state
extrapolated) throughput.  ``sweep mixed`` runs the sort and matmul
workloads through one multi-netlist scheduler pool.

Service integration (see :mod:`repro.service`): ``table1`` and ``sweep``
accept ``--cache-dir PATH`` to route every row through the evaluation
service with a persistent content-addressed result cache — re-running the
same command is then served from disk instead of re-simulating.  ``sweep
--stream`` prints each row to stderr the moment it completes (through the
same service).  ``submit`` is the raw service front door: it builds a mixed
WP1+WP2 job set over the chosen workloads and depths, streams completions
through the async iterator, and reports cache/dedup statistics.

Distributed evaluation (see :mod:`repro.distributed`): ``submit --serve
[HOST:]PORT`` starts a coordinator and fans shards out to remote worker
agents instead of a local process pool; ``--wait-workers N`` blocks until N
agents have registered before submitting (otherwise a worker-free
coordinator degrades to the local path).  ``worker --connect HOST:PORT``
runs one such agent: it registers, pulls time-leased shards, heartbeats
while evaluating, and survives coordinator restarts by re-registering.

Network serving (see :mod:`repro.server`): ``serve --port P`` runs the
multi-tenant daemon — submissions over HTTP, rows streamed back over SSE
or checksummed binary frames, ``/metrics`` for Prometheus, ``/status``
for humans.  Tenancy comes from the ``REPRO_SERVER_TOKENS`` environment
variable (JSON list of ``{"token", "name", "priority", "max_pending",
"weight"}`` objects; unset means open access); ``REPRO_SERVER_PORT`` and
``REPRO_SERVER_MAX_PENDING`` provide flag defaults.  All three are
validated eagerly at startup with errors naming the offending variable.
SIGTERM/SIGINT drain gracefully: new submissions get 503 while admitted
work finishes streaming.  ``serve --coordinator-port Q`` additionally
listens for ``repro worker`` agents and evaluates on them.  On the client
side, ``submit --connect HOST:PORT [--token T]`` runs the usual mixed
WP1+WP2 sweep through a daemon instead of an in-process service —
bit-identical rows, shared cache.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import List, Optional


def _add_kernel_option(parser) -> None:
    parser.add_argument(
        "--kernel",
        choices=("reference", "fast", "compiled", "lockstep"),
        default=None,
        help=(
            "simulation kernel; omitted -> $REPRO_KERNEL if set, "
            "else the fast array-based kernel; lockstep vectorises "
            "same-layout configuration batches with NumPy (repro[fast]) "
            "and falls back to fast where ineligible"
        ),
    )


def _add_shards_option(parser) -> None:
    parser.add_argument(
        "--shards",
        type=int,
        default=1,
        metavar="N",
        help=(
            "evaluate configuration batches on N worker processes "
            "(sharded; works under fork and spawn)"
        ),
    )


def _add_steady_state_option(parser) -> None:
    parser.add_argument(
        "--no-steady-state",
        action="store_true",
        help=(
            "disable steady-state period detection / extrapolation "
            "(equivalent to REPRO_STEADY_STATE=0)"
        ),
    )


def _add_cache_option(parser) -> None:
    parser.add_argument(
        "--cache-dir",
        default=None,
        metavar="PATH",
        help=(
            "evaluate through the service with a persistent content-"
            "addressed result cache at PATH (re-runs are served from disk)"
        ),
    )


def _add_stream_option(parser) -> None:
    parser.add_argument(
        "--stream",
        action="store_true",
        help="print each row to stderr the moment it completes",
    )


def _add_table1(subparsers) -> None:
    parser = subparsers.add_parser("table1", help="regenerate Table 1")
    parser.add_argument("--sort-length", type=int, default=16)
    parser.add_argument("--matmul", action="store_true", help="also run the matmul section")
    parser.add_argument("--matmul-size", type=int, default=5)
    parser.add_argument("--seed", type=int, default=2005)
    parser.add_argument("--multicycle", action="store_true")
    parser.add_argument("--format", choices=("text", "markdown", "csv", "json"), default="text")
    parser.add_argument(
        "--horizon",
        type=int,
        default=None,
        metavar="N",
        help=(
            "run every row on the looping workload variant for exactly N "
            "cycles and report the asymptotic throughput; the CPU units' "
            "certified schedule summaries let the steady-state detector "
            "extrapolate the rows bit-identically to full simulation"
        ),
    )
    _add_kernel_option(parser)
    _add_shards_option(parser)
    _add_steady_state_option(parser)
    _add_cache_option(parser)


def _add_simple(subparsers, name: str, help_text: str) -> None:
    subparsers.add_parser(name, help=help_text)


def _add_sweep(subparsers) -> None:
    parser = subparsers.add_parser("sweep", help="run an ablation sweep")
    parser.add_argument("kind", choices=("fifo", "depth", "clock", "mixed"))
    parser.add_argument("--sort-length", type=int, default=10)
    parser.add_argument("--matmul-size", type=int, default=3)
    parser.add_argument("--format", choices=("text", "markdown", "csv"), default="text")
    _add_kernel_option(parser)
    _add_shards_option(parser)
    _add_steady_state_option(parser)
    _add_cache_option(parser)
    _add_stream_option(parser)


def _add_submit(subparsers) -> None:
    parser = subparsers.add_parser(
        "submit",
        help="submit a job set to the evaluation service and stream results",
    )
    parser.add_argument(
        "--workloads",
        default="sort,matmul",
        help="comma-separated workloads to evaluate (sort, matmul)",
    )
    parser.add_argument("--sort-length", type=int, default=10)
    parser.add_argument("--matmul-size", type=int, default=3)
    parser.add_argument(
        "--depths",
        default="0,1,2,3",
        help="comma-separated uniform relay-station depths, one row each",
    )
    parser.add_argument("--queue-capacity", type=int, default=4)
    parser.add_argument("--max-cycles", type=int, default=5_000_000)
    parser.add_argument(
        "--priority", type=int, default=0,
        help="job priority (lower runs first)",
    )
    _add_kernel_option(parser)
    _add_shards_option(parser)
    _add_steady_state_option(parser)
    _add_cache_option(parser)
    parser.add_argument(
        "--serve",
        default=None,
        metavar="[HOST:]PORT",
        help=(
            "start a distributed coordinator on this address and evaluate "
            "through remote worker agents (start them with "
            "'repro worker --connect HOST:PORT'); with no registered "
            "workers the run degrades to the local pool"
        ),
    )
    parser.add_argument(
        "--wait-workers",
        type=int,
        default=0,
        metavar="N",
        help="wait for N worker agents to register before submitting",
    )
    parser.add_argument(
        "--lease-seconds",
        type=float,
        default=None,
        metavar="S",
        help="shard lease duration; a lease not renewed by heartbeats "
        "within S seconds is requeued to another worker",
    )
    parser.add_argument(
        "--connect",
        default=None,
        metavar="HOST:PORT",
        help=(
            "submit to a running 'repro serve' daemon instead of an "
            "in-process service; rows stream back over the network and "
            "land bit-identically"
        ),
    )
    parser.add_argument(
        "--token",
        default=None,
        metavar="TOKEN",
        help=(
            "API token for --connect (default: $REPRO_SERVER_TOKEN); "
            "unnecessary against an open daemon"
        ),
    )
    parser.add_argument(
        "--binary",
        action="store_true",
        help=(
            "with --connect, stream results as checksummed binary frames "
            "instead of SSE"
        ),
    )


def _add_serve(subparsers) -> None:
    parser = subparsers.add_parser(
        "serve",
        help="run the network daemon over one shared evaluation service",
        description=(
            "Run the repro daemon: accept job submissions over HTTP, "
            "evaluate them through one shared EvaluationService (one "
            "scheduler, one content-addressed cache, one warm period "
            "memory) and stream rows back as they complete.  Tenancy "
            "is configured via REPRO_SERVER_TOKENS; SIGTERM/SIGINT "
            "drain gracefully (503 to new submissions, admitted work "
            "finishes)."
        ),
    )
    parser.add_argument(
        "--host",
        default="127.0.0.1",
        help="interface to bind (default: loopback only)",
    )
    parser.add_argument(
        "--port",
        type=int,
        default=None,
        metavar="P",
        help=(
            "TCP port (default: $REPRO_SERVER_PORT if set, else an "
            "ephemeral port, announced on stderr)"
        ),
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=1,
        metavar="N",
        help="worker processes of the underlying service pool",
    )
    parser.add_argument(
        "--max-pending",
        type=int,
        default=None,
        metavar="N",
        help=(
            "global blocking backpressure of the service queue (default: "
            "$REPRO_SERVER_MAX_PENDING if set, else unbounded); per-tenant "
            "rejecting quotas come from REPRO_SERVER_TOKENS"
        ),
    )
    parser.add_argument(
        "--coordinator-port",
        type=int,
        default=None,
        metavar="Q",
        help=(
            "also listen for distributed worker agents on this port "
            "(start them with 'repro worker --connect HOST:Q')"
        ),
    )
    _add_cache_option(parser)


def _add_worker(subparsers) -> None:
    parser = subparsers.add_parser(
        "worker",
        help="run a distributed evaluation worker agent",
    )
    parser.add_argument(
        "--connect",
        required=True,
        metavar="HOST:PORT",
        help="coordinator address to serve (see 'submit --serve')",
    )
    parser.add_argument(
        "--worker-id",
        default=None,
        help="stable worker identity (default: worker-<host>-<pid>)",
    )
    parser.add_argument(
        "--reconnect-delay",
        type=float,
        default=0.25,
        metavar="S",
        help="pause between reconnect attempts when the coordinator is away",
    )


def _add_topology(subparsers) -> None:
    parser = subparsers.add_parser(
        "topology",
        help="generate, describe or sweep a synthetic netlist topology",
    )
    parser.add_argument(
        "action",
        choices=("generate", "describe", "sweep"),
        help=(
            "generate: build and print the netlist; describe: add kernel/"
            "steady-state eligibility; sweep: WP1/WP2 throughput vs RS depth"
        ),
    )
    parser.add_argument(
        "kind",
        nargs="?",
        default="ring",
        help="generator kind (chain, ring, dag, mesh, torus, marked, random)",
    )
    parser.add_argument(
        "--param",
        action="append",
        default=[],
        metavar="NAME=VALUE",
        help="generator parameter, repeatable (e.g. --param stages=8)",
    )
    parser.add_argument(
        "--depths",
        default="0,1,2,3",
        help="comma-separated extra RS per link, one sweep row each",
    )
    parser.add_argument(
        "--horizon",
        type=int,
        default=4_000,
        help="cycle horizon for free-running (non-terminating) topologies",
    )
    parser.add_argument(
        "--format", choices=("text", "markdown", "csv"), default="text"
    )
    _add_kernel_option(parser)
    _add_shards_option(parser)
    _add_steady_state_option(parser)
    _add_cache_option(parser)
    _add_stream_option(parser)


def _parse_topology_params(pairs):
    """``NAME=VALUE`` strings -> generator kwargs (ints/bools where they parse)."""
    params = {}
    for pair in pairs:
        name, sep, text = pair.partition("=")
        if not sep or not name:
            raise SystemExit(f"invalid --param {pair!r}: expected NAME=VALUE")
        if text.lower() in ("true", "false"):
            value = text.lower() == "true"
        else:
            try:
                if "," in text:
                    value = tuple(
                        int(part) for part in text.split(",") if part.strip()
                    )
                else:
                    value = int(text)
            except ValueError:
                raise SystemExit(
                    f"invalid --param {pair!r}: VALUE must be an int, bool "
                    "or comma-separated ints"
                )
        params[name.replace("-", "_")] = value
    return params


def _run_topology(args, service=None) -> int:
    from .core.exceptions import NetlistError
    from .topology import make_topology

    try:
        topology = make_topology(args.kind, **_parse_topology_params(args.param))
    except (NetlistError, TypeError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    if args.action in ("generate", "describe"):
        print(topology.describe())
        if args.action == "describe":
            print(_topology_eligibility(topology))
        return 0

    from .experiments import topology_sweep
    from .experiments.report import sweep_to_csv, sweep_to_markdown

    depths = [int(d) for d in args.depths.split(",") if d.strip()]
    on_result = _stream_printer() if args.stream and service is not None else None
    result = topology_sweep(
        topology=topology,
        depths=depths,
        kernel=args.kernel,
        workers=args.shards,
        horizon=args.horizon,
        steady_state=_steady_state_flag(args),
        service=service,
        on_result=on_result,
    )
    if args.format == "markdown":
        print(sweep_to_markdown(result))
    elif args.format == "csv":
        print(sweep_to_csv(result), end="")
    else:
        print(result.format())
    return 0


def _topology_eligibility(topology) -> str:
    """Kernel / steady-state eligibility report for one generated topology."""
    from .engine.elaboration import elaborate
    from .engine.instrumentation import InstrumentSet
    from .engine.kernel import RunControls
    from .engine.lockstep import lockstep_reason
    from .engine.steady_state import certify_model

    model = elaborate(topology.netlist, rs_counts=topology.rs_counts)
    controls = RunControls(
        max_cycles=1_000_000,
        stop_process=topology.stop_process,
        horizon=None if topology.stop_process is not None else 1_000_000,
    )
    reason = lockstep_reason(
        model, controls, InstrumentSet(trace=False, shell_stats=False,
                                       occupancy=False)
    )
    certification = certify_model(model)
    if certification is None:
        steady = "off (some process has an opaque schedule state)"
    elif certification[1]:
        steady = "certified (value-exact extrapolation)"
    else:
        steady = "plain (occupancy/firing-offset snapshots)"
    lines = ["eligibility:"]
    lines.append(
        "  lockstep kernel: eligible" if reason is None
        else f"  lockstep kernel: falls back to fast ({reason})"
    )
    lines.append(f"  steady-state detection: {steady}")
    return "\n".join(lines)


def _add_multicycle(subparsers) -> None:
    parser = subparsers.add_parser(
        "multicycle", help="multicycle vs pipelined WP2 gains"
    )
    _add_kernel_option(parser)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="Wire-pipelined SoC reproduction experiment runner"
    )
    subparsers = parser.add_subparsers(dest="command", required=True)
    _add_table1(subparsers)
    _add_simple(subparsers, "figure1", "print the Figure 1 topology report")
    _add_multicycle(subparsers)
    _add_simple(subparsers, "area", "wrapper area overhead report")
    _add_sweep(subparsers)
    _add_topology(subparsers)
    _add_submit(subparsers)
    _add_serve(subparsers)
    _add_worker(subparsers)
    return parser


def _parse_address(text: str, default_host: str = "127.0.0.1"):
    """``[HOST:]PORT`` -> ``(host, port)``."""
    host, _, port_text = text.rpartition(":")
    try:
        port = int(port_text)
    except ValueError:
        raise SystemExit(f"invalid address {text!r}: expected [HOST:]PORT")
    return (host or default_host, port)


def _make_coordinator(args):
    """A listening :class:`Coordinator` when ``--serve`` asked for one."""
    serve = getattr(args, "serve", None)
    if serve is None:
        return None
    from .distributed import Coordinator

    host, port = _parse_address(serve)
    kwargs = {}
    if getattr(args, "lease_seconds", None) is not None:
        kwargs["lease_seconds"] = args.lease_seconds
    coordinator = Coordinator(host, port, **kwargs)
    wait = getattr(args, "wait_workers", 0)
    if wait > 0:
        print(
            f"coordinator on {coordinator.address[0]}:{coordinator.address[1]}"
            f" — waiting for {wait} worker(s)",
            file=sys.stderr,
            flush=True,
        )
        coordinator.wait_for_workers(wait)
    return coordinator


def _make_service(args):
    """An :class:`EvaluationService` when the command asked for one (or None).

    A service is engaged by ``--cache-dir`` (persistent result cache),
    ``--stream`` (per-row completion lines), or the ``submit`` command
    (always service-backed).  ``--shards`` becomes the service's worker
    fan-out; ``--serve`` attaches a distributed coordinator so shards run
    on remote worker agents when any are registered.
    """
    cache_dir = getattr(args, "cache_dir", None)
    stream = getattr(args, "stream", False)
    if cache_dir is None and not stream and args.command != "submit":
        return None
    from .service import EvaluationService, ResultCache

    cache = ResultCache(cache_dir=cache_dir) if cache_dir else None
    return EvaluationService(
        cache=cache,
        workers=getattr(args, "shards", 1),
        coordinator=_make_coordinator(args),
    )


def _stream_printer(total=None):
    """An ``on_result`` callback printing one stderr line per completed row."""
    import itertools

    counter = itertools.count(1)

    def on_result(job) -> None:
        result = job.result
        origin = "cached" if job.cached else (
            "deduped" if job.deduped else "simulated"
        )
        detail = (
            f"cycles={result.cycles}" if result is not None else job.status.value
        )
        index = next(counter)
        prefix = f"[{index}/{total}]" if total is not None else f"[{index}]"
        print(
            f"{prefix} {job.layout} · {job.label}: {detail} ({origin})",
            file=sys.stderr,
            flush=True,
        )

    return on_result


def _steady_state_flag(args) -> Optional[bool]:
    """``--no-steady-state`` as an explicit RunControls argument (else None)."""
    return False if getattr(args, "no_steady_state", False) else None


def _run_table1(args, service=None) -> int:
    from .experiments import run_table1_matmul, run_table1_sort
    from .experiments.report import table1_to_csv, table1_to_json, table1_to_markdown

    steady_state = _steady_state_flag(args)
    results = {
        "sort": run_table1_sort(
            length=args.sort_length, seed=args.seed,
            pipelined=not args.multicycle, kernel=args.kernel,
            workers=args.shards, horizon=args.horizon,
            steady_state=steady_state, service=service,
        )
    }
    if args.matmul:
        results["matmul"] = run_table1_matmul(
            size=args.matmul_size, seed=args.seed,
            pipelined=not args.multicycle, kernel=args.kernel,
            workers=args.shards, horizon=args.horizon,
            steady_state=steady_state, service=service,
        )
    if args.format == "json":
        print(table1_to_json(results))
        return 0
    for result in results.values():
        if args.format == "markdown":
            print(table1_to_markdown(result))
        elif args.format == "csv":
            print(table1_to_csv(result), end="")
        else:
            print(result.format())
        print()
    return 0


def _run_sweep(args, service=None) -> int:
    from .cpu.workloads import make_extraction_sort, make_matrix_multiply
    from .experiments import (
        clock_frequency_sweep,
        mixed_workload_sweep,
        queue_capacity_sweep,
        uniform_depth_sweep,
    )
    from .experiments.report import sweep_to_csv, sweep_to_markdown

    steady_state = _steady_state_flag(args)
    on_result = _stream_printer() if args.stream and service is not None else None
    workload = make_extraction_sort(length=args.sort_length, seed=2005)
    if args.kind == "mixed":
        results = mixed_workload_sweep(
            workloads={
                "extraction_sort": workload,
                "matrix_multiply": make_matrix_multiply(
                    size=args.matmul_size, seed=2005
                ),
            },
            kernel=args.kernel,
            workers=args.shards,
            steady_state=steady_state,
            service=service,
            on_result=on_result,
        )
        for result in results.values():
            if args.format == "markdown":
                print(sweep_to_markdown(result))
            elif args.format == "csv":
                print(sweep_to_csv(result), end="")
            else:
                print(result.format())
            print()
        return 0
    if args.kind == "fifo":
        result = queue_capacity_sweep(
            workload=workload, kernel=args.kernel, workers=args.shards,
            steady_state=steady_state, service=service, on_result=on_result,
        )
    elif args.kind == "depth":
        result = uniform_depth_sweep(
            workload=workload, kernel=args.kernel, workers=args.shards,
            steady_state=steady_state, service=service, on_result=on_result,
        )
    else:
        result = clock_frequency_sweep(
            workload=workload, kernel=args.kernel, workers=args.shards,
            steady_state=steady_state, service=service, on_result=on_result,
        )
    if args.format == "markdown":
        print(sweep_to_markdown(result))
    elif args.format == "csv":
        print(sweep_to_csv(result), end="")
    else:
        print(result.format())
    return 0


def _run_submit(args, service) -> int:
    """Build a mixed WP1+WP2 job set and stream it through the service."""
    import asyncio

    from .core.config import RSConfiguration
    from .cpu.machine import build_pipelined_cpu
    from .cpu.topology import LINK_CU_IC
    from .cpu.workloads import make_extraction_sort, make_matrix_multiply

    steady_state = _steady_state_flag(args)
    makers = {
        "sort": lambda: make_extraction_sort(length=args.sort_length, seed=2005),
        "matmul": lambda: make_matrix_multiply(size=args.matmul_size, seed=2005),
    }
    names = [name.strip() for name in args.workloads.split(",") if name.strip()]
    unknown = [name for name in names if name not in makers]
    if unknown:
        print(f"unknown workloads: {', '.join(unknown)}", file=sys.stderr)
        return 2
    depths = [int(depth) for depth in args.depths.split(",") if depth.strip()]
    configurations = [
        RSConfiguration.uniform(depth, exclude=(LINK_CU_IC,)) for depth in depths
    ]

    items = []
    stop = None
    for name in names:
        cpu = build_pipelined_cpu(makers[name]().program)
        stop = cpu.control_unit.name
        for relaxed in (False, True):
            layout = service.ensure_layout(
                cpu.netlist, relaxed=relaxed, kernel=args.kernel
            )
            items.extend((layout, config) for config in configurations)

    printer = _stream_printer(len(items))

    async def drain() -> None:
        async for job in service.stream(
            items,
            priority=args.priority,
            queue_capacity=args.queue_capacity,
            stop_process=stop,
            max_cycles=args.max_cycles,
            steady_state=steady_state,
        ):
            printer(job)

    asyncio.run(drain())
    stats = service.stats()
    cache = stats["cache"]
    print(
        f"{stats['submitted']} jobs: {stats['evaluated']} simulated, "
        f"{cache['hits']} cache hits ({cache['disk_hits']} from disk), "
        f"{stats['deduped']} deduplicated, {stats['failed']} failed"
    )
    return 0


def _run_submit_remote(args) -> int:
    """The ``submit --connect`` path: same sweep, sent to a daemon."""
    from .server.client import ServerClient

    token = args.token or os.environ.get("REPRO_SERVER_TOKEN") or None
    client = ServerClient.connect(args.connect, token=token)
    names = [name.strip() for name in args.workloads.split(",") if name.strip()]
    unknown = [name for name in names if name not in ("sort", "matmul")]
    if unknown:
        print(f"unknown workloads: {', '.join(unknown)}", file=sys.stderr)
        return 2
    depths = [int(depth) for depth in args.depths.split(",") if depth.strip()]
    controls = {"max_cycles": args.max_cycles}
    if _steady_state_flag(args) is False:
        controls["steady_state"] = False

    submissions = []
    for name in names:
        spec = (
            {"kind": "workload", "workload": "sort",
             "length": args.sort_length, "seed": 2005}
            if name == "sort"
            else {"kind": "workload", "workload": "matmul",
                  "size": args.matmul_size, "seed": 2005}
        )
        reply = client.submit({
            "spec": spec,
            "wrappers": ["wp1", "wp2"],
            "configurations": depths,
            "queue_capacity": args.queue_capacity,
            "kernel": args.kernel,
            "controls": controls,
        })
        submissions.append(reply)
    total = sum(reply["jobs"] for reply in submissions)
    printer = _stream_printer(total)
    failed = 0
    for reply in submissions:
        for event in client.stream(reply["job_set_id"], binary=args.binary):
            printer(_RemoteRow(event))
            if event["status"] != "done":
                failed += 1
    print(
        f"{total} jobs streamed from {args.connect} "
        f"({len(submissions)} job set(s), {failed} not done)"
    )
    return 0 if failed == 0 else 1


class _RemoteRow:
    """Adapt a streamed row event to the duck type _stream_printer expects."""

    def __init__(self, event) -> None:
        from .engine.batch import BatchResult
        from .service import JobStatus

        self.layout = event["layout"]
        self.label = event["label"]
        self.cached = event["cached"]
        self.deduped = event["deduped"]
        self.status = JobStatus(event["status"])
        self.result = (
            None if event["result"] is None
            else BatchResult.from_dict(event["result"])
        )


def _run_serve(args) -> int:
    """Run the network daemon until SIGTERM/SIGINT drains it."""
    import signal
    import threading

    from .core.exceptions import SimulationError
    from .server import ReproServer, validate_server_env

    try:
        env = validate_server_env()
    except SimulationError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    port = args.port if args.port is not None else (env["port"] or 0)
    max_pending = (
        args.max_pending if args.max_pending is not None
        else env["max_pending"]
    )
    coordinator = None
    if args.coordinator_port is not None:
        from .distributed import Coordinator

        coordinator = Coordinator(args.host, args.coordinator_port)
    try:
        server = ReproServer(
            args.host,
            port,
            cache_dir=args.cache_dir,
            workers=args.workers,
            max_pending=max_pending,
            tenants=env["tenants"],
            coordinator=coordinator,
        )
    except OSError as exc:
        print(f"error: cannot bind {args.host}:{port}: {exc}", file=sys.stderr)
        return 2

    stop = threading.Event()

    def drain(signum, frame) -> None:
        # First signal: stop admitting (503) and let the main thread run
        # the graceful close; a second signal falls through to the default
        # handler (the process dies hard).
        server.begin_drain()
        stop.set()
        signal.signal(signal.SIGTERM, signal.SIG_DFL)
        signal.signal(signal.SIGINT, signal.default_int_handler)

    signal.signal(signal.SIGTERM, drain)
    signal.signal(signal.SIGINT, drain)
    server.start()
    host, bound = server.address
    mode = "open access" if server.registry.open_access else (
        f"{len(server.registry.tenants)} tenant token(s)"
    )
    print(
        f"repro.server listening on {host}:{bound} ({mode})",
        file=sys.stderr,
        flush=True,
    )
    if coordinator is not None:
        chost, cport = coordinator.address
        print(
            f"coordinator for worker agents on {chost}:{cport}",
            file=sys.stderr,
            flush=True,
        )
    stop.wait()
    print(
        "draining: new submissions get 503, admitted work finishes…",
        file=sys.stderr,
        flush=True,
    )
    server.close()
    print("repro.server stopped", file=sys.stderr, flush=True)
    return 0


def _run_worker(args) -> int:
    """Serve a coordinator as one distributed worker agent."""
    from .distributed import agent_main

    host, port = _parse_address(args.connect)
    try:
        agent_main(
            host,
            port,
            worker_id=args.worker_id,
            reconnect_delay=args.reconnect_delay,
        )
    except KeyboardInterrupt:
        pass
    return 0


def _dispatch(args) -> int:
    if args.command == "worker":
        return _run_worker(args)
    if args.command == "serve":
        return _run_serve(args)
    if args.command == "submit" and args.connect is not None:
        if args.serve is not None:
            print(
                "--connect (remote daemon) and --serve (local coordinator) "
                "are mutually exclusive",
                file=sys.stderr,
            )
            return 2
        return _run_submit_remote(args)
    service = _make_service(args)
    try:
        if args.command == "table1":
            return _run_table1(args, service)
        if args.command == "figure1":
            from .experiments import run_figure1

            print(run_figure1().format())
            return 0
        if args.command == "multicycle":
            from .experiments import run_multicycle_study

            print(run_multicycle_study(kernel=args.kernel).format())
            return 0
        if args.command == "area":
            from .experiments import reference_wrapper_overhead_percent, run_area_overhead

            print(
                "reference wrapper overhead: "
                f"WP1 {reference_wrapper_overhead_percent(relaxed=False):.3f} %, "
                f"WP2 {reference_wrapper_overhead_percent(relaxed=True):.3f} % "
                "of a 100 kgate IP"
            )
            print(run_area_overhead().format())
            return 0
        if args.command == "sweep":
            return _run_sweep(args, service)
        if args.command == "topology":
            return _run_topology(args, service)
        if args.command == "submit":
            return _run_submit(args, service)
        return 1
    finally:
        if service is not None:
            coordinator = getattr(service, "coordinator", None)
            service.close()
            if coordinator is not None:
                coordinator.close()


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    # Fail fast — and readably — on a malformed REPRO_FAULTS plan instead
    # of erroring deep inside the first sharded batch.
    from .core.exceptions import SimulationError
    from .engine import faults

    try:
        faults.validate_env()
    except SimulationError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if not getattr(args, "no_steady_state", False):
        return _dispatch(args)
    # --no-steady-state is threaded through RunControls (steady_state=False)
    # by the command runners; the environment variable is additionally set
    # for the duration of the command so layers that only consult the env —
    # notably spawned worker processes — inherit the choice, and restored
    # afterwards so nothing leaks into later in-process API calls.
    env_var = "REPRO_STEADY_STATE"
    previous = os.environ.get(env_var)
    os.environ[env_var] = "0"
    try:
        return _dispatch(args)
    finally:
        if previous is None:
            os.environ.pop(env_var, None)
        else:
            os.environ[env_var] = previous


if __name__ == "__main__":
    sys.exit(main())
