"""repro — reproduction of "A New System Design Methodology for Wire Pipelined SoC".

The package is organised in three layers:

* :mod:`repro.core` — the latency-insensitive wire-pipelining framework:
  processes, channels, relay stations, the strict (WP1) and oracle-relaxed
  (WP2) wrappers, golden and latency-insensitive simulators, static loop
  throughput analysis, floorplan/wire-delay driven relay-station insertion,
  configuration optimisation, and area models.
* :mod:`repro.cpu` — the paper's case study: a five-block processor (CU, IC,
  RF, ALU, DC) with a minimal ISA, an assembler, pipelined and multicycle
  control variants, and the two workloads (extraction sort, matrix multiply).
* :mod:`repro.engine` — the layered simulation engine behind
  :class:`repro.core.simulator.LidSimulator`: elaboration of netlists into
  flat runtime models, selectable execution kernels (object-based reference /
  array-based fast), opt-in instrumentation passes, and the batch runner that
  evaluates many relay-station configurations against one elaborated model.
* :mod:`repro.experiments` — harnesses regenerating every table and figure of
  the paper (Table 1 for both workloads, the Figure 1 loop report, the
  multicycle study and the wrapper area overhead claim).
"""

from . import core, engine

__version__ = "0.1.0"

__all__ = ["core", "engine", "__version__"]
