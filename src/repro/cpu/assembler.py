"""Two-pass assembler for the minimal ISA.

The workload generators build instruction lists programmatically, but writing
the benchmark kernels in assembly text keeps them readable and lets tests and
examples assemble their own programs.  Syntax::

    ; comment (also '#' and '//')
    label:
        LI   r1, 10
        LI   r2, data        ; labels can be used as immediates
    loop:
        LD   r3, 0(r1)
        ADD  r4, r4, r3
        ADDI r1, r1, 1
        BNE  r1, r2, loop
        ST   r4, 0(r0)
        HALT

* Registers are written ``r0`` … ``r15`` (case-insensitive).
* Branch and jump targets are labels or absolute addresses.
* Memory operands are written ``imm(rN)`` or just ``(rN)`` (offset 0).
* ``.word`` is not supported — data memory images are built separately by the
  :mod:`repro.cpu.program` helpers.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from ..core.exceptions import AssemblerError
from . import isa
from .isa import Instruction, Opcode


_LABEL_RE = re.compile(r"^[A-Za-z_][A-Za-z0-9_]*$")
_MEM_OPERAND_RE = re.compile(r"^(?P<offset>[^()]*)\(\s*(?P<reg>[A-Za-z0-9_]+)\s*\)$")


@dataclass
class AssemblyResult:
    """Output of the assembler: instructions plus the resolved symbol table."""

    instructions: List[Instruction]
    symbols: Dict[str, int] = field(default_factory=dict)

    def words(self) -> List[int]:
        """Encoded 32-bit machine words, in address order."""
        return [isa.encode(instruction) for instruction in self.instructions]

    def __len__(self) -> int:
        return len(self.instructions)


def _strip_comment(line: str) -> str:
    for marker in (";", "#", "//"):
        position = line.find(marker)
        if position >= 0:
            line = line[:position]
    return line.strip()


def _parse_register(text: str, line_number: int) -> int:
    text = text.strip().lower()
    if not text.startswith("r"):
        raise AssemblerError(f"line {line_number}: expected a register, got {text!r}")
    try:
        number = int(text[1:])
    except ValueError:
        raise AssemblerError(
            f"line {line_number}: invalid register {text!r}"
        ) from None
    if not 0 <= number < isa.NUM_REGISTERS:
        raise AssemblerError(f"line {line_number}: register {text!r} out of range")
    return number


def _parse_value(
    text: str, symbols: Mapping[str, int], line_number: int
) -> int:
    text = text.strip()
    if not text:
        return 0
    if _LABEL_RE.match(text) and not re.match(r"^[rR]\d+$", text):
        if text not in symbols:
            raise AssemblerError(f"line {line_number}: unknown label {text!r}")
        return symbols[text]
    try:
        return int(text, 0)
    except ValueError:
        raise AssemblerError(
            f"line {line_number}: expected an integer or label, got {text!r}"
        ) from None


def _split_operands(rest: str) -> List[str]:
    if not rest.strip():
        return []
    return [part.strip() for part in rest.split(",")]


@dataclass
class _SourceLine:
    number: int
    mnemonic: str
    operands: List[str]


def _first_pass(text: str) -> Tuple[List[_SourceLine], Dict[str, int]]:
    lines: List[_SourceLine] = []
    symbols: Dict[str, int] = {}
    address = 0
    for number, raw in enumerate(text.splitlines(), start=1):
        line = _strip_comment(raw)
        if not line:
            continue
        while ":" in line:
            label, _, line = line.partition(":")
            label = label.strip()
            if not _LABEL_RE.match(label):
                raise AssemblerError(f"line {number}: invalid label {label!r}")
            if label in symbols:
                raise AssemblerError(f"line {number}: duplicate label {label!r}")
            symbols[label] = address
            line = line.strip()
        if not line:
            continue
        parts = line.split(None, 1)
        mnemonic = parts[0].upper()
        rest = parts[1] if len(parts) > 1 else ""
        lines.append(_SourceLine(number=number, mnemonic=mnemonic, operands=_split_operands(rest)))
        address += 1
    return lines, symbols


def _expect_operands(line: _SourceLine, count: int) -> None:
    if len(line.operands) != count:
        raise AssemblerError(
            f"line {line.number}: {line.mnemonic} expects {count} operand(s), "
            f"got {len(line.operands)}"
        )


def _parse_memory_operand(
    text: str, symbols: Mapping[str, int], line_number: int
) -> Tuple[int, int]:
    """Parse ``imm(rN)`` / ``(rN)`` / bare ``imm`` into (offset, base register)."""
    match = _MEM_OPERAND_RE.match(text.strip())
    if match:
        offset = _parse_value(match.group("offset"), symbols, line_number)
        base = _parse_register(match.group("reg"), line_number)
        return offset, base
    return _parse_value(text, symbols, line_number), 0


def _second_pass(
    lines: Sequence[_SourceLine], symbols: Mapping[str, int]
) -> List[Instruction]:
    instructions: List[Instruction] = []
    for line in lines:
        mnemonic = line.mnemonic
        try:
            opcode = Opcode[mnemonic]
        except KeyError:
            raise AssemblerError(
                f"line {line.number}: unknown mnemonic {mnemonic!r}"
            ) from None

        if opcode in (Opcode.NOP, Opcode.HALT):
            _expect_operands(line, 0)
            instructions.append(Instruction(opcode))
        elif opcode is Opcode.JMP:
            _expect_operands(line, 1)
            target = _parse_value(line.operands[0], symbols, line.number)
            instructions.append(Instruction(opcode, imm=target))
        elif opcode is Opcode.LI:
            _expect_operands(line, 2)
            rd = _parse_register(line.operands[0], line.number)
            imm = _parse_value(line.operands[1], symbols, line.number)
            instructions.append(Instruction(opcode, rd=rd, imm=imm))
        elif opcode in isa.IMMEDIATE_OPS:
            _expect_operands(line, 3)
            rd = _parse_register(line.operands[0], line.number)
            ra = _parse_register(line.operands[1], line.number)
            imm = _parse_value(line.operands[2], symbols, line.number)
            instructions.append(Instruction(opcode, rd=rd, ra=ra, imm=imm))
        elif opcode is Opcode.LD:
            _expect_operands(line, 2)
            rd = _parse_register(line.operands[0], line.number)
            offset, base = _parse_memory_operand(line.operands[1], symbols, line.number)
            instructions.append(Instruction(opcode, rd=rd, ra=base, imm=offset))
        elif opcode is Opcode.ST:
            _expect_operands(line, 2)
            rb = _parse_register(line.operands[0], line.number)
            offset, base = _parse_memory_operand(line.operands[1], symbols, line.number)
            instructions.append(Instruction(opcode, rb=rb, ra=base, imm=offset))
        elif opcode in isa.BRANCH_OPS:
            _expect_operands(line, 3)
            ra = _parse_register(line.operands[0], line.number)
            rb = _parse_register(line.operands[1], line.number)
            target = _parse_value(line.operands[2], symbols, line.number)
            instructions.append(Instruction(opcode, ra=ra, rb=rb, imm=target))
        else:
            # register-register ALU operations
            _expect_operands(line, 3)
            rd = _parse_register(line.operands[0], line.number)
            ra = _parse_register(line.operands[1], line.number)
            rb = _parse_register(line.operands[2], line.number)
            instructions.append(Instruction(opcode, rd=rd, ra=ra, rb=rb))
    return instructions


def assemble(text: str) -> AssemblyResult:
    """Assemble *text* and return the instructions plus the symbol table."""
    lines, symbols = _first_pass(text)
    instructions = _second_pass(lines, symbols)
    return AssemblyResult(instructions=instructions, symbols=symbols)


def disassemble(instructions: Sequence[Instruction]) -> str:
    """Render instructions back into readable assembly (one per line)."""
    return "\n".join(
        f"{address:4d}: {instruction.describe()}"
        for address, instruction in enumerate(instructions)
    )
