"""Channel payload types of the Figure 1 processor.

Every channel of the case-study netlist carries either ``None`` (a *bubble*:
the producing unit had nothing to say at that tag — distinct from the τ void
symbol of the latency-insensitive protocol, which means the producer did not
fire at all) or one of the small frozen dataclasses below.

The payloads are deliberately minimal: each unit learns only what the paper's
"minimal knowledge of the IP's communication profile" requires.  In
particular the ALU never learns destination registers (the register file
remembers them from the command it received from the control unit), which is
what makes the WP2 oracles of RF and DC pure functions of their own state.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Optional, Tuple

from .isa import Opcode


@dataclass(frozen=True, slots=True)
class FetchRequest:
    """CU → IC: read request for one instruction word."""

    address: int


@dataclass(frozen=True, slots=True)
class FetchResponse:
    """IC → CU: the instruction word read from the instruction memory."""

    address: int
    word: int


@dataclass(frozen=True, slots=True)
class RegCommand:
    """CU → RF: per-instruction register-file plan.

    ``read_a`` / ``read_b`` are the registers to read this tag (``None`` when
    the instruction does not need that operand).  ``alu_writeback`` /
    ``mem_writeback`` name the destination register whose value will arrive on
    the ``alu_rf`` (two tags later) and ``dc_rf`` (three tags later) channels
    respectively.  ``store_data`` names the register whose value must be
    forwarded to the data cache on ``rf_dc``.
    """

    read_a: Optional[int] = None
    read_b: Optional[int] = None
    alu_writeback: Optional[int] = None
    mem_writeback: Optional[int] = None
    store_data: Optional[int] = None


@dataclass(frozen=True, slots=True)
class AluCommand:
    """CU → ALU: operation to perform on the operands arriving the same tag."""

    function: Opcode
    use_immediate: bool = False
    immediate: int = 0
    branch: Optional[Opcode] = None

    @property
    def is_branch(self) -> bool:
        return self.branch is not None


@dataclass(frozen=True, slots=True)
class MemCommand:
    """CU → DC: announces a memory operation two tags ahead of its address.

    ``read``/``write`` select the operation.  The data cache uses the command
    to schedule which of its other inputs (store data on ``rf_dc``, effective
    address on ``alu_dc``) it will need at the following tags — this schedule
    *is* the DC oracle.
    """

    read: bool = False
    write: bool = False

    @property
    def is_access(self) -> bool:
        return self.read or self.write


@dataclass(frozen=True, slots=True)
class Operands:
    """RF → ALU: the two source operand values."""

    a: int = 0
    b: int = 0


@dataclass(frozen=True, slots=True)
class StoreData:
    """RF → DC: the register value to be written to memory by a store."""

    value: int = 0


@dataclass(frozen=True, slots=True)
class AluStatus:
    """ALU → CU: branch outcome and condition flags."""

    taken: bool = False
    zero: bool = False
    negative: bool = False


@dataclass(frozen=True, slots=True)
class AluResult:
    """ALU → RF: the computed result value (destination kept by RF)."""

    value: int = 0


@dataclass(frozen=True, slots=True)
class MemAddress:
    """ALU → DC: the effective address of a load or store."""

    address: int = 0


@dataclass(frozen=True, slots=True)
class LoadResult:
    """DC → RF: the value read from memory (destination kept by RF)."""

    value: int = 0


# ---------------------------------------------------------------------------
# Interned constructors
# ---------------------------------------------------------------------------
# Frozen-dataclass construction pays one ``object.__setattr__`` per field
# (~0.5 µs per signal), and the units emit several signals per firing on
# every simulator's critical path.  All payloads are immutable, so repeated
# values — loop addresses, recurring operands, the eight possible status
# words — are shared through the memoised factories below instead of being
# re-allocated.  Units should create signals through these; building the
# dataclasses directly stays correct, just slower.

_ALU_STATUS: Tuple[Tuple[Tuple[AluStatus, ...], ...], ...] = tuple(
    tuple(
        tuple(
            AluStatus(taken=bool(t), zero=bool(z), negative=bool(n))
            for n in range(2)
        )
        for z in range(2)
    )
    for t in range(2)
)


def alu_status(taken: bool, zero: bool, negative: bool) -> AluStatus:
    """One of the eight condition words, never allocated twice."""
    return _ALU_STATUS[taken][zero][negative]


@lru_cache(maxsize=8192)
def alu_result(value: int) -> AluResult:
    return AluResult(value=value)


@lru_cache(maxsize=8192)
def mem_address(address: int) -> MemAddress:
    return MemAddress(address=address)


@lru_cache(maxsize=8192)
def operands(a: int, b: int) -> Operands:
    return Operands(a=a, b=b)


@lru_cache(maxsize=8192)
def store_data(value: int) -> StoreData:
    return StoreData(value=value)


@lru_cache(maxsize=8192)
def load_result(value: int) -> LoadResult:
    return LoadResult(value=value)


@lru_cache(maxsize=8192)
def fetch_request(address: int) -> FetchRequest:
    return FetchRequest(address=address)


@lru_cache(maxsize=8192)
def fetch_response(address: int, word: int) -> FetchResponse:
    return FetchResponse(address=address, word=word)
