"""Assembly of the five blocks into the Figure 1 netlist.

:class:`CaseStudyCpu` bundles the unit instances, the netlist connecting them
over the Figure 1 channels and the loaded program, and offers the operations
every experiment needs: run the golden system, run a wire-pipelined
configuration under either wrapper, and check the architectural results
(final data-memory contents) against expectations.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence

from ..core.config import RSConfiguration
from ..core.exceptions import ProgramError
from ..core.golden import GoldenResult, run_golden
from ..core.netlist import Netlist
from ..core.shell import DEFAULT_QUEUE_CAPACITY
from ..core.simulator import LidResult, run_lid
from .program import Program
from .topology import BLOCKS, build_channels
from .units import Alu, ControlUnit, DataCache, InstructionCache, RegisterFile


#: Cycles simulated past the HALT so in-flight stores drain to the data memory
#: when the caller wants to inspect architectural state.
DRAIN_CYCLES = 16


@dataclass
class CaseStudyCpu:
    """The Figure 1 processor: five wrapped blocks plus their netlist."""

    program: Program
    pipelined: bool
    netlist: Netlist
    control_unit: ControlUnit
    instruction_cache: InstructionCache
    register_file: RegisterFile
    alu: Alu
    data_cache: DataCache

    @classmethod
    def build(cls, program: Program, pipelined: bool = True) -> "CaseStudyCpu":
        """Instantiate the five blocks and wire them per Figure 1.

        For horizon-bounded asymptotic-throughput runs, load
        ``program.looped()`` — the endlessly repeating variant whose
        periodic schedule steady-state detection can extrapolate
        (DESIGN.md §5).
        """
        control_unit = ControlUnit(pipelined=pipelined)
        instruction_cache = InstructionCache(program.instruction_words())
        register_file = RegisterFile()
        alu = Alu()
        data_cache = DataCache(program.data_image())
        netlist = Netlist(
            processes=[control_unit, instruction_cache, register_file, alu, data_cache],
            channels=build_channels(),
            name=f"figure1-{'pipelined' if pipelined else 'multicycle'}",
        )
        return cls(
            program=program,
            pipelined=pipelined,
            netlist=netlist,
            control_unit=control_unit,
            instruction_cache=instruction_cache,
            register_file=register_file,
            alu=alu,
            data_cache=data_cache,
        )

    # -- runs -----------------------------------------------------------------------
    def run_golden(
        self,
        max_cycles: int = 2_000_000,
        drain: bool = False,
        record_trace: bool = True,
    ) -> GoldenResult:
        """Run the un-pipelined (zero relay station) reference system."""
        return run_golden(
            self.netlist,
            max_cycles=max_cycles,
            stop_process=self.control_unit.name,
            extra_cycles=DRAIN_CYCLES if drain else 0,
            record_trace=record_trace,
        )

    def run_wire_pipelined(
        self,
        configuration: Optional[RSConfiguration] = None,
        rs_counts: Optional[Mapping[str, int]] = None,
        relaxed: bool = False,
        max_cycles: int = 5_000_000,
        drain: bool = False,
        queue_capacity: int = DEFAULT_QUEUE_CAPACITY,
        record_trace: bool = True,
        kernel: Optional[str] = None,
        horizon: Optional[int] = None,
        steady_state: Optional[bool] = None,
        steady_state_window: Optional[int] = None,
    ) -> LidResult:
        """Run one wire-pipelined configuration (WP1 when strict, WP2 when relaxed).

        *horizon* caps the run at an exact cycle count (a normal halt, not a
        timeout) — the long-horizon asymptotic-throughput mode.  On a looped
        program (:meth:`~repro.cpu.program.Program.looped`) such runs are
        steady-state extrapolated: the five units carry certified
        ``schedule_state()`` summaries (DESIGN.md §5), so the kernels detect
        the loop's period and skip the remaining iterations analytically
        unless *steady_state* disables it.  *steady_state_window* bounds the
        recurrence search; the default searches up to the horizon.
        """
        rs_per_channel = max(self.rs_total(configuration, rs_counts), 1)
        drain_cycles = DRAIN_CYCLES + 4 * rs_per_channel if drain else 0
        if horizon is not None and steady_state_window is None:
            # One loop iteration of a CPU workload spans thousands of
            # cycles; certified-mode snapshot hashing keeps the search
            # memory at one int per cycle, so the horizon itself is a safe
            # default window.
            steady_state_window = horizon
        return run_lid(
            self.netlist,
            configuration=configuration,
            rs_counts=rs_counts,
            relaxed=relaxed,
            queue_capacity=queue_capacity,
            record_trace=record_trace,
            kernel=kernel,
            max_cycles=max_cycles,
            stop_process=self.control_unit.name,
            extra_cycles=drain_cycles,
            horizon=horizon,
            steady_state=steady_state,
            steady_state_window=steady_state_window,
        )

    def rs_total(
        self,
        configuration: Optional[RSConfiguration],
        rs_counts: Optional[Mapping[str, int]],
    ) -> int:
        """Total relay stations implied by a configuration (for drain sizing)."""
        if configuration is not None:
            return configuration.total_relay_stations(self.netlist)
        if rs_counts is not None:
            return sum(int(count) for count in rs_counts.values())
        return 0

    # -- architectural state ------------------------------------------------------------
    def memory_word(self, address: int) -> int:
        """Current content of one data-memory word."""
        if not 0 <= address < len(self.data_cache.memory):
            raise ProgramError(f"data address {address} out of range")
        return self.data_cache.memory[address]

    def memory_slice(self, base: int, length: int) -> List[int]:
        """A contiguous slice of the data memory."""
        return [self.memory_word(base + offset) for offset in range(length)]

    def register(self, index: int) -> int:
        """Current content of one architectural register."""
        return self.register_file.registers[index]

    def check_memory(self, expected: Mapping[int, int]) -> Dict[int, Dict[str, int]]:
        """Compare data-memory words against *expected*; return the mismatches."""
        mismatches: Dict[int, Dict[str, int]] = {}
        for address, value in expected.items():
            actual = self.memory_word(address)
            if actual != value:
                mismatches[address] = {"expected": value, "actual": actual}
        return mismatches


def build_pipelined_cpu(program: Program) -> CaseStudyCpu:
    """The pipelined control variant of the case study (Table 1's reported case)."""
    return CaseStudyCpu.build(program, pipelined=True)


def build_multicycle_cpu(program: Program) -> CaseStudyCpu:
    """The multicycle control variant (discussed qualitatively in the paper)."""
    return CaseStudyCpu.build(program, pipelined=False)
