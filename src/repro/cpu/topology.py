"""Figure 1 topology: the channels connecting the five processor blocks.

The paper's case study is a processor made of five components enclosed in
wrappers, with pipelined connections between them (Figure 1).  The table's
relay-station configurations are expressed per *physical link* (``CU-RF``,
``CU-IC``, ``RF-ALU``, ...), so every channel below is tagged with the link it
belongs to.  The ``CU-IC`` link is bidirectional (fetch address out,
instruction word back) and both of its channels are pipelined together when
the link receives relay stations, which is why the paper's "Only CU-IC" row
shows a throughput of 1/2 rather than 2/3.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from ..core.channel import Channel, channel


# Block (process) names, as in Figure 1.
CU = "CU"
IC = "IC"
RF = "RF"
ALU = "ALU"
DC = "DC"

BLOCKS: Tuple[str, ...] = (CU, IC, RF, ALU, DC)

# Physical link labels used by Table 1's row descriptions.
LINK_CU_IC = "CU-IC"
LINK_CU_RF = "CU-RF"
LINK_CU_AL = "CU-AL"
LINK_CU_DC = "CU-DC"
LINK_RF_ALU = "RF-ALU"
LINK_RF_DC = "RF-DC"
LINK_ALU_CU = "ALU-CU"
LINK_ALU_RF = "ALU-RF"
LINK_ALU_DC = "ALU-DC"
LINK_DC_RF = "DC-RF"

#: All link labels, in the order Table 1 lists its single-link rows.
TABLE1_LINK_ORDER: Tuple[str, ...] = (
    LINK_CU_RF,
    LINK_CU_AL,
    LINK_CU_DC,
    LINK_CU_IC,
    LINK_RF_ALU,
    LINK_RF_DC,
    LINK_ALU_CU,
    LINK_ALU_RF,
    LINK_ALU_DC,
    LINK_DC_RF,
)

#: Approximate wire-bundle widths (bits) per channel, used by the area and
#: timing models: address/data buses are 32 bits, command bundles are narrower.
CHANNEL_WIDTHS: Dict[str, int] = {
    "cu_ic": 33,   # fetch address + enable
    "ic_cu": 64,   # instruction word + address echo
    "cu_rf": 28,   # register indices + enables
    "cu_alu": 24,  # ALU function + immediate (truncated) + controls
    "cu_dc": 3,    # read / write / valid
    "rf_alu": 64,  # two 32-bit operands
    "rf_dc": 32,   # store data
    "alu_cu": 4,   # taken / zero / negative / valid
    "alu_rf": 33,  # result + valid
    "alu_dc": 33,  # effective address + valid
    "dc_rf": 33,   # load data + valid
}


def build_channels() -> List[Channel]:
    """The eleven channels of the Figure 1 netlist.

    Channel names follow the ``<source>_<dest>`` convention in lower case;
    the initial value of every channel is ``None`` (an architectural bubble),
    matching a processor coming out of reset with an empty pipeline.
    """

    def make(name: str, source: str, dest: str, link: str) -> Channel:
        return channel(
            name,
            source,
            dest,
            initial=None,
            width=CHANNEL_WIDTHS[name],
            link=link,
        )

    return [
        make("cu_ic", CU, IC, LINK_CU_IC),
        make("ic_cu", IC, CU, LINK_CU_IC),
        make("cu_rf", CU, RF, LINK_CU_RF),
        make("cu_alu", CU, ALU, LINK_CU_AL),
        make("cu_dc", CU, DC, LINK_CU_DC),
        make("rf_alu", RF, ALU, LINK_RF_ALU),
        make("rf_dc", RF, DC, LINK_RF_DC),
        make("alu_cu", ALU, CU, LINK_ALU_CU),
        make("alu_rf", ALU, RF, LINK_ALU_RF),
        make("alu_dc", ALU, DC, LINK_ALU_DC),
        make("dc_rf", DC, RF, LINK_DC_RF),
    ]


#: Block dimensions (mm) used by the floorplan-driven methodology examples.
#: Sizes are loosely representative of a small 130 nm embedded core: the
#: caches dominate, the register file and ALU are small.
DEFAULT_BLOCK_SIZES_MM: Dict[str, Tuple[float, float]] = {
    CU: (1.2, 1.0),
    IC: (2.4, 2.0),
    RF: (0.8, 0.8),
    ALU: (1.0, 0.9),
    DC: (2.4, 2.0),
}

#: Representative synthesised gate counts per block (gate equivalents), used
#: by the wrapper-overhead experiment.  The paper quotes a 100 kgate IP as the
#: reference size; the caches are modelled as macro-dominated blocks.
DEFAULT_BLOCK_GATES: Dict[str, float] = {
    CU: 40_000.0,
    IC: 150_000.0,
    RF: 30_000.0,
    ALU: 60_000.0,
    DC: 150_000.0,
}
