"""The paper's case study: a five-block processor wrapped for wire pipelining.

The processor of Figure 1 is built from five blocks — control unit (CU),
instruction cache (IC), register file (RF), ALU and data cache (DC) —
communicating exclusively over the point-to-point channels shown in the
figure.  Two control styles are provided (pipelined and multicycle) and two
workloads (extraction sort and matrix multiply), matching the paper's
experimental setup.
"""

from . import isa
from .assembler import AssemblyResult, assemble, disassemble
from .isa import Instruction, Opcode, decode, encode
from .machine import (
    CaseStudyCpu,
    DRAIN_CYCLES,
    build_multicycle_cpu,
    build_pipelined_cpu,
)
from .program import Program, data_from_list
from .topology import (
    BLOCKS,
    CHANNEL_WIDTHS,
    DEFAULT_BLOCK_GATES,
    DEFAULT_BLOCK_SIZES_MM,
    TABLE1_LINK_ORDER,
    build_channels,
)
from .units import Alu, ControlUnit, DataCache, InstructionCache, RegisterFile
from .workloads import (
    Workload,
    make_extraction_sort,
    make_matrix_multiply,
)

__all__ = [
    "isa",
    "Instruction",
    "Opcode",
    "encode",
    "decode",
    "assemble",
    "disassemble",
    "AssemblyResult",
    "Program",
    "data_from_list",
    "CaseStudyCpu",
    "DRAIN_CYCLES",
    "build_pipelined_cpu",
    "build_multicycle_cpu",
    "BLOCKS",
    "TABLE1_LINK_ORDER",
    "CHANNEL_WIDTHS",
    "DEFAULT_BLOCK_SIZES_MM",
    "DEFAULT_BLOCK_GATES",
    "build_channels",
    "Alu",
    "ControlUnit",
    "DataCache",
    "InstructionCache",
    "RegisterFile",
    "Workload",
    "make_extraction_sort",
    "make_matrix_multiply",
]
