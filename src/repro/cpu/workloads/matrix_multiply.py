"""Dense matrix multiplication — the paper's regular, compute-bound workload.

``C = A × B`` with square integer matrices laid out row-major in data memory.
Compared to the sort, the control flow is highly regular (counted loops), the
load traffic is heavy and branches are mostly loop back-edges, which shifts
the communication profile towards the RF/ALU/DC channels.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from ..program import Program, data_from_list
from .common import Workload, deterministic_values


def matrix_multiply_assembly(
    size: int, a_base: int, b_base: int, c_base: int
) -> str:
    """Assembly text of the triple-loop matrix-multiply kernel."""
    return f"""
; C = A x B for {size}x{size} matrices (row-major)
; A at {a_base}, B at {b_base}, C at {c_base}
; r1 = i, r2 = j, r3 = k, r4 = N, r5 = sum, r6 = A[i,k], r7 = B[k,j]
; r8 = i*N, r9 = address scratch, r10 = product
        LI   r4, {size}
        LI   r1, 0
loop_i:
        BGE  r1, r4, done
        LI   r2, 0
loop_j:
        BGE  r2, r4, next_i
        LI   r5, 0
        LI   r3, 0
        MUL  r8, r1, r4
loop_k:
        BGE  r3, r4, store_c
        ADD  r9, r8, r3
        LD   r6, {a_base}(r9)
        MUL  r9, r3, r4
        ADD  r9, r9, r2
        LD   r7, {b_base}(r9)
        MUL  r10, r6, r7
        ADD  r5, r5, r10
        ADDI r3, r3, 1
        JMP  loop_k
store_c:
        ADD  r9, r8, r2
        ST   r5, {c_base}(r9)
        ADDI r2, r2, 1
        JMP  loop_j
next_i:
        ADDI r1, r1, 1
        JMP  loop_i
done:
        HALT
"""


def reference_product(a: Sequence[int], b: Sequence[int], size: int) -> List[int]:
    """Row-major reference product used to build the expected memory image."""
    product = [0] * (size * size)
    for i in range(size):
        for j in range(size):
            total = 0
            for k in range(size):
                total += a[i * size + k] * b[k * size + j]
            product[i * size + j] = total
    return product


def make_matrix_multiply(
    size: int = 5,
    seed: int = 2005,
    a_values: Optional[Sequence[int]] = None,
    b_values: Optional[Sequence[int]] = None,
    a_base: int = 0,
    b_base: Optional[int] = None,
    c_base: Optional[int] = None,
    repeat: bool = False,
) -> Workload:
    """Build the matrix-multiply workload for *size* × *size* matrices.

    With ``repeat=True`` the kernel re-enters forever instead of halting
    (see :meth:`~repro.cpu.workloads.common.Workload.looped`).
    """
    elements = size * size
    if b_base is None:
        b_base = a_base + elements
    if c_base is None:
        c_base = b_base + elements
    a = list(a_values) if a_values is not None else deterministic_values(elements, seed, 0, 20)
    b = list(b_values) if b_values is not None else deterministic_values(elements, seed + 1, 0, 20)
    if len(a) != elements or len(b) != elements:
        raise ValueError(f"matrices must each have {elements} elements")

    data = dict(data_from_list(a, base=a_base))
    data.update(data_from_list(b, base=b_base))
    program = Program.from_assembly(
        name=f"matrix-multiply-{size}x{size}",
        text=matrix_multiply_assembly(size, a_base, b_base, c_base),
        data=data,
    )
    expected = {
        c_base + offset: value
        for offset, value in enumerate(reference_product(a, b, size))
    }
    workload = Workload(
        name="Matrix Multiply",
        program=program,
        expected_memory=expected,
        description=f"{size}x{size} integer matrix product (regular control flow)",
        parameters={"size": size, "seed": seed},
    )
    return workload.looped() if repeat else workload
