"""Workload containers shared by the two benchmark programs.

A :class:`Workload` couples a :class:`~repro.cpu.program.Program` with the
memory locations whose final contents define functional correctness.  The
experiments use workloads both to measure throughput (Table 1) and to check,
via the golden/WP equivalence machinery plus an architectural memory check,
that the wrapped systems still compute the right answer.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional

from ..program import Program


@dataclass
class Workload:
    """A runnable benchmark with its expected architectural results."""

    name: str
    program: Program
    expected_memory: Dict[int, int] = field(default_factory=dict)
    description: str = ""
    parameters: Dict[str, int] = field(default_factory=dict)

    @property
    def instruction_count(self) -> int:
        """Static instruction count of the program."""
        return self.program.length

    @property
    def looping(self) -> bool:
        """Whether this workload re-enters its kernel forever (``repeat``)."""
        return bool(self.parameters.get("repeat"))

    def looped(self) -> "Workload":
        """The endlessly repeating variant of this workload.

        The program's ``HALT`` becomes a jump back to the entry point (see
        :meth:`repro.cpu.program.Program.looped`), which makes long-horizon
        runs periodic and therefore steady-state extrapolable.  Both
        benchmark kernels are idempotent over their own results (re-sorting
        a sorted array, recomputing the same product), so the expected
        memory contents still hold at any point after the first iteration.
        """
        if self.looping:
            return self
        return Workload(
            name=self.name,
            program=self.program.looped(),
            expected_memory=dict(self.expected_memory),
            description=f"{self.description} (looped)",
            parameters={**self.parameters, "repeat": 1},
        )

    def describe(self) -> str:
        params = ", ".join(f"{key}={value}" for key, value in sorted(self.parameters.items()))
        return f"{self.name} ({params}): {self.description}"


def deterministic_values(count: int, seed: int, low: int = 0, high: int = 999) -> List[int]:
    """Reproducible pseudo-random input data for the workload generators."""
    generator = random.Random(seed)
    return [generator.randint(low, high) for _ in range(count)]
