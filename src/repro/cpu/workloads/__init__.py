"""Benchmark workloads of the paper's case study."""

from .common import Workload, deterministic_values
from .extraction_sort import make_extraction_sort, sort_assembly
from .matrix_multiply import (
    make_matrix_multiply,
    matrix_multiply_assembly,
    reference_product,
)

__all__ = [
    "Workload",
    "deterministic_values",
    "make_extraction_sort",
    "sort_assembly",
    "make_matrix_multiply",
    "matrix_multiply_assembly",
    "reference_product",
]
