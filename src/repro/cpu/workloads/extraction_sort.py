"""Extraction (selection) sort — the paper's "strictly data dependent problem".

The kernel repeatedly extracts the minimum of the unsorted suffix and swaps it
into place.  Control flow is dominated by data-dependent branches, so the
branch-resolution loop (ALU → CU) and the load-use dependencies (DC → RF) are
exercised heavily — which is exactly why the paper picked it.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from ..program import Program, data_from_list
from .common import Workload, deterministic_values


#: Base address of the array in data memory.
ARRAY_BASE = 0


def sort_assembly(length: int, base: int = ARRAY_BASE) -> str:
    """Assembly text of the selection-sort kernel for an array of *length* words."""
    return f"""
; extraction (selection) sort of {length} words at address {base}
; r1 = i, r2 = n, r3 = j, r4 = min value, r5 = min index, r6 = a[j], r7 = scratch
        LI   r1, 0
        LI   r2, {length}
outer:
        ADDI r7, r2, -1
        BGE  r1, r7, done
        ADD  r5, r1, r0
        LD   r4, {base}(r1)
        ADDI r3, r1, 1
inner:
        BGE  r3, r2, swap
        LD   r6, {base}(r3)
        BGE  r6, r4, skip
        ADD  r4, r6, r0
        ADD  r5, r3, r0
skip:
        ADDI r3, r3, 1
        JMP  inner
swap:
        LD   r7, {base}(r1)
        ST   r4, {base}(r1)
        ST   r7, {base}(r5)
        ADDI r1, r1, 1
        JMP  outer
done:
        HALT
"""


def make_extraction_sort(
    length: int = 16,
    seed: int = 2005,
    values: Optional[Sequence[int]] = None,
    base: int = ARRAY_BASE,
    repeat: bool = False,
) -> Workload:
    """Build the extraction-sort workload.

    Parameters
    ----------
    length:
        Number of array elements.  The default keeps the golden run in the
        same range as the paper's reported cycle counts (a few thousand).
    seed:
        Seed of the reproducible input data (ignored when *values* is given).
    values:
        Explicit input data (overrides the generated values).
    base:
        Base address of the array in data memory.
    repeat:
        Build the looping variant (the kernel re-enters forever instead of
        halting; see :meth:`~repro.cpu.workloads.common.Workload.looped`).
    """
    data: List[int] = list(values) if values is not None else deterministic_values(length, seed)
    if len(data) != length:
        raise ValueError(f"expected {length} values, got {len(data)}")
    program = Program.from_assembly(
        name=f"extraction-sort-{length}",
        text=sort_assembly(length, base),
        data=data_from_list(data, base=base),
    )
    expected: Dict[int, int] = {
        base + offset: value for offset, value in enumerate(sorted(data))
    }
    workload = Workload(
        name="Extraction Sort",
        program=program,
        expected_memory=expected,
        description=f"selection sort of {length} words (data-dependent control flow)",
        parameters={"length": length, "seed": seed},
    )
    return workload.looped() if repeat else workload
