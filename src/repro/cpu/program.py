"""Program containers: instruction memory plus initial data memory image.

A :class:`Program` bundles everything needed to load the Figure 1 processor:
the encoded instruction words, the initial contents of the data memory and a
human-readable name.  Workload generators (:mod:`repro.cpu.workloads`) produce
``Program`` objects along with the memory locations to check after the run.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Sequence

from ..core.exceptions import ProgramError
from . import isa
from .assembler import AssemblyResult, assemble
from .isa import Instruction


#: Default sizes of the two memories (words).  Large enough for the paper's
#: benchmark kernels while keeping simulation state small.
DEFAULT_IMEM_WORDS = 1024
DEFAULT_DMEM_WORDS = 4096


@dataclass
class Program:
    """A runnable program image for the case-study processor."""

    name: str
    instructions: List[Instruction]
    data: Dict[int, int] = field(default_factory=dict)
    imem_size: int = DEFAULT_IMEM_WORDS
    dmem_size: int = DEFAULT_DMEM_WORDS
    symbols: Dict[str, int] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.instructions:
            raise ProgramError(f"program {self.name!r} has no instructions")
        if len(self.instructions) > self.imem_size:
            raise ProgramError(
                f"program {self.name!r} has {len(self.instructions)} instructions, "
                f"instruction memory holds only {self.imem_size}"
            )
        for address, value in self.data.items():
            if not 0 <= address < self.dmem_size:
                raise ProgramError(
                    f"program {self.name!r}: data address {address} outside the "
                    f"{self.dmem_size}-word data memory"
                )
            if not isinstance(value, int):
                raise ProgramError(
                    f"program {self.name!r}: data value at {address} is not an int"
                )

    # -- memory images -----------------------------------------------------------
    def instruction_words(self) -> List[int]:
        """Encoded instruction memory image (padded with NOPs to *imem_size*)."""
        words = [isa.encode(instruction) for instruction in self.instructions]
        padding = self.imem_size - len(words)
        words.extend([isa.encode(isa.nop())] * padding)
        return words

    def data_image(self) -> List[int]:
        """Initial data memory image as a dense list of *dmem_size* words."""
        image = [0] * self.dmem_size
        for address, value in self.data.items():
            image[address] = isa.to_signed_word(value)
        return image

    @property
    def length(self) -> int:
        """Number of instructions (excluding padding)."""
        return len(self.instructions)

    def describe(self) -> str:
        """Readable listing of the program."""
        from .assembler import disassemble

        header = (
            f"program {self.name!r}: {self.length} instructions, "
            f"{len(self.data)} initialised data words"
        )
        return header + "\n" + disassemble(self.instructions)

    # -- looping --------------------------------------------------------------------
    def looped(self) -> "Program":
        """An endlessly repeating variant of this program.

        Every ``HALT`` becomes an absolute jump back to address 0, so the
        program re-enters its kernel forever instead of terminating.  From
        the second iteration on the kernel runs over the data its first
        iteration left behind, so the machine's trajectory — and with it the
        whole system's firing schedule — becomes periodic: exactly the shape
        long-horizon runs need for steady-state detection to fire on the
        CPU netlists (see DESIGN.md §5).  Horizon-bounded runs are the
        intended consumers; a looped program never reports done.
        """
        instructions = [
            isa.jmp(0) if instruction.is_halt else instruction
            for instruction in self.instructions
        ]
        return Program(
            name=f"{self.name}-looped",
            instructions=instructions,
            data=dict(self.data),
            imem_size=self.imem_size,
            dmem_size=self.dmem_size,
            symbols=dict(self.symbols),
        )

    # -- constructors ---------------------------------------------------------------
    @classmethod
    def from_assembly(
        cls,
        name: str,
        text: str,
        data: Optional[Mapping[int, int]] = None,
        imem_size: int = DEFAULT_IMEM_WORDS,
        dmem_size: int = DEFAULT_DMEM_WORDS,
    ) -> "Program":
        """Assemble *text* and wrap it into a program."""
        result: AssemblyResult = assemble(text)
        return cls(
            name=name,
            instructions=list(result.instructions),
            data=dict(data or {}),
            imem_size=imem_size,
            dmem_size=dmem_size,
            symbols=dict(result.symbols),
        )

    @classmethod
    def from_instructions(
        cls,
        name: str,
        instructions: Sequence[Instruction],
        data: Optional[Mapping[int, int]] = None,
        imem_size: int = DEFAULT_IMEM_WORDS,
        dmem_size: int = DEFAULT_DMEM_WORDS,
    ) -> "Program":
        """Wrap an instruction list built programmatically."""
        return cls(
            name=name,
            instructions=list(instructions),
            data=dict(data or {}),
            imem_size=imem_size,
            dmem_size=dmem_size,
        )


def data_from_list(values: Iterable[int], base: int = 0) -> Dict[int, int]:
    """Lay out consecutive words starting at *base* (helper for workloads)."""
    return {base + offset: int(value) for offset, value in enumerate(values)}
