"""Instruction cache (IC) of the Figure 1 processor.

Modelled as a single-cycle instruction memory: every firing it answers the
fetch request received on ``cu_ic`` with the corresponding instruction word on
``ic_cu``.  The IC is purely reactive — it cannot know in advance whether a
request is coming — so it has no WP2 oracle (its only input is always
required).  All relaxation of the CU-IC loop therefore comes from the CU side,
which is exactly the asymmetry the paper's multicycle-vs-pipelined discussion
relies on.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence

from ...core.exceptions import SimulationError
from ...core.process import Process
from ..signals import FetchRequest, fetch_response


class InstructionCache(Process):
    """Single-cycle instruction memory."""

    input_ports = ("cu_ic",)
    output_ports = ("ic_cu",)
    # The instruction image is immutable during a run, so responses are a
    # pure function of the request: the inert base summary is already
    # complete, which lets the IC join a certified (value-inclusive)
    # steady-state snapshot plan (DESIGN.md §5).
    schedule_complete = True

    def __init__(self, words: Sequence[int], name: str = "IC") -> None:
        super().__init__(name)
        if not words:
            raise SimulationError("instruction memory image must not be empty")
        self._image: List[int] = [int(word) for word in words]
        self.words: List[int] = list(self._image)
        self.reads = 0

    def reset(self) -> None:
        super().reset()
        self.words = list(self._image)
        self.reads = 0

    def fire(self, inputs: Mapping[str, object]) -> Dict[str, object]:
        request = inputs["cu_ic"]
        if type(request) is not FetchRequest:
            return {"ic_cu": None}
        address = request.address
        if not 0 <= address < len(self.words):
            raise SimulationError(
                f"{self.name}: fetch address {address} outside instruction memory "
                f"of {len(self.words)} words"
            )
        self.reads += 1
        return {"ic_cu": fetch_response(address, self.words[address])}
