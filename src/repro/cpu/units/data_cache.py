"""Data cache (DC) of the Figure 1 processor.

Modelled as a single-cycle data memory.  The control unit announces each
memory operation on ``cu_dc`` two tags before the effective address arrives
(computed by the ALU, delivered on ``alu_dc``); for stores, the data to write
arrives from the register file on ``rf_dc`` one tag after the announcement.
The DC therefore keeps a small schedule of pending operations:

=====================  =========================================
tag (relative to cmd)  activity
=====================  =========================================
``t``                  consume ``cu_dc`` announcement
``t + 1``              latch store data from ``rf_dc`` (stores)
``t + 2``              consume address from ``alu_dc``, access the
                       memory, emit the load result on ``dc_rf``
=====================  =========================================

The schedule doubles as the WP2 oracle: ``rf_dc`` is required only at tags
where a store's data is due and ``alu_dc`` only at tags where an access is
due, while ``cu_dc`` is always required (the DC cannot predict the CU).
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Mapping, Optional, Sequence

from ...core.exceptions import SimulationError
from ...core.process import Process
from ..isa import to_signed_word
from ..signals import MemAddress, MemCommand, StoreData, load_result


class DataCache(Process):
    """Single-cycle data memory with a two-stage internal schedule."""

    input_ports = ("cu_dc", "rf_dc", "alu_dc")
    output_ports = ("dc_rf",)
    # Complete behavioural summary (certified steady-state detection,
    # DESIGN.md §5): load results depend on the memory image, so the summary
    # is data-dependent and sound only under the value-inclusive snapshot
    # plan.  The image itself enters the per-cycle summary as an
    # incrementally-maintained digest; `schedule_verify_state` exposes the
    # exact words for the per-candidate deep verification.
    schedule_complete = True

    #: Firings between the command and the store data / the memory access.
    STORE_DATA_DELAY = 1
    ACCESS_DELAY = 2

    def __init__(self, image: Sequence[int], name: str = "DC") -> None:
        super().__init__(name)
        self._image: List[int] = [int(word) for word in image]
        self.memory: List[int] = list(self._image)
        # tag -> "read" / "write"
        self.pending_access: Dict[int, str] = {}
        # tag at which store data arrives -> tag of the matching access
        self.pending_store_data: Dict[int, int] = {}
        # access tag -> value to write
        self.store_values: Dict[int, int] = {}
        self.loads = 0
        self.stores = 0
        # XOR-fold over _digest_cell of every word that differs from the
        # initial image (so the reset digest is 0), updated on each store.
        self._memory_digest = 0

    def reset(self) -> None:
        super().reset()
        self.memory = list(self._image)
        self.pending_access = {}
        self.pending_store_data = {}
        self.store_values = {}
        self.loads = 0
        self.stores = 0
        self._memory_digest = 0

    # -- steady-state summary --------------------------------------------------------
    def schedule_state(self):
        """Complete behavioural state, canonical in the firing counter.

        The three pending schedules (due tags made relative) plus the memory
        digest.  The digest folds the whole image into one word so the
        per-cycle summary stays O(pending); the candidate-period verification
        re-checks the exact memory through :meth:`schedule_verify_state`, so
        a digest coincidence can never corrupt an extrapolation.
        """
        tag = self.firings
        return (
            self._memory_digest,
            tuple(
                sorted((due - tag, kind) for due, kind in self.pending_access.items())
            ),
            tuple(
                sorted(
                    (due - tag, access - tag)
                    for due, access in self.pending_store_data.items()
                )
            ),
            tuple(
                sorted((due - tag, value) for due, value in self.store_values.items())
            ),
        )

    def schedule_verify_state(self):
        """The exact state behind the digest: the full memory image."""
        return (tuple(self.memory), self.schedule_state())

    # -- WP2 oracle ----------------------------------------------------------------
    def required_ports(self) -> Optional[FrozenSet[str]]:
        # Constant answers (the oracle runs every cycle on the hot path).
        firings = self.firings
        if firings in self.pending_store_data:
            if firings in self.pending_access:
                return _REQUIRED_CU_RF_ALU
            return _REQUIRED_CU_RF
        if firings in self.pending_access:
            return _REQUIRED_CU_ALU
        return _REQUIRED_CU

    def schedule_jump(self, firings: int) -> None:
        """Shift the pending-operation schedule (see Process.schedule_jump)."""
        self.pending_access = {
            due + firings: kind for due, kind in self.pending_access.items()
        }
        self.pending_store_data = {
            due + firings: access + firings
            for due, access in self.pending_store_data.items()
        }
        self.store_values = {
            due + firings: value for due, value in self.store_values.items()
        }

    # -- firing ---------------------------------------------------------------------
    def fire(self, inputs: Mapping[str, object]) -> Dict[str, object]:
        tag = self.firings

        # 1. New announcement from the control unit.
        command = inputs["cu_dc"]
        if type(command) is MemCommand and (command.read or command.write):
            access_tag = tag + self.ACCESS_DELAY
            self.pending_access[access_tag] = "write" if command.write else "read"
            if command.write:
                self.pending_store_data[tag + self.STORE_DATA_DELAY] = access_tag

        # 2. Store data due this tag.
        if tag in self.pending_store_data:
            access_tag = self.pending_store_data.pop(tag)
            data = inputs["rf_dc"]
            if type(data) is not StoreData:
                raise SimulationError(
                    f"{self.name}: expected store data at tag {tag}, got {data!r}"
                )
            self.store_values[access_tag] = data.value

        # 3. Memory access due this tag.
        result: Optional[LoadResult] = None
        if tag in self.pending_access:
            kind = self.pending_access.pop(tag)
            address_message = inputs["alu_dc"]
            if type(address_message) is not MemAddress:
                raise SimulationError(
                    f"{self.name}: expected an effective address at tag {tag}, "
                    f"got {address_message!r}"
                )
            address = address_message.address
            if not 0 <= address < len(self.memory):
                raise SimulationError(
                    f"{self.name}: {kind} address {address} outside data memory of "
                    f"{len(self.memory)} words"
                )
            if kind == "read":
                result = load_result(self.memory[address])
                self.loads += 1
            else:
                old = self.memory[address]
                new = to_signed_word(self.store_values.pop(tag))
                if new != old:
                    self.memory[address] = new
                    self._memory_digest ^= _digest_cell(address, old) ^ _digest_cell(
                        address, new
                    )
                self.stores += 1

        return {"dc_rf": result}


_DIGEST_MASK = (1 << 64) - 1


def _digest_cell(address: int, value: int) -> int:
    """Deterministic 64-bit mix of one memory cell (splitmix64 finalizer)."""
    x = (address * 0x9E3779B97F4A7C15 + (value & _DIGEST_MASK)) & _DIGEST_MASK
    x ^= x >> 30
    x = (x * 0xBF58476D1CE4E5B9) & _DIGEST_MASK
    x ^= x >> 27
    x = (x * 0x94D049BB133111EB) & _DIGEST_MASK
    return x ^ (x >> 31)


#: Precomputed oracle answers; the DC always needs its command stream and
#: conditionally the store-data and address buses.
_REQUIRED_CU = frozenset({"cu_dc"})
_REQUIRED_CU_RF = frozenset({"cu_dc", "rf_dc"})
_REQUIRED_CU_ALU = frozenset({"cu_dc", "alu_dc"})
_REQUIRED_CU_RF_ALU = frozenset({"cu_dc", "rf_dc", "alu_dc"})
