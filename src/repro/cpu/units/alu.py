"""Arithmetic-logic unit (ALU) of the Figure 1 processor.

The ALU is stateless: each firing it combines the command received from the
control unit (``cu_alu``) with the operands received from the register file
(``rf_alu``) and produces three results:

* ``alu_cu`` — the branch outcome and condition flags for the control unit;
* ``alu_rf`` — the computed value, written back by the register file if the
  instruction has a register destination (the RF knows, the ALU does not);
* ``alu_dc`` — the computed value interpreted as an effective address by the
  data cache for loads and stores.

Because the ALU cannot know in advance whether the next tag carries a real
operation or a bubble, it has no WP2 oracle: both inputs are required every
tag.  The WP2 gains on the ALU's links come from the relaxation at the other
end of each loop (CU, RF, DC).
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional

from ...core.exceptions import SimulationError
from ...core.process import Process
from ..isa import Opcode, to_signed_word
from ..signals import (
    AluCommand,
    AluStatus,
    Operands,
    alu_result,
    alu_status,
    mem_address,
)


class Alu(Process):
    """Combinational ALU with branch-condition evaluation."""

    input_ports = ("cu_alu", "rf_alu")
    output_ports = ("alu_cu", "alu_rf", "alu_dc")
    # Outputs are a pure function of the inputs (the operation counters feed
    # nothing), so the inert base summary is already complete — declaring it
    # lets the ALU join a certified (value-inclusive) steady-state snapshot
    # plan (DESIGN.md §5).
    schedule_complete = True

    def __init__(self, name: str = "ALU") -> None:
        super().__init__(name)
        self.operations = 0
        self.branch_evaluations = 0

    def reset(self) -> None:
        super().reset()
        self.operations = 0
        self.branch_evaluations = 0

    # -- arithmetic ---------------------------------------------------------------
    @staticmethod
    def compute(function: Opcode, a: int, b: int) -> int:
        """Evaluate one ALU function on two signed 32-bit operands."""
        if function is Opcode.ADD:
            result = a + b
        elif function is Opcode.SUB:
            result = a - b
        elif function is Opcode.MUL:
            result = a * b
        elif function is Opcode.AND:
            result = a & b
        elif function is Opcode.OR:
            result = a | b
        elif function is Opcode.XOR:
            result = a ^ b
        elif function is Opcode.SLT:
            result = 1 if a < b else 0
        else:
            raise SimulationError(f"unsupported ALU function {function!r}")
        return to_signed_word(result)

    @staticmethod
    def branch_taken(branch: Opcode, a: int, b: int) -> bool:
        """Evaluate a conditional-branch condition on two register values."""
        if branch is Opcode.BEQ:
            return a == b
        if branch is Opcode.BNE:
            return a != b
        if branch is Opcode.BLT:
            return a < b
        if branch is Opcode.BGE:
            return a >= b
        raise SimulationError(f"unsupported branch condition {branch!r}")

    # -- firing --------------------------------------------------------------------
    def fire(self, inputs: Mapping[str, object]) -> Dict[str, object]:
        command = inputs["cu_alu"]
        if type(command) is not AluCommand:
            return {"alu_cu": None, "alu_rf": None, "alu_dc": None}
        operands = inputs["rf_alu"]
        if type(operands) is not Operands:
            raise SimulationError(
                f"{self.name}: command {command!r} arrived without operands"
            )

        # compute() and branch_taken() inlined: the ALU evaluates on every
        # issued instruction and the dispatch calls showed up in kernel
        # benchmarks.  The staticmethods above remain the reference API.
        a = operands.a
        function = command.function
        second = command.immediate if command.use_immediate else operands.b
        if function is Opcode.ADD:
            value = a + second
        elif function is Opcode.SUB:
            value = a - second
        elif function is Opcode.MUL:
            value = a * second
        elif function is Opcode.AND:
            value = a & second
        elif function is Opcode.OR:
            value = a | second
        elif function is Opcode.XOR:
            value = a ^ second
        elif function is Opcode.SLT:
            value = 1 if a < second else 0
        else:
            raise SimulationError(f"unsupported ALU function {function!r}")
        value = to_signed_word(value)
        self.operations += 1

        taken = False
        branch = command.branch
        if branch is not None:
            b = operands.b
            if branch is Opcode.BEQ:
                taken = a == b
            elif branch is Opcode.BNE:
                taken = a != b
            elif branch is Opcode.BLT:
                taken = a < b
            elif branch is Opcode.BGE:
                taken = a >= b
            else:
                raise SimulationError(f"unsupported branch condition {branch!r}")
            self.branch_evaluations += 1

        status = alu_status(taken, value == 0, value < 0)
        return {
            "alu_cu": status,
            "alu_rf": alu_result(value),
            "alu_dc": mem_address(value),
        }
