"""The five blocks of the Figure 1 case-study processor."""

from .alu import Alu
from .control_unit import ControlUnit, ControlUnitStats
from .data_cache import DataCache
from .instruction_cache import InstructionCache
from .register_file import RegisterFile

__all__ = [
    "Alu",
    "ControlUnit",
    "ControlUnitStats",
    "DataCache",
    "InstructionCache",
    "RegisterFile",
]
