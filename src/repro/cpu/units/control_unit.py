"""Control unit (CU) of the Figure 1 processor.

The CU is the sequencer of the distributed machine: it fetches instruction
words from the instruction cache (over the bidirectional ``CU-IC`` link),
decodes them, checks data hazards with a small scoreboard, and issues one
instruction per cycle by sending *commands* to the register file
(``cu_rf``), the ALU (``cu_alu``, one tag later so it aligns with the
operands) and the data cache (``cu_dc``).  Conditional branches are resolved
by the ALU and reported back on ``alu_cu`` three tags after issue; the CU
stalls issue (but keeps fetching the fall-through path) until the outcome
arrives.

Two control styles are supported, matching the paper's case study:

* **pipelined** (default): the CU fetches continuously and issues a new
  instruction every cycle when no hazard blocks it;
* **multicycle** (``pipelined=False``): one instruction at a time — the next
  fetch starts only after the previous instruction has completed all of its
  phases, which reproduces the paper's "the CU-IC loop is excited only every
  few cycles" observation.

The WP2 oracle of the CU is a pure function of its bookkeeping state: the
``ic_cu`` input is needed only at tags where a non-squashed fetch response is
due, and the ``alu_cu`` input only at tags where a branch resolves.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from functools import lru_cache
from typing import Deque, Dict, FrozenSet, List, Mapping, Optional, Tuple

from ...core.exceptions import SimulationError
from ...core.process import Process
from ..isa import Instruction, Opcode, decode
from ..signals import (
    AluCommand,
    FetchRequest,
    FetchResponse,
    MemCommand,
    RegCommand,
    fetch_request,
)


#: Fetch-slot bookkeeping, one entry per CU firing, encoded as a plain int
#: so the per-firing slot churn allocates nothing: ``_NO_FETCH`` (-1) marks a
#: cycle without a fetch, an address >= 0 a live fetch, and ``-(address + 2)``
#: a squashed (wrong-path) fetch.
_NO_FETCH = -1


def _squash_slot(slot: int) -> int:
    return -(slot + 2)


@dataclass
class _BranchWait:
    """An issued branch waiting for its outcome on ``alu_cu``."""

    resolve_at: int
    target: int


@dataclass
class ControlUnitStats:
    """Issue statistics accumulated by the control unit."""

    issued: int = 0
    bubbles_raw_hazard: int = 0
    bubbles_branch_wait: int = 0
    bubbles_empty_ibuf: int = 0
    branches: int = 0
    taken_branches: int = 0
    loads: int = 0
    stores: int = 0
    fetches: int = 0
    squashed_fetches: int = 0


class ControlUnit(Process):
    """The CU block: fetch, decode, hazard tracking, issue, branch handling."""

    input_ports = ("ic_cu", "alu_cu")
    output_ports = ("cu_ic", "cu_rf", "cu_alu", "cu_dc")
    done_attribute = "halted"
    # The summary below captures the complete behavioural state (certified
    # steady-state detection, DESIGN.md §5): the CU's control is
    # data-dependent (branch outcomes steer the PC), so it is only sound
    # under the value-inclusive snapshot plan.
    schedule_complete = True

    #: Latency (in CU firings) between issuing a fetch request and receiving
    #: the corresponding instruction word back: request -> IC -> response.
    FETCH_ROUNDTRIP = 2
    #: Latency between issuing an instruction and consuming its branch outcome.
    BRANCH_RESOLUTION = 3
    #: Scoreboard delays: a dependent instruction may issue this many firings
    #: after the producer (RF applies writes before reads within a firing).
    ALU_RESULT_DELAY = 2
    LOAD_RESULT_DELAY = 3
    #: Completion delay used by the multicycle (serialised) control style.
    COMPLETION_DELAY = 4

    def __init__(
        self,
        name: str = "CU",
        pipelined: bool = True,
        fetch_buffer: int = 4,
    ) -> None:
        super().__init__(name)
        if fetch_buffer < 1:
            raise SimulationError("fetch buffer must hold at least one entry")
        self.pipelined = pipelined
        self.fetch_buffer = fetch_buffer
        self._reset_state()

    # -- lifecycle ---------------------------------------------------------------
    def _reset_state(self) -> None:
        self.pc = 0
        self.halted = False
        # One slot per firing; the response to the request emitted at firing d
        # arrives at firing d + FETCH_ROUNDTRIP, so the queue is primed with
        # FETCH_ROUNDTRIP invalid entries covering the reset values.
        self.fetch_slots: Deque[int] = deque(
            _NO_FETCH for _ in range(self.FETCH_ROUNDTRIP)
        )
        # Live-fetch count (valid, un-squashed slots), maintained incrementally:
        # the fetch path consults it on every firing.
        self.inflight_fetches = 0
        self.ibuf: Deque[Tuple[int, Instruction]] = deque()
        self.branch_wait: Optional[_BranchWait] = None
        self.scoreboard: Dict[int, int] = {}
        self.alu_command_register: Optional[AluCommand] = None
        self.busy_until = 0
        self.stats = ControlUnitStats()

    def reset(self) -> None:
        super().reset()
        self._reset_state()

    def is_done(self) -> bool:
        return self.halted

    # -- WP2 oracle ----------------------------------------------------------------
    def required_ports(self) -> Optional[FrozenSet[str]]:
        # Constant answers (the oracle runs every cycle on the hot path).
        if self.halted:
            return _REQUIRED_NONE
        fetch_due = self.fetch_slots[0] >= 0
        branch_due = (
            self.branch_wait is not None
            and self.branch_wait.resolve_at == self.firings
        )
        if fetch_due:
            return _REQUIRED_IC_ALU if branch_due else _REQUIRED_IC
        return _REQUIRED_ALU if branch_due else _REQUIRED_NONE

    # -- steady-state summary -------------------------------------------------------
    def schedule_state(self):
        """Complete behavioural state, canonical in the firing counter.

        Everything the next firings read is captured: PC, halt flag, the
        fetch-slot pipeline (addresses are loop-relative facts that recur on
        looping programs), the decoded instruction buffer, the pending branch
        (resolution distance, not absolute tag), the live scoreboard entries
        (expired ones can never gate an issue again) and the registered ALU
        command.  Issue statistics are excluded: like every process-internal
        counter they stop advancing at the skip point (the documented
        ``extrapolated`` caveat) and never feed a decision.
        """
        tag = self.firings
        wait = self.branch_wait
        return (
            self.pc,
            self.halted,
            tuple(self.fetch_slots),
            tuple(self.ibuf),
            None if wait is None else (wait.resolve_at - tag, wait.target),
            tuple(
                sorted(
                    (register, ready - tag)
                    for register, ready in self.scoreboard.items()
                    if ready > tag
                )
            ),
            0 if self.pipelined else max(self.busy_until - tag, 0),
            self.alu_command_register,
        )

    def schedule_jump(self, firings: int) -> None:
        """Shift the absolute-tag bookkeeping (see Process.schedule_jump)."""
        if self.branch_wait is not None:
            self.branch_wait.resolve_at += firings
        if self.scoreboard:
            self.scoreboard = {
                register: ready + firings
                for register, ready in self.scoreboard.items()
            }
        self.busy_until += firings

    # -- firing ---------------------------------------------------------------------
    def fire(self, inputs: Mapping[str, object]) -> Dict[str, object]:
        tag = self.firings

        # Receive the fetch response due this firing (inlined _receive_fetch:
        # this runs on every firing of every simulated configuration).
        slot = self.fetch_slots.popleft()
        if slot >= 0:
            self.inflight_fetches -= 1
            if not self.halted:
                response = inputs["ic_cu"]
                if type(response) is not FetchResponse:
                    raise SimulationError(
                        f"{self.name}: expected a fetch response for address "
                        f"{slot}, got {response!r}"
                    )
                self.ibuf.append((response.address, decode(response.word)))
        wait = self.branch_wait
        if wait is not None and wait.resolve_at == tag:
            self._resolve_branch(tag, inputs)

        # Issue (early-outs inlined: most firings bubble for one of these
        # reasons and should not pay a call to find out).
        stats = self.stats
        if self.halted:
            reg_command = mem_command = next_alu_command = None
        elif self.branch_wait is not None:
            stats.bubbles_branch_wait += 1
            reg_command = mem_command = next_alu_command = None
        elif not self.ibuf or (not self.pipelined and tag < self.busy_until):
            stats.bubbles_empty_ibuf += 1
            reg_command = mem_command = next_alu_command = None
        else:
            reg_command, mem_command, next_alu_command = self._issue(tag)
        fetch = self._fetch(tag)

        outputs = {
            "cu_ic": fetch,
            "cu_rf": reg_command,
            "cu_dc": mem_command,
            "cu_alu": self.alu_command_register,
        }
        self.alu_command_register = next_alu_command
        return outputs

    def _outstanding_fetches(self) -> int:
        return self.inflight_fetches

    def _fetch(self, tag: int) -> Optional[FetchRequest]:
        want_fetch = not self.halted
        if want_fetch and not self.pipelined:
            # Multicycle control: strictly one instruction in flight.
            want_fetch = (
                tag >= self.busy_until
                and not self.ibuf
                and self.inflight_fetches == 0
                and self.branch_wait is None
            )
        if want_fetch:
            occupancy = len(self.ibuf) + self.inflight_fetches
            want_fetch = occupancy < self.fetch_buffer
        if not want_fetch:
            self.fetch_slots.append(_NO_FETCH)
            return None
        request = fetch_request(self.pc)
        self.fetch_slots.append(self.pc)
        self.inflight_fetches += 1
        self.pc += 1
        self.stats.fetches += 1
        return request

    def _squash_wrong_path(self) -> None:
        """Drop buffered and in-flight instructions after a redirect."""
        self.ibuf.clear()
        slots = self.fetch_slots
        for index, slot in enumerate(slots):
            if slot >= 0:
                slots[index] = _squash_slot(slot)
                self.inflight_fetches -= 1
                self.stats.squashed_fetches += 1

    # -- branch handling ----------------------------------------------------------------
    def _resolve_branch(self, tag: int, inputs: Mapping[str, object]) -> None:
        if self.branch_wait is None or self.branch_wait.resolve_at != tag:
            return
        status = inputs["alu_cu"]
        taken = bool(getattr(status, "taken", False))
        if taken:
            self.pc = self.branch_wait.target
            self._squash_wrong_path()
            self.stats.taken_branches += 1
        self.branch_wait = None

    # -- issue side -----------------------------------------------------------------------
    def _issue(
        self, tag: int
    ) -> Tuple[Optional[RegCommand], Optional[MemCommand], Optional[AluCommand]]:
        if self.halted:
            return None, None, None
        if self.branch_wait is not None:
            self.stats.bubbles_branch_wait += 1
            return None, None, None
        if not self.pipelined and tag < self.busy_until:
            self.stats.bubbles_empty_ibuf += 1
            return None, None, None
        if not self.ibuf:
            self.stats.bubbles_empty_ibuf += 1
            return None, None, None

        stats = self.stats
        address, instruction = self.ibuf[0]
        scoreboard = self.scoreboard
        for register in instruction.hazard_registers:
            if scoreboard.get(register, 0) > tag:
                stats.bubbles_raw_hazard += 1
                return None, None, None

        self.ibuf.popleft()
        stats.issued += 1
        destination = instruction.writes_register
        if destination is not None and destination != 0:
            delay = (
                self.LOAD_RESULT_DELAY
                if instruction.is_load
                else self.ALU_RESULT_DELAY
            )
            scoreboard[destination] = tag + delay
        self.busy_until = tag + self.COMPLETION_DELAY

        if instruction.is_halt:
            self.halted = True
            return None, None, None
        if instruction.is_nop:
            return None, None, None
        if instruction.is_jump:
            self.pc = instruction.imm
            self._squash_wrong_path()
            return None, None, None

        reg_command, alu_command, mem_command = self._build_commands(instruction)

        if instruction.is_branch:
            stats.branches += 1
            self.branch_wait = _BranchWait(
                resolve_at=tag + self.BRANCH_RESOLUTION, target=instruction.imm
            )
        if instruction.is_load:
            stats.loads += 1
        if instruction.is_store:
            stats.stores += 1
        return reg_command, mem_command, alu_command

    # -- command builders -----------------------------------------------------------------
    @staticmethod
    @lru_cache(maxsize=4096)
    def _build_commands(
        instruction: Instruction,
    ) -> Tuple[RegCommand, AluCommand, Optional[MemCommand]]:
        """All three per-instruction commands behind a single cache lookup."""
        return (
            ControlUnit._build_reg_command(instruction),
            ControlUnit._build_alu_command(instruction),
            ControlUnit._build_mem_command(instruction),
        )

    @staticmethod
    def _build_reg_command(instruction: Instruction) -> RegCommand:
        read_a: Optional[int] = None
        read_b: Optional[int] = None
        alu_writeback: Optional[int] = None
        mem_writeback: Optional[int] = None
        store_data: Optional[int] = None

        if instruction.is_branch:
            read_a, read_b = instruction.ra, instruction.rb
        elif instruction.is_load:
            read_a = instruction.ra
            mem_writeback = instruction.rd
        elif instruction.is_store:
            read_a = instruction.ra
            store_data = instruction.rb
        elif instruction.op is Opcode.LI:
            alu_writeback = instruction.rd
        elif instruction.uses_immediate_operand:
            read_a = instruction.ra
            alu_writeback = instruction.rd
        else:
            read_a, read_b = instruction.ra, instruction.rb
            alu_writeback = instruction.rd
        return RegCommand(
            read_a=read_a,
            read_b=read_b,
            alu_writeback=alu_writeback,
            mem_writeback=mem_writeback,
            store_data=store_data,
        )

    @staticmethod
    def _build_alu_command(instruction: Instruction) -> AluCommand:
        return AluCommand(
            function=instruction.alu_function,
            use_immediate=instruction.uses_immediate_operand,
            immediate=instruction.imm,
            branch=instruction.op if instruction.is_branch else None,
        )

    @staticmethod
    def _build_mem_command(instruction: Instruction) -> Optional[MemCommand]:
        if instruction.is_load:
            return MemCommand(read=True)
        if instruction.is_store:
            return MemCommand(write=True)
        return None


#: Precomputed oracle answers for the four fetch-due/branch-due combinations.
_REQUIRED_NONE = frozenset()
_REQUIRED_IC = frozenset({"ic_cu"})
_REQUIRED_ALU = frozenset({"alu_cu"})
_REQUIRED_IC_ALU = frozenset({"ic_cu", "alu_cu"})
