"""Control unit (CU) of the Figure 1 processor.

The CU is the sequencer of the distributed machine: it fetches instruction
words from the instruction cache (over the bidirectional ``CU-IC`` link),
decodes them, checks data hazards with a small scoreboard, and issues one
instruction per cycle by sending *commands* to the register file
(``cu_rf``), the ALU (``cu_alu``, one tag later so it aligns with the
operands) and the data cache (``cu_dc``).  Conditional branches are resolved
by the ALU and reported back on ``alu_cu`` three tags after issue; the CU
stalls issue (but keeps fetching the fall-through path) until the outcome
arrives.

Two control styles are supported, matching the paper's case study:

* **pipelined** (default): the CU fetches continuously and issues a new
  instruction every cycle when no hazard blocks it;
* **multicycle** (``pipelined=False``): one instruction at a time — the next
  fetch starts only after the previous instruction has completed all of its
  phases, which reproduces the paper's "the CU-IC loop is excited only every
  few cycles" observation.

The WP2 oracle of the CU is a pure function of its bookkeeping state: the
``ic_cu`` input is needed only at tags where a non-squashed fetch response is
due, and the ``alu_cu`` input only at tags where a branch resolves.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from functools import lru_cache
from typing import Deque, Dict, FrozenSet, List, Mapping, Optional, Tuple

from ...core.exceptions import SimulationError
from ...core.process import Process
from ..isa import Instruction, Opcode, decode
from ..signals import AluCommand, FetchRequest, FetchResponse, MemCommand, RegCommand


@dataclass(slots=True)
class _FetchSlot:
    """Bookkeeping for one in-flight fetch (one entry per CU firing)."""

    valid: bool
    address: int = 0
    squashed: bool = False


#: Shared slot for cycles without a fetch.  Safe to alias: only valid slots
#: are ever mutated (squashing marks wrong-path *fetches*).
_INVALID_SLOT = _FetchSlot(valid=False)


@dataclass
class _BranchWait:
    """An issued branch waiting for its outcome on ``alu_cu``."""

    resolve_at: int
    target: int


@dataclass
class ControlUnitStats:
    """Issue statistics accumulated by the control unit."""

    issued: int = 0
    bubbles_raw_hazard: int = 0
    bubbles_branch_wait: int = 0
    bubbles_empty_ibuf: int = 0
    branches: int = 0
    taken_branches: int = 0
    loads: int = 0
    stores: int = 0
    fetches: int = 0
    squashed_fetches: int = 0


class ControlUnit(Process):
    """The CU block: fetch, decode, hazard tracking, issue, branch handling."""

    input_ports = ("ic_cu", "alu_cu")
    output_ports = ("cu_ic", "cu_rf", "cu_alu", "cu_dc")

    #: Latency (in CU firings) between issuing a fetch request and receiving
    #: the corresponding instruction word back: request -> IC -> response.
    FETCH_ROUNDTRIP = 2
    #: Latency between issuing an instruction and consuming its branch outcome.
    BRANCH_RESOLUTION = 3
    #: Scoreboard delays: a dependent instruction may issue this many firings
    #: after the producer (RF applies writes before reads within a firing).
    ALU_RESULT_DELAY = 2
    LOAD_RESULT_DELAY = 3
    #: Completion delay used by the multicycle (serialised) control style.
    COMPLETION_DELAY = 4

    def __init__(
        self,
        name: str = "CU",
        pipelined: bool = True,
        fetch_buffer: int = 4,
    ) -> None:
        super().__init__(name)
        if fetch_buffer < 1:
            raise SimulationError("fetch buffer must hold at least one entry")
        self.pipelined = pipelined
        self.fetch_buffer = fetch_buffer
        self._reset_state()

    # -- lifecycle ---------------------------------------------------------------
    def _reset_state(self) -> None:
        self.pc = 0
        self.halted = False
        # One slot per firing; the response to the request emitted at firing d
        # arrives at firing d + FETCH_ROUNDTRIP, so the queue is primed with
        # FETCH_ROUNDTRIP invalid entries covering the reset values.
        self.fetch_slots: Deque[_FetchSlot] = deque(
            _INVALID_SLOT for _ in range(self.FETCH_ROUNDTRIP)
        )
        self.ibuf: Deque[Tuple[int, Instruction]] = deque()
        self.branch_wait: Optional[_BranchWait] = None
        self.scoreboard: Dict[int, int] = {}
        self.alu_command_register: Optional[AluCommand] = None
        self.busy_until = 0
        self.stats = ControlUnitStats()

    def reset(self) -> None:
        super().reset()
        self._reset_state()

    def is_done(self) -> bool:
        return self.halted

    # -- WP2 oracle ----------------------------------------------------------------
    def required_ports(self) -> Optional[FrozenSet[str]]:
        # Constant answers (the oracle runs every cycle on the hot path).
        if self.halted:
            return _REQUIRED_NONE
        head = self.fetch_slots[0]
        fetch_due = head.valid and not head.squashed
        branch_due = (
            self.branch_wait is not None
            and self.branch_wait.resolve_at == self.firings
        )
        if fetch_due:
            return _REQUIRED_IC_ALU if branch_due else _REQUIRED_IC
        return _REQUIRED_ALU if branch_due else _REQUIRED_NONE

    # -- firing ---------------------------------------------------------------------
    def fire(self, inputs: Mapping[str, object]) -> Dict[str, object]:
        tag = self.firings

        self._receive_fetch(inputs)
        self._resolve_branch(tag, inputs)

        reg_command, mem_command, next_alu_command = self._issue(tag)
        fetch_request = self._fetch(tag)

        outputs = {
            "cu_ic": fetch_request,
            "cu_rf": reg_command,
            "cu_dc": mem_command,
            "cu_alu": self.alu_command_register,
        }
        self.alu_command_register = next_alu_command
        return outputs

    # -- fetch side -------------------------------------------------------------------
    def _receive_fetch(self, inputs: Mapping[str, object]) -> None:
        slot = self.fetch_slots.popleft()
        if self.halted or not slot.valid or slot.squashed:
            return
        response = inputs["ic_cu"]
        if not isinstance(response, FetchResponse):
            raise SimulationError(
                f"{self.name}: expected a fetch response for address {slot.address}, "
                f"got {response!r}"
            )
        self.ibuf.append((response.address, decode(response.word)))

    def _outstanding_fetches(self) -> int:
        return sum(
            1 for slot in self.fetch_slots if slot.valid and not slot.squashed
        )

    def _fetch(self, tag: int) -> Optional[FetchRequest]:
        want_fetch = not self.halted
        if want_fetch and not self.pipelined:
            # Multicycle control: strictly one instruction in flight.
            want_fetch = (
                tag >= self.busy_until
                and not self.ibuf
                and self._outstanding_fetches() == 0
                and self.branch_wait is None
            )
        if want_fetch:
            occupancy = len(self.ibuf) + self._outstanding_fetches()
            want_fetch = occupancy < self.fetch_buffer
        if not want_fetch:
            self.fetch_slots.append(_INVALID_SLOT)
            return None
        request = FetchRequest(address=self.pc)
        self.fetch_slots.append(_FetchSlot(valid=True, address=self.pc))
        self.pc += 1
        self.stats.fetches += 1
        return request

    def _squash_wrong_path(self) -> None:
        """Drop buffered and in-flight instructions after a redirect."""
        self.ibuf.clear()
        for slot in self.fetch_slots:
            if slot.valid and not slot.squashed:
                slot.squashed = True
                self.stats.squashed_fetches += 1

    # -- branch handling ----------------------------------------------------------------
    def _resolve_branch(self, tag: int, inputs: Mapping[str, object]) -> None:
        if self.branch_wait is None or self.branch_wait.resolve_at != tag:
            return
        status = inputs["alu_cu"]
        taken = bool(getattr(status, "taken", False))
        if taken:
            self.pc = self.branch_wait.target
            self._squash_wrong_path()
            self.stats.taken_branches += 1
        self.branch_wait = None

    # -- issue side -----------------------------------------------------------------------
    def _issue(
        self, tag: int
    ) -> Tuple[Optional[RegCommand], Optional[MemCommand], Optional[AluCommand]]:
        if self.halted:
            return None, None, None
        if self.branch_wait is not None:
            self.stats.bubbles_branch_wait += 1
            return None, None, None
        if not self.pipelined and tag < self.busy_until:
            self.stats.bubbles_empty_ibuf += 1
            return None, None, None
        if not self.ibuf:
            self.stats.bubbles_empty_ibuf += 1
            return None, None, None

        address, instruction = self.ibuf[0]
        if not self._sources_ready(instruction, tag):
            self.stats.bubbles_raw_hazard += 1
            return None, None, None

        self.ibuf.popleft()
        self.stats.issued += 1
        self._update_scoreboard(instruction, tag)
        self.busy_until = tag + self.COMPLETION_DELAY

        if instruction.is_halt:
            self.halted = True
            return None, None, None
        if instruction.is_nop:
            return None, None, None
        if instruction.is_jump:
            self.pc = instruction.imm
            self._squash_wrong_path()
            return None, None, None

        reg_command = self._build_reg_command(instruction)
        alu_command = self._build_alu_command(instruction)
        mem_command = self._build_mem_command(instruction)

        if instruction.is_branch:
            self.stats.branches += 1
            self.branch_wait = _BranchWait(
                resolve_at=tag + self.BRANCH_RESOLUTION, target=instruction.imm
            )
        if instruction.is_load:
            self.stats.loads += 1
        if instruction.is_store:
            self.stats.stores += 1
        return reg_command, mem_command, alu_command

    def _sources_ready(self, instruction: Instruction, tag: int) -> bool:
        scoreboard = self.scoreboard
        for register in _hazard_registers(instruction):
            if scoreboard.get(register, 0) > tag:
                return False
        return True

    def _update_scoreboard(self, instruction: Instruction, tag: int) -> None:
        destination = instruction.writes_register
        if destination is None or destination == 0:
            return
        delay = self.LOAD_RESULT_DELAY if instruction.is_load else self.ALU_RESULT_DELAY
        self.scoreboard[destination] = tag + delay

    # -- command builders -----------------------------------------------------------------
    @staticmethod
    @lru_cache(maxsize=4096)
    def _build_reg_command(instruction: Instruction) -> RegCommand:
        read_a: Optional[int] = None
        read_b: Optional[int] = None
        alu_writeback: Optional[int] = None
        mem_writeback: Optional[int] = None
        store_data: Optional[int] = None

        if instruction.is_branch:
            read_a, read_b = instruction.ra, instruction.rb
        elif instruction.is_load:
            read_a = instruction.ra
            mem_writeback = instruction.rd
        elif instruction.is_store:
            read_a = instruction.ra
            store_data = instruction.rb
        elif instruction.op is Opcode.LI:
            alu_writeback = instruction.rd
        elif instruction.uses_immediate_operand:
            read_a = instruction.ra
            alu_writeback = instruction.rd
        else:
            read_a, read_b = instruction.ra, instruction.rb
            alu_writeback = instruction.rd
        return RegCommand(
            read_a=read_a,
            read_b=read_b,
            alu_writeback=alu_writeback,
            mem_writeback=mem_writeback,
            store_data=store_data,
        )

    @staticmethod
    @lru_cache(maxsize=4096)
    def _build_alu_command(instruction: Instruction) -> AluCommand:
        return AluCommand(
            function=instruction.alu_function,
            use_immediate=instruction.uses_immediate_operand,
            immediate=instruction.imm,
            branch=instruction.op if instruction.is_branch else None,
        )

    @staticmethod
    @lru_cache(maxsize=4096)
    def _build_mem_command(instruction: Instruction) -> Optional[MemCommand]:
        if instruction.is_load:
            return MemCommand(read=True)
        if instruction.is_store:
            return MemCommand(write=True)
        return None


@lru_cache(maxsize=4096)
def _hazard_registers(instruction: Instruction) -> Tuple[int, ...]:
    """Source registers participating in RAW-hazard checks (r0 never does)."""
    return tuple(
        register for register in instruction.source_registers if register != 0
    )


#: Precomputed oracle answers for the four fetch-due/branch-due combinations.
_REQUIRED_NONE = frozenset()
_REQUIRED_IC = frozenset({"ic_cu"})
_REQUIRED_ALU = frozenset({"alu_cu"})
_REQUIRED_IC_ALU = frozenset({"ic_cu", "alu_cu"})
