"""Register file (RF) of the Figure 1 processor.

The RF owns the sixteen architectural registers.  Each firing it:

1. applies the load writeback scheduled for this tag (value on ``dc_rf``);
2. applies the ALU writeback scheduled for this tag (value on ``alu_rf``);
3. executes the register command received on ``cu_rf``: reads the requested
   operands (after the writes — the RF forwards internally within a firing),
   sends them to the ALU on ``rf_alu``, sends store data to the data cache on
   ``rf_dc`` and records the future writebacks the command announces.

The destinations of pending writebacks are remembered locally (the ALU and DC
only ship values), so the WP2 oracle of the RF is a pure function of its own
pending-writeback schedule: ``alu_rf`` and ``dc_rf`` are required only at tags
where a writeback is actually due, which is what unlocks the large WP2 gains
on the ``ALU-RF``, ``DC-RF`` and ``RF-DC`` links.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Mapping, Optional

from ...core.exceptions import SimulationError
from ...core.process import Process
from ..isa import NUM_REGISTERS, to_signed_word
from ..signals import AluResult, LoadResult, RegCommand, StoreData, operands, store_data


class RegisterFile(Process):
    """Sixteen general-purpose registers with two writeback ports."""

    input_ports = ("cu_rf", "alu_rf", "dc_rf")
    output_ports = ("rf_alu", "rf_dc")
    # Complete behavioural summary (certified steady-state detection,
    # DESIGN.md §5): register values feed operand tokens, so the summary is
    # data-dependent and sound only under the value-inclusive snapshot plan.
    schedule_complete = True

    #: Firings between receiving a command and receiving the matching
    #: ALU / load writeback values.
    ALU_WRITEBACK_DELAY = 2
    MEM_WRITEBACK_DELAY = 3

    def __init__(self, name: str = "RF") -> None:
        super().__init__(name)
        self.registers: List[int] = [0] * NUM_REGISTERS
        self.pending_alu_writeback: Dict[int, int] = {}
        self.pending_mem_writeback: Dict[int, int] = {}
        self.writes = 0
        self.reads = 0

    def reset(self) -> None:
        super().reset()
        self.registers = [0] * NUM_REGISTERS
        self.pending_alu_writeback = {}
        self.pending_mem_writeback = {}
        self.writes = 0
        self.reads = 0

    # -- WP2 oracle ---------------------------------------------------------------
    def required_ports(self) -> Optional[FrozenSet[str]]:
        # Constant answers (the oracle runs every cycle on the hot path).
        firings = self.firings
        if firings in self.pending_alu_writeback:
            if firings in self.pending_mem_writeback:
                return _REQUIRED_CU_ALU_MEM
            return _REQUIRED_CU_ALU
        if firings in self.pending_mem_writeback:
            return _REQUIRED_CU_MEM
        return _REQUIRED_CU

    # -- steady-state summary -------------------------------------------------------
    def schedule_state(self):
        """Complete behavioural state, canonical in the firing counter.

        The sixteen register values plus both pending-writeback schedules
        with their due tags made relative (entries are popped when due, so
        every key is >= the current tag).  The read/write counters never
        feed a decision and are excluded.
        """
        tag = self.firings
        return (
            tuple(self.registers),
            tuple(
                sorted(
                    (due - tag, register)
                    for due, register in self.pending_alu_writeback.items()
                )
            ),
            tuple(
                sorted(
                    (due - tag, register)
                    for due, register in self.pending_mem_writeback.items()
                )
            ),
        )

    def schedule_jump(self, firings: int) -> None:
        """Shift the pending-writeback due tags (see Process.schedule_jump)."""
        self.pending_alu_writeback = {
            due + firings: register
            for due, register in self.pending_alu_writeback.items()
        }
        self.pending_mem_writeback = {
            due + firings: register
            for due, register in self.pending_mem_writeback.items()
        }

    # -- helpers -------------------------------------------------------------------
    def _write(self, register: int, value: int) -> None:
        if register == 0:
            return
        self.registers[register] = to_signed_word(value)
        self.writes += 1

    def _read(self, register: Optional[int]) -> int:
        if register is None:
            return 0
        self.reads += 1
        return self.registers[register]

    # -- firing --------------------------------------------------------------------
    def fire(self, inputs: Mapping[str, object]) -> Dict[str, object]:
        # The reads/writes below inline _read/_write: the RF fires on every
        # tag of every simulated configuration and the helper calls showed up
        # in kernel benchmarks.
        tag = self.firings
        registers = self.registers

        # 1. Load writeback scheduled for this tag (older than the ALU one).
        if tag in self.pending_mem_writeback:
            destination = self.pending_mem_writeback.pop(tag)
            result = inputs["dc_rf"]
            if type(result) is not LoadResult:
                raise SimulationError(
                    f"{self.name}: expected load data at tag {tag}, got {result!r}"
                )
            if destination:
                registers[destination] = to_signed_word(result.value)
                self.writes += 1

        # 2. ALU writeback scheduled for this tag.
        if tag in self.pending_alu_writeback:
            destination = self.pending_alu_writeback.pop(tag)
            result = inputs["alu_rf"]
            if type(result) is not AluResult:
                raise SimulationError(
                    f"{self.name}: expected an ALU result at tag {tag}, got {result!r}"
                )
            if destination:
                registers[destination] = to_signed_word(result.value)
                self.writes += 1

        # 3. Register command for the instruction issued one tag ago.
        command = inputs["cu_rf"]
        if type(command) is not RegCommand:
            return {"rf_alu": None, "rf_dc": None}

        reads = 0
        read_a = command.read_a
        if read_a is None:
            a = 0
        else:
            a = registers[read_a]
            reads += 1
        read_b = command.read_b
        if read_b is None:
            b = 0
        else:
            b = registers[read_b]
            reads += 1
        ops = operands(a, b)
        store: Optional[StoreData] = None
        if command.store_data is not None:
            store = store_data(registers[command.store_data])
            reads += 1
        if reads:
            self.reads += reads
        if command.alu_writeback is not None:
            self.pending_alu_writeback[tag + self.ALU_WRITEBACK_DELAY] = command.alu_writeback
        if command.mem_writeback is not None:
            self.pending_mem_writeback[tag + self.MEM_WRITEBACK_DELAY] = command.mem_writeback
        return {"rf_alu": ops, "rf_dc": store}


#: Precomputed oracle answers; the RF always needs its command stream and
#: conditionally the two writeback buses.
_REQUIRED_CU = frozenset({"cu_rf"})
_REQUIRED_CU_ALU = frozenset({"cu_rf", "alu_rf"})
_REQUIRED_CU_MEM = frozenset({"cu_rf", "dc_rf"})
_REQUIRED_CU_ALU_MEM = frozenset({"cu_rf", "alu_rf", "dc_rf"})
