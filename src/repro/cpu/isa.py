"""Minimal instruction set of the Figure 1 case-study processor.

The paper only states that the processor has "a minimal instruction set"; we
define a small word-addressed RISC ISA that is sufficient to express the two
benchmark programs (extraction sort and matrix multiply) and exercises every
channel of the Figure 1 topology:

* 16 general-purpose registers ``r0``–``r15`` with ``r0`` hard-wired to zero;
* register-register and register-immediate ALU operations;
* loads and stores with base + immediate-offset addressing;
* conditional branches (resolved in the ALU) and an unconditional jump
  (resolved at decode);
* ``HALT`` to terminate the program and ``NOP``.

Instructions are encoded into 32-bit words (the instruction cache stores the
encoded words; the control unit decodes them), with the layout::

    [31:26] opcode | [25:22] rd | [21:18] ra | [17:14] rb | [13:0] imm (signed)

The 14-bit signed immediate is ample for the benchmark programs.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field as dc_field
from functools import lru_cache
from typing import Dict, FrozenSet, Optional, Tuple

from ..core.exceptions import AssemblerError


#: Number of architectural registers.
NUM_REGISTERS = 16
#: Bit width of the immediate field.
IMM_BITS = 14
IMM_MIN = -(1 << (IMM_BITS - 1))
IMM_MAX = (1 << (IMM_BITS - 1)) - 1
#: Machine word width (values are wrapped to this width by the ALU).
WORD_BITS = 32
WORD_MASK = (1 << WORD_BITS) - 1


class Opcode(enum.Enum):
    """Operation codes of the minimal ISA."""

    NOP = 0
    HALT = 1
    # register-register ALU
    ADD = 2
    SUB = 3
    MUL = 4
    AND = 5
    OR = 6
    XOR = 7
    SLT = 8
    # register-immediate ALU
    ADDI = 16
    SUBI = 17
    MULI = 18
    ANDI = 19
    ORI = 20
    XORI = 21
    SLTI = 22
    LI = 23
    # memory
    LD = 32
    ST = 33
    # control
    BEQ = 48
    BNE = 49
    BLT = 50
    BGE = 51
    JMP = 52


#: Opcodes whose result is written to a destination register by the ALU.
ALU_WRITEBACK_OPS: FrozenSet[Opcode] = frozenset(
    {
        Opcode.ADD, Opcode.SUB, Opcode.MUL, Opcode.AND, Opcode.OR, Opcode.XOR,
        Opcode.SLT, Opcode.ADDI, Opcode.SUBI, Opcode.MULI, Opcode.ANDI,
        Opcode.ORI, Opcode.XORI, Opcode.SLTI, Opcode.LI,
    }
)
#: Register-immediate ALU opcodes.
IMMEDIATE_OPS: FrozenSet[Opcode] = frozenset(
    {
        Opcode.ADDI, Opcode.SUBI, Opcode.MULI, Opcode.ANDI, Opcode.ORI,
        Opcode.XORI, Opcode.SLTI, Opcode.LI,
    }
)
#: Conditional branch opcodes (resolved in the ALU).
BRANCH_OPS: FrozenSet[Opcode] = frozenset(
    {Opcode.BEQ, Opcode.BNE, Opcode.BLT, Opcode.BGE}
)
#: Mapping from immediate opcode to the underlying ALU function.
IMMEDIATE_TO_ALU: Dict[Opcode, Opcode] = {
    Opcode.ADDI: Opcode.ADD,
    Opcode.SUBI: Opcode.SUB,
    Opcode.MULI: Opcode.MUL,
    Opcode.ANDI: Opcode.AND,
    Opcode.ORI: Opcode.OR,
    Opcode.XORI: Opcode.XOR,
    Opcode.SLTI: Opcode.SLT,
    Opcode.LI: Opcode.ADD,
}


@dataclass(frozen=True)
class Instruction:
    """A decoded instruction.

    ``rd`` is the destination register, ``ra``/``rb`` the source registers and
    ``imm`` the signed immediate; fields that an opcode does not use are kept
    at zero.  For branches ``ra``/``rb`` are the compared registers and
    ``imm`` is the *absolute* target address; for ``JMP`` only ``imm`` is
    used; for ``LD``/``ST`` the effective address is ``regs[ra] + imm`` and
    ``rb`` holds the store-data register for ``ST``.
    """

    op: Opcode
    rd: int = 0
    ra: int = 0
    rb: int = 0
    imm: int = 0

    # Classification results, precomputed once per decoded instruction.
    # Every issue consults several of them and the memoised decode/command
    # caches hash instructions on every lookup, so these are plain instance
    # attributes (and the hash a cached int) rather than recomputing
    # properties: the control unit sits on every simulator's critical loop.
    is_alu_writeback: bool = dc_field(init=False, compare=False, repr=False)
    is_load: bool = dc_field(init=False, compare=False, repr=False)
    is_store: bool = dc_field(init=False, compare=False, repr=False)
    is_memory: bool = dc_field(init=False, compare=False, repr=False)
    is_branch: bool = dc_field(init=False, compare=False, repr=False)
    is_jump: bool = dc_field(init=False, compare=False, repr=False)
    is_halt: bool = dc_field(init=False, compare=False, repr=False)
    is_nop: bool = dc_field(init=False, compare=False, repr=False)
    #: True when the second ALU operand is the immediate.
    uses_immediate_operand: bool = dc_field(init=False, compare=False, repr=False)
    #: Destination register written by this instruction, or ``None``.  Writes
    #: to ``r0`` are discarded by the register file, but the register is
    #: still reported here; the control unit's scoreboard ignores ``r0``.
    writes_register: Optional[int] = dc_field(init=False, compare=False, repr=False)
    #: Registers read by this instruction (possibly empty).
    source_registers: Tuple[int, ...] = dc_field(init=False, compare=False, repr=False)
    #: ``source_registers`` without ``r0`` (RAW-hazard participants).
    hazard_registers: Tuple[int, ...] = dc_field(init=False, compare=False, repr=False)
    #: The ALU-level function executed for this instruction.  Loads/stores
    #: use ``ADD`` for the effective-address computation; branches use
    #: ``SUB`` (the comparison); everything else maps to itself or to its
    #: register-register equivalent.
    alu_function: Opcode = dc_field(init=False, compare=False, repr=False)
    _hash: int = dc_field(init=False, compare=False, repr=False)

    def __post_init__(self) -> None:
        for field_name in ("rd", "ra", "rb"):
            value = getattr(self, field_name)
            if not 0 <= value < NUM_REGISTERS:
                raise AssemblerError(
                    f"{self.op.name}: register field {field_name}={value} out of range"
                )
        if not IMM_MIN <= self.imm <= IMM_MAX:
            raise AssemblerError(
                f"{self.op.name}: immediate {self.imm} outside "
                f"[{IMM_MIN}, {IMM_MAX}]"
            )
        put = object.__setattr__  # bypass the frozen guard for derived fields
        op = self.op
        is_load = op is Opcode.LD
        is_store = op is Opcode.ST
        is_memory = is_load or is_store
        is_branch = op in BRANCH_OPS
        is_alu_writeback = op in ALU_WRITEBACK_OPS
        put(self, "is_alu_writeback", is_alu_writeback)
        put(self, "is_load", is_load)
        put(self, "is_store", is_store)
        put(self, "is_memory", is_memory)
        put(self, "is_branch", is_branch)
        put(self, "is_jump", op is Opcode.JMP)
        put(self, "is_halt", op is Opcode.HALT)
        put(self, "is_nop", op is Opcode.NOP)
        put(self, "uses_immediate_operand", op in IMMEDIATE_OPS or is_memory)
        put(
            self,
            "writes_register",
            self.rd if (is_alu_writeback or is_load) else None,
        )
        if op in (Opcode.NOP, Opcode.HALT, Opcode.JMP, Opcode.LI):
            sources: Tuple[int, ...] = ()
        elif op in IMMEDIATE_OPS or is_load:
            sources = (self.ra,)
        else:  # store, branch, register-register ALU
            sources = (self.ra, self.rb)
        put(self, "source_registers", sources)
        put(
            self,
            "hazard_registers",
            tuple(register for register in sources if register != 0),
        )
        if op in IMMEDIATE_TO_ALU:
            alu_function = IMMEDIATE_TO_ALU[op]
        elif is_memory:
            alu_function = Opcode.ADD
        elif is_branch:
            alu_function = Opcode.SUB
        else:
            alu_function = op
        put(self, "alu_function", alu_function)
        put(self, "_hash", hash((op, self.rd, self.ra, self.rb, self.imm)))

    def __hash__(self) -> int:  # dataclass keeps an explicitly defined hash
        return self._hash

    def describe(self) -> str:
        """Assembly-like rendering, e.g. ``ADD r3, r1, r2``."""
        op = self.op
        if op in (Opcode.NOP, Opcode.HALT):
            return op.name
        if op is Opcode.JMP:
            return f"JMP {self.imm}"
        if op is Opcode.LI:
            return f"LI r{self.rd}, {self.imm}"
        if op in IMMEDIATE_OPS:
            return f"{op.name} r{self.rd}, r{self.ra}, {self.imm}"
        if op is Opcode.LD:
            return f"LD r{self.rd}, {self.imm}(r{self.ra})"
        if op is Opcode.ST:
            return f"ST r{self.rb}, {self.imm}(r{self.ra})"
        if op in BRANCH_OPS:
            return f"{op.name} r{self.ra}, r{self.rb}, {self.imm}"
        return f"{op.name} r{self.rd}, r{self.ra}, r{self.rb}"


# ---------------------------------------------------------------------------
# Binary encoding
# ---------------------------------------------------------------------------

_OPCODE_SHIFT = 26
_RD_SHIFT = 22
_RA_SHIFT = 18
_RB_SHIFT = 14
_IMM_MASK = (1 << IMM_BITS) - 1
_REG_MASK = 0xF
_OPCODE_BY_VALUE: Dict[int, Opcode] = {op.value: op for op in Opcode}


def encode(instruction: Instruction) -> int:
    """Encode an instruction into its 32-bit machine word."""
    imm = instruction.imm & _IMM_MASK
    return (
        (instruction.op.value << _OPCODE_SHIFT)
        | ((instruction.rd & _REG_MASK) << _RD_SHIFT)
        | ((instruction.ra & _REG_MASK) << _RA_SHIFT)
        | ((instruction.rb & _REG_MASK) << _RB_SHIFT)
        | imm
    )


@lru_cache(maxsize=4096)
def decode(word: int) -> Instruction:
    """Decode a 32-bit machine word into an :class:`Instruction`.

    Decoding is memoised: :class:`Instruction` is frozen and programs are
    small, so the per-fetch decode in the control unit becomes a cache hit
    (the fetch path is on every simulator's critical loop).
    """
    if not 0 <= word <= WORD_MASK:
        raise AssemblerError(f"machine word {word:#x} does not fit in 32 bits")
    opcode_value = (word >> _OPCODE_SHIFT) & 0x3F
    if opcode_value not in _OPCODE_BY_VALUE:
        raise AssemblerError(f"unknown opcode value {opcode_value} in word {word:#x}")
    imm = word & _IMM_MASK
    if imm > IMM_MAX:
        imm -= 1 << IMM_BITS
    return Instruction(
        op=_OPCODE_BY_VALUE[opcode_value],
        rd=(word >> _RD_SHIFT) & _REG_MASK,
        ra=(word >> _RA_SHIFT) & _REG_MASK,
        rb=(word >> _RB_SHIFT) & _REG_MASK,
        imm=imm,
    )


def to_signed_word(value: int) -> int:
    """Wrap an arbitrary integer to a signed 32-bit machine word."""
    value &= WORD_MASK
    if value >= 1 << (WORD_BITS - 1):
        value -= 1 << WORD_BITS
    return value


# -- terse construction helpers used by the workload generators ----------------

def add(rd: int, ra: int, rb: int) -> Instruction:
    return Instruction(Opcode.ADD, rd=rd, ra=ra, rb=rb)


def sub(rd: int, ra: int, rb: int) -> Instruction:
    return Instruction(Opcode.SUB, rd=rd, ra=ra, rb=rb)


def mul(rd: int, ra: int, rb: int) -> Instruction:
    return Instruction(Opcode.MUL, rd=rd, ra=ra, rb=rb)


def slt(rd: int, ra: int, rb: int) -> Instruction:
    return Instruction(Opcode.SLT, rd=rd, ra=ra, rb=rb)


def addi(rd: int, ra: int, imm: int) -> Instruction:
    return Instruction(Opcode.ADDI, rd=rd, ra=ra, imm=imm)


def li(rd: int, imm: int) -> Instruction:
    return Instruction(Opcode.LI, rd=rd, imm=imm)


def ld(rd: int, ra: int, imm: int = 0) -> Instruction:
    return Instruction(Opcode.LD, rd=rd, ra=ra, imm=imm)


def st(rb: int, ra: int, imm: int = 0) -> Instruction:
    return Instruction(Opcode.ST, rb=rb, ra=ra, imm=imm)


def beq(ra: int, rb: int, target: int) -> Instruction:
    return Instruction(Opcode.BEQ, ra=ra, rb=rb, imm=target)


def bne(ra: int, rb: int, target: int) -> Instruction:
    return Instruction(Opcode.BNE, ra=ra, rb=rb, imm=target)


def blt(ra: int, rb: int, target: int) -> Instruction:
    return Instruction(Opcode.BLT, ra=ra, rb=rb, imm=target)


def bge(ra: int, rb: int, target: int) -> Instruction:
    return Instruction(Opcode.BGE, ra=ra, rb=rb, imm=target)


def jmp(target: int) -> Instruction:
    return Instruction(Opcode.JMP, imm=target)


def nop() -> Instruction:
    return Instruction(Opcode.NOP)


def halt() -> Instruction:
    return Instruction(Opcode.HALT)
