"""repro.server — the network daemon and multi-tenant serving tier.

Everything under this package turns one in-process
:class:`~repro.service.EvaluationService` into a long-lived network
service (DESIGN.md §11): several clients — human, CI, optimiser — share
one scheduler, one content-addressed result cache and one warm period
memory across a real socket, with per-tenant quotas and weighted fair
queueing deciding who gets the pool when they all want it at once.

The pieces:

* :mod:`~repro.server.app` — :class:`ReproServer`: the threaded HTTP
  daemon (``python -m repro serve``);
* :mod:`~repro.server.client` — :class:`ServerClient`: the thin stdlib
  client (``repro submit --connect HOST:PORT``), with cursor-resumed
  streaming;
* :mod:`~repro.server.tenancy` — API tokens, priorities, ``max_pending``
  quotas, stride-scheduled fair admission, ``REPRO_SERVER_*`` validation;
* :mod:`~repro.server.encoding` — JSON submissions in; SSE or
  checksummed binary frames out;
* :mod:`~repro.server.router` — method + path-pattern dispatch.

Stdlib only, like the rest of the repo.
"""

from .app import HttpError, ReproServer
from .client import ServerClient, ServerError
from .encoding import Submission, parse_controls, parse_submission
from .tenancy import (
    AuthError,
    QuotaError,
    Tenant,
    TenantRegistry,
    parse_tokens,
    validate_server_env,
)

__all__ = [
    "AuthError",
    "HttpError",
    "QuotaError",
    "ReproServer",
    "ServerClient",
    "ServerError",
    "Submission",
    "Tenant",
    "TenantRegistry",
    "parse_controls",
    "parse_submission",
    "parse_tokens",
    "validate_server_env",
]
