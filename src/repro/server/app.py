"""The daemon: a threaded HTTP front end owning one ``EvaluationService``.

:class:`ReproServer` is the serving tier's composition root (DESIGN.md
§11).  It owns the service (and optionally a distributed
:class:`~repro.distributed.Coordinator`, so remote ``repro worker`` agents
drain daemon jobs), a :class:`~repro.server.tenancy.TenantRegistry`, and a
``ThreadingHTTPServer`` whose handler routes through
:mod:`repro.server.router`:

====== ============================= ==============================================
method path                          purpose
====== ============================= ==============================================
POST   ``/v1/jobs``                  submit a batch spec → ``{"job_set_id": ...}``
GET    ``/v1/jobs/<id>``             blocking/polling JSON fetch (``?timeout=S``)
GET    ``/v1/jobs/<id>/stream``      row-by-row stream, SSE or binary frames
                                     (``Accept: application/x-repro-frames``),
                                     resumable via ``?from=K``
DELETE ``/v1/jobs/<id>``             cancel not-yet-started jobs of the set
GET    ``/metrics``                  Prometheus text format
GET    ``/status``                   plain-text admin page
GET    ``/healthz``                  liveness/readiness (503 while draining)
====== ============================= ==============================================

**Streaming without consuming.**  ``JobSet``'s completion queue is a
one-shot iterator, but remote clients disconnect, reconnect and re-read;
the daemon therefore drains every completion — via the service's
``on_result`` callback, so no polling thread exists — into a per-job-set
**event log** guarded by a condition variable.  A stream request is just a
cursor over that log (``?from=K`` resumes after a disconnect), the blocking
fetch is a wait for its completeness, and any number of concurrent readers
can follow one job set.  The log also releases the tenant's quota slot the
moment a job turns terminal — cancellation included, which is what makes
DELETE an effective backpressure-release valve.

**Lifecycle.**  SIGTERM/SIGINT (installed by ``python -m repro serve``)
call :meth:`ReproServer.begin_drain`: new submissions get 503 with a
``Retry-After`` while in-flight job sets finish streaming, then
:meth:`close` tears the service down through its bounded
``close(cancel_pending=True)`` path.  Restart recovery is the cache's job:
a daemon pointed at the same ``--cache-dir`` answers a re-submitted job
set from disk, so clients replay to completion without re-simulating.
"""

from __future__ import annotations

import itertools
import json
import os
import socket
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Dict, List, Optional, Tuple
from urllib.parse import parse_qs, urlsplit

from ..core.config import RSConfiguration
from ..core.exceptions import SimulationError
from ..engine import faults
from ..service import EvaluationService, ResultCache
from .encoding import (
    FRAMES_CONTENT,
    JSON_CONTENT,
    SSE_CONTENT,
    Submission,
    encode_frame,
    encode_sse,
    end_event,
    job_event,
    parse_submission,
)
from .router import Router
from .tenancy import AuthError, QuotaError, Tenant, TenantRegistry


class HttpError(SimulationError):
    """An error with a definite HTTP status (the handler's escape hatch)."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status


class _JobSetRecord:
    """One submitted job set: its handle, event log and stream bookkeeping."""

    def __init__(
        self,
        job_set_id: str,
        tenant: Tenant,
        total: int,
        layouts: List[str],
    ) -> None:
        self.job_set_id = job_set_id
        self.tenant = tenant
        self.total = total
        self.layouts = layouts
        self.created = time.time()
        self.jobset = None  # set right after service.submit returns
        self.cond = threading.Condition()
        #: Completion-order event log (the replayable stream source).
        self.events: List[Dict[str, Any]] = []
        #: Stream connection attempts (the HTTP fault `attempt` selector).
        self.stream_attempts = itertools.count()

    @property
    def done(self) -> bool:
        with self.cond:
            return len(self.events) == self.total

    def append(self, event: Dict[str, Any]) -> None:
        with self.cond:
            self.events.append(event)
            self.cond.notify_all()

    def wait_events(
        self, cursor: int, timeout: Optional[float]
    ) -> List[Dict[str, Any]]:
        """Events past *cursor*, blocking until at least one (or done/timeout)."""
        deadline = None if timeout is None else time.monotonic() + timeout
        with self.cond:
            while len(self.events) <= cursor < self.total:
                remaining = None
                if deadline is not None:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        break
                self.cond.wait(remaining)
            return list(self.events[cursor:])


class ReproServer:
    """The long-lived network front end over one evaluation service."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        service: Optional[EvaluationService] = None,
        cache_dir: Optional[str] = None,
        workers: int = 1,
        max_pending: Optional[int] = None,
        tenants: Optional[List[Tenant]] = None,
        registry: Optional[TenantRegistry] = None,
        coordinator: Optional[object] = None,
    ) -> None:
        if service is not None:
            self.service = service
        else:
            cache = ResultCache(cache_dir=cache_dir) if cache_dir else None
            self.service = EvaluationService(
                cache=cache,
                workers=workers,
                max_pending=max_pending,
                coordinator=coordinator,
            )
        self.registry = (
            registry if registry is not None else TenantRegistry(tenants)
        )
        self.coordinator = coordinator or getattr(
            self.service, "coordinator", None
        )
        self.started = time.time()
        self._draining = threading.Event()
        self._closed = False
        self._lock = threading.Lock()
        self._records: Dict[str, _JobSetRecord] = {}
        self._ids = itertools.count(1)
        self.rows_streamed = 0
        self.requests: Dict[str, int] = {}
        #: Spec-derived context recorded per layout — control defaults
        #: (stop process / horizon) and how integer depths become
        #: configurations — so re-addressing a layout by name/digest
        #: reproduces the original run identity (and therefore hits the
        #: same cache entries) without the client restating any of it.
        self._layout_context: Dict[str, Dict[str, Any]] = {}
        self._router = self._build_router()
        self._httpd = ThreadingHTTPServer((host, port), _Handler)
        self._httpd.daemon_threads = True
        self._httpd.app = self  # type: ignore[attr-defined]
        self._thread: Optional[threading.Thread] = None

    # -- lifecycle ------------------------------------------------------------
    @property
    def address(self) -> Tuple[str, int]:
        host, port = self._httpd.server_address[:2]
        return (str(host), int(port))

    @property
    def draining(self) -> bool:
        return self._draining.is_set()

    def start(self) -> "ReproServer":
        """Serve requests on a daemon thread (tests and embedders)."""
        if self._thread is None:
            self._thread = threading.Thread(
                target=self._httpd.serve_forever,
                name="repro-server",
                daemon=True,
            )
            self._thread.start()
        return self

    def serve_forever(self) -> None:
        """Serve on the calling thread until :meth:`close` shuts it down."""
        self._httpd.serve_forever()

    def begin_drain(self) -> None:
        """Stop admitting work: new submissions 503, streams keep flowing."""
        self._draining.set()

    def close(self, cancel_pending: bool = True) -> None:
        """Graceful shutdown: drain, close the service, stop the listener.

        Pending (never-started) jobs are cancelled through the service's
        bounded ``close(cancel_pending=True)`` path; their terminal events
        land in the job-set logs, so connected stream readers see every row
        account for itself and then the ``end`` sentinel, instead of a
        silent connection drop.
        """
        with self._lock:
            if self._closed:
                return
            self._closed = True
        self.begin_drain()
        self.service.close(cancel_pending=cancel_pending)
        if self.coordinator is not None:
            try:
                self.coordinator.close()
            except Exception:  # noqa: BLE001 - never block shutdown
                pass
        self._httpd.shutdown()
        self._httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)

    def __enter__(self) -> "ReproServer":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.close()

    # -- routing table ---------------------------------------------------------
    def _build_router(self) -> Router:
        router = Router()
        router.add("POST", r"/v1/jobs", "submit", self._handle_submit)
        router.add(
            "GET", r"/v1/jobs/(?P<job_set_id>[^/]+)/stream", "stream",
            self._handle_stream,
        )
        router.add(
            "GET", r"/v1/jobs/(?P<job_set_id>[^/]+)", "fetch",
            self._handle_fetch,
        )
        router.add(
            "DELETE", r"/v1/jobs/(?P<job_set_id>[^/]+)", "cancel",
            self._handle_cancel,
        )
        router.add("GET", r"/metrics", "metrics", self._handle_metrics)
        router.add("GET", r"/status", "status", self._handle_status)
        router.add("GET", r"/healthz", "healthz", self._handle_healthz)
        return router

    @property
    def router(self) -> Router:
        return self._router

    def count_request(self, name: str) -> None:
        with self._lock:
            self.requests[name] = self.requests.get(name, 0) + 1

    # -- spec materialisation ---------------------------------------------------
    def _materialise(
        self, sub: Submission
    ) -> Tuple[List[Tuple[str, Any]], Dict[str, Any], List[str]]:
        """A submission → (tagged items, control kwargs, layout names)."""
        controls = dict(sub.controls)
        if sub.kind == "workload":
            from ..cpu.machine import build_pipelined_cpu
            from ..cpu.topology import LINK_CU_IC
            from ..cpu.workloads import (
                make_extraction_sort,
                make_matrix_multiply,
            )

            if sub.workload == "sort":
                workload = make_extraction_sort(length=sub.length, seed=sub.seed)
            else:
                workload = make_matrix_multiply(size=sub.size, seed=sub.seed)
            cpu = build_pipelined_cpu(workload.program)
            netlist = cpu.netlist
            defaults = {"stop_process": cpu.control_unit.name}
            for name, value in defaults.items():
                controls.setdefault(name, value)
            configs = self._configurations(
                sub.configurations, uniform_exclude=(LINK_CU_IC,)
            )
            layouts = [
                self.service.ensure_layout(
                    netlist, relaxed=(wrapper == "wp2"), kernel=sub.kernel
                )
                for wrapper in sub.wrappers
            ]
            self._remember_context(
                layouts, defaults, uniform_exclude=(LINK_CU_IC,)
            )
        elif sub.kind == "topology":
            from ..topology import make_topology

            try:
                topology = make_topology(
                    sub.topology, **_json_params(sub.params)
                )
            except (SimulationError, TypeError) as exc:
                raise HttpError(400, f"invalid topology spec: {exc}") from exc
            netlist = topology.netlist
            if topology.stop_process is not None:
                defaults = {"stop_process": topology.stop_process}
            else:
                defaults = {"horizon": 4_000}
            for name, value in defaults.items():
                controls.setdefault(name, value)
            configs = self._configurations(
                sub.configurations, topology=topology
            )
            layouts = [
                self.service.ensure_layout(
                    netlist, relaxed=(wrapper == "wp2"), kernel=sub.kernel
                )
                for wrapper in sub.wrappers
            ]
            self._remember_context(layouts, defaults, topology=topology)
        else:  # layout: reuse something already registered, under the
            # context its spec established (control defaults, how depths
            # become configurations) — same run identity, same cache
            # entries.
            layouts = [self._resolve_layout(sub.layout)]
            with self._lock:
                context = self._layout_context.get(layouts[0], {})
                defaults = dict(context.get("defaults", {}))
            for name, value in defaults.items():
                controls.setdefault(name, value)
            configs = self._configurations(
                sub.configurations,
                uniform_exclude=context.get("uniform_exclude", ()),
                topology=context.get("topology"),
            )
        items = [
            (layout, config) for layout in layouts for config in configs
        ]
        return items, controls, layouts

    def _remember_context(
        self,
        layouts: List[str],
        defaults: Dict[str, Any],
        uniform_exclude: Tuple[str, ...] = (),
        topology=None,
    ) -> None:
        with self._lock:
            for layout in layouts:
                self._layout_context.setdefault(layout, {
                    "defaults": dict(defaults),
                    "uniform_exclude": uniform_exclude,
                    "topology": topology,
                })

    def _resolve_layout(self, wanted: str) -> str:
        registered = self.service.layouts
        if wanted in registered:
            return wanted
        # Layout names embed the netlist content digest (`nl-<digest12>-…`);
        # accept an unambiguous digest prefix as the address.
        matches = [name for name in registered if wanted in name]
        if len(matches) == 1:
            return matches[0]
        if not matches:
            raise HttpError(
                404,
                f"no registered layout matches {wanted!r}; "
                f"registered: {registered}",
            )
        raise HttpError(
            400, f"layout {wanted!r} is ambiguous: matches {sorted(matches)}"
        )

    def _configurations(
        self,
        entries: List[Any],
        uniform_exclude: Tuple[str, ...] = (),
        topology=None,
    ) -> List[Any]:
        configs: List[Any] = []
        for index, entry in enumerate(entries):
            if isinstance(entry, int):
                if topology is not None:
                    configs.append(_merged_depth(topology, entry))
                else:
                    configs.append(
                        RSConfiguration.uniform(entry, exclude=uniform_exclude)
                    )
                continue
            counts = entry.get("counts")
            if counts is not None:
                if not isinstance(counts, dict):
                    raise HttpError(
                        400, f"configuration #{index}: 'counts' must map "
                        "channel names to integers"
                    )
                configs.append({str(k): int(v) for k, v in counts.items()})
                continue
            try:
                configs.append(
                    RSConfiguration(
                        label=str(entry.get("label", f"custom-{index}")),
                        default=int(entry.get("default", 0)),
                        overrides={
                            str(k): int(v)
                            for k, v in entry.get("overrides", {}).items()
                        },
                    )
                )
            except (SimulationError, TypeError, ValueError, AttributeError) as exc:
                raise HttpError(
                    400, f"invalid configuration #{index}: {exc}"
                ) from exc
        return configs

    # -- endpoint implementations ------------------------------------------------
    def submit(
        self, tenant: Tenant, body: Dict[str, Any]
    ) -> Dict[str, Any]:
        """The POST /v1/jobs implementation (handler-independent, testable)."""
        if self.draining:
            raise HttpError(
                503, "daemon is draining; resubmit to the replacement"
            )
        sub = parse_submission(body)
        try:
            items, control_kwargs, layouts = self._materialise(sub)
        except HttpError:
            raise
        except SimulationError as exc:
            raise HttpError(400, str(exc)) from exc
        priorities = self.registry.admit(tenant, len(items))
        job_set_id = f"js-{next(self._ids):06d}-{os.urandom(3).hex()}"
        record = _JobSetRecord(job_set_id, tenant, len(items), layouts)
        with self._lock:
            self._records[job_set_id] = record

        def on_result(job) -> None:
            record.append(job_event(job.tag, job))
            self.registry.release(tenant)

        # Stride-priced priorities are per job; the service accepts one
        # priority per submit call, so submit row-by-row into one JobSet —
        # submission stays cheap (the queue is the expensive part) and every
        # row keeps its fair-share position.
        try:
            jobset = None
            for index, (item, priority) in enumerate(zip(items, priorities)):
                part = self.service.submit(
                    [item],
                    priority=priority,
                    on_result=on_result,
                    tags=[index],
                    queue_capacity=sub.queue_capacity,
                    **control_kwargs,
                )
                if jobset is None:
                    jobset = part
                else:
                    for job in part.jobs:
                        jobset._add(job)
        except SimulationError as exc:
            # Nothing ran: give the quota slots back before failing.
            undone = len(items) - len(record.events)
            if undone:
                self.registry.release(tenant, undone)
            with self._lock:
                self._records.pop(job_set_id, None)
            raise HttpError(400, str(exc)) from exc
        record.jobset = jobset
        return {
            "job_set_id": job_set_id,
            "jobs": len(items),
            "layouts": layouts,
            "tenant": tenant.name,
        }

    def record_for(self, tenant: Tenant, job_set_id: str) -> _JobSetRecord:
        with self._lock:
            record = self._records.get(job_set_id)
        # Unknown and not-yours are indistinguishable on purpose.
        if record is None or record.tenant.name != tenant.name:
            raise HttpError(404, f"unknown job set {job_set_id!r}")
        return record

    def cancel(self, tenant: Tenant, job_set_id: str) -> Dict[str, Any]:
        record = self.record_for(tenant, job_set_id)
        cancelled = record.jobset.cancel() if record.jobset is not None else 0
        return {
            "job_set_id": job_set_id,
            "cancelled": cancelled,
            "done": record.done,
        }

    # -- metrics / status ----------------------------------------------------
    def metrics_text(self) -> str:
        """The Prometheus text-format snapshot ``GET /metrics`` serves."""
        stats = self.service.stats()
        cache = stats["cache"]
        supervision = stats["supervision"]
        uptime = max(time.time() - self.started, 1e-9)
        with self._lock:
            requests = dict(self.requests)
            rows_streamed = self.rows_streamed
            records = list(self._records.values())
        active = sum(1 for record in records if not record.done)
        lines: List[str] = []

        def metric(
            name: str, value, kind: str = "counter", help_text: str = "",
            labels: str = "",
        ) -> None:
            if help_text:
                lines.append(f"# HELP {name} {help_text}")
                lines.append(f"# TYPE {name} {kind}")
            lines.append(f"{name}{labels} {_num(value)}")

        metric(
            "repro_server_uptime_seconds", uptime, "gauge",
            "Seconds since the daemon started.",
        )
        metric(
            "repro_server_rows_streamed_total", rows_streamed, "counter",
            "Result rows delivered over streaming responses.",
        )
        metric(
            "repro_server_throughput_rows_per_second",
            stats["evaluated"] / uptime, "gauge",
            "Evaluated rows per second of daemon uptime.",
        )
        metric(
            "repro_server_job_sets", len(records), "gauge",
            "Job sets tracked by the daemon.", labels='{state="all"}',
        )
        lines.append(f'repro_server_job_sets{{state="active"}} {active}')
        first = True
        for name in sorted(requests):
            metric(
                "repro_server_http_requests_total", requests[name],
                "counter",
                "HTTP requests by endpoint." if first else "",
                labels=f'{{handler="{name}"}}',
            )
            first = False
        for counter in (
            "submitted", "evaluated", "deduped", "cancelled", "failed",
            "retried",
        ):
            metric(
                f"repro_service_{counter}_total", stats[counter], "counter",
                f"Service jobs {counter}.",
            )
        metric(
            "repro_service_queue_depth", stats["queue_depth"], "gauge",
            "Jobs queued but not yet drained by the scheduler.",
        )
        metric(
            "repro_service_inflight", stats["inflight"], "gauge",
            "Content-addresses currently queued or evaluating.",
        )
        metric(
            "repro_service_cache_hit_rate", stats["cache_hit_rate"], "gauge",
            "Cache hits over lookups (derived in one stats snapshot).",
        )
        metric(
            "repro_service_dedup_rate", stats["dedup_rate"], "gauge",
            "In-flight piggybacks over submitted jobs.",
        )
        for counter in ("hits", "misses", "disk_hits", "disk_errors",
                        "corrupt_quarantined", "disk_evictions"):
            metric(
                f"repro_cache_{counter}_total", cache[counter], "counter",
                f"Result-cache {counter}.",
            )
        metric(
            "repro_cache_entries", cache["entries"], "gauge",
            "In-memory result-cache entries.",
        )
        for counter, value in supervision.items():
            if counter == "workers":
                continue
            metric(
                f"repro_supervision_{counter}_total", value, "counter",
                f"Supervised-pool {counter}.",
            )
        tenant_snapshot = self.registry.snapshot()
        first = True
        for name in sorted(tenant_snapshot):
            row = tenant_snapshot[name]
            label = f'{{tenant="{name}"}}'
            if first:
                lines.append(
                    "# HELP repro_tenant_rows_served_total Result rows "
                    "delivered per tenant."
                )
                lines.append("# TYPE repro_tenant_rows_served_total counter")
                first = False
            lines.append(
                f"repro_tenant_rows_served_total{label} {row['rows_served']}"
            )
            lines.append(f"repro_tenant_pending{label} {row['pending']}")
            lines.append(
                f"repro_tenant_admitted_total{label} {row['admitted']}"
            )
            lines.append(
                f"repro_tenant_rejected_total{label} {row['rejected']}"
            )
        return "\n".join(lines) + "\n"

    def status_text(self) -> str:
        """The plain-text admin page ``GET /status`` serves."""
        stats = self.service.stats()
        cache = stats["cache"]
        uptime = time.time() - self.started
        with self._lock:
            records = sorted(
                self._records.values(), key=lambda r: r.created
            )
            rows_streamed = self.rows_streamed
        lines = [
            "repro.server status",
            "===================",
            f"uptime:        {uptime:.1f}s"
            + ("  (DRAINING)" if self.draining else ""),
            f"tenancy:       "
            + ("open (no tokens configured)" if self.registry.open_access
               else f"{len(self.registry.tenants)} token(s)"),
            f"layouts:       {len(stats['layouts'])}",
            f"jobs:          {stats['submitted']} submitted, "
            f"{stats['evaluated']} evaluated, {stats['deduped']} deduped, "
            f"{stats['cancelled']} cancelled, {stats['failed']} failed",
            f"queue depth:   {stats['queue_depth']}",
            f"cache:         {cache['hits']} hits / {cache['misses']} misses "
            f"(hit rate {stats['cache_hit_rate']:.3f}, "
            f"{cache['disk_hits']} from disk)",
            f"dedup rate:    {stats['dedup_rate']:.3f}",
            f"rows streamed: {rows_streamed}",
            "",
            "tenants:",
        ]
        for name, row in sorted(self.registry.snapshot().items()):
            quota = (
                "∞" if row["max_pending"] is None else str(row["max_pending"])
            )
            lines.append(
                f"  {name:<16} prio={row['priority']} weight={row['weight']} "
                f"pending={row['pending']}/{quota} "
                f"admitted={row['admitted']} rejected={row['rejected']} "
                f"rows_served={row['rows_served']}"
            )
        lines.append("")
        lines.append(f"job sets ({len(records)}):")
        for record in records[-20:]:
            with record.cond:
                done = len(record.events)
            lines.append(
                f"  {record.job_set_id}  tenant={record.tenant.name} "
                f"{done}/{record.total} rows"
                + ("" if done == record.total else "  (running)")
            )
        return "\n".join(lines) + "\n"

    # -- handler callbacks (run on the request thread) --------------------------
    def _handle_submit(self, http: "_Handler", params: Dict[str, str]) -> None:
        tenant = http.authenticate()
        try:
            body = json.loads(http.read_body().decode("utf-8"))
        except ValueError as exc:
            raise HttpError(400, f"request body is not valid JSON: {exc}")
        reply = self.submit(tenant, body)
        http.send_json(201, reply)

    def _handle_fetch(self, http: "_Handler", params: Dict[str, str]) -> None:
        tenant = http.authenticate()
        record = self.record_for(tenant, params["job_set_id"])
        timeout = http.query_float("timeout", default=300.0)
        record.wait_events(record.total - 1, timeout if timeout > 0 else 0)
        with record.cond:
            events = list(record.events)
        rows = sorted(events, key=lambda event: event["index"])
        self.registry.served(tenant, len(rows))
        http.send_json(
            200,
            {
                "job_set_id": record.job_set_id,
                "done": len(events) == record.total,
                "total": record.total,
                "rows": rows,
            },
        )

    def _handle_cancel(self, http: "_Handler", params: Dict[str, str]) -> None:
        tenant = http.authenticate()
        http.send_json(200, self.cancel(tenant, params["job_set_id"]))

    def _handle_stream(self, http: "_Handler", params: Dict[str, str]) -> None:
        tenant = http.authenticate()
        record = self.record_for(tenant, params["job_set_id"])
        cursor = int(http.query_float("from", default=0.0))
        if cursor < 0:
            raise HttpError(400, "'from' must be >= 0")
        binary = FRAMES_CONTENT in http.headers.get("Accept", "")
        attempt = next(record.stream_attempts)
        encode = encode_frame if binary else encode_sse
        http.begin_chunked(FRAMES_CONTENT if binary else SSE_CONTENT)
        while True:
            events = record.wait_events(cursor, timeout=None)
            for event in events:
                delay = faults.http_send_delay(cursor, attempt)
                if delay:
                    time.sleep(delay)
                if faults.should_http_disconnect(cursor, attempt):
                    # Chaos: die exactly like a snapped connection would —
                    # no end sentinel, no chunked terminator.
                    http.abort_connection()
                    return
                http.write_chunk(encode(event))
                cursor += 1
                self.registry.served(tenant)
                with self._lock:
                    self.rows_streamed += 1
            if cursor >= record.total:
                http.write_chunk(
                    encode(end_event(record.job_set_id, cursor))
                )
                http.end_chunked()
                return

    def _handle_metrics(self, http: "_Handler", params: Dict[str, str]) -> None:
        http.send_text(200, self.metrics_text(), "text/plain; version=0.0.4")

    def _handle_status(self, http: "_Handler", params: Dict[str, str]) -> None:
        http.send_text(200, self.status_text(), "text/plain; charset=utf-8")

    def _handle_healthz(self, http: "_Handler", params: Dict[str, str]) -> None:
        if self.draining:
            http.send_json(503, {"status": "draining"})
        else:
            http.send_json(200, {"status": "ok"})


def _num(value) -> str:
    if isinstance(value, float):
        return repr(value)
    return str(value)


def _json_params(params: Dict[str, Any]) -> Dict[str, Any]:
    """JSON generator params → python kwargs (lists become tuples)."""
    out: Dict[str, Any] = {}
    for name, value in params.items():
        if isinstance(value, list):
            value = tuple(value)
        out[str(name).replace("-", "_")] = value
    return out


def _merged_depth(topology, depth: int) -> Dict[str, int]:
    """The topology's baseline RS counts plus *depth* extra per link."""
    counts = dict(topology.rs_counts)
    netlist = topology.netlist
    for link in netlist.link_names():
        for chan in netlist.channels_of_link(link):
            counts[chan.name] = counts.get(chan.name, 0) + depth
    return counts


class _Handler(BaseHTTPRequestHandler):
    """Thin request shell: routing, auth, body/query plumbing, encodings."""

    protocol_version = "HTTP/1.1"
    server_version = "repro-server/1.0"

    # -- silence the default stderr-per-request logging ----------------------
    def log_message(self, format: str, *args) -> None:  # noqa: A002
        pass

    @property
    def app(self) -> ReproServer:
        return self.server.app  # type: ignore[attr-defined]

    # -- request plumbing ------------------------------------------------------
    def authenticate(self) -> Tenant:
        token = None
        auth = self.headers.get("Authorization", "")
        if auth.startswith("Bearer "):
            token = auth[len("Bearer "):].strip()
        if token is None:
            token = self.headers.get("X-Repro-Token")
        try:
            return self.app.registry.authenticate(token)
        except AuthError as exc:
            raise HttpError(401, str(exc)) from exc

    def read_body(self) -> bytes:
        length = int(self.headers.get("Content-Length", 0) or 0)
        if length <= 0:
            raise HttpError(400, "request body required")
        return self.rfile.read(length)

    def query_float(self, name: str, default: float) -> float:
        query = parse_qs(urlsplit(self.path).query)
        if name not in query:
            return default
        try:
            return float(query[name][0])
        except ValueError:
            raise HttpError(400, f"query parameter {name!r} must be a number")

    # -- response encodings ------------------------------------------------------
    def send_json(self, status: int, payload: Dict[str, Any]) -> None:
        body = json.dumps(payload).encode("utf-8")
        self.send_response(status)
        if status == 503:
            self.send_header("Retry-After", "1")
        self.send_header("Content-Type", JSON_CONTENT)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def send_text(self, status: int, text: str, content_type: str) -> None:
        body = text.encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def begin_chunked(self, content_type: str) -> None:
        self.send_response(200)
        self.send_header("Content-Type", content_type)
        self.send_header("Cache-Control", "no-store")
        self.send_header("Transfer-Encoding", "chunked")
        self.end_headers()

    def write_chunk(self, data: bytes) -> None:
        self.wfile.write(f"{len(data):X}\r\n".encode("ascii"))
        self.wfile.write(data)
        self.wfile.write(b"\r\n")
        self.wfile.flush()

    def end_chunked(self) -> None:
        self.wfile.write(b"0\r\n\r\n")
        self.wfile.flush()

    def abort_connection(self) -> None:
        """Snap the TCP connection without any HTTP goodbye (chaos path)."""
        self.close_connection = True
        try:
            self.connection.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass

    # -- dispatch ---------------------------------------------------------------
    def _dispatch(self, method: str) -> None:
        path = urlsplit(self.path).path
        resolution = self.app.router.resolve(method, path)
        if resolution.route is None:
            if resolution.method_not_allowed:
                self.send_response(405)
                self.send_header("Allow", ", ".join(resolution.allowed))
                self.send_header("Content-Length", "0")
                self.end_headers()
            else:
                self.send_json(404, {"error": f"no such path {path!r}"})
            return
        self.app.count_request(resolution.route.name)
        try:
            resolution.route.handler(self, resolution.params)
        except HttpError as exc:
            self.send_json(exc.status, {"error": str(exc)})
        except (BrokenPipeError, ConnectionResetError):
            # The client went away mid-response; nothing to answer.
            self.close_connection = True
        except QuotaError as exc:
            self.send_json(429, {"error": str(exc)})
        except AuthError as exc:
            self.send_json(401, {"error": str(exc)})
        except SimulationError as exc:
            self.send_json(400, {"error": str(exc)})
        except Exception as exc:  # noqa: BLE001 - keep the daemon alive
            try:
                self.send_json(
                    500, {"error": f"{type(exc).__name__}: {exc}"}
                )
            except OSError:
                self.close_connection = True

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        self._dispatch("GET")

    def do_POST(self) -> None:  # noqa: N802
        self._dispatch("POST")

    def do_DELETE(self) -> None:  # noqa: N802
        self._dispatch("DELETE")
