"""Method + path-pattern routing for the daemon's request handler.

``http.server`` hands the handler one opaque ``(command, path)`` pair; this
module turns that into the usual routing table so :mod:`repro.server.app`
reads as *endpoints*, not string surgery.  Patterns are anchored regexes
with named groups (``/v1/jobs/(?P<job_set_id>[^/]+)``); resolution
distinguishes "no such path" (404) from "path exists, method doesn't"
(405, with the ``Allow`` set), which clients probing the API actually need.
Each route carries a short ``name`` used as the ``handler`` label of the
per-endpoint request counters ``/metrics`` exports.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Tuple


@dataclass(frozen=True)
class Route:
    """One endpoint: an HTTP method, an anchored path regex, a handler."""

    method: str
    pattern: "re.Pattern[str]"
    name: str
    handler: Callable[..., Any]


@dataclass(frozen=True)
class Resolution:
    """The outcome of matching one request against the table."""

    route: Optional[Route]
    #: Named groups of the path match (empty when unrouted).
    params: Dict[str, str]
    #: Methods that *would* have matched the path (405 candidates).
    allowed: Tuple[str, ...]

    @property
    def method_not_allowed(self) -> bool:
        return self.route is None and bool(self.allowed)


class Router:
    """An ordered routing table; first match wins."""

    def __init__(self) -> None:
        self._routes: List[Route] = []

    def add(
        self, method: str, pattern: str, name: str, handler: Callable[..., Any]
    ) -> None:
        self._routes.append(
            Route(
                method=method.upper(),
                pattern=re.compile(f"^{pattern}$"),
                name=name,
                handler=handler,
            )
        )

    def resolve(self, method: str, path: str) -> Resolution:
        """Match one request; collects the 405 ``Allow`` set on the way."""
        allowed = []
        for route in self._routes:
            match = route.pattern.match(path)
            if match is None:
                continue
            if route.method == method.upper():
                return Resolution(
                    route=route, params=match.groupdict(), allowed=()
                )
            allowed.append(route.method)
        return Resolution(route=None, params={}, allowed=tuple(dict.fromkeys(allowed)))
