"""Multi-tenant identity, quotas and weighted fair admission for the daemon.

The serving tier multiplexes many remote clients onto one
:class:`~repro.service.EvaluationService`.  Each client authenticates with
an API token that resolves to a :class:`Tenant` — a name, a priority band,
a ``max_pending`` quota and a fair-share weight — and every job it submits
is *admitted* through the :class:`TenantRegistry`, which enforces two
distinct protections:

* **quota** (per tenant, rejecting): a tenant may have at most
  ``max_pending`` jobs admitted but not yet terminal; a submission that
  would exceed it is rejected with :class:`QuotaError` (HTTP 429) instead
  of queueing — one greedy client can be told to back off without slowing
  anyone else down.  The service's own ``max_pending`` stays the *global*
  blocking backstop underneath.
* **weighted fair draining** (across tenants, ordering): within one
  priority band, backlogged tenants drain in proportion to their weights.
  Admission implements stride scheduling: tenant *t*'s virtual ``pass``
  advances by ``1/weight`` per admitted job, each job's effective service
  priority is ``priority_band * BAND + pass``, and an idle tenant re-enters
  at the current virtual floor (the oldest still-pending pass among
  backlogged tenants — the virtual time of the queue head) so it competes
  fairly *from now*: neither queued behind another tenant's whole backlog,
  nor cashing banked idleness in to jump ahead of it.
  The service's priority queue orders by exactly this float, so fairness
  needs no second queue — admission priced the jobs, the existing drain
  does the rest.

Configuration rides the ``REPRO_SERVER_TOKENS`` environment variable — a
JSON list of tenant objects, mirroring the ``REPRO_FAULTS`` pattern::

    REPRO_SERVER_TOKENS='[
      {"token": "alice-secret", "name": "alice",
       "priority": 0, "max_pending": 64, "weight": 2.0},
      {"token": "bob-secret", "name": "bob"}
    ]'

:func:`validate_server_env` parses it eagerly at daemon startup (and the
optional ``REPRO_SERVER_PORT`` / ``REPRO_SERVER_MAX_PENDING`` integers)
with one actionable error naming the offending variable and field.  With
no tokens configured the daemon runs **open**: every request maps to the
``anonymous`` tenant with default priority, weight and no quota.
"""

from __future__ import annotations

import json
import os
import threading
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from ..core.exceptions import SimulationError

#: Environment variable holding the JSON list of tenant records.
TOKENS_ENV_VAR = "REPRO_SERVER_TOKENS"
#: Optional integer defaults consulted by ``python -m repro serve``.
PORT_ENV_VAR = "REPRO_SERVER_PORT"
MAX_PENDING_ENV_VAR = "REPRO_SERVER_MAX_PENDING"

#: Width of one priority band: tenants in band p strictly outrank band p+1
#: regardless of accumulated pass values (a pass grows by 1/weight per job,
#: so 2**20 jobs of backlog would be needed to cross bands).
PRIORITY_BAND = float(1 << 20)

#: Name (and implied identity) of the tenant serving unauthenticated
#: requests when no tokens are configured.
ANONYMOUS = "anonymous"


class AuthError(SimulationError):
    """The request carried no token, or one no tenant owns (HTTP 401/403)."""


class QuotaError(SimulationError):
    """Admission would exceed the tenant's ``max_pending`` quota (HTTP 429)."""


@dataclass(frozen=True)
class Tenant:
    """One API-token-identified client of the daemon."""

    name: str
    token: str
    #: Priority band forwarded to the service (lower runs first).
    priority: int = 0
    #: Jobs admitted but not yet terminal before submissions get 429
    #: (None: unlimited).
    max_pending: Optional[int] = None
    #: Fair-share weight within the band (2.0 drains twice bob's 1.0).
    weight: float = 1.0

    def __post_init__(self) -> None:
        if not self.name:
            raise SimulationError("tenant name must be a non-empty string")
        if self.max_pending is not None and self.max_pending < 1:
            raise SimulationError(
                f"tenant {self.name!r}: max_pending must be >= 1 (or null), "
                f"got {self.max_pending}"
            )
        if not self.weight > 0:
            raise SimulationError(
                f"tenant {self.name!r}: weight must be > 0, got {self.weight}"
            )


@dataclass
class _TenantState:
    """Mutable per-tenant accounting (under the registry lock)."""

    pending: int = 0
    admitted: int = 0
    completed: int = 0
    rejected: int = 0
    rows_served: int = 0
    pass_value: float = 0.0
    #: Pass of the tenant's oldest still-pending job: the virtual "now" of
    #: its backlog head.  Advanced by one stride per released job (the
    #: service drains lowest-pass first, so oldest-first is the right
    #: approximation even though completions carry no pass).
    oldest_pass: float = 0.0
    #: Stride the backlog was priced with (1/weight at last admission).
    stride: float = 1.0


class TenantRegistry:
    """Token → tenant resolution plus quota and fair-share accounting."""

    def __init__(self, tenants: Optional[List[Tenant]] = None) -> None:
        tenants = list(tenants or ())
        by_token: Dict[str, Tenant] = {}
        by_name: Dict[str, Tenant] = {}
        for tenant in tenants:
            if not tenant.token:
                raise SimulationError(
                    f"tenant {tenant.name!r}: token must be a non-empty string"
                )
            if tenant.token in by_token:
                raise SimulationError(
                    f"tenant {tenant.name!r} reuses the token of "
                    f"{by_token[tenant.token].name!r}"
                )
            if tenant.name in by_name:
                raise SimulationError(f"duplicate tenant name {tenant.name!r}")
            by_token[tenant.token] = tenant
            by_name[tenant.name] = tenant
        self._by_token = by_token
        self._anonymous = (
            None if by_token else Tenant(name=ANONYMOUS, token="")
        )
        self._lock = threading.Lock()
        self._state: Dict[str, _TenantState] = {}
        #: High-water mark of issued passes; the floor an all-idle registry
        #: re-enters at, so a restarted backlog keeps monotonic priorities.
        self._clock = 0.0

    @property
    def open_access(self) -> bool:
        """True when no tokens are configured (every caller is anonymous)."""
        return self._anonymous is not None

    @property
    def tenants(self) -> List[Tenant]:
        if self._anonymous is not None:
            return [self._anonymous]
        return sorted(self._by_token.values(), key=lambda t: t.name)

    # -- authentication -------------------------------------------------------
    def authenticate(self, token: Optional[str]) -> Tenant:
        """Resolve a bearer token to its tenant.

        Open registries accept anything (including no token at all);
        configured ones raise :class:`AuthError` on a missing or unknown
        token — deliberately the same error either way, so tokens cannot be
        probed apart from their absence.
        """
        if self._anonymous is not None:
            return self._anonymous
        if token is None or token not in self._by_token:
            raise AuthError("missing or unknown API token")
        return self._by_token[token]

    # -- admission ------------------------------------------------------------
    def admit(self, tenant: Tenant, count: int) -> List[float]:
        """Admit *count* jobs for *tenant*: quota check + fair-share pricing.

        Returns the effective service priority of each job (stride-spaced
        floats inside the tenant's band).  Raises :class:`QuotaError` —
        admitting nothing — when the tenant's ``max_pending`` budget cannot
        fit the whole submission (all-or-nothing: a partially admitted job
        set would stream a truncated sweep, which no caller wants).
        """
        if count < 1:
            raise SimulationError(f"cannot admit {count} jobs")
        with self._lock:
            state = self._state.setdefault(tenant.name, _TenantState())
            if (
                tenant.max_pending is not None
                and state.pending + count > tenant.max_pending
            ):
                state.rejected += count
                raise QuotaError(
                    f"tenant {tenant.name!r} has {state.pending} pending "
                    f"job(s); admitting {count} more would exceed "
                    f"max_pending={tenant.max_pending}"
                )
            base = max(state.pass_value, self._floor())
            stride = 1.0 / tenant.weight
            priorities = [
                tenant.priority * PRIORITY_BAND + base + index * stride
                for index in range(count)
            ]
            if state.pending == 0:
                state.oldest_pass = base
            state.stride = stride
            state.pass_value = base + count * stride
            state.pending += count
            state.admitted += count
            self._clock = max(self._clock, state.pass_value)
            return priorities

    def _floor(self) -> float:
        """The virtual time an idle tenant re-enters at (under the lock).

        The minimum *oldest pending* pass among backlogged tenants — the
        virtual time of the queue head — so a newcomer competes with the
        backlog from now on instead of queueing behind all of it (and,
        symmetrically, cannot cash banked idleness in to jump ahead of it:
        :meth:`admit` takes ``max(own pass, floor)``).
        """
        active = [
            state.oldest_pass
            for state in self._state.values()
            if state.pending > 0
        ]
        return min(active) if active else self._clock

    def release(self, tenant: Tenant, count: int = 1) -> None:
        """A tenant job reached a terminal state — free its quota slot(s).

        Cancellation goes through here exactly like completion (a cancelled
        job is terminal), which is what lets a client DELETE a job set to
        shed its own backpressure.
        """
        with self._lock:
            state = self._state.setdefault(tenant.name, _TenantState())
            state.pending = max(0, state.pending - count)
            state.completed += count
            state.oldest_pass = min(
                state.oldest_pass + state.stride * count, state.pass_value
            )

    def served(self, tenant: Tenant, rows: int = 1) -> None:
        """Count result rows delivered to *tenant* (streamed or fetched)."""
        with self._lock:
            state = self._state.setdefault(tenant.name, _TenantState())
            state.rows_served += rows

    def snapshot(self) -> Dict[str, Dict[str, Any]]:
        """Per-tenant counters for ``/metrics`` and ``/status``."""
        with self._lock:
            out: Dict[str, Dict[str, Any]] = {}
            tenants = self.tenants
            for tenant in tenants:
                state = self._state.get(tenant.name, _TenantState())
                out[tenant.name] = {
                    "priority": tenant.priority,
                    "weight": tenant.weight,
                    "max_pending": tenant.max_pending,
                    "pending": state.pending,
                    "admitted": state.admitted,
                    "completed": state.completed,
                    "rejected": state.rejected,
                    "rows_served": state.rows_served,
                }
            return out


# ---------------------------------------------------------------------------
# Environment validation (the REPRO_FAULTS pattern: eager, one clear error)
# ---------------------------------------------------------------------------

_TENANT_FIELDS = {"token", "name", "priority", "max_pending", "weight"}


def _tenant_from_dict(index: int, data: Dict[str, Any]) -> Tenant:
    unknown = set(data) - _TENANT_FIELDS
    if unknown:
        raise SimulationError(
            f"tenant #{index}: unknown fields {sorted(unknown)} "
            f"(valid: {sorted(_TENANT_FIELDS)})"
        )
    for name in ("token", "name"):
        if not isinstance(data.get(name), str) or not data.get(name):
            raise SimulationError(
                f"tenant #{index}: {name!r} must be a non-empty string"
            )
    if not isinstance(data.get("priority", 0), int):
        raise SimulationError(f"tenant #{index}: 'priority' must be an integer")
    max_pending = data.get("max_pending")
    if max_pending is not None and not isinstance(max_pending, int):
        raise SimulationError(
            f"tenant #{index}: 'max_pending' must be an integer or null"
        )
    weight = data.get("weight", 1.0)
    if not isinstance(weight, (int, float)) or isinstance(weight, bool):
        raise SimulationError(f"tenant #{index}: 'weight' must be a number")
    try:
        return Tenant(
            name=data["name"],
            token=data["token"],
            priority=data.get("priority", 0),
            max_pending=max_pending,
            weight=float(weight),
        )
    except SimulationError as exc:
        raise SimulationError(f"tenant #{index}: {exc}") from exc


def parse_tokens(text: str) -> List[Tenant]:
    """Parse the ``REPRO_SERVER_TOKENS`` JSON form into tenants."""
    try:
        raw = json.loads(text)
    except ValueError as exc:
        raise SimulationError(f"invalid tenant JSON: {exc}") from exc
    if not isinstance(raw, list):
        raise SimulationError(
            "expected a JSON list of tenant objects, got "
            f"{type(raw).__name__}"
        )
    tenants = []
    for index, item in enumerate(raw):
        if not isinstance(item, dict):
            raise SimulationError(
                f"tenant #{index}: expected an object, got "
                f"{type(item).__name__}"
            )
        tenants.append(_tenant_from_dict(index, item))
    return tenants


def _env_int(name: str, minimum: int) -> Optional[int]:
    raw = os.environ.get(name, "").strip()
    if not raw:
        return None
    try:
        value = int(raw)
    except ValueError:
        raise SimulationError(
            f"invalid {name} environment variable: {raw!r} is not an integer"
        ) from None
    if value < minimum:
        raise SimulationError(
            f"invalid {name} environment variable: must be >= {minimum}, "
            f"got {value}"
        )
    return value


def validate_server_env() -> Dict[str, Any]:
    """Eagerly validate every server environment variable.

    Called at daemon startup (``python -m repro serve``) so a malformed
    variable surfaces as one clear error *naming the variable* instead of a
    traceback on the first authenticated request.  Returns the parsed
    settings::

        {"tenants": [Tenant, ...],      # [] when REPRO_SERVER_TOKENS unset
         "port": int | None,            # REPRO_SERVER_PORT
         "max_pending": int | None}     # REPRO_SERVER_MAX_PENDING
    """
    raw = os.environ.get(TOKENS_ENV_VAR, "").strip()
    tenants: List[Tenant] = []
    if raw:
        try:
            tenants = parse_tokens(raw)
            TenantRegistry(tenants)  # surfaces duplicate tokens/names too
        except SimulationError as exc:
            raise SimulationError(
                f"invalid {TOKENS_ENV_VAR} environment variable: {exc}"
            ) from exc
    return {
        "tenants": tenants,
        "port": _env_int(PORT_ENV_VAR, minimum=0),
        "max_pending": _env_int(MAX_PENDING_ENV_VAR, minimum=1),
    }
