"""Thin stdlib client of the repro daemon.

:class:`ServerClient` speaks the HTTP API of :mod:`repro.server.app` with
nothing beyond ``http.client`` — importable anywhere the repo runs, which
is exactly the constraint the serving tier exists under.  It is what
``repro submit --connect HOST:PORT`` drives, and what tests use to talk to
a daemon across a real socket.

The interesting method is :meth:`ServerClient.stream`: it follows a job
set row by row and **transparently reconnects** on a snapped connection or
a corrupted frame, resuming from its delivered-row cursor (the server
replays from ``?from=K`` out of its per-job-set event log).  Combined with
a daemon restart against the same ``--cache-dir``, that turns "the server
died mid-sweep" into "the rows arrived a little later" — resubmission hits
the warm disk cache and the stream replays to the end sentinel.

>>> client = ServerClient("127.0.0.1", 8123, token="s3cret")
>>> submitted = client.submit({
...     "spec": {"kind": "workload", "workload": "sort", "length": 8},
...     "configurations": [0, 1, 2, 3],
... })
>>> for event in client.stream(submitted["job_set_id"]):
...     print(event["index"], event["label"], event["result"]["cycles"])
"""

from __future__ import annotations

import json
import time
from http.client import HTTPConnection, HTTPException
from typing import Any, Dict, Iterator, List, Optional, Tuple

from ..core.exceptions import PayloadChecksumError, SimulationError
from .encoding import FRAMES_CONTENT, JSON_CONTENT, iter_frames, iter_sse


class ServerError(SimulationError):
    """An HTTP error reply from the daemon (carries the status code)."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(f"server returned {status}: {message}")
        self.status = status


class ServerClient:
    """One tenant's view of one repro daemon."""

    def __init__(
        self,
        host: str,
        port: int,
        *,
        token: Optional[str] = None,
        timeout: float = 300.0,
    ) -> None:
        self.host = host
        self.port = int(port)
        self.token = token
        self.timeout = timeout

    @classmethod
    def connect(
        cls, address: str, *, token: Optional[str] = None,
        timeout: float = 300.0,
    ) -> "ServerClient":
        """Build a client from a ``HOST:PORT`` string (CLI ``--connect``)."""
        host, _, port = address.rpartition(":")
        if not host or not port.isdigit():
            raise SimulationError(
                f"--connect expects HOST:PORT, got {address!r}"
            )
        return cls(host, int(port), token=token, timeout=timeout)

    # -- plumbing -------------------------------------------------------------
    def _headers(self, **extra: str) -> Dict[str, str]:
        headers = {"Accept": JSON_CONTENT, **extra}
        if self.token is not None:
            headers["Authorization"] = f"Bearer {self.token}"
        return headers

    def _request(
        self,
        method: str,
        path: str,
        body: Optional[Dict[str, Any]] = None,
    ) -> Dict[str, Any]:
        conn = HTTPConnection(self.host, self.port, timeout=self.timeout)
        try:
            payload = None
            headers = self._headers()
            if body is not None:
                payload = json.dumps(body).encode("utf-8")
                headers["Content-Type"] = JSON_CONTENT
            conn.request(method, path, body=payload, headers=headers)
            response = conn.getresponse()
            raw = response.read()
            if response.status >= 400:
                raise ServerError(response.status, _error_text(raw))
            return json.loads(raw.decode("utf-8")) if raw else {}
        finally:
            conn.close()

    # -- API surface -----------------------------------------------------------
    def submit(self, body: Dict[str, Any]) -> Dict[str, Any]:
        """POST a batch spec; returns ``{"job_set_id": ..., "jobs": N, ...}``."""
        return self._request("POST", "/v1/jobs", body)

    def fetch(
        self, job_set_id: str, *, timeout: Optional[float] = None
    ) -> Dict[str, Any]:
        """Blocking JSON fetch: all rows of the set, in submission order."""
        wait = self.timeout if timeout is None else timeout
        return self._request("GET", f"/v1/jobs/{job_set_id}?timeout={wait}")

    def cancel(self, job_set_id: str) -> Dict[str, Any]:
        """DELETE the set's not-yet-started jobs; frees quota immediately."""
        return self._request("DELETE", f"/v1/jobs/{job_set_id}")

    def metrics(self) -> str:
        """The raw Prometheus exposition text of ``/metrics``."""
        return self._text("/metrics")

    def status(self) -> str:
        """The plain-text admin page of ``/status``."""
        return self._text("/status")

    def healthy(self) -> bool:
        """True when the daemon answers ``/healthz`` with 200 (not draining)."""
        try:
            self._request("GET", "/healthz")
            return True
        except (ServerError, OSError):
            return False

    def _text(self, path: str) -> str:
        conn = HTTPConnection(self.host, self.port, timeout=self.timeout)
        try:
            conn.request("GET", path, headers=self._headers())
            response = conn.getresponse()
            raw = response.read()
            if response.status >= 400:
                raise ServerError(response.status, _error_text(raw))
            return raw.decode("utf-8")
        finally:
            conn.close()

    # -- streaming ---------------------------------------------------------------
    def stream(
        self,
        job_set_id: str,
        *,
        binary: bool = False,
        start: int = 0,
        max_reconnects: int = 8,
        reconnect_delay: float = 0.2,
    ) -> Iterator[Dict[str, Any]]:
        """Yield row events in completion order until the ``end`` sentinel.

        Rides the daemon's replayable event log: every delivered row
        advances a cursor, and a broken connection (or a frame that fails
        its checksum) triggers a reconnect with ``?from=<cursor>`` — rows
        are delivered exactly once to the caller no matter how many
        connections it took.  *binary* selects the checksummed-frame
        encoding over SSE.
        """
        cursor = start
        reconnects = 0
        while True:
            try:
                for event in self._stream_once(job_set_id, cursor, binary):
                    if event.get("event") == "end":
                        return
                    cursor += 1
                    yield event
                # Stream ended without the sentinel: the connection died at
                # a frame boundary.  Same recovery as mid-frame truncation.
                raise EOFError("stream ended before the end sentinel")
            except (
                OSError, EOFError, HTTPException, PayloadChecksumError,
            ) as exc:
                # HTTPException covers IncompleteRead: a chunked stream
                # snapped mid-chunk.  ServerError is SimulationError, not
                # retried — a 4xx/5xx reply means the daemon answered.
                reconnects += 1
                if reconnects > max_reconnects:
                    raise SimulationError(
                        f"stream of {job_set_id} failed after "
                        f"{max_reconnects} reconnects: {exc}"
                    ) from exc
                time.sleep(reconnect_delay)

    def _stream_once(
        self, job_set_id: str, cursor: int, binary: bool
    ) -> Iterator[Dict[str, Any]]:
        conn = HTTPConnection(self.host, self.port, timeout=self.timeout)
        try:
            accept = FRAMES_CONTENT if binary else "text/event-stream"
            conn.request(
                "GET",
                f"/v1/jobs/{job_set_id}/stream?from={cursor}",
                headers=self._headers(Accept=accept),
            )
            response = conn.getresponse()
            if response.status >= 400:
                raise ServerError(response.status, _error_text(response.read()))
            decode = iter_frames if binary else iter_sse
            for event in decode(response):
                yield event
        finally:
            conn.close()

    # -- conveniences ------------------------------------------------------------
    def rows(
        self, job_set_id: str, *, binary: bool = False
    ) -> List[Dict[str, Any]]:
        """All row events of a set, in submission order (streamed under
        the hood, so reconnect recovery applies)."""
        events = list(self.stream(job_set_id, binary=binary))
        return sorted(events, key=lambda event: event["index"])


def _error_text(raw: bytes) -> str:
    try:
        return json.loads(raw.decode("utf-8"))["error"]
    except Exception:  # noqa: BLE001 - any malformed error body
        return raw.decode("utf-8", "replace").strip() or "(no body)"
