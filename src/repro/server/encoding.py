"""Wire formats of the serving tier: batch specs in, result rows out.

**Requests** are JSON.  A submission body names *what to simulate* without
shipping code: a workload from the CPU zoo, a topology from the generator
zoo, or an already-registered layout (by exact name or by netlist-digest
prefix — layout names embed the content digest, so a digest a client
learned from one submission re-addresses the same netlist later)::

    {"spec": {"kind": "workload", "workload": "sort", "length": 10},
     "wrappers": ["wp1", "wp2"],
     "configurations": [0, 1, 2,
                        {"label": "deep RF-DC", "default": 1,
                         "overrides": {"RF-DC": 3}}],
     "queue_capacity": 4,
     "kernel": null,
     "controls": {"max_cycles": 5000000}}

:func:`parse_submission` validates the body into a :class:`Submission`
(every error names the offending field; the daemon maps them to HTTP 400)
and :func:`parse_controls` builds the :class:`RunControls` — observer-free
by construction, so every server job is content-addressable and cacheable.

**Responses** stream one *event* per completed job (see :func:`job_event`)
in two negotiable encodings:

* **SSE** (``text/event-stream``, the default): one ``data: <json>`` block
  per row — debuggable with curl, consumable by anything;
* **binary frames** (``application/x-repro-frames``): each event pickled
  and wrapped in the distributed tier's length-prefixed sha256-checksummed
  frame (:func:`repro.distributed.protocol.frame_bytes`) — the high-volume
  path for trace-heavy rows, sharing one corruption-detection story with
  the coordinator socket.  Trust model: clients never unpickle anything
  they did not request from a server they chose (and authenticated to);
  the server itself accepts only JSON.

A stream terminates with an ``{"event": "end"}`` sentinel so clients can
tell completion from disconnection.
"""

from __future__ import annotations

import json
import pickle
from dataclasses import dataclass, field
from typing import Any, Dict, IO, Iterator, List, Optional, Tuple

from ..core.exceptions import SimulationError
from ..distributed.protocol import frame_bytes, read_frame
from ..engine.kernel import RunControls

JSON_CONTENT = "application/json"
SSE_CONTENT = "text/event-stream"
FRAMES_CONTENT = "application/x-repro-frames"

#: Spec kinds a submission may carry.
SPEC_KINDS = ("workload", "topology", "layout")
#: CPU workloads the ``workload`` kind knows how to build.
WORKLOADS = ("sort", "matmul")
#: Wrapper flavours.
WRAPPERS = ("wp1", "wp2")


# ---------------------------------------------------------------------------
# Request decoding
# ---------------------------------------------------------------------------

#: RunControls fields a client may set, with their JSON validators.
_CONTROL_FIELDS = {
    "max_cycles": int,
    "stop_process": str,
    "target_firings": dict,
    "extra_cycles": int,
    "deadlock_limit": int,
    "horizon": int,
    "steady_state": bool,
    "steady_state_window": int,
    "shard_timeout": (int, float),
    "max_shard_retries": int,
    "retry_backoff": (int, float),
}


def parse_controls(data: Optional[Dict[str, Any]]) -> Dict[str, Any]:
    """Validate the ``controls`` object into RunControls keyword arguments.

    Returns the kwargs rather than a built object so the daemon can fill
    spec-derived defaults (a workload's stop process, a topology's horizon)
    before construction.  ``on_cycle`` is not reachable from the wire —
    server jobs stay cacheable by construction.
    """
    if data is None:
        return {}
    if not isinstance(data, dict):
        raise SimulationError(
            f"'controls' must be an object, got {type(data).__name__}"
        )
    unknown = set(data) - set(_CONTROL_FIELDS)
    if unknown:
        raise SimulationError(
            f"unknown controls fields {sorted(unknown)} "
            f"(valid: {sorted(_CONTROL_FIELDS)})"
        )
    kwargs: Dict[str, Any] = {}
    for name, value in data.items():
        if value is None:
            continue
        expected = _CONTROL_FIELDS[name]
        if not isinstance(value, expected) or isinstance(value, bool) != (
            expected is bool
        ):
            raise SimulationError(
                f"controls field {name!r} has the wrong type "
                f"({type(value).__name__})"
            )
        kwargs[name] = value
    targets = kwargs.get("target_firings")
    if targets is not None:
        for process, count in targets.items():
            if not isinstance(process, str) or not isinstance(count, int):
                raise SimulationError(
                    "controls field 'target_firings' must map process "
                    "names to integers"
                )
    return kwargs


@dataclass(frozen=True)
class Submission:
    """One validated ``POST /v1/jobs`` body (resolution happens in the app)."""

    kind: str
    #: kind == "workload": which CPU workload, and its shape parameters.
    workload: str = "sort"
    length: int = 10
    size: int = 3
    seed: int = 2005
    #: kind == "topology": generator name + parameters.
    topology: str = "ring"
    params: Dict[str, Any] = field(default_factory=dict)
    #: kind == "layout": registered layout name or netlist-digest prefix.
    layout: str = ""
    wrappers: Tuple[str, ...] = WRAPPERS
    #: Raw configuration entries: ints (uniform depth) or objects.
    configurations: List[Any] = field(default_factory=list)
    queue_capacity: Optional[int] = None
    kernel: Optional[str] = None
    controls: Dict[str, Any] = field(default_factory=dict)


def _require(data: Dict[str, Any], name: str, types, default=None):
    value = data.get(name, default)
    if value is default and default is not None:
        return default
    if not isinstance(value, types) or isinstance(value, bool):
        raise SimulationError(
            f"spec field {name!r} must be {getattr(types, '__name__', types)}"
        )
    return value


def parse_submission(body: Dict[str, Any]) -> Submission:
    """Validate a submission body; every error names the offending field."""
    if not isinstance(body, dict):
        raise SimulationError(
            f"submission body must be a JSON object, got {type(body).__name__}"
        )
    known = {
        "spec", "wrappers", "configurations", "queue_capacity", "kernel",
        "controls",
    }
    unknown = set(body) - known
    if unknown:
        raise SimulationError(
            f"unknown submission fields {sorted(unknown)} "
            f"(valid: {sorted(known)})"
        )
    spec = body.get("spec")
    if not isinstance(spec, dict):
        raise SimulationError("'spec' must be an object naming what to run")
    kind = spec.get("kind")
    if kind not in SPEC_KINDS:
        raise SimulationError(
            f"spec field 'kind' must be one of {list(SPEC_KINDS)}, "
            f"got {kind!r}"
        )

    wrappers = body.get("wrappers", list(WRAPPERS))
    if (
        not isinstance(wrappers, list)
        or not wrappers
        or any(w not in WRAPPERS for w in wrappers)
    ):
        raise SimulationError(
            f"'wrappers' must be a non-empty list drawn from {list(WRAPPERS)}"
        )

    configurations = body.get("configurations")
    if not isinstance(configurations, list) or not configurations:
        raise SimulationError(
            "'configurations' must be a non-empty list of depths (ints) "
            "or configuration objects"
        )
    for index, entry in enumerate(configurations):
        if isinstance(entry, bool) or not isinstance(entry, (int, dict)):
            raise SimulationError(
                f"configuration #{index} must be an int depth or an object, "
                f"got {type(entry).__name__}"
            )
        if isinstance(entry, int) and entry < 0:
            raise SimulationError(
                f"configuration #{index}: depth must be >= 0, got {entry}"
            )

    queue_capacity = body.get("queue_capacity")
    if queue_capacity is not None and (
        isinstance(queue_capacity, bool)
        or not isinstance(queue_capacity, int)
        or queue_capacity < 1
    ):
        raise SimulationError("'queue_capacity' must be a positive integer")

    kernel = body.get("kernel")
    if kernel is not None and not isinstance(kernel, str):
        raise SimulationError("'kernel' must be a kernel name string")

    fields: Dict[str, Any] = {
        "kind": kind,
        "wrappers": tuple(wrappers),
        "configurations": configurations,
        "queue_capacity": queue_capacity,
        "kernel": kernel,
        "controls": parse_controls(body.get("controls")),
    }
    if kind == "workload":
        workload = spec.get("workload", "sort")
        if workload not in WORKLOADS:
            raise SimulationError(
                f"spec field 'workload' must be one of {list(WORKLOADS)}, "
                f"got {workload!r}"
            )
        fields.update(
            workload=workload,
            length=_require(spec, "length", int, 10),
            size=_require(spec, "size", int, 3),
            seed=_require(spec, "seed", int, 2005),
        )
    elif kind == "topology":
        name = spec.get("topology")
        if not isinstance(name, str) or not name:
            raise SimulationError(
                "spec field 'topology' must name a generator kind"
            )
        params = spec.get("params", {})
        if not isinstance(params, dict):
            raise SimulationError("spec field 'params' must be an object")
        fields.update(topology=name, params=params)
    else:  # layout
        layout = spec.get("layout")
        if not isinstance(layout, str) or not layout:
            raise SimulationError(
                "spec field 'layout' must be a registered layout name or "
                "netlist-digest prefix"
            )
        fields.update(layout=layout)
    return Submission(**fields)


# ---------------------------------------------------------------------------
# Response encoding
# ---------------------------------------------------------------------------


def job_event(index: int, job) -> Dict[str, Any]:
    """The canonical per-row event dict both stream encodings carry."""
    return {
        "event": "row",
        "index": index,
        "layout": job.layout,
        "label": job.label,
        "status": job.status.value,
        "cached": job.cached,
        "deduped": job.deduped,
        "error": job.error,
        "result": None if job.result is None else job.result.to_dict(),
    }


def end_event(job_set_id: str, delivered: int) -> Dict[str, Any]:
    """Stream terminator: rows stop arriving because the set is *done*."""
    return {"event": "end", "job_set_id": job_set_id, "delivered": delivered}


def encode_sse(event: Dict[str, Any]) -> bytes:
    """One Server-Sent-Events block: ``data: <json>`` + blank line."""
    return b"data: " + json.dumps(event).encode("utf-8") + b"\n\n"


def iter_sse(stream: IO[bytes]) -> Iterator[Dict[str, Any]]:
    """Decode SSE blocks back into event dicts (the thin client's default)."""
    for raw in stream:
        line = raw.strip()
        if line.startswith(b"data: "):
            yield json.loads(line[len(b"data: "):].decode("utf-8"))


def encode_frame(event: Dict[str, Any], *, corrupt: bool = False) -> bytes:
    """One binary result frame: pickled event in the protocol's framing."""
    blob = pickle.dumps(event, protocol=pickle.HIGHEST_PROTOCOL)
    return frame_bytes(blob, corrupt=corrupt)


def iter_frames(stream: IO[bytes]) -> Iterator[Dict[str, Any]]:
    """Decode checksummed binary frames back into event dicts.

    Stops cleanly at end-of-stream; a truncated frame raises ``EOFError``
    and a corrupted payload raises
    :class:`~repro.core.exceptions.PayloadChecksumError` — a client that
    sees either reconnects and replays from its cursor.
    """
    def read_exact(count: int, *, prefix: bytes = b"") -> bytes:
        chunks = [prefix]
        remaining = count - len(prefix)
        while remaining > 0:
            chunk = stream.read(remaining)
            if not chunk:
                raise EOFError("result stream truncated mid-frame")
            chunks.append(chunk)
            remaining -= len(chunk)
        return b"".join(chunks)

    while True:
        probe = stream.read(1)
        if not probe:
            return  # clean end-of-stream at a frame boundary
        first = True

        def reader(count: int) -> bytes:
            nonlocal first
            if first:
                first = False
                return read_exact(count, prefix=probe)
            return read_exact(count)

        yield pickle.loads(read_frame(reader))
