"""Length-prefixed, checksummed message framing for the distributed tier.

Every message on the coordinator/worker socket is one frame::

    +----------------+------------------+---------------------+
    | length (4, BE) | sha256 digest 32 | pickled payload ... |
    +----------------+------------------+---------------------+

The digest covers the payload bytes as *sent*, end-to-end: a frame whose
payload was corrupted anywhere between ``pickle.dumps`` on one side and
``pickle.loads`` on the other fails the check before unpickling is even
attempted.  Crucially the *length* prefix is still trusted — it framed the
bytes that were just read — so a receiver that detects corruption stays in
frame sync and keeps reading subsequent messages; only the corrupt message
is lost (the coordinator requeues the shard it carried).

Message vocabulary (plain tuples, first element the kind):

worker → coordinator
    ``("register", worker_id)`` — sent on every (re)connect; idempotent,
    the coordinator keys workers by id so history (fault counts,
    quarantine, stats) survives reconnects and coordinator restarts look
    like ordinary reconnects to the worker.
    ``("request", worker_id)`` — the worker is idle and wants a lease.
    ``("heartbeat", worker_id, batch_id, task_id)`` — the lease is alive.
    ``("result", worker_id, batch_id, task_id, status, payload)`` —
    ``status`` is ``"ok"`` (payload: ``("inline", results)`` or
    ``("cache", [(key, label), ...])``) or ``"error"`` (payload:
    ``(summary, pickled_exc | None, is_simulation_error)``).

coordinator → worker
    ``("batch", batch_id, payload, controls, on_error, fault_json,
    cache_dir)`` — per-batch context, sent once per worker per batch
    before its first lease (and again after a reconnect).
    ``("lease", batch_id, task_id, shard_id, attempt, items,
    lease_seconds)`` — one shard to evaluate under a time-bounded lease.
    ``("shutdown",)`` — the coordinator is closing; the agent exits its
    serve loop (and, run via ``run_forever``, stops rather than
    reconnecting).

Transport faults are injected *here* (``corrupt=True`` flips payload bytes
after the digest is computed), so the chaos suite drives the checksum path
with real corrupted frames rather than mocks.
"""

from __future__ import annotations

import hashlib
import pickle
import socket
import struct
from typing import Any, Callable

from ..core.exceptions import PayloadChecksumError

#: Frame header: payload length (unsigned 32-bit BE) + sha256 digest.
_HEADER = struct.Struct(">I32s")

#: Upper bound on a single frame, bytes.  A frame claiming more than this
#: is treated as a framing error (a corrupted *header* cannot be told apart
#: from a genuine one, so the connection is dropped rather than resynced).
MAX_FRAME_BYTES = 1 << 30


#: Size of the frame header in bytes (`read_frame` callers need it).
FRAME_HEADER_SIZE = _HEADER.size


def corrupt_payload_bytes(blob: bytes) -> bytes:
    """Deterministically flip payload bits so the checksum cannot match."""
    mutated = bytearray(blob)
    mutated[0] ^= 0xFF
    middle = len(mutated) // 2
    if middle != 0:
        mutated[middle] ^= 0xFF
    return bytes(mutated)


def frame_bytes(blob: bytes, *, corrupt: bool = False) -> bytes:
    """One wire frame around *blob*: header (length + sha256) + payload.

    This is the transport-agnostic half of the protocol — the coordinator
    socket and the serving tier's binary result streaming
    (:mod:`repro.server.encoding`) both ship frames built here, so a payload
    corrupted anywhere between the two ends fails its digest identically on
    both paths.  ``corrupt=True`` injects a payload fault *after* the digest
    is computed (the chaos suite's ``corrupt-payload`` kind).
    """
    digest = hashlib.sha256(blob).digest()
    if corrupt:
        blob = corrupt_payload_bytes(blob)
    return _HEADER.pack(len(blob), digest) + blob


def read_frame(read_exact: "Callable[[int], bytes]") -> bytes:
    """Read one frame through *read_exact* and return the verified payload.

    *read_exact(n)* must return exactly n bytes or raise ``EOFError`` — the
    socket path wraps :func:`_recv_exact`, the HTTP client wraps a buffered
    response stream.  Raises ``OSError`` on an over-length frame (a corrupted
    header cannot be resynced) and
    :class:`~repro.core.exceptions.PayloadChecksumError` on a payload digest
    mismatch (the stream itself is still in frame sync).
    """
    header = read_exact(FRAME_HEADER_SIZE)
    length, digest = _HEADER.unpack(header)
    if length > MAX_FRAME_BYTES:
        raise OSError(f"frame length {length} exceeds {MAX_FRAME_BYTES} bytes")
    blob = read_exact(length)
    if hashlib.sha256(blob).digest() != digest:
        raise PayloadChecksumError(
            f"protocol payload failed its sha256 checksum ({length} bytes)"
        )
    return blob


def send_message(sock: socket.socket, message: Any, *, corrupt: bool = False) -> None:
    """Frame and send one message (``corrupt=True`` injects a payload fault).

    Raises ``OSError`` (including ``BrokenPipeError``) when the transport is
    gone; callers treat that exactly like a disconnect.
    """
    blob = pickle.dumps(message, protocol=pickle.HIGHEST_PROTOCOL)
    sock.sendall(frame_bytes(blob, corrupt=corrupt))


def recv_message(sock: socket.socket) -> Any:
    """Read one frame: returns the unpickled message.

    Raises ``EOFError`` on a cleanly closed connection, ``OSError`` on a
    broken one, and :class:`~repro.core.exceptions.PayloadChecksumError`
    when the payload fails its digest (the stream itself is still in sync —
    the caller may keep reading).
    """
    return pickle.loads(read_frame(lambda count: _recv_exact(sock, count)))


def _recv_exact(sock: socket.socket, count: int) -> bytes:
    chunks = []
    remaining = count
    while remaining:
        chunk = sock.recv(min(remaining, 1 << 20))
        if not chunk:
            raise EOFError("connection closed")
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)
