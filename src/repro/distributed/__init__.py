"""Distributed batch evaluation: a coordinator and remote worker agents.

The local supervised pool (:mod:`repro.engine.supervised_pool`) made one
pool on one host survive crashes, hangs, and poisoned shards; this package
extends the same supervision model across a network boundary, where
disconnects, half-written payloads, and slow links are the common case:

* :mod:`repro.distributed.protocol` — length-prefixed, sha256-checksummed
  message framing over a plain TCP socket;
* :mod:`repro.distributed.coordinator` — owns the shard queue, hands work
  out under time-bounded leases renewed by heartbeats, and contains
  failures with the shared retry/backoff/bisection/quarantine ladder;
* :mod:`repro.distributed.worker` — the pull-based worker agent behind
  ``python -m repro worker --connect HOST:PORT``.

See DESIGN.md §9 for the protocol and its soundness argument.
"""

from .coordinator import Coordinator
from .worker import WorkerAgent, agent_main

__all__ = ["Coordinator", "WorkerAgent", "agent_main"]
