"""The pull-based worker agent behind ``python -m repro worker``.

An agent connects to a coordinator, registers its (stable) worker id, and
then loops: request a lease, evaluate the shard with the exact same
machinery a local pool worker uses (runners rebuilt from the batch payload
+ ``_evaluate_shard``), publish the results, ask again.  The coordinator is
the only authority — the agent holds no queue state, so it can die,
reconnect, or be restarted at any moment and the system converges: the
register message is idempotent and a coordinator restart looks like an
ordinary reconnect from out here.

While a shard is being evaluated a daemon heartbeat thread renews the
lease every quarter of its duration.  Ordering matters for the chaos
suite: shard-level injected faults (``crash``/``hang``/``raise``) fire
*before* the heartbeat thread starts, so an injected hang blocks
heartbeats and the lease genuinely expires — modelling a whole-process
wedge, which is what a lost heartbeat means in production.  A slow-but-
healthy worker (``delay`` fault, firing after evaluation) keeps
heartbeating and keeps its lease.

Results are published through the content-addressed result cache when the
coordinator advertised a shared ``cache_dir`` (one ``put`` per item, the
frame carries only ``(key, label)`` pairs), inline otherwise.

Agents also keep a small cross-batch runner cache keyed by netlist content
digest (:class:`_RunnerCache`): successive batches of a sweep re-ship the
same netlists, and reusing the runner object carries its elaborated layouts,
compiled kernel functions and steady-state period memory to the next lease
instead of rebuilding them from the pickled spec every time.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import socket
import threading
import time
from typing import Any, Callable, List, Optional, Tuple

from ..core.exceptions import SimulationError
from ..engine import faults
from ..engine.faults import FaultPlan
from .protocol import recv_message, send_message

#: Floor on the heartbeat interval, seconds.
MIN_HEARTBEAT_INTERVAL = 0.05

#: Default pause between reconnect attempts, seconds.
DEFAULT_RECONNECT_DELAY = 0.25


class _RunnerCache:
    """Small LRU of runners keyed by netlist content digest + build options.

    Agents serve many batches over their lifetime, and successive batches of
    a sweep usually re-ship the very same netlists.  Runners accumulate the
    expensive per-layout state as they evaluate — elaborated layouts,
    compiled kernel functions, steady-state period memory — so keeping the
    runner object alive across batches carries all of it to the next lease.
    The key is the sha256 of the pickled netlist (the same content identity
    :meth:`~repro.engine.batch.BatchRunner.netlist_digest` uses) plus the
    scalar build options of the work spec; a netlist that fails to pickle
    has no content identity and is simply not cached.
    """

    def __init__(self, maxsize: int = 8) -> None:
        self.maxsize = maxsize
        self._entries: dict = {}  # insertion-ordered: oldest first

    @staticmethod
    def key(spec: Tuple) -> Optional[Tuple]:
        try:
            digest = hashlib.sha256(pickle.dumps(spec[0])).hexdigest()
        except Exception:  # noqa: BLE001 - unpicklable netlist: not cacheable
            return None
        return (digest, *spec[1:])

    def get(self, key: Tuple):
        runner = self._entries.pop(key, None)
        if runner is not None:
            self._entries[key] = runner  # refresh recency
        return runner

    def put(self, key: Tuple, runner) -> None:
        self._entries.pop(key, None)
        self._entries[key] = runner
        while len(self._entries) > self.maxsize:
            self._entries.pop(next(iter(self._entries)))

    def __len__(self) -> int:
        return len(self._entries)


class _AgentRunners:
    """Private name → runner map rebuilt lazily from the batch payload.

    A dedicated agent process could reuse the pool's process-global runner
    store, but in-process agents (tests, benchmarks, local fan-out without
    extra processes) share one interpreter — and simulator state is not
    thread-safe, so every agent rebuilds its own runners from the pickled
    work spec instead of touching the globals.  A *shared* :class:`_RunnerCache`
    (owned by the agent, surviving batch installs) lets equal specs reuse the
    previous batch's runner instead of rebuilding.
    """

    def __init__(
        self,
        payload: bytes,
        shared: Optional[_RunnerCache] = None,
        on_build: Optional[Callable[[], None]] = None,
    ) -> None:
        self._specs = pickle.loads(payload)
        self._runners: dict = {}
        self._shared = shared
        self._on_build = on_build

    def __getitem__(self, name: str):
        from ..engine.batch import _runner_from_spec

        runner = self._runners.get(name)
        if runner is None:
            spec = self._specs[name]
            key = self._shared.key(spec) if self._shared is not None else None
            runner = self._shared.get(key) if key is not None else None
            if runner is None:
                runner = _runner_from_spec(spec)
                if self._on_build is not None:
                    self._on_build()
                if key is not None:
                    self._shared.put(key, runner)
            self._runners[name] = runner
        return runner


class _Reconnect(Exception):
    """Internal: drop the connection and re-register (disconnect fault)."""


class _Shutdown(Exception):
    """Internal: the coordinator asked us to stop."""


class WorkerAgent:
    """One remote evaluation agent serving one coordinator.

    *mark_process* declares this process a worker for fault injection
    (enables ``crash`` faults, which ``os._exit`` the process); it is set
    by the CLI / subprocess entrypoint and left False for in-process agents
    (tests, benchmarks) where a crash fault must not kill the host.
    """

    def __init__(
        self,
        host: str,
        port: int,
        *,
        worker_id: Optional[str] = None,
        reconnect_delay: float = DEFAULT_RECONNECT_DELAY,
        connect_timeout: float = 5.0,
        mark_process: bool = False,
    ) -> None:
        self.host = host
        self.port = port
        self.worker_id = (
            worker_id or f"worker-{socket.gethostname()}-{os.getpid()}"
        )
        self.reconnect_delay = reconnect_delay
        self.connect_timeout = connect_timeout
        self.mark_process = mark_process
        self._stop = threading.Event()
        self._sock: Optional[socket.socket] = None
        self._send_lock = threading.Lock()
        #: Per-batch context from the last ``batch`` message.
        self._batch: Optional[Tuple[int, Any, str]] = None
        self._runners: Optional[_AgentRunners] = None
        self._cache = None
        #: Cross-batch runner reuse (see :class:`_RunnerCache`) and the
        #: number of runner (re)builds it could not avoid — observable by
        #: tests and by anyone instrumenting agent behaviour.
        self._runner_cache = _RunnerCache()
        self.runner_builds = 0

    # -- lifecycle -----------------------------------------------------------
    def stop(self) -> None:
        """Ask the agent to exit its serve loop (thread-safe)."""
        self._stop.set()
        self._drop_socket()

    def run_forever(self) -> None:
        """Serve until :meth:`stop` or a coordinator ``shutdown`` message.

        Outer loop handles (re)connection: a lost coordinator is retried
        every ``reconnect_delay`` seconds, and re-registration is idempotent
        on the coordinator side, so agents may be started before the
        coordinator and survive its restarts.
        """
        faults.validate_env()
        faults.set_worker_identity(self.worker_id)
        if self.mark_process:
            faults.mark_worker()
        try:
            while not self._stop.is_set():
                try:
                    self._serve_connection()
                except _Shutdown:
                    return
                except _Reconnect:
                    continue  # injected disconnect: re-register immediately
                except (EOFError, OSError):
                    if self._stop.is_set():
                        return
                    if self._stop.wait(self.reconnect_delay):
                        return
        finally:
            self._drop_socket()

    # -- serve loop ----------------------------------------------------------
    def _serve_connection(self) -> None:
        sock = socket.create_connection(
            (self.host, self.port), timeout=self.connect_timeout
        )
        sock.settimeout(None)
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        self._sock = sock
        self._batch = None  # context is per-connection: coordinator resends
        try:
            self._send(("register", self.worker_id))
            self._send(("request", self.worker_id))
            while not self._stop.is_set():
                message = recv_message(sock)
                kind = message[0]
                if kind == "batch":
                    self._install_batch(message)
                elif kind == "lease":
                    self._serve_lease(message)
                    self._send(("request", self.worker_id))
                elif kind == "shutdown":
                    raise _Shutdown()
        finally:
            self._drop_socket()

    def _install_batch(self, message: Tuple) -> None:
        _, batch_id, payload, controls, on_error, fault_json, cache_dir = message
        self._runners = _AgentRunners(
            payload, shared=self._runner_cache, on_build=self._count_build
        )
        if fault_json is not None:
            faults.install(FaultPlan.from_json(fault_json))
        else:
            faults.uninstall()
        self._cache = None
        if cache_dir is not None:
            from ..service.cache import ResultCache

            self._cache = ResultCache(cache_dir=cache_dir)
        self._batch = (batch_id, controls, on_error)

    def _count_build(self) -> None:
        self.runner_builds += 1

    def _serve_lease(self, message: Tuple) -> None:
        from ..engine.batch import _evaluate_shard

        _, batch_id, task_id, shard_id, attempt, items, lease_seconds = message
        if self._batch is None or self._batch[0] != batch_id:
            self._send(
                (
                    "result", self.worker_id, batch_id, task_id, "error",
                    (
                        "WorkerCrashError: lease arrived before its batch "
                        "context",
                        None,
                        False,
                    ),
                )
            )
            return
        _, controls, on_error = self._batch
        faults.set_shard_context(shard_id, attempt)
        if faults.should_disconnect(shard_id, attempt):
            # Mid-shard disconnect: the lease dies with the connection.
            raise _Reconnect()
        heartbeat_done = threading.Event()
        beater: Optional[threading.Thread] = None
        try:
            try:
                # Process faults fire before heartbeats start: an injected
                # hang blocks renewal and genuinely expires the lease.
                faults.maybe_fault_shard(shard_id, attempt)
                beater = threading.Thread(
                    target=self._heartbeat_loop,
                    args=(heartbeat_done, batch_id, task_id, lease_seconds),
                    daemon=True,
                )
                beater.start()
                results = _evaluate_shard(
                    self._runners, items, controls, on_error
                )
                status, payload = "ok", self._package(items, controls, results)
            except _Reconnect:
                raise
            except Exception as exc:  # noqa: BLE001 - goes to the coordinator
                try:
                    blob: Optional[bytes] = pickle.dumps(exc)
                except Exception:  # noqa: BLE001 - unpicklable exception
                    blob = None
                status = "error"
                payload = (
                    f"{type(exc).__name__}: {exc}",
                    blob,
                    isinstance(exc, SimulationError),
                )
            # Send-side faults model a slow or corrupting *link*, not a dead
            # worker: heartbeats keep running through the delay, so a
            # slow-but-healthy worker keeps its lease.
            delay = faults.send_delay(shard_id, attempt)
            if delay > 0:
                time.sleep(delay)
            corrupt = faults.should_corrupt_payload(shard_id, attempt)
            self._send(
                ("result", self.worker_id, batch_id, task_id, status, payload),
                corrupt=corrupt,
            )
        finally:
            heartbeat_done.set()
            if beater is not None:
                beater.join(timeout=2.0)

    def _package(self, items, controls, results: List[Any]) -> Tuple[str, Any]:
        """Choose the result transport: shared cache tier, else inline."""
        if self._cache is not None:
            from ..service.cache import result_key

            pairs = []
            for (name, item), result in zip(items, results):
                key = result_key(self._runners[name], item, controls)
                if key is None:
                    return ("inline", results)
                self._cache.put(key, result)
                pairs.append((key, result.label))
            return ("cache", pairs)
        return ("inline", results)

    def _heartbeat_loop(
        self, done: threading.Event, batch_id: int, task_id: int,
        lease_seconds: float,
    ) -> None:
        interval = max(lease_seconds / 4.0, MIN_HEARTBEAT_INTERVAL)
        while not done.wait(interval):
            try:
                self._send(("heartbeat", self.worker_id, batch_id, task_id))
            except OSError:
                return

    # -- transport helpers ---------------------------------------------------
    def _send(self, message: Any, *, corrupt: bool = False) -> None:
        sock = self._sock
        if sock is None:
            raise OSError("agent has no connection")
        with self._send_lock:
            send_message(sock, message, corrupt=corrupt)

    def _drop_socket(self) -> None:
        sock, self._sock = self._sock, None
        if sock is not None:
            # shutdown() first so a serve loop blocked in recv on another
            # thread wakes with EOF; close() alone leaves it pinned.
            for action in (lambda: sock.shutdown(socket.SHUT_RDWR), sock.close):
                try:
                    action()
                except OSError:
                    pass


def agent_main(
    host: str,
    port: int,
    worker_id: Optional[str] = None,
    reconnect_delay: float = DEFAULT_RECONNECT_DELAY,
) -> None:
    """Subprocess/CLI entrypoint: serve *host:port* until shutdown.

    Runs with ``mark_process=True`` so injected ``crash`` faults terminate
    the agent process — this function must own its process.
    """
    WorkerAgent(
        host,
        port,
        worker_id=worker_id,
        reconnect_delay=reconnect_delay,
        mark_process=True,
    ).run_forever()
