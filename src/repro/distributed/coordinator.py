"""The distributed coordinator: shard queue, leases, heartbeats, quarantine.

The coordinator owns everything; workers own nothing.  Remote agents pull
work (``request``), hold one shard at a time under a **time-bounded lease**
renewed by heartbeats, and push back a result — they never mutate any
coordinator state directly.  That asymmetry is what makes recovery sound:
when a lease expires (dead worker, dropped link, wedged simulation — the
coordinator cannot tell which, and does not need to), requeuing the shard
is always safe, because evaluation is deterministic and a worker that
finishes after losing its lease has produced a result the coordinator
simply ignores (DESIGN.md §9).

Failure containment reuses the exact ladder the local pool uses
(:class:`repro.engine.supervised_pool.RetryLadder`): retry with capped
backoff → bisection → per-item quarantine.  A poisoned item that kills
three remote workers in a row therefore quarantines once, identically to
one that kills three local processes.  On top of the per-shard ladder the
coordinator quarantines *workers*: an agent whose connection keeps
faulting (disconnects mid-shard, expired leases, corrupt payloads) stops
receiving leases after ``worker_fault_limit`` strikes, with per-worker
:class:`~repro.engine.result.SupervisionStats` kept for
``EvaluationService.stats()["supervision"]["workers"]``.

Results travel through the content-addressed
:class:`~repro.service.cache.ResultCache` when coordinator and workers
share a cache directory (the worker publishes by key, the coordinator
reads), falling back to inline transfer otherwise; either way every frame
is checksummed end-to-end by the protocol layer.

Threading model (mirrors the supervised pool's single-supervisor shape):
an accept thread plus one reader thread per connection do nothing but push
events onto one queue; :meth:`Coordinator.run_batch` is the only consumer
and the only place batch state (pending/outstanding/slots) is touched.
Worker records are shared with the handshake path and guarded by one lock.
"""

from __future__ import annotations

import itertools
import queue
import socket
import threading
import time
from dataclasses import replace
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..core.exceptions import PayloadChecksumError, SimulationError
from ..engine.result import SupervisionStats
from ..engine.supervised_pool import POLL_INTERVAL, RetryLadder, _Task
from .protocol import recv_message, send_message

#: Default lease duration, seconds.  Heartbeats arrive every quarter lease,
#: so a lease expiry means ~4 consecutive missed heartbeats — comfortably a
#: dead or wedged worker, not a scheduling hiccup.
DEFAULT_LEASE_SECONDS = 5.0

#: Transport faults (disconnect mid-shard, lease expiry, corrupt payload)
#: a worker may cause before it stops receiving leases.
DEFAULT_WORKER_FAULT_LIMIT = 3

#: How long ``run_batch`` waits for a worker to (re)appear once nothing is
#: connected and nothing is leased, before giving up and leaving the
#: remaining slots to the caller's local fallback.
DEFAULT_RECONNECT_GRACE = 1.0


class _RemoteWorker:
    """One known worker id: transport may come and go, history persists."""

    __slots__ = (
        "worker_id", "sock", "send_lock", "generation", "connected",
        "quarantined", "faults", "stats", "completed", "task", "deadline",
        "hard_deadline", "wants_work", "batch_id",
    )

    def __init__(self, worker_id: str) -> None:
        self.worker_id = worker_id
        self.sock: Optional[socket.socket] = None
        self.send_lock = threading.Lock()
        #: Bumped on every (re)registration; events from readers of older
        #: connections are recognised as stale and ignored.
        self.generation = 0
        self.connected = False
        self.quarantined = False
        #: Transport faults attributed to this worker (strikes).
        self.faults = 0
        self.stats = SupervisionStats()
        #: Shards this worker completed successfully.
        self.completed = 0
        self.task: Optional[_Task] = None
        #: Lease deadline — pushed forward by every heartbeat.
        self.deadline: Optional[float] = None
        #: Watchdog deadline from ``RunControls.shard_timeout`` — heartbeats
        #: cannot extend it (a wedged-but-heartbeating process model needs
        #: the shard-level budget to still bite).
        self.hard_deadline: Optional[float] = None
        self.wants_work = False
        #: Batch whose context ("batch" message) this connection has seen.
        self.batch_id: Optional[int] = None

    def release_task(self) -> Optional[_Task]:
        task = self.task
        self.task = None
        self.deadline = None
        self.hard_deadline = None
        return task

    def send(self, message: Any, *, corrupt: bool = False) -> bool:
        """Send on the current transport; False when it is gone."""
        sock = self.sock
        if sock is None:
            return False
        try:
            with self.send_lock:
                send_message(sock, message, corrupt=corrupt)
        except OSError:
            return False
        return True


class _Batch:
    """State of one ``run_batch`` call (only the run_batch thread mutates it)."""

    __slots__ = (
        "batch_id", "payload", "controls", "on_error", "fault_json",
        "cache_dir", "ladder", "pending", "outstanding", "slots", "stats",
    )

    def __init__(
        self, batch_id, payload, controls, on_error, fault_json, cache_dir,
        ladder, pending, outstanding, slots, stats,
    ) -> None:
        self.batch_id = batch_id
        self.payload = payload
        self.controls = controls
        self.on_error = on_error
        self.fault_json = fault_json
        self.cache_dir = cache_dir
        self.ladder = ladder
        self.pending = pending
        self.outstanding = outstanding
        self.slots = slots
        self.stats = stats


class Coordinator:
    """Listens for worker agents and drives batches across them.

    One coordinator serves many batches over its lifetime (the evaluation
    service holds one for the whole session); :meth:`run_batch` calls are
    serialised.  With no agents connected, :meth:`available_workers`
    returns 0 and the batch layer never routes work here — degradation to
    the local supervised pool is the caller's one-line check away.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        lease_seconds: float = DEFAULT_LEASE_SECONDS,
        worker_fault_limit: int = DEFAULT_WORKER_FAULT_LIMIT,
        reconnect_grace: float = DEFAULT_RECONNECT_GRACE,
        cache_dir: Optional[str] = None,
    ) -> None:
        if lease_seconds <= 0:
            raise SimulationError("lease_seconds must be positive")
        if worker_fault_limit < 1:
            raise SimulationError("worker_fault_limit must be at least 1")
        self.lease_seconds = float(lease_seconds)
        self.worker_fault_limit = worker_fault_limit
        self.reconnect_grace = float(reconnect_grace)
        self.cache_dir = str(cache_dir) if cache_dir is not None else None
        self._cache = None
        if self.cache_dir is not None:
            from ..service.cache import ResultCache

            self._cache = ResultCache(cache_dir=self.cache_dir)
        self._server = socket.create_server((host, port), reuse_port=False)
        self.host, self.port = self._server.getsockname()[:2]
        self._events: "queue.SimpleQueue[Tuple]" = queue.SimpleQueue()
        self._workers: Dict[str, _RemoteWorker] = {}
        self._lock = threading.RLock()
        self._batch_ids = itertools.count(1)
        self._batch_lock = threading.Lock()
        self._closed = False
        #: Merged recovery counters across every batch this coordinator ran.
        self.supervision = SupervisionStats()
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="repro-coordinator-accept", daemon=True
        )
        self._accept_thread.start()

    # -- public surface ------------------------------------------------------
    @property
    def address(self) -> Tuple[str, int]:
        return (self.host, self.port)

    def available_workers(self) -> int:
        """Connected, non-quarantined agents — what the batch layer gates on."""
        with self._lock:
            return sum(
                1
                for worker in self._workers.values()
                if worker.connected and not worker.quarantined
            )

    def wait_for_workers(self, count: int, timeout: float = 10.0) -> bool:
        """Block until *count* agents are available (False on timeout)."""
        deadline = time.monotonic() + timeout
        while self.available_workers() < count:
            if time.monotonic() >= deadline:
                return False
            time.sleep(0.02)
        return True

    def worker_stats(self) -> Dict[str, Dict[str, Any]]:
        """Per-worker supervision record, keyed by worker id."""
        with self._lock:
            return {
                worker.worker_id: {
                    "connected": worker.connected,
                    "quarantined": worker.quarantined,
                    "faults": worker.faults,
                    "completed": worker.completed,
                    "supervision": worker.stats.to_dict(),
                }
                for worker in self._workers.values()
            }

    def close(self) -> None:
        """Shut down: tell agents to stop, close every transport."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            workers = list(self._workers.values())
        # shutdown() before close(): merely closing a listening socket does
        # not wake a thread blocked in accept() on it, which would leave the
        # accept loop alive to serve one more connection.
        for action in (
            lambda: self._server.shutdown(socket.SHUT_RDWR),
            self._server.close,
        ):
            try:
                action()
            except OSError:
                pass
        for worker in workers:
            worker.send(("shutdown",))
            sock = worker.sock
            if sock is not None:
                self._close_socket(sock)
            worker.connected = False
            worker.sock = None

    # -- connection plumbing -------------------------------------------------
    def _accept_loop(self) -> None:
        while True:
            try:
                conn, _addr = self._server.accept()
            except OSError:
                return  # server socket closed
            threading.Thread(
                target=self._handshake, args=(conn,), daemon=True
            ).start()

    def _handshake(self, conn: socket.socket) -> None:
        try:
            conn.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            message = recv_message(conn)
        except Exception:  # noqa: BLE001 - bad first frame: not a worker
            self._close_socket(conn)
            return
        if (
            not isinstance(message, tuple)
            or len(message) != 2
            or message[0] != "register"
            or not isinstance(message[1], str)
        ):
            self._close_socket(conn)
            return
        worker_id = message[1]
        with self._lock:
            if self._closed:
                self._close_socket(conn)
                return
            worker = self._workers.get(worker_id)
            if worker is None:
                worker = _RemoteWorker(worker_id)
                self._workers[worker_id] = worker
            # Idempotent re-registration: replace the transport, keep the
            # history (fault strikes, quarantine, stats survive reconnects).
            old_sock, lost_task = worker.sock, worker.release_task()
            worker.generation += 1
            worker.sock = conn
            worker.connected = True
            worker.wants_work = False
            worker.batch_id = None  # a fresh connection must re-receive context
            generation = worker.generation
        if old_sock is not None:
            self._close_socket(old_sock)
        if lost_task is not None:
            # The shard leased on the dead connection is gone with it.
            self._events.put(("lost", worker, lost_task))
        threading.Thread(
            target=self._reader,
            args=(worker, generation, conn),
            name=f"repro-coordinator-read-{worker_id}",
            daemon=True,
        ).start()

    def _reader(self, worker: _RemoteWorker, generation: int, conn) -> None:
        while True:
            try:
                message = recv_message(conn)
            except PayloadChecksumError:
                self._events.put(("corrupt", worker, generation))
                continue  # frame sync is intact: keep reading
            except (EOFError, OSError):
                self._events.put(("gone", worker, generation))
                return
            self._events.put(("message", worker, generation, message))

    @staticmethod
    def _close_socket(sock: socket.socket) -> None:
        # shutdown() before close(): close() alone does not sever a
        # connection whose fd another thread is blocked reading — the
        # in-flight recv pins the file description, so the peer never
        # sees FIN and the reader thread never wakes.
        for action in (lambda: sock.shutdown(socket.SHUT_RDWR), sock.close):
            try:
                action()
            except OSError:
                pass

    # -- batch driving -------------------------------------------------------
    def run_batch(
        self,
        payload: bytes,
        shard_lists: Sequence[Sequence[Any]],
        controls,
        on_error: str,
        fault_json: Optional[str] = None,
    ) -> Tuple[List[Optional[Any]], SupervisionStats]:
        """Evaluate the shards across connected agents; same slot contract as
        :meth:`SupervisedPool.run` — a ``None`` slot means the coordinator
        gave up on that item (no workers left) and the caller finishes it
        locally.  Returns ``(slots, stats)``.
        """
        if self._closed:
            raise SimulationError("coordinator is closed")
        with self._batch_lock:
            stats = SupervisionStats()
            ladder = RetryLadder(controls, on_error, stats)
            tasks, slots = ladder.make_tasks(shard_lists)
            try:
                if tasks:
                    batch = _Batch(
                        batch_id=next(self._batch_ids),
                        payload=payload,
                        controls=controls,
                        on_error=on_error,
                        fault_json=fault_json,
                        cache_dir=self.cache_dir,
                        ladder=ladder,
                        pending=list(tasks),
                        outstanding={t.task_id: t for t in tasks},
                        slots=slots,
                        stats=stats,
                    )
                    self._drive(batch)
            finally:
                # Leftover leases (give-up, close, on_error="raise") are moot
                # once the batch ends: late results are dropped by batch id.
                with self._lock:
                    for worker in self._workers.values():
                        worker.release_task()
                self.supervision.merge(stats)
            return slots, stats

    def _drive(self, batch: _Batch) -> None:
        idle_since: Optional[float] = None
        while batch.outstanding:
            if self._closed:
                return  # give up: remaining slots stay None
            now = time.monotonic()
            with self._lock:
                self._sweep_deadlines(batch, now)
                self._dispatch(batch, now)
                leased = any(
                    w.task is not None for w in self._workers.values()
                )
                available = any(
                    w.connected and not w.quarantined
                    for w in self._workers.values()
                )
            if not batch.outstanding:
                return
            if leased or available:
                idle_since = None
            elif idle_since is None:
                idle_since = now
            elif now - idle_since >= self.reconnect_grace:
                return  # nobody to give work to: caller's local fallback
            try:
                event = self._events.get(timeout=self._wait_timeout(batch, now))
            except queue.Empty:
                continue
            self._handle_event(batch, event)
            while True:
                try:
                    event = self._events.get_nowait()
                except queue.Empty:
                    break
                self._handle_event(batch, event)

    def _wait_timeout(self, batch: _Batch, now: float) -> float:
        timeout = POLL_INTERVAL
        with self._lock:
            for worker in self._workers.values():
                for deadline in (worker.deadline, worker.hard_deadline):
                    if deadline is not None:
                        timeout = min(timeout, deadline - now)
        for task in batch.pending:
            if task.ready > now:
                timeout = min(timeout, task.ready - now)
        return max(0.0, timeout)

    def _dispatch(self, batch: _Batch, now: float) -> None:
        """Lease ready tasks to idle, willing, non-quarantined workers."""
        for worker in self._workers.values():
            if (
                not worker.connected
                or worker.quarantined
                or not worker.wants_work
                or worker.task is not None
            ):
                continue
            task = RetryLadder.pop_ready(batch.pending, now)
            if task is None:
                return
            if not self._send_lease(worker, batch, task, now):
                batch.pending.append(task)  # the "gone" event handles the rest

    def _send_lease(
        self, worker: _RemoteWorker, batch: _Batch, task: _Task, now: float
    ) -> bool:
        if worker.batch_id != batch.batch_id:
            ok = worker.send(
                (
                    "batch", batch.batch_id, batch.payload, batch.controls,
                    batch.on_error, batch.fault_json, batch.cache_dir,
                )
            )
            if not ok:
                return False
            worker.batch_id = batch.batch_id
        ok = worker.send(
            (
                "lease", batch.batch_id, task.task_id, task.shard_id,
                task.attempt, task.items, self.lease_seconds,
            )
        )
        if not ok:
            return False
        worker.task = task
        worker.wants_work = False
        worker.deadline = now + self.lease_seconds
        timeout = batch.controls.shard_timeout
        worker.hard_deadline = None if timeout is None else now + timeout
        return True

    # -- event handling (run_batch thread only) ------------------------------
    def _handle_event(self, batch: _Batch, event: Tuple) -> None:
        kind = event[0]
        if kind == "gone":
            _, worker, generation = event
            with self._lock:
                if generation != worker.generation:
                    return  # a newer connection already replaced this one
                worker.connected = False
                worker.sock = None
                task = worker.release_task()
            if task is not None:
                self._worker_fault(worker, batch)
                self._requeue(
                    batch, task,
                    f"WorkerCrashError: worker {worker.worker_id!r} "
                    f"disconnected while holding shard {task.shard_id} "
                    f"attempt {task.attempt}",
                )
        elif kind == "lost":
            _, worker, task = event
            self._worker_fault(worker, batch)
            self._requeue(
                batch, task,
                f"WorkerCrashError: worker {worker.worker_id!r} reconnected "
                f"while holding shard {task.shard_id} attempt {task.attempt}",
            )
        elif kind == "corrupt":
            _, worker, generation = event
            with self._lock:
                if generation != worker.generation:
                    return
                task = worker.release_task()
            batch.stats.corrupt_payloads += 1
            worker.stats.corrupt_payloads += 1
            self._worker_fault(worker, batch)
            if task is not None:
                self._requeue(
                    batch, task,
                    f"PayloadChecksumError: result frame from worker "
                    f"{worker.worker_id!r} for shard {task.shard_id} attempt "
                    f"{task.attempt} failed its checksum",
                )
        elif kind == "message":
            _, worker, generation, message = event
            with self._lock:
                if generation != worker.generation or not isinstance(
                    message, tuple
                ):
                    return
            self._handle_message(batch, worker, message)

    def _handle_message(
        self, batch: _Batch, worker: _RemoteWorker, message: Tuple
    ) -> None:
        kind = message[0]
        if kind == "request":
            with self._lock:
                worker.wants_work = True
        elif kind == "heartbeat":
            _, _worker_id, batch_id, task_id = message
            with self._lock:
                if (
                    worker.task is not None
                    and worker.task.task_id == task_id
                    and batch_id == batch.batch_id
                ):
                    worker.deadline = time.monotonic() + self.lease_seconds
        elif kind == "result":
            _, _worker_id, batch_id, task_id, status, payload = message
            with self._lock:
                if worker.task is not None and worker.task.task_id == task_id:
                    worker.release_task()
            if batch_id != batch.batch_id:
                return  # late result from an older batch: drop
            task = batch.outstanding.get(task_id)
            if task is None:
                return  # lease already expired and the task moved on: drop
            if task in batch.pending:
                # Already requeued (e.g. expiry raced the result): the
                # requeued copy is authoritative, drop the stale result.
                return
            if status == "ok":
                self._complete(batch, worker, task, payload)
            else:
                summary, blob, is_sim = payload
                batch.ladder.task_failed(
                    task, batch.pending, batch.outstanding, batch.slots,
                    summary=summary, blob=blob, deterministic=is_sim,
                )

    def _complete(
        self, batch: _Batch, worker: _RemoteWorker, task: _Task, payload
    ) -> None:
        mode, data = payload
        if mode == "cache":
            results = self._fetch_cached(data)
            if results is None:
                # The cache dir turned out not to be shared (or entries were
                # evicted between publish and read): degrade the whole batch
                # to inline transfer and retry.  Resetting batch_id forces
                # the revised context onto every worker before its next lease.
                batch.cache_dir = None
                with self._lock:
                    for other in self._workers.values():
                        other.batch_id = None
                self._requeue(
                    batch, task,
                    f"WorkerCrashError: worker {worker.worker_id!r} published "
                    f"shard {task.shard_id} by cache key but entries were "
                    f"missing; falling back to inline transfer",
                )
                return
        else:
            results = data
        if len(results) != len(task.items):
            self._worker_fault(worker, batch)
            self._requeue(
                batch, task,
                f"WorkerCrashError: worker {worker.worker_id!r} returned "
                f"{len(results)} results for {len(task.items)} items",
            )
            return
        for result in results:
            result.attempts = task.tries + 1
        batch.slots[task.start : task.start + len(results)] = results
        batch.outstanding.pop(task.task_id, None)
        with self._lock:
            worker.completed += 1

    def _fetch_cached(self, pairs) -> Optional[List[Any]]:
        """Read worker-published results back out of the shared cache tier."""
        if self._cache is None:
            return None
        results = []
        for key, label in pairs:
            cached = self._cache.get(key, count=False)
            if cached is None:
                return None
            # Always copy: memory-tier objects are shared, and the attempts
            # stamp below must not mutate another reader's result.
            results.append(replace(cached, label=label))
        return results

    # -- failure attribution -------------------------------------------------
    def _requeue(self, batch: _Batch, task: _Task, summary: str) -> None:
        """A transport-level loss: never deterministic, always retryable.

        Tasks from an earlier batch (stale events that straddled a batch
        boundary) are simply dropped — they have no slot here.
        """
        if task.task_id not in batch.outstanding:
            return
        batch.ladder.task_failed(
            task, batch.pending, batch.outstanding, batch.slots,
            summary=summary, blob=None, deterministic=False,
        )

    def _worker_fault(self, worker: _RemoteWorker, batch: _Batch) -> None:
        """One strike; at the limit the worker stops receiving leases."""
        with self._lock:
            worker.faults += 1
            if (
                not worker.quarantined
                and worker.faults >= self.worker_fault_limit
            ):
                worker.quarantined = True
                batch.stats.workers_quarantined += 1
                worker.stats.workers_quarantined += 1

    def _sweep_deadlines(self, batch: _Batch, now: float) -> None:
        """Expire leases (no heartbeat) and hard shard-timeout budgets."""
        for worker in self._workers.values():
            task = worker.task
            if task is None:
                continue
            if worker.hard_deadline is not None and now >= worker.hard_deadline:
                worker.release_task()
                batch.stats.timeouts += 1
                worker.stats.timeouts += 1
                self._worker_fault(worker, batch)
                if task.task_id in batch.outstanding:
                    self._requeue(
                        batch, task,
                        f"ShardTimeoutError: shard {task.shard_id} attempt "
                        f"{task.attempt} on worker {worker.worker_id!r} "
                        f"exceeded shard_timeout="
                        f"{batch.controls.shard_timeout}s",
                    )
            elif worker.deadline is not None and now >= worker.deadline:
                worker.release_task()
                batch.stats.lease_expiries += 1
                worker.stats.lease_expiries += 1
                self._worker_fault(worker, batch)
                if task.task_id in batch.outstanding:
                    self._requeue(
                        batch, task,
                        f"LeaseExpiredError: worker {worker.worker_id!r} "
                        f"lease on shard {task.shard_id} attempt "
                        f"{task.attempt} expired without a heartbeat",
                    )
