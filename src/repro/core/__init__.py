"""Core latency-insensitive wire-pipelining framework.

This subpackage implements both the substrate the paper builds on (Carloni's
latency-insensitive design: relay stations, strict wrappers, the tagged-signal
equivalence framework) and the paper's contribution (the relaxed WP2 wrapper
driven by a per-block oracle), together with the analysis and methodology
tooling: static loop-throughput bounds, floorplan/wire-delay driven
relay-station insertion, configuration optimisation and area models.

The most commonly used entry points are re-exported here; see the individual
modules for the full API.
"""

from .area import (
    AreaEstimate,
    OverheadReport,
    estimate_overhead,
    relay_station_area,
    wrapper_area,
)
from .channel import Channel, channel
from .config import RSConfiguration
from .equivalence import (
    EquivalenceReport,
    Mismatch,
    assert_equivalent,
    compare_value_sequences,
    latency_profile,
    n_equivalent,
)
from .exceptions import (
    AssemblerError,
    ConfigurationError,
    DeadlockError,
    EquivalenceError,
    NetlistError,
    OptimizationError,
    ProgramError,
    ProtocolError,
    ReproError,
    SimulationError,
)
from .floorplan import Block, Floorplan, row_pack, spread_floorplan
from .golden import GoldenResult, GoldenSimulator, run_golden
from .insertion import (
    all_single_link_insertions,
    floorplan_insertion,
    incremental_insertions,
    single_link_insertion,
    uniform_insertion,
)
from .netlist import Netlist, ring_netlist
from .optimizer import (
    LinkRange,
    OptimizationResult,
    SearchSpace,
    annealing_search,
    exhaustive_search,
    greedy_search,
    optimize_configuration,
    simulated_throughput_objective,
    simulation_objective,
    static_objective,
)
from .process import (
    SCHEDULE_INERT,
    CounterSource,
    FunctionProcess,
    PassthroughProcess,
    Process,
    SinkProcess,
)
from .relay_station import RelayStation, TokenQueue, build_relay_chain
from .shell import (
    DEFAULT_QUEUE_CAPACITY,
    FiringPlan,
    RelaxedShell,
    Shell,
    ShellStats,
    StrictShell,
    make_shell,
)
from .simulator import ChannelPipeline, LidResult, LidSimulator, run_lid
from ..engine import (
    BatchResult,
    BatchRunner,
    FastKernel,
    InstrumentSet,
    ReferenceKernel,
    SimKernel,
)
from .static_analysis import (
    Loop,
    ThroughputReport,
    critical_links,
    enumerate_loops,
    maximum_cycle_mean,
    maximum_cycle_ratio,
    per_link_sensitivity,
    throughput_bound,
    throughput_bound_mcm,
)
from .timing import ClockPlan, WireModel, clock_scaling_sweep, relay_stations_for_lengths
from .tokens import VOID, Token, is_token, is_void
from .traces import ChannelTrace, SystemTrace, interleave_voids, trace_from_values
from .verification import (
    ComparisonRow,
    VerificationResult,
    compare_wrappers,
    verify_configuration,
)

__all__ = [
    # tokens / traces / equivalence
    "Token", "VOID", "is_token", "is_void",
    "ChannelTrace", "SystemTrace", "trace_from_values", "interleave_voids",
    "EquivalenceReport", "Mismatch", "n_equivalent", "assert_equivalent",
    "compare_value_sequences", "latency_profile",
    # processes / channels / netlists
    "Process", "FunctionProcess", "PassthroughProcess", "CounterSource", "SinkProcess",
    "SCHEDULE_INERT",
    "Channel", "channel", "Netlist", "ring_netlist",
    # protocol elements
    "RelayStation", "TokenQueue", "build_relay_chain",
    "Shell", "StrictShell", "RelaxedShell", "FiringPlan", "ShellStats",
    "make_shell", "DEFAULT_QUEUE_CAPACITY",
    # simulators
    "GoldenSimulator", "GoldenResult", "run_golden",
    "LidSimulator", "LidResult", "ChannelPipeline", "run_lid",
    # engine (layered simulation stack; see repro.engine for the full API)
    "SimKernel", "ReferenceKernel", "FastKernel", "InstrumentSet",
    "BatchRunner", "BatchResult",
    # configuration / insertion / analysis
    "RSConfiguration",
    "uniform_insertion", "single_link_insertion", "all_single_link_insertions",
    "incremental_insertions", "floorplan_insertion",
    "Loop", "ThroughputReport", "enumerate_loops", "throughput_bound",
    "throughput_bound_mcm", "maximum_cycle_mean", "maximum_cycle_ratio",
    "critical_links", "per_link_sensitivity",
    # methodology: floorplan / timing / optimiser / area
    "Block", "Floorplan", "row_pack", "spread_floorplan",
    "WireModel", "ClockPlan", "relay_stations_for_lengths", "clock_scaling_sweep",
    "SearchSpace", "LinkRange", "OptimizationResult",
    "exhaustive_search", "greedy_search", "annealing_search",
    "optimize_configuration", "static_objective", "simulation_objective",
    "simulated_throughput_objective",
    "AreaEstimate", "OverheadReport", "wrapper_area", "relay_station_area",
    "estimate_overhead",
    # verification
    "VerificationResult", "ComparisonRow", "verify_configuration", "compare_wrappers",
    # exceptions
    "ReproError", "NetlistError", "ConfigurationError", "SimulationError",
    "ProtocolError", "EquivalenceError", "DeadlockError", "AssemblerError",
    "ProgramError", "OptimizationError",
]
