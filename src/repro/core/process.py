"""Synchronous processes ("pearls") and the oracle interface.

A :class:`Process` models one IP block of the SoC.  In the reference (golden)
system every process fires exactly once per clock cycle: it consumes one value
from each input port (the value produced by the driver during the previous
cycle) and produces one value on each output port.  All process outputs are
registered, so a value produced at cycle *t* is consumed at cycle *t + 1* —
this is the standard synchronous block-level netlist that latency-insensitive
design takes as its specification.

When the process is enclosed in a wrapper (shell) and the wires are pipelined
with relay stations, firings no longer happen every cycle, but firing number
``k`` still consumes the ``k``-th valid token of every input channel and
produces the ``k``-th valid token on every output channel.  Equivalence with
the golden system follows.

The WP2 wrapper additionally consults the process' *oracle*
(:meth:`Process.required_ports`) before each firing: the oracle returns the
set of input ports whose current-tag token is actually needed for the next
computation.  Ports not in the set may be fed a stale or missing token — the
process must not let them influence its next state or outputs.  Returning
``None`` means "all ports are needed" and makes the WP2 wrapper behave exactly
like the strict WP1 wrapper for that firing.
"""

from __future__ import annotations

import math as _math
from abc import ABC, abstractmethod
from typing import (
    Any,
    Callable,
    Dict,
    FrozenSet,
    Iterable,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

from .exceptions import NetlistError


class _ScheduleInert:
    """Singleton marking a process whose control behaviour never changes."""

    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "SCHEDULE_INERT"


#: Returned by :meth:`Process.schedule_state` to promise that the process'
#: ``is_done()`` and ``required_ports()`` answers are constant for the whole
#: run, so steady-state detection never needs to sample it.
SCHEDULE_INERT = _ScheduleInert()


def overrides_hook(process: "Process", method: str) -> bool:
    """Whether *process* overrides a base-class hook (class or instance level).

    The base implementations of ``is_done``/``required_ports`` are constant
    (``False`` / ``None``), so engines fold non-overridden hooks away and the
    steady-state detector treats such processes as schedule-inert.
    """
    if method in process.__dict__:
        return True
    return getattr(type(process), method) is not getattr(Process, method)


class Process(ABC):
    """A synchronous block with named input and output ports.

    Subclasses must define :attr:`input_ports`, :attr:`output_ports`,
    :meth:`reset` and :meth:`fire`.  They may override
    :meth:`required_ports` to expose a WP2 oracle and :meth:`is_done` to let
    simulations terminate on a block-level condition (e.g. the control unit
    reaching its HALT state).
    """

    #: Names of the input ports, in a stable order.
    input_ports: Tuple[str, ...] = ()
    #: Names of the output ports, in a stable order.
    output_ports: Tuple[str, ...] = ()
    #: Optional name of a boolean instance attribute that is always equal to
    #: ``is_done()``.  Declaring it lets specializing engines (the compiled
    #: kernel) read the attribute instead of paying a method call on every
    #: cycle; ``is_done()`` itself must keep working regardless.
    done_attribute: Optional[str] = None
    #: Declares that :meth:`schedule_state` captures the process' **complete**
    #: behavioural state, not merely the value-independent control state the
    #: base contract requires.  The promise: two instants with equal summaries
    #: followed by identical input token sequences produce identical future
    #: outputs (values included), ``is_done()`` and ``required_ports()``
    #: answers — and every output value is hashable.  Such summaries are
    #: *data-dependent* and therefore only sound under the **certified**
    #: snapshot plan, which additionally keys the queued token values of every
    #: channel and deep-verifies each candidate period before extrapolating
    #: (see :func:`repro.engine.steady_state.certify_model` and DESIGN.md §5).
    #: A process whose summary must fold large state into a digest (e.g. a
    #: memory image) should override :meth:`schedule_verify_state` to expose
    #: the exact state for that per-candidate verification.
    schedule_complete: bool = False

    def __init__(self, name: str) -> None:
        if not name:
            raise NetlistError("process name must be a non-empty string")
        self.name = name
        self.firings = 0

    # -- lifecycle ----------------------------------------------------------
    def reset(self) -> None:
        """Return the process to its initial state.

        Subclasses overriding this method must call ``super().reset()`` so the
        firing counter is cleared as well.
        """
        self.firings = 0

    @abstractmethod
    def fire(self, inputs: Mapping[str, Any]) -> Dict[str, Any]:
        """Perform one synchronous step.

        Parameters
        ----------
        inputs:
            One value per input port.  For ports the oracle declared as not
            required, the wrapper passes whatever it has (possibly ``None``);
            the computation must not depend on those entries.

        Returns
        -------
        dict
            One value per output port.
        """

    # -- WP2 oracle -----------------------------------------------------------
    def required_ports(self) -> Optional[FrozenSet[str]]:
        """Ports whose next-tag token is needed for the next firing.

        The default (``None``) requires every input port, which reduces the
        relaxed wrapper to the strict one.  Overrides must only use the
        process' *current* state (never the pending input values): the oracle
        is consulted while inputs may still be in flight.
        """
        return None

    # -- termination hook -----------------------------------------------------
    def is_done(self) -> bool:
        """Whether this process reached a terminal state (e.g. executed HALT)."""
        return False

    def done_threshold(self) -> Optional[float]:
        """Firing count at which :meth:`is_done` flips, when it is expressible.

        The lockstep kernel (:mod:`repro.engine.lockstep`) advances many
        configurations with pure integer arithmetic and cannot call
        :meth:`is_done` per lane per cycle.  A process whose done condition is
        a pure function of its own firing count can instead declare the
        threshold ``T`` such that ``is_done() == (self.firings >= T)`` at
        every instant of every run:

        * return an ``int`` threshold ``T`` (constant for the whole run);
        * return ``math.inf`` to promise the process never reports done;
        * return ``None`` (the default for processes overriding
          :meth:`is_done`) when the condition is data-dependent or otherwise
          inexpressible — netlists containing such a process fall back to the
          scalar kernels, which is always safe.
        """
        if overrides_hook(self, "is_done"):
            return None
        return _math.inf

    # -- steady-state detection hook ------------------------------------------
    def schedule_state(self) -> Optional[Any]:
        """Snapshot of the internal state that can influence the firing schedule.

        The steady-state detector (see :mod:`repro.engine.steady_state`) hashes
        a canonical snapshot of the simulation each cycle; token *values* never
        gate a firing, so only the state feeding :meth:`is_done` and
        :meth:`required_ports` belongs in it.  The contract:

        * return :data:`SCHEDULE_INERT` to promise that ``is_done()`` and
          ``required_ports()`` answer the same for the whole run (the detector
          then never samples this process);
        * return a hashable value capturing every piece of state those hooks
          depend on.  Two instants with equal values must yield identical
          future ``is_done``/``required_ports`` behaviour as a function of the
          process' future firing sequence — in particular the captured state
          must evolve independently of input token *values*;
        * return ``None`` (the default for processes overriding either hook)
          when the control behaviour is data-dependent and cannot be
          summarised.  Steady-state detection is then disabled for any netlist
          containing the process, which is always safe.
        """
        if overrides_hook(self, "is_done") or overrides_hook(self, "required_ports"):
            return None
        return SCHEDULE_INERT

    def schedule_jump(self, firings: int) -> None:
        """Shift internal absolute-tag bookkeeping after an analytic jump.

        When steady-state extrapolation skips whole periods it advances
        ``self.firings`` by *firings* without calling :meth:`fire`.  A
        process that stores absolute firing counts inside its state (e.g.
        pending-operation schedules keyed by due tag) must shift them by the
        same amount here, so the state's relationship to ``self.firings`` —
        which is all its behaviour may depend on — survives the jump and the
        resumed concrete simulation continues exactly like full simulation.
        The default is a no-op: state that never references the absolute
        firing count (the common case) needs no adjustment.
        """

    def schedule_verify_state(self) -> Optional[Any]:
        """Exact state backing a :attr:`schedule_complete` summary.

        Certified steady-state detection (DESIGN.md §5) compares this value at
        the two ends of a candidate period before trusting the extrapolation,
        so a summary may compress large state into a digest without giving up
        bit-exactness: override this to return the uncompressed state (it runs
        twice per candidate, never per cycle).  The default — the summary
        itself — is correct whenever :meth:`schedule_state` is already exact.
        """
        return self.schedule_state()

    # -- bookkeeping used by the simulators -----------------------------------
    def step(self, inputs: Mapping[str, Any]) -> Dict[str, Any]:
        """Fire once and keep the firing counter up to date.

        Simulators call :meth:`step` instead of :meth:`fire` directly so the
        number of valid firings is tracked uniformly.  The output dictionary
        is validated against :attr:`output_ports`.
        """
        outputs = self.fire(inputs)
        missing = [port for port in self.output_ports if port not in outputs]
        if missing:
            raise NetlistError(
                f"process {self.name!r} did not drive output ports {missing}"
            )
        unexpected = [port for port in outputs if port not in self.output_ports]
        if unexpected:
            raise NetlistError(
                f"process {self.name!r} drove undeclared output ports {unexpected}"
            )
        self.firings += 1
        return dict(outputs)

    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}(name={self.name!r}, "
            f"inputs={list(self.input_ports)}, outputs={list(self.output_ports)})"
        )


class FunctionProcess(Process):
    """A process defined by a plain function over its inputs and a state.

    The function receives ``(state, inputs)`` and returns
    ``(new_state, outputs)``.  This is the quickest way to build small test
    systems and the synthetic netlists used by the property tests.

    Parameters
    ----------
    name:
        Process name (must be unique within a netlist).
    inputs, outputs:
        Port name sequences.
    transition:
        The ``(state, inputs) -> (new_state, outputs)`` function.
    initial_state:
        State restored by :meth:`reset`.
    oracle:
        Optional ``state -> frozenset of required ports`` function, exposing a
        WP2 oracle for the function process.
    schedule_state:
        Optional ``state -> hashable`` projection backing
        :meth:`Process.schedule_state` for oracle-bearing processes.  It must
        extract exactly the part of the state the oracle depends on, and that
        part must evolve independently of input token values (see the
        contract on :meth:`Process.schedule_state`).  Without it, an
        oracle-bearing function process reports ``None`` (detection disabled).
    """

    def __init__(
        self,
        name: str,
        inputs: Sequence[str],
        outputs: Sequence[str],
        transition: Callable[[Any, Mapping[str, Any]], Tuple[Any, Dict[str, Any]]],
        initial_state: Any = None,
        oracle: Optional[Callable[[Any], Optional[Iterable[str]]]] = None,
        schedule_state: Optional[Callable[[Any], Any]] = None,
    ) -> None:
        super().__init__(name)
        self.input_ports = tuple(inputs)
        self.output_ports = tuple(outputs)
        self._transition = transition
        self._initial_state = initial_state
        self._oracle = oracle
        self._schedule_state_fn = schedule_state
        self.state = initial_state

    def reset(self) -> None:
        super().reset()
        self.state = self._initial_state

    def fire(self, inputs: Mapping[str, Any]) -> Dict[str, Any]:
        self.state, outputs = self._transition(self.state, inputs)
        return outputs

    def required_ports(self) -> Optional[FrozenSet[str]]:
        if self._oracle is None:
            return None
        required = self._oracle(self.state)
        if required is None:
            return None
        return frozenset(required)

    def schedule_state(self) -> Optional[Any]:
        if self._oracle is None:
            return SCHEDULE_INERT  # required_ports constantly answers None
        if self._schedule_state_fn is None:
            return None
        return self._schedule_state_fn(self.state)


class PassthroughProcess(Process):
    """A single-input, single-output process that forwards its input.

    Used as a building block for synthetic ring netlists in tests and
    benchmarks: a ring of pass-throughs with one injector exposes the
    ``m/(m+n)`` loop-throughput behaviour in its purest form.
    """

    def __init__(self, name: str, in_port: str = "in", out_port: str = "out") -> None:
        super().__init__(name)
        self.input_ports = (in_port,)
        self.output_ports = (out_port,)
        self._in = in_port
        self._out = out_port

    def fire(self, inputs: Mapping[str, Any]) -> Dict[str, Any]:
        return {self._out: inputs[self._in]}


class CounterSource(Process):
    """A source with no inputs producing 0, 1, 2, ... on its output port."""

    def __init__(self, name: str, out_port: str = "out", limit: Optional[int] = None) -> None:
        super().__init__(name)
        self.input_ports = ()
        self.output_ports = (out_port,)
        self._out = out_port
        self._limit = limit
        self._next = 0

    def reset(self) -> None:
        super().reset()
        self._next = 0

    def fire(self, inputs: Mapping[str, Any]) -> Dict[str, Any]:
        value = self._next
        self._next += 1
        return {self._out: value}

    def is_done(self) -> bool:
        return self._limit is not None and self._next >= self._limit

    def schedule_state(self) -> Optional[Any]:
        # Unlimited sources never report done; limited ones flip as a pure
        # function of the emission counter, which is therefore the complete
        # schedule-relevant state (monotone while live, frozen once done).
        return SCHEDULE_INERT if self._limit is None else self._next

    def done_threshold(self) -> Optional[float]:
        # ``_next`` always equals ``firings`` (both advance exactly on fire),
        # so ``is_done() == (firings >= _limit)`` holds at every instant.
        return _math.inf if self._limit is None else self._limit


class SinkProcess(Process):
    """A sink that records every value it consumes (single input port)."""

    def __init__(self, name: str, in_port: str = "in") -> None:
        super().__init__(name)
        self.input_ports = (in_port,)
        self.output_ports = ()
        self._in = in_port
        self.received: list = []

    def reset(self) -> None:
        super().reset()
        self.received = []

    def fire(self, inputs: Mapping[str, Any]) -> Dict[str, Any]:
        self.received.append(inputs[self._in])
        return {}
