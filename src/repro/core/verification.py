"""End-to-end verification: golden vs wire-pipelined runs.

This module packages the flow every experiment (and many tests) needs:

1. run the golden system and record its τ-filtered traces and cycle count;
2. run the WP1 and/or WP2 system under a relay-station configuration;
3. check N-equivalence of the filtered traces (the formal property the paper
   proves);
4. report throughput both as valid-firings-per-cycle and as the cycle ratio
   golden/WP used by Table 1.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Mapping, Optional, Sequence

from .config import RSConfiguration
from .equivalence import EquivalenceReport, n_equivalent
from .exceptions import EquivalenceError
from .golden import GoldenResult, run_golden
from .netlist import Netlist
from .shell import DEFAULT_QUEUE_CAPACITY
from .simulator import LidResult, run_lid


@dataclass
class VerificationResult:
    """Golden vs wire-pipelined comparison for one wrapper flavour."""

    golden: GoldenResult
    pipelined: LidResult
    equivalence: EquivalenceReport

    @property
    def throughput(self) -> float:
        """Table 1's Th: golden cycles divided by wire-pipelined cycles."""
        if self.pipelined.cycles == 0:
            return 0.0
        return self.golden.cycles / self.pipelined.cycles

    @property
    def slowdown(self) -> float:
        """Cycle inflation factor of the wire-pipelined system (>= 1)."""
        if self.golden.cycles == 0:
            return 0.0
        return self.pipelined.cycles / self.golden.cycles

    def require_equivalent(self) -> "VerificationResult":
        """Raise :class:`EquivalenceError` if the equivalence check failed."""
        self.equivalence.raise_if_failed()
        return self


def verify_configuration(
    netlist: Netlist,
    configuration: Optional[RSConfiguration] = None,
    rs_counts: Optional[Mapping[str, int]] = None,
    relaxed: bool = False,
    stop_process: Optional[str] = None,
    golden: Optional[GoldenResult] = None,
    max_cycles: int = 5_000_000,
    queue_capacity: int = DEFAULT_QUEUE_CAPACITY,
    equivalence_channels: Optional[Sequence[str]] = None,
    check_equivalence: bool = True,
) -> VerificationResult:
    """Run golden and wire-pipelined systems and compare them.

    Parameters
    ----------
    netlist:
        The block-level netlist.  It is reset before each run, so the same
        instance can be reused across configurations.
    configuration / rs_counts:
        The relay-station placement (per link or per channel).
    relaxed:
        ``True`` selects the WP2 wrapper, ``False`` the strict WP1 wrapper.
    stop_process:
        Process whose ``is_done()`` terminates both runs.
    golden:
        A previously computed golden result to reuse (it is re-run otherwise).
    equivalence_channels:
        Restrict the equivalence check to these channels (all by default).
    check_equivalence:
        Skip the trace comparison (useful for pure performance sweeps where
        traces are not recorded).
    """
    if golden is None:
        golden = run_golden(
            netlist,
            max_cycles=max_cycles,
            stop_process=stop_process,
            record_trace=check_equivalence,
        )

    # When no stop process is designated (e.g. free-running synthetic rings),
    # the wire-pipelined run targets the same number of valid firings the
    # golden run performed, which is the natural "same work" stopping point.
    # The cycle budget is widened because the wire-pipelined system needs more
    # cycles than the golden one to perform the same work.
    target_firings = None if stop_process is not None else dict(golden.firings)
    rs_total = 0
    if configuration is not None:
        rs_total = configuration.total_relay_stations(netlist)
    elif rs_counts is not None:
        rs_total = sum(int(count) for count in rs_counts.values())
    pipelined_budget = max(max_cycles, golden.cycles * (3 + rs_total))
    pipelined = run_lid(
        netlist,
        rs_counts=rs_counts,
        configuration=configuration,
        relaxed=relaxed,
        queue_capacity=queue_capacity,
        record_trace=check_equivalence,
        max_cycles=pipelined_budget,
        stop_process=stop_process,
        target_firings=target_firings,
    )

    if check_equivalence:
        equivalence = n_equivalent(
            golden.trace, pipelined.trace, channels=equivalence_channels
        )
    else:
        equivalence = EquivalenceReport(equivalent=True, compared_depth=0)

    return VerificationResult(golden=golden, pipelined=pipelined, equivalence=equivalence)


@dataclass
class ComparisonRow:
    """One Table-1-style row: a configuration evaluated under WP1 and WP2."""

    configuration: RSConfiguration
    golden_cycles: int
    wp1: VerificationResult
    wp2: VerificationResult

    @property
    def wp1_throughput(self) -> float:
        return self.wp1.throughput

    @property
    def wp2_throughput(self) -> float:
        return self.wp2.throughput

    @property
    def wp2_cycles(self) -> int:
        return self.wp2.pipelined.cycles

    @property
    def improvement_percent(self) -> float:
        """WP2 vs WP1 percentage gain, as printed in the table's last column."""
        if self.wp1_throughput == 0:
            return 0.0
        return 100.0 * (self.wp2_throughput - self.wp1_throughput) / self.wp1_throughput


def compare_wrappers(
    netlist: Netlist,
    configuration: RSConfiguration,
    stop_process: Optional[str] = None,
    golden: Optional[GoldenResult] = None,
    max_cycles: int = 5_000_000,
    check_equivalence: bool = True,
) -> ComparisonRow:
    """Evaluate one configuration under both wrappers (one table row)."""
    if golden is None:
        golden = run_golden(
            netlist,
            max_cycles=max_cycles,
            stop_process=stop_process,
            record_trace=check_equivalence,
        )
    wp1 = verify_configuration(
        netlist,
        configuration=configuration,
        relaxed=False,
        stop_process=stop_process,
        golden=golden,
        max_cycles=max_cycles,
        check_equivalence=check_equivalence,
    )
    wp2 = verify_configuration(
        netlist,
        configuration=configuration,
        relaxed=True,
        stop_process=stop_process,
        golden=golden,
        max_cycles=max_cycles,
        check_equivalence=check_equivalence,
    )
    return ComparisonRow(
        configuration=configuration,
        golden_cycles=golden.cycles,
        wp1=wp1,
        wp2=wp2,
    )
