"""Wire delay model and relay-station budgeting.

The methodology motivation of the paper is that in deep-submicron SoCs the
delay of a long global wire exceeds the clock period, so the wire has to be
pipelined — the number of relay stations on a link is dictated by physical
length and the target clock, not by the architect.  This module provides a
compact, well-documented first-order model:

* buffered global wires have a delay that grows linearly with length (optimal
  repeater insertion makes the delay linear rather than quadratic);
* a link of length ``L`` at clock period ``T`` needs
  ``ceil(delay(L) / T) - 1`` relay stations (one register every clock period
  of flight time).

Numbers default to values representative of a 130 nm technology (the node
used in the paper's synthesis experiments) but every parameter is explicit so
experiments can sweep them.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Iterable, Mapping


@dataclass(frozen=True)
class WireModel:
    """First-order delay model for repeated global wires.

    Attributes
    ----------
    delay_per_mm_ps:
        Signal propagation delay per millimetre of optimally repeated wire,
        in picoseconds.  ~100-200 ps/mm is representative of 130 nm metal.
    fixed_overhead_ps:
        Launch + capture overhead added once per wire (flop clk-to-q, setup).
    """

    delay_per_mm_ps: float = 150.0
    fixed_overhead_ps: float = 50.0

    def delay_ps(self, length_mm: float) -> float:
        """Total wire delay in picoseconds for a wire of *length_mm*."""
        if length_mm < 0:
            raise ValueError("wire length must be non-negative")
        if length_mm == 0:
            return 0.0
        return self.fixed_overhead_ps + self.delay_per_mm_ps * length_mm

    def max_unpipelined_length_mm(self, clock_period_ps: float) -> float:
        """Longest wire that still fits in one clock period."""
        if clock_period_ps <= self.fixed_overhead_ps:
            return 0.0
        return (clock_period_ps - self.fixed_overhead_ps) / self.delay_per_mm_ps

    def relay_stations_needed(self, length_mm: float, clock_period_ps: float) -> int:
        """Minimum number of relay stations for a wire of *length_mm*.

        A wire whose delay fits within one clock period needs none; otherwise
        one relay station is needed for every additional clock period of
        flight time.
        """
        if clock_period_ps <= 0:
            raise ValueError("clock period must be positive")
        delay = self.delay_ps(length_mm)
        if delay <= clock_period_ps:
            return 0
        return int(math.ceil(delay / clock_period_ps)) - 1


@dataclass(frozen=True)
class ClockPlan:
    """A target clock frequency expressed both ways for convenience."""

    period_ps: float

    @classmethod
    def from_frequency_ghz(cls, frequency_ghz: float) -> "ClockPlan":
        if frequency_ghz <= 0:
            raise ValueError("frequency must be positive")
        return cls(period_ps=1000.0 / frequency_ghz)

    @property
    def frequency_ghz(self) -> float:
        return 1000.0 / self.period_ps


def relay_stations_for_lengths(
    lengths_mm: Mapping[str, float],
    clock: ClockPlan,
    wire_model: WireModel | None = None,
) -> Dict[str, int]:
    """Relay stations needed per link given physical link lengths.

    This is the methodology's entry point: the floorplan fixes the lengths,
    the clock target fixes the budget, and the result is the minimum
    relay-station count per link that the latency-insensitive system must
    tolerate.
    """
    model = wire_model if wire_model is not None else WireModel()
    return {
        link: model.relay_stations_needed(length, clock.period_ps)
        for link, length in lengths_mm.items()
    }


def clock_scaling_sweep(
    lengths_mm: Mapping[str, float],
    frequencies_ghz: Iterable[float],
    wire_model: WireModel | None = None,
) -> Dict[float, Dict[str, int]]:
    """Relay-station requirements across a sweep of clock frequencies.

    Useful to show when each link of the Figure 1 processor starts requiring
    one, two, ... relay stations as the clock is pushed up.
    """
    model = wire_model if wire_model is not None else WireModel()
    sweep: Dict[float, Dict[str, int]] = {}
    for frequency in frequencies_ghz:
        clock = ClockPlan.from_frequency_ghz(frequency)
        sweep[frequency] = relay_stations_for_lengths(lengths_mm, clock, model)
    return sweep
