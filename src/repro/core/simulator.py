"""Cycle-accurate simulator of the wire-pipelined (latency-insensitive) system.

The simulator takes a :class:`~repro.core.netlist.Netlist`, a per-channel
relay-station count and a wrapper flavour (WP1 strict / WP2 relaxed) and runs
the resulting latency-insensitive system:

* every process is enclosed in a shell with one bounded FIFO per input port;
* every channel is a chain of relay stations ending in the destination FIFO;
* all back-pressure (*stop*) is computed from occupancies registered at the
  beginning of the cycle, so no combinational loops can arise and no token can
  ever be dropped (see DESIGN.md for the capacity argument);
* a shell that cannot fire emits τ on all of its output channels.

The run terminates when a designated process reports completion (or after a
target number of valid firings), and the result carries everything the
experiments need: cycle count, per-process firings, throughput, recorded
traces and per-shell stall statistics.

:class:`LidSimulator` is a thin facade over the layered engine in
:mod:`repro.engine` (see DESIGN.md): elaboration compiles the netlist +
configuration into a flat model, a selectable kernel executes it
(``kernel="fast"`` is the default array-based hot path, ``"compiled"`` the
codegen-specialized one, ``"reference"`` the original object-based
machinery; the ``REPRO_KERNEL`` environment variable overrides the
default), and instrumentation passes opt in to traces, shell statistics and
occupancy tracking.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Mapping, Optional

from ..engine.elaboration import Elaborator, resolve_rs_counts
from ..engine.instrumentation import InstrumentSet
from ..engine.kernel import RunControls, make_kernel, resolve_kernel_name
from ..engine.reference import ChannelPipeline, ReferenceKernel
from ..engine.result import LidResult
from .config import RSConfiguration
from .netlist import Netlist
from .relay_station import RelayStation
from .shell import DEFAULT_QUEUE_CAPACITY

__all__ = ["ChannelPipeline", "LidResult", "LidSimulator", "run_lid"]


class LidSimulator:
    """Builds and runs the latency-insensitive version of a netlist."""

    def __init__(
        self,
        netlist: Netlist,
        rs_counts: Optional[Mapping[str, int]] = None,
        configuration: Optional[RSConfiguration] = None,
        relaxed: bool = False,
        queue_capacity: int = DEFAULT_QUEUE_CAPACITY,
        rs_capacity: int = RelayStation.RS_CAPACITY,
        record_trace: bool = True,
        kernel: Optional[str] = None,
        instruments: Optional[InstrumentSet] = None,
    ) -> None:
        """Create a simulator instance.

        Exactly one of *rs_counts* (per-channel counts) or *configuration*
        (per-link :class:`RSConfiguration`) may be given; omitting both means
        zero relay stations everywhere.

        *kernel* selects the execution engine (``"fast"``, ``"compiled"`` or
        ``"reference"``; ``None`` consults the ``REPRO_KERNEL`` environment
        variable, then :data:`repro.engine.DEFAULT_KERNEL`).  *instruments*
        selects the observation passes; the default keeps the historical
        always-on behaviour (stats + occupancy, trace per *record_trace*).
        """
        self.netlist = netlist
        self.rs_counts, self.configuration_label = resolve_rs_counts(
            netlist, rs_counts=rs_counts, configuration=configuration
        )
        self.relaxed = relaxed
        self.queue_capacity = queue_capacity
        self.rs_capacity = rs_capacity
        self.record_trace = record_trace
        self.kernel_name = resolve_kernel_name(kernel)
        self.instruments = (
            instruments
            if instruments is not None
            else InstrumentSet(trace=record_trace, shell_stats=True, occupancy=True)
        )
        self.model = Elaborator(netlist).bind(
            rs_counts=self.rs_counts,
            relaxed=relaxed,
            queue_capacity=queue_capacity,
            rs_capacity=rs_capacity,
            label=self.configuration_label,
        )
        self._kernel = make_kernel(self.model, self.kernel_name)
        # The object-based runtime view (shells, channel pipelines) only
        # exists under the reference kernel; the fast kernel keeps its run
        # state in flat arrays private to each run.
        if isinstance(self._kernel, ReferenceKernel):
            self.shells = self._kernel.shells
            self.pipelines = self._kernel.pipelines
        else:
            self.shells = {}
            self.pipelines = {}

    @property
    def kernel(self):
        """The kernel instance executing this simulator's model."""
        return self._kernel

    def reset(self) -> None:
        """Reset processes (and, under the reference kernel, shells and RS)."""
        self._kernel.reset()

    # -- simulation ---------------------------------------------------------------
    def run(
        self,
        max_cycles: int = 5_000_000,
        stop_process: Optional[str] = None,
        target_firings: Optional[Mapping[str, int]] = None,
        extra_cycles: int = 0,
        deadlock_limit: int = 10_000,
        on_cycle: Optional[Callable[[int, Dict[str, bool]], None]] = None,
        horizon: Optional[int] = None,
        steady_state: Optional[bool] = None,
        steady_state_window: Optional[int] = None,
    ) -> LidResult:
        """Run the latency-insensitive system.

        Parameters
        ----------
        max_cycles:
            Hard bound on simulated cycles (a :class:`SimulationError` is
            raised if it is hit before the stop condition).
        stop_process:
            Process whose ``is_done()`` terminates the run.  When omitted the
            first process reporting done stops the run, unless
            *target_firings* is given.
        target_firings:
            Alternative stop condition: mapping ``process -> firings``; the
            run stops once every listed process has completed at least that
            many valid firings.
        extra_cycles:
            Cycles simulated after the stop condition (drain window).
        deadlock_limit:
            Raise :class:`DeadlockError` after this many consecutive cycles
            with no firing anywhere in the system.
        on_cycle:
            Optional observer called as ``on_cycle(cycle, fired_map)``.
        horizon:
            Run exactly this many cycles unless a stop condition fires
            earlier; reaching the horizon is a normal halt, not a timeout.
        steady_state:
            Steady-state period detection switch (None consults the
            ``REPRO_STEADY_STATE`` environment variable, then the default).
        steady_state_window:
            Cycles to search for a state recurrence before disarming.
        """
        controls = RunControls(
            max_cycles=max_cycles,
            stop_process=stop_process,
            target_firings=target_firings,
            extra_cycles=extra_cycles,
            deadlock_limit=deadlock_limit,
            on_cycle=on_cycle,
            horizon=horizon,
            steady_state=steady_state,
            steady_state_window=steady_state_window,
        )
        return self._kernel.run(controls, self.instruments)


def run_lid(
    netlist: Netlist,
    rs_counts: Optional[Mapping[str, int]] = None,
    configuration: Optional[RSConfiguration] = None,
    relaxed: bool = False,
    queue_capacity: int = DEFAULT_QUEUE_CAPACITY,
    record_trace: bool = True,
    kernel: Optional[str] = None,
    **run_kwargs: Any,
) -> LidResult:
    """Build a :class:`LidSimulator` and run it in one call."""
    simulator = LidSimulator(
        netlist,
        rs_counts=rs_counts,
        configuration=configuration,
        relaxed=relaxed,
        queue_capacity=queue_capacity,
        record_trace=record_trace,
        kernel=kernel,
    )
    return simulator.run(**run_kwargs)
