"""Cycle-accurate simulator of the wire-pipelined (latency-insensitive) system.

The simulator takes a :class:`~repro.core.netlist.Netlist`, a per-channel
relay-station count and a wrapper flavour (WP1 strict / WP2 relaxed) and runs
the resulting latency-insensitive system:

* every process is enclosed in a shell with one bounded FIFO per input port;
* every channel is a chain of relay stations ending in the destination FIFO;
* all back-pressure (*stop*) is computed from occupancies registered at the
  beginning of the cycle, so no combinational loops can arise and no token can
  ever be dropped (see DESIGN.md for the capacity argument);
* a shell that cannot fire emits τ on all of its output channels.

The run terminates when a designated process reports completion (or after a
target number of valid firings), and the result carries everything the
experiments need: cycle count, per-process firings, throughput, recorded
traces and per-shell stall statistics.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from .channel import Channel
from .config import RSConfiguration
from .exceptions import DeadlockError, SimulationError
from .netlist import Netlist
from .relay_station import RelayStation, TokenQueue, build_relay_chain
from .shell import DEFAULT_QUEUE_CAPACITY, Shell, ShellStats, make_shell
from .tokens import Token, VOID
from .traces import SystemTrace


@dataclass
class ChannelPipeline:
    """Runtime image of one channel: its relay stations and destination FIFO."""

    channel: Channel
    relay_stations: List[RelayStation]
    dest_queue: TokenQueue

    @property
    def elements(self) -> List[TokenQueue]:
        """Storage elements ordered from source to destination."""
        return [*self.relay_stations, self.dest_queue]

    @property
    def first_element(self) -> TokenQueue:
        """The element a newly produced token enters (defines source back-pressure)."""
        return self.relay_stations[0] if self.relay_stations else self.dest_queue

    def in_flight(self) -> int:
        """Tokens currently stored in the relay stations (not yet delivered)."""
        return sum(rs.occupancy for rs in self.relay_stations)


@dataclass
class LidResult:
    """Outcome of a latency-insensitive simulation run."""

    cycles: int
    firings: Dict[str, int]
    trace: SystemTrace
    halted: bool
    wrapper_kind: str
    configuration_label: str
    rs_counts: Dict[str, int]
    shell_stats: Dict[str, ShellStats] = field(default_factory=dict)
    max_queue_occupancy: Dict[str, int] = field(default_factory=dict)

    def throughput(self, process: Optional[str] = None) -> float:
        """Valid firings per cycle for one process (or the system minimum)."""
        if self.cycles == 0:
            return 0.0
        if process is not None:
            return self.firings[process] / self.cycles
        return min(count for count in self.firings.values()) / self.cycles

    def total_relay_stations(self) -> int:
        """Number of relay stations instantiated for this run."""
        return sum(self.rs_counts.values())


class LidSimulator:
    """Builds and runs the latency-insensitive version of a netlist."""

    def __init__(
        self,
        netlist: Netlist,
        rs_counts: Optional[Mapping[str, int]] = None,
        configuration: Optional[RSConfiguration] = None,
        relaxed: bool = False,
        queue_capacity: int = DEFAULT_QUEUE_CAPACITY,
        rs_capacity: int = RelayStation.RS_CAPACITY,
        record_trace: bool = True,
    ) -> None:
        """Create a simulator instance.

        Exactly one of *rs_counts* (per-channel counts) or *configuration*
        (per-link :class:`RSConfiguration`) may be given; omitting both means
        zero relay stations everywhere.
        """
        if rs_counts is not None and configuration is not None:
            raise SimulationError("pass either rs_counts or configuration, not both")
        self.netlist = netlist
        if configuration is not None:
            self.rs_counts = configuration.per_channel(netlist)
            self.configuration_label = configuration.label
        else:
            counts = dict(rs_counts or {})
            unknown = [name for name in counts if name not in netlist.channels]
            if unknown:
                raise SimulationError(
                    f"rs_counts references unknown channels {sorted(unknown)}"
                )
            self.rs_counts = {
                name: int(counts.get(name, 0)) for name in netlist.channels
            }
            self.configuration_label = "per-channel"
        negative = [name for name, count in self.rs_counts.items() if count < 0]
        if negative:
            raise SimulationError(f"negative relay-station counts for {negative}")

        self.relaxed = relaxed
        self.queue_capacity = queue_capacity
        self.rs_capacity = rs_capacity
        self.record_trace = record_trace

        self.shells: Dict[str, Shell] = {}
        self.pipelines: Dict[str, ChannelPipeline] = {}
        self._build()

    # -- construction ---------------------------------------------------------
    def _build(self) -> None:
        netlist = self.netlist
        self.shells = {
            name: make_shell(process, self.relaxed, queue_capacity=self.queue_capacity)
            for name, process in netlist.processes.items()
        }
        self.pipelines = {}
        for name, chan in netlist.channels.items():
            dest_queue = self.shells[chan.dest].queues[chan.dest_port]
            relay_stations = build_relay_chain(
                name, self.rs_counts.get(name, 0), capacity=self.rs_capacity
            )
            self.pipelines[name] = ChannelPipeline(
                channel=chan, relay_stations=relay_stations, dest_queue=dest_queue
            )
        # Output channel lists per process, resolved once.
        self._outputs_of: Dict[str, List[ChannelPipeline]] = {
            name: [
                self.pipelines[chan.name]
                for chans in netlist.output_channels(name).values()
                for chan in chans
            ]
            for name in netlist.processes
        }
        self._output_port_map: Dict[str, Dict[str, List[ChannelPipeline]]] = {
            name: {
                port: [self.pipelines[chan.name] for chan in chans]
                for port, chans in netlist.output_channels(name).items()
            }
            for name in netlist.processes
        }

    def reset(self) -> None:
        """Reset shells, relay stations and re-inject the initial tokens."""
        for shell in self.shells.values():
            shell.reset()
        for pipeline in self.pipelines.values():
            for rs in pipeline.relay_stations:
                rs.reset()
        # Initial channel values live in the destination FIFOs with tag 0,
        # mirroring the reset value of the producer's output register.
        for pipeline in self.pipelines.values():
            pipeline.dest_queue.push(Token(value=pipeline.channel.initial, tag=0))

    # -- simulation ---------------------------------------------------------------
    def run(
        self,
        max_cycles: int = 5_000_000,
        stop_process: Optional[str] = None,
        target_firings: Optional[Mapping[str, int]] = None,
        extra_cycles: int = 0,
        deadlock_limit: int = 10_000,
        on_cycle: Optional[Callable[[int, Dict[str, bool]], None]] = None,
    ) -> LidResult:
        """Run the latency-insensitive system.

        Parameters
        ----------
        max_cycles:
            Hard bound on simulated cycles (a :class:`SimulationError` is
            raised if it is hit before the stop condition).
        stop_process:
            Process whose ``is_done()`` terminates the run.  When omitted the
            first process reporting done stops the run, unless
            *target_firings* is given.
        target_firings:
            Alternative stop condition: mapping ``process -> firings``; the
            run stops once every listed process has completed at least that
            many valid firings.
        extra_cycles:
            Cycles simulated after the stop condition (drain window).
        deadlock_limit:
            Raise :class:`DeadlockError` after this many consecutive cycles
            with no firing anywhere in the system.
        on_cycle:
            Optional observer called as ``on_cycle(cycle, fired_map)``.
        """
        self.reset()
        netlist = self.netlist
        if stop_process is not None and stop_process not in netlist.processes:
            raise SimulationError(f"unknown stop process {stop_process!r}")
        if target_firings is not None:
            unknown = [name for name in target_firings if name not in netlist.processes]
            if unknown:
                raise SimulationError(
                    f"target_firings references unknown processes {sorted(unknown)}"
                )

        trace = SystemTrace(netlist.channels)
        cycles = 0
        idle_streak = 0
        halted = False
        drain_remaining: Optional[int] = None

        all_queues: List[TokenQueue] = []
        for shell in self.shells.values():
            all_queues.extend(shell.queues.values())
        for pipeline in self.pipelines.values():
            all_queues.extend(pipeline.relay_stations)

        while cycles < max_cycles:
            # Phase 1: latch occupancies (registered back-pressure).
            for queue in all_queues:
                queue.latch()
            for shell in self.shells.values():
                shell.begin_cycle()

            # Phase 2: relay-station forwarding decisions (source -> dest order
            # per channel; decisions only use start-of-cycle state).
            forwards: List[Tuple[ChannelPipeline, int]] = []
            for pipeline in self.pipelines.values():
                elements = pipeline.elements
                for index, rs in enumerate(pipeline.relay_stations):
                    downstream = elements[index + 1]
                    if rs.has_data() and not downstream.stop():
                        forwards.append((pipeline, index))

            # Phase 3: shell firing decisions and execution.
            fired: Dict[str, bool] = {}
            emissions: Dict[str, Any] = {}
            launches: List[Tuple[ChannelPipeline, Token]] = []
            for name, shell in self.shells.items():
                outputs_blocked = any(
                    pipeline.first_element.stop() for pipeline in self._outputs_of[name]
                )
                plan = shell.plan(outputs_blocked)
                produced = shell.execute(plan)
                fired[name] = produced is not None
                port_map = self._output_port_map[name]
                if produced is None:
                    for pipelines in port_map.values():
                        for pipeline in pipelines:
                            emissions[pipeline.channel.name] = VOID
                else:
                    for port, token in produced.items():
                        for pipeline in port_map.get(port, []):
                            emissions[pipeline.channel.name] = token
                            launches.append((pipeline, token))

            # Phase 4: commit token movement.  Relay-station moves are applied
            # from the destination side backwards so a chain never transiently
            # exceeds its capacity; producer launches are applied last.
            for pipeline, index in sorted(
                forwards, key=lambda item: item[1], reverse=True
            ):
                elements = pipeline.elements
                token = pipeline.relay_stations[index].pop()
                elements[index + 1].push(token)
            for pipeline, token in launches:
                pipeline.first_element.push(token)

            if self.record_trace:
                trace.record_cycle(emissions)
            cycles += 1

            if on_cycle is not None:
                on_cycle(cycles, fired)

            if any(fired.values()):
                idle_streak = 0
            else:
                idle_streak += 1
                if idle_streak >= deadlock_limit:
                    raise DeadlockError(
                        f"no process fired for {idle_streak} consecutive cycles "
                        f"(cycle {cycles}, configuration {self.configuration_label!r})"
                    )

            if drain_remaining is None and self._stop_condition(
                stop_process, target_firings
            ):
                halted = True
                drain_remaining = extra_cycles
            if drain_remaining is not None:
                if drain_remaining == 0:
                    break
                drain_remaining -= 1
        else:
            raise SimulationError(
                f"simulation did not terminate within {max_cycles} cycles "
                f"(configuration {self.configuration_label!r})"
            )

        firings = {
            name: process.firings for name, process in netlist.processes.items()
        }
        shell_stats = {name: shell.stats for name, shell in self.shells.items()}
        max_occupancy = {queue.name: queue.max_occupancy for queue in all_queues}
        return LidResult(
            cycles=cycles,
            firings=firings,
            trace=trace,
            halted=halted,
            wrapper_kind="WP2" if self.relaxed else "WP1",
            configuration_label=self.configuration_label,
            rs_counts=dict(self.rs_counts),
            shell_stats=shell_stats,
            max_queue_occupancy=max_occupancy,
        )

    def _stop_condition(
        self,
        stop_process: Optional[str],
        target_firings: Optional[Mapping[str, int]],
    ) -> bool:
        if target_firings is not None:
            return all(
                self.netlist.process(name).firings >= count
                for name, count in target_firings.items()
            )
        if stop_process is not None:
            return self.netlist.process(stop_process).is_done()
        return any(process.is_done() for process in self.netlist)


def run_lid(
    netlist: Netlist,
    rs_counts: Optional[Mapping[str, int]] = None,
    configuration: Optional[RSConfiguration] = None,
    relaxed: bool = False,
    queue_capacity: int = DEFAULT_QUEUE_CAPACITY,
    record_trace: bool = True,
    **run_kwargs: Any,
) -> LidResult:
    """Build a :class:`LidSimulator` and run it in one call."""
    simulator = LidSimulator(
        netlist,
        rs_counts=rs_counts,
        configuration=configuration,
        relaxed=relaxed,
        queue_capacity=queue_capacity,
        record_trace=record_trace,
    )
    return simulator.run(**run_kwargs)
