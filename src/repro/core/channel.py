"""Point-to-point channels between processes.

A :class:`Channel` is a directed, point-to-point connection from one output
port of a source process to one input port of a destination process.  In the
golden system the channel is a plain registered wire: the value produced by
the source at cycle *t* is consumed by the destination at cycle *t + 1*.  In
the wire-pipelined system the channel additionally hosts ``n`` relay stations
(set per experiment by an :class:`~repro.core.config.RSConfiguration`).

Channels carry an *initial value*: the reset content of the output register of
the source block, consumed by the destination's very first firing.  The CPU
case study uses "bubble" messages as initial values so that reset behaves like
an empty pipeline.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional

from .exceptions import NetlistError


@dataclass(frozen=True)
class Channel:
    """A directed point-to-point channel.

    Attributes
    ----------
    name:
        Unique channel name (e.g. ``"rf_alu"``).
    source, source_port:
        Producing process name and output port.
    dest, dest_port:
        Consuming process name and input port.
    initial:
        The reset value present on the channel before the first firing of the
        source.  Consumed by firing 0 of the destination.
    width:
        Nominal bit width of the physical wire bundle; used only by the area
        and timing models, not by the simulators.
    link:
        Optional label of the physical block-to-block link this channel
        belongs to (e.g. ``"CU-IC"``).  Relay-station configurations may be
        expressed per link instead of per channel; when ``link`` is empty the
        channel name itself is used.
    """

    name: str
    source: str
    source_port: str
    dest: str
    dest_port: str
    initial: Any = None
    width: int = 32
    link: str = ""

    def __post_init__(self) -> None:
        if not self.name:
            raise NetlistError("channel name must be a non-empty string")
        if not self.source or not self.dest:
            raise NetlistError(f"channel {self.name!r} must have a source and a dest")
        if self.width <= 0:
            raise NetlistError(f"channel {self.name!r} width must be positive")

    @property
    def link_name(self) -> str:
        """The physical link label, defaulting to the channel name."""
        return self.link or self.name

    @property
    def endpoints(self) -> tuple:
        """(source process, destination process) pair."""
        return (self.source, self.dest)

    def describe(self) -> str:
        """Human-readable one-line description."""
        return (
            f"{self.name}: {self.source}.{self.source_port} -> "
            f"{self.dest}.{self.dest_port} (link {self.link_name}, {self.width} bits)"
        )


def channel(
    name: str,
    source: str,
    dest: str,
    source_port: Optional[str] = None,
    dest_port: Optional[str] = None,
    initial: Any = None,
    width: int = 32,
    link: str = "",
) -> Channel:
    """Convenience constructor defaulting port names to the channel name.

    Most blocks in the case study name their ports after the channel they are
    attached to, which keeps netlist construction terse:

    >>> ch = channel("rf_alu", "RF", "ALU")
    >>> (ch.source_port, ch.dest_port)
    ('rf_alu', 'rf_alu')
    """
    return Channel(
        name=name,
        source=source,
        source_port=source_port if source_port is not None else name,
        dest=dest,
        dest_port=dest_port if dest_port is not None else name,
        initial=initial,
        width=width,
        link=link,
    )
