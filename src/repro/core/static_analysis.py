"""Static throughput analysis of wire-pipelined netlists.

Section 2 of the paper states the key structural fact: a netlist loop
containing ``m`` processes and ``n`` relay stations sustains a throughput of
at most ``m / (m + n)`` under the strict (WP1) wrapper, and the worst loop
dominates the whole system.  This module computes that bound in two ways:

* by explicit enumeration of the simple cycles of the process graph
  (exact, fine for block-level netlists with a handful of IPs);
* by a maximum cycle mean / maximum cycle ratio computation (Karp's algorithm
  and a Lawler-style binary search with Bellman-Ford feasibility), which
  scales to large graphs and is cross-checked against the enumeration in the
  property tests.

It also produces the "netlist loops" report of Figure 1: every loop, its
member processes, its channels and its per-configuration throughput bound.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from fractions import Fraction
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

import networkx as nx

from .config import RSConfiguration
from .exceptions import ConfigurationError
from .netlist import Netlist


@dataclass(frozen=True)
class Loop:
    """A simple cycle of the process graph with its relay-station load."""

    processes: Tuple[str, ...]
    channels: Tuple[str, ...]
    relay_stations: int

    @property
    def length(self) -> int:
        """Number of processes (= number of channels) in the loop."""
        return len(self.processes)

    @property
    def throughput_bound(self) -> Fraction:
        """The paper's bound m / (m + n) for this loop."""
        m = self.length
        n = self.relay_stations
        return Fraction(m, m + n)

    def describe(self) -> str:
        """Readable one-liner, e.g. ``CU -> ALU -> CU [1 RS, Th <= 2/3]``."""
        path = " -> ".join([*self.processes, self.processes[0]])
        bound = self.throughput_bound
        return f"{path} [{self.relay_stations} RS, Th <= {bound.numerator}/{bound.denominator}]"


@dataclass
class ThroughputReport:
    """Result of the static analysis for one relay-station configuration."""

    loops: List[Loop]
    bound: Fraction
    critical_loops: List[Loop] = field(default_factory=list)

    @property
    def bound_float(self) -> float:
        """The system throughput bound as a float (1.0 when loop-free)."""
        return float(self.bound)

    def describe(self) -> str:
        """Multi-line report listing every loop and flagging the critical ones."""
        lines = [f"system throughput bound: {float(self.bound):.4f}"]
        critical = {loop.channels for loop in self.critical_loops}
        for loop in sorted(self.loops, key=lambda item: (item.throughput_bound, item.length)):
            marker = "*" if loop.channels in critical else " "
            lines.append(f" {marker} {loop.describe()}")
        return "\n".join(lines)


def _resolve_rs_counts(
    netlist: Netlist,
    rs_counts: Optional[Mapping[str, int]] = None,
    configuration: Optional[RSConfiguration] = None,
) -> Dict[str, int]:
    if rs_counts is not None and configuration is not None:
        raise ConfigurationError("pass either rs_counts or configuration, not both")
    if configuration is not None:
        return configuration.per_channel(netlist)
    counts = dict(rs_counts or {})
    return {name: int(counts.get(name, 0)) for name in netlist.channels}


def enumerate_loops(
    netlist: Netlist,
    rs_counts: Optional[Mapping[str, int]] = None,
    configuration: Optional[RSConfiguration] = None,
) -> List[Loop]:
    """Enumerate every simple cycle of the process graph.

    Parallel channels between the same ordered pair of processes are collapsed
    to the *minimum* relay-station count among them when computing a loop's
    load: the loop constraint is set by the fastest wire closing it, and under
    a per-link configuration all parallel channels carry the same count
    anyway.
    """
    counts = _resolve_rs_counts(netlist, rs_counts, configuration)

    # Collapse parallel channels: keep, per (src, dst), the channel with the
    # fewest relay stations.
    best_edge: Dict[Tuple[str, str], Tuple[str, int]] = {}
    for name, chan in netlist.channels.items():
        key = (chan.source, chan.dest)
        count = counts[name]
        if key not in best_edge or count < best_edge[key][1]:
            best_edge[key] = (name, count)

    graph = nx.DiGraph()
    graph.add_nodes_from(netlist.processes)
    for (src, dst), (name, count) in best_edge.items():
        graph.add_edge(src, dst, channel=name, rs=count)

    loops: List[Loop] = []
    for cycle in nx.simple_cycles(graph):
        channel_names: List[str] = []
        rs_total = 0
        for position, node in enumerate(cycle):
            succ = cycle[(position + 1) % len(cycle)]
            data = graph.edges[node, succ]
            channel_names.append(data["channel"])
            rs_total += data["rs"]
        loops.append(
            Loop(
                processes=tuple(cycle),
                channels=tuple(channel_names),
                relay_stations=rs_total,
            )
        )
    return loops


def throughput_bound(
    netlist: Netlist,
    rs_counts: Optional[Mapping[str, int]] = None,
    configuration: Optional[RSConfiguration] = None,
) -> ThroughputReport:
    """Compute the WP1 throughput bound min over loops of m / (m + n)."""
    loops = enumerate_loops(netlist, rs_counts, configuration)
    if not loops:
        return ThroughputReport(loops=[], bound=Fraction(1, 1), critical_loops=[])
    bound = min(loop.throughput_bound for loop in loops)
    critical = [loop for loop in loops if loop.throughput_bound == bound]
    return ThroughputReport(loops=loops, bound=bound, critical_loops=critical)


# ---------------------------------------------------------------------------
# Maximum cycle mean / maximum cycle ratio
# ---------------------------------------------------------------------------

def maximum_cycle_mean(graph: nx.DiGraph, weight: str = "weight") -> float:
    """Karp's maximum cycle mean of a weighted digraph.

    Returns ``-inf`` for acyclic graphs.  Runs Karp's algorithm independently
    on every strongly connected component so disconnected or dag-like parts do
    not disturb the result.
    """
    best = -math.inf
    for component in nx.strongly_connected_components(graph):
        nodes = list(component)
        if len(nodes) == 1:
            node = nodes[0]
            if not graph.has_edge(node, node):
                continue
        sub = graph.subgraph(nodes)
        best = max(best, _karp_component(sub, weight))
    return best


def _karp_component(graph: nx.DiGraph, weight: str) -> float:
    nodes = list(graph.nodes)
    index = {node: position for position, node in enumerate(nodes)}
    count = len(nodes)
    # dist[k][v] = maximum weight of a k-edge walk ending at v (from any start).
    dist = [[-math.inf] * count for _ in range(count + 1)]
    for position in range(count):
        dist[0][position] = 0.0
    for k in range(1, count + 1):
        for u, v, data in graph.edges(data=True):
            iu, iv = index[u], index[v]
            if dist[k - 1][iu] == -math.inf:
                continue
            candidate = dist[k - 1][iu] + float(data.get(weight, 0.0))
            if candidate > dist[k][iv]:
                dist[k][iv] = candidate
    best = -math.inf
    for v in range(count):
        if dist[count][v] == -math.inf:
            continue
        worst: float = math.inf
        for k in range(count):
            if dist[k][v] == -math.inf:
                ratio = math.inf
            else:
                ratio = (dist[count][v] - dist[k][v]) / (count - k)
            worst = min(worst, ratio)
        best = max(best, worst)
    return best


def maximum_cycle_ratio(
    graph: nx.DiGraph,
    cost: str = "cost",
    time: str = "time",
    tolerance: float = 1e-9,
) -> float:
    """Maximum over cycles of (sum of *cost*) / (sum of *time*).

    Uses a Lawler-style binary search: a ratio λ is feasible (some cycle has a
    larger ratio) iff the graph with edge weights ``cost − λ·time`` contains a
    positive cycle.  Edge *time* must be strictly positive on every edge.
    Returns ``-inf`` for acyclic graphs.
    """
    if not any(True for _ in nx.simple_cycles(graph)):
        return -math.inf
    for _, _, data in graph.edges(data=True):
        if float(data.get(time, 0.0)) <= 0:
            raise ConfigurationError("maximum_cycle_ratio requires positive edge times")

    low = min(
        float(data.get(cost, 0.0)) / float(data.get(time, 1.0))
        for _, _, data in graph.edges(data=True)
    )
    high = max(
        float(data.get(cost, 0.0)) / float(data.get(time, 1.0))
        for _, _, data in graph.edges(data=True)
    )
    low -= 1.0
    high += 1.0

    def has_positive_cycle(lam: float) -> bool:
        weighted = nx.DiGraph()
        weighted.add_nodes_from(graph.nodes)
        for u, v, data in graph.edges(data=True):
            weighted.add_edge(
                u, v, weight=float(data.get(cost, 0.0)) - lam * float(data.get(time, 1.0))
            )
        return _has_positive_cycle(weighted)

    for _ in range(200):
        if high - low <= tolerance:
            break
        mid = (low + high) / 2.0
        if has_positive_cycle(mid):
            low = mid
        else:
            high = mid
    return (low + high) / 2.0


def _has_positive_cycle(graph: nx.DiGraph, weight: str = "weight") -> bool:
    """Bellman-Ford based detection of a cycle with positive total weight."""
    nodes = list(graph.nodes)
    if not nodes:
        return False
    dist = {node: 0.0 for node in nodes}
    for _ in range(len(nodes)):
        changed = False
        for u, v, data in graph.edges(data=True):
            candidate = dist[u] + float(data.get(weight, 0.0))
            if candidate > dist[v] + 1e-15:
                dist[v] = candidate
                changed = True
        if not changed:
            return False
    return True


def throughput_bound_mcm(
    netlist: Netlist,
    rs_counts: Optional[Mapping[str, int]] = None,
    configuration: Optional[RSConfiguration] = None,
) -> float:
    """Throughput bound via maximum cycle ratio (no loop enumeration).

    The bound is ``1 / (1 + r*)`` where ``r*`` is the maximum over cycles of
    (total relay stations) / (number of processes).  Returns 1.0 for acyclic
    netlists.  Agrees with :func:`throughput_bound` (property-tested).
    """
    counts = _resolve_rs_counts(netlist, rs_counts, configuration)

    best_edge: Dict[Tuple[str, str], int] = {}
    for name, chan in netlist.channels.items():
        key = (chan.source, chan.dest)
        count = counts[name]
        if key not in best_edge or count < best_edge[key]:
            best_edge[key] = count

    graph = nx.DiGraph()
    graph.add_nodes_from(netlist.processes)
    for (src, dst), count in best_edge.items():
        graph.add_edge(src, dst, cost=float(count), time=1.0)

    ratio = maximum_cycle_ratio(graph)
    if ratio == -math.inf:
        return 1.0
    return 1.0 / (1.0 + max(ratio, 0.0))


def make_link_bound_evaluator(netlist: Netlist):
    """Precompute the loop structure and return a fast per-link bound evaluator.

    The returned callable maps ``{link label -> relay-station count}`` to the
    system throughput bound ``min over loops of m / (m + n)`` as a float.
    Because the loop enumeration is done once, a single evaluation costs only
    a few dictionary lookups, which is what makes exhaustive configuration
    search practical (the optimiser may evaluate tens of thousands of
    assignments).
    """
    loops = enumerate_loops(netlist)
    loop_links: List[Tuple[int, List[str]]] = []
    for loop in loops:
        links = [netlist.channel(name).link_name for name in loop.channels]
        loop_links.append((loop.length, links))

    def evaluate(assignment: Mapping[str, int]) -> float:
        if not loop_links:
            return 1.0
        worst = 1.0
        for length, links in loop_links:
            total = sum(int(assignment.get(link, 0)) for link in links)
            bound = length / (length + total)
            if bound < worst:
                worst = bound
        return worst

    return evaluate


def critical_links(
    netlist: Netlist,
    rs_counts: Optional[Mapping[str, int]] = None,
    configuration: Optional[RSConfiguration] = None,
) -> List[str]:
    """Links that appear in at least one throughput-critical loop."""
    report = throughput_bound(netlist, rs_counts, configuration)
    channels = {name for loop in report.critical_loops for name in loop.channels}
    return sorted({netlist.channel(name).link_name for name in channels})


def per_link_sensitivity(
    netlist: Netlist,
    base: Optional[RSConfiguration] = None,
    extra: int = 1,
) -> Dict[str, Fraction]:
    """Throughput bound obtained by adding *extra* RS to each link in turn.

    This is the static counterpart of Table 1's "Only <link>" and
    "All k and k+1 <link>" rows: it ranks links by how much the loop bound
    degrades when that particular link gets deeper pipelining.
    """
    base_config = base if base is not None else RSConfiguration.ideal()
    sensitivities: Dict[str, Fraction] = {}
    for link in netlist.link_names():
        counts = dict(base_config.per_link(netlist.link_names()))
        counts[link] = counts.get(link, 0) + extra
        config = RSConfiguration.from_mapping(counts, label=f"{base_config.label} + {extra} {link}")
        sensitivities[link] = throughput_bound(netlist, configuration=config).bound
    return sensitivities


# ---------------------------------------------------------------------------
# Graph-shape metrics (topology generality)
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class GraphMetrics:
    """Shape facts of a netlist's process graph, independent of any run.

    The topology generators attach these to every generated netlist, the
    CLI renders them in ``topology describe``, and the engine's eligibility
    reporting uses them to explain *why* a netlist is (in)eligible for a
    given kernel from graph properties rather than from shape names.
    """

    n_processes: int
    n_channels: int
    #: True when the process graph has no directed cycle (no feedback loop).
    is_dag: bool
    #: Sizes of the strongly connected components, largest first.  A chain
    #: is all ones; a ring is a single component covering every process.
    scc_sizes: Tuple[int, ...]
    #: Number of simple cycles of the process graph.
    n_loops: int
    #: Directed diameter when the graph is strongly connected, otherwise the
    #: diameter of the undirected view when weakly connected, else ``None``.
    diameter: Optional[int]
    #: Longest directed path (in channels) when the graph is a DAG.
    longest_path: Optional[int]
    #: Processes with no input / no output channels.
    sources: Tuple[str, ...]
    sinks: Tuple[str, ...]

    def describe(self) -> str:
        """Readable one-liner, e.g. ``12 procs, 17 chans, 3 loops, diam 4``."""
        shape = "dag" if self.is_dag else f"cyclic (largest SCC {self.scc_sizes[0]})"
        parts = [
            f"{self.n_processes} procs",
            f"{self.n_channels} chans",
            shape,
            f"{self.n_loops} loops",
        ]
        if self.diameter is not None:
            parts.append(f"diam {self.diameter}")
        if self.longest_path is not None:
            parts.append(f"depth {self.longest_path}")
        return ", ".join(parts)


def graph_metrics(netlist: Netlist) -> GraphMetrics:
    """Compute the :class:`GraphMetrics` of a netlist's process graph.

    Parallel channels are collapsed for the shape questions (DAG-ness,
    diameter, SCCs are properties of the simple digraph); the channel count
    still reports the physical multigraph.
    """
    graph = nx.DiGraph()
    graph.add_nodes_from(netlist.processes)
    for chan in netlist.channels.values():
        graph.add_edge(chan.source, chan.dest)

    is_dag = nx.is_directed_acyclic_graph(graph)
    scc_sizes = tuple(
        sorted((len(c) for c in nx.strongly_connected_components(graph)), reverse=True)
    )
    n_loops = sum(1 for _ in nx.simple_cycles(graph))

    diameter: Optional[int] = None
    if graph.number_of_nodes() > 0:
        if nx.is_strongly_connected(graph):
            diameter = nx.diameter(graph)
        elif nx.is_weakly_connected(graph):
            diameter = nx.diameter(graph.to_undirected())

    longest_path = nx.dag_longest_path_length(graph) if is_dag else None

    sources = tuple(sorted(n for n in graph if graph.in_degree(n) == 0))
    sinks = tuple(sorted(n for n in graph if graph.out_degree(n) == 0))
    return GraphMetrics(
        n_processes=len(netlist.processes),
        n_channels=len(netlist.channels),
        is_dag=is_dag,
        scc_sizes=scc_sizes,
        n_loops=n_loops,
        diameter=diameter,
        longest_path=longest_path,
        sources=sources,
        sinks=sinks,
    )
