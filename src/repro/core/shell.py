"""Wrappers ("shells") enclosing processes in the latency-insensitive system.

Two wrapper flavours are provided, matching the paper:

* :class:`StrictShell` (**WP1**) — the classical latency-insensitive wrapper:
  the process fires only when *every* input FIFO holds the token with the
  current tag and no output channel is back-pressured; otherwise the process
  is stalled and τ is emitted on every output.

* :class:`RelaxedShell` (**WP2**) — the paper's wrapper with an *oracle*: the
  process fires as soon as the inputs the oracle declares *required* are
  available (and outputs are not back-pressured).  Tokens on non-required
  channels whose tag falls behind the firing counter are discarded ("the
  synchronizer discards all inputs whose tag is smaller than the counter"),
  which both frees FIFO space and keeps the per-channel lag counters
  consistent.

Both shells keep per-cycle statistics (valid firings, stall causes, discarded
tokens) used by the experiment reports.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Mapping, Optional, Tuple

from .exceptions import ProtocolError
from .process import Process
from .relay_station import TokenQueue
from .tokens import Token


#: Default depth of the wrapper input FIFOs.  The paper first reasons with
#: semi-infinite FIFOs and then makes them finite with back-pressure; a depth
#: of a few entries is enough to decouple neighbouring blocks.
DEFAULT_QUEUE_CAPACITY = 4


@dataclass
class FiringPlan:
    """What a shell intends to do this cycle."""

    fire: bool
    #: Ports whose head token will be consumed when firing.
    consume_ports: Tuple[str, ...] = ()
    #: Why the shell stalls (only meaningful when ``fire`` is False).
    stall_reason: str = ""
    #: Ports that were required but had no current-tag token available.
    missing_ports: Tuple[str, ...] = ()


@dataclass
class ShellStats:
    """Per-shell counters accumulated over a simulation run."""

    cycles: int = 0
    firings: int = 0
    stalls_missing_input: int = 0
    stalls_output_blocked: int = 0
    stalls_done: int = 0
    discarded_tokens: int = 0
    discarded_by_port: Dict[str, int] = field(default_factory=dict)
    missing_by_port: Dict[str, int] = field(default_factory=dict)

    @property
    def stalls(self) -> int:
        """Total number of stalled cycles."""
        return self.stalls_missing_input + self.stalls_output_blocked + self.stalls_done

    @property
    def throughput(self) -> float:
        """Valid firings per cycle (the paper's Th for this block)."""
        if self.cycles == 0:
            return 0.0
        return self.firings / self.cycles

    def to_dict(self) -> Dict[str, object]:
        """Canonical (JSON-serializable) dict form; inverse of :meth:`from_dict`."""
        return {
            "cycles": self.cycles,
            "firings": self.firings,
            "stalls_missing_input": self.stalls_missing_input,
            "stalls_output_blocked": self.stalls_output_blocked,
            "stalls_done": self.stalls_done,
            "discarded_tokens": self.discarded_tokens,
            "discarded_by_port": dict(self.discarded_by_port),
            "missing_by_port": dict(self.missing_by_port),
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "ShellStats":
        """Rebuild the counters from their :meth:`to_dict` form."""
        return cls(
            cycles=data["cycles"],
            firings=data["firings"],
            stalls_missing_input=data["stalls_missing_input"],
            stalls_output_blocked=data["stalls_output_blocked"],
            stalls_done=data["stalls_done"],
            discarded_tokens=data["discarded_tokens"],
            discarded_by_port=dict(data["discarded_by_port"]),
            missing_by_port=dict(data["missing_by_port"]),
        )


class Shell:
    """Common machinery of both wrapper flavours.

    Parameters
    ----------
    process:
        The wrapped pearl.
    queue_capacity:
        Depth of each input FIFO.
    """

    #: Set by subclasses; used in reports.
    kind = "base"

    def __init__(self, process: Process, queue_capacity: int = DEFAULT_QUEUE_CAPACITY) -> None:
        self.process = process
        self.queue_capacity = queue_capacity
        self.queues: Dict[str, TokenQueue] = {
            port: TokenQueue(f"{process.name}.{port}", capacity=queue_capacity)
            for port in process.input_ports
        }
        self.stats = ShellStats()

    # -- identity ----------------------------------------------------------------
    @property
    def name(self) -> str:
        """Name of the wrapped process."""
        return self.process.name

    @property
    def current_tag(self) -> int:
        """Tag of the next firing (equals the number of completed firings)."""
        return self.process.firings

    @property
    def output_tag(self) -> int:
        """Tag carried by the tokens produced by the next firing.

        The initial channel value holds tag 0, so the ``k``-th firing of the
        producer emits tokens with tag ``k + 1``.
        """
        return self.process.firings + 1

    # -- lifecycle -----------------------------------------------------------------
    def reset(self) -> None:
        """Reset the process, empty the FIFOs and clear the statistics."""
        self.process.reset()
        for queue in self.queues.values():
            queue.reset()
        self.stats = ShellStats()

    def latch(self) -> None:
        """Latch FIFO occupancies for this cycle's back-pressure computation."""
        for queue in self.queues.values():
            queue.latch()

    def accept(self, port: str, token: Token) -> None:
        """Deliver *token* into the FIFO of *port* (called at cycle commit)."""
        try:
            queue = self.queues[port]
        except KeyError:
            raise ProtocolError(
                f"shell {self.name!r} has no input port {port!r}"
            ) from None
        queue.push(token)

    def input_stop(self, port: str) -> bool:
        """Back-pressure of the FIFO attached to *port* (registered)."""
        return self.queues[port].stop()

    # -- per-cycle hooks -------------------------------------------------------------
    def begin_cycle(self) -> None:
        """Hook executed at the start of every cycle (before planning)."""
        self.stats.cycles += 1

    def plan(self, outputs_blocked: bool) -> FiringPlan:
        """Decide whether to fire this cycle.  Implemented by subclasses."""
        raise NotImplementedError

    def execute(self, plan: FiringPlan) -> Optional[Dict[str, Token]]:
        """Carry out *plan*: consume tokens, fire the process, emit outputs.

        Returns a mapping ``output port -> Token`` when the process fired, or
        ``None`` when it stalled (the simulator then records τ on every output
        channel).
        """
        if not plan.fire:
            if plan.stall_reason == "missing_input":
                self.stats.stalls_missing_input += 1
                for port in plan.missing_ports:
                    self.stats.missing_by_port[port] = (
                        self.stats.missing_by_port.get(port, 0) + 1
                    )
            elif plan.stall_reason == "output_blocked":
                self.stats.stalls_output_blocked += 1
            else:
                self.stats.stalls_done += 1
            return None

        tag = self.current_tag
        inputs: Dict[str, object] = {}
        for port in self.process.input_ports:
            if port in plan.consume_ports:
                token = self.queues[port].pop()
                if token.tag != tag:
                    raise ProtocolError(
                        f"shell {self.name!r} consumed tag {token.tag} on port "
                        f"{port!r} while firing tag {tag}"
                    )
                inputs[port] = token.value
            else:
                inputs[port] = None

        output_tag = self.output_tag
        outputs = self.process.step(inputs)
        self.stats.firings += 1
        return {
            port: Token(value=value, tag=output_tag) for port, value in outputs.items()
        }

    # -- helpers ------------------------------------------------------------------------
    def _head_ready(self, port: str) -> bool:
        """True when the FIFO of *port* holds the token with the current tag."""
        queue = self.queues[port]
        if queue.is_empty():
            return False
        head = queue.peek()
        if head.tag > self.current_tag:
            raise ProtocolError(
                f"shell {self.name!r}: head token on port {port!r} has future tag "
                f"{head.tag} (current {self.current_tag}); a token was lost"
            )
        return head.tag == self.current_tag

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.process.name!r})"


class StrictShell(Shell):
    """The WP1 wrapper: fire only when all inputs are present."""

    kind = "WP1"

    def plan(self, outputs_blocked: bool) -> FiringPlan:
        if self.process.is_done():
            return FiringPlan(fire=False, stall_reason="done")
        missing = tuple(
            port for port in self.process.input_ports if not self._head_ready(port)
        )
        if missing:
            return FiringPlan(
                fire=False, stall_reason="missing_input", missing_ports=missing
            )
        if outputs_blocked:
            return FiringPlan(fire=False, stall_reason="output_blocked")
        return FiringPlan(fire=True, consume_ports=tuple(self.process.input_ports))


class RelaxedShell(Shell):
    """The WP2 wrapper: fire as soon as the oracle-required inputs are present."""

    kind = "WP2"

    def begin_cycle(self) -> None:
        super().begin_cycle()
        self.discard_stale()

    def discard_stale(self) -> None:
        """Drop queued tokens whose tag is older than the firing counter.

        These are tokens the process skipped in earlier firings because the
        oracle declared them unnecessary; the paper's simplified wrapper drops
        them by comparing per-channel lag counters.
        """
        tag = self.current_tag
        for port, queue in self.queues.items():
            while queue.has_data() and queue.peek().tag < tag:
                queue.pop()
                self.stats.discarded_tokens += 1
                self.stats.discarded_by_port[port] = (
                    self.stats.discarded_by_port.get(port, 0) + 1
                )

    def required_ports(self) -> FrozenSet[str]:
        """The oracle's answer for the next firing (all ports when undeclared)."""
        required = self.process.required_ports()
        if required is None:
            return frozenset(self.process.input_ports)
        unknown = required - frozenset(self.process.input_ports)
        if unknown:
            raise ProtocolError(
                f"oracle of process {self.name!r} required unknown ports {sorted(unknown)}"
            )
        return frozenset(required)

    def plan(self, outputs_blocked: bool) -> FiringPlan:
        if self.process.is_done():
            return FiringPlan(fire=False, stall_reason="done")
        required = self.required_ports()
        missing = tuple(port for port in required if not self._head_ready(port))
        if missing:
            return FiringPlan(
                fire=False, stall_reason="missing_input", missing_ports=missing
            )
        if outputs_blocked:
            return FiringPlan(fire=False, stall_reason="output_blocked")
        # Consume required ports, plus any non-required port whose current-tag
        # token already arrived (consuming it now is equivalent to discarding
        # it later and keeps the FIFO shallow).
        consume = set(required)
        for port in self.process.input_ports:
            if port not in consume and self._head_ready(port):
                consume.add(port)
        ordered = tuple(port for port in self.process.input_ports if port in consume)
        return FiringPlan(fire=True, consume_ports=ordered)


def make_shell(
    process: Process,
    relaxed: bool,
    queue_capacity: int = DEFAULT_QUEUE_CAPACITY,
) -> Shell:
    """Factory returning a WP2 shell when *relaxed* else a WP1 shell."""
    if relaxed:
        return RelaxedShell(process, queue_capacity=queue_capacity)
    return StrictShell(process, queue_capacity=queue_capacity)
